#!/usr/bin/env python3
"""Lints kflush's Prometheus text exposition (the kStatsProm payload).

Usage: validate_prometheus.py FILE [FILE...]   (or - for stdin)

Checks, per input:
  * every sample name matches [a-zA-Z_:][a-zA-Z0-9_:]* and carries the
    kflush_ prefix;
  * every sample is covered by a preceding # TYPE line, and every # TYPE
    is one of counter|gauge|histogram;
  * counter and gauge samples are plain `name value` lines with a finite
    numeric value (counters non-negative);
  * histogram families are complete: at least one _bucket series, a
    mandatory le="+Inf" bucket, _sum and _count present, bucket counts
    cumulative (non-decreasing in le order), and the +Inf bucket equal to
    _count;
  * no duplicate TYPE declarations and no duplicate scalar samples.

Exit 0 when every input is clean, 1 with one line per violation
otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LE_RE = re.compile(r'^\{le="([^"]*)"\}$')
VALID_TYPES = ("counter", "gauge", "histogram")


def parse_le(raw):
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        return None


def lint(path, text, errors):
    types = {}       # family name -> declared type
    seen_scalar = set()
    # histogram family -> {"buckets": [(le, value)], "sum": x, "count": x}
    hists = {}

    def family_of(name):
        """The family a sample belongs to: histogram samples hang off
        their _bucket/_sum/_count suffix, everything else is its own
        family."""
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                return base, suffix
        return name, None

    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            m = re.match(r"^# TYPE (\S+) (\S+)$", line)
            if m:
                name, kind = m.group(1), m.group(2)
                if not NAME_RE.match(name):
                    errors.append(f"{where}: bad metric name '{name}'")
                if kind not in VALID_TYPES:
                    errors.append(f"{where}: bad type '{kind}' for {name}")
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                types[name] = kind
                if kind == "histogram":
                    hists[name] = {"buckets": [], "sum": None, "count": None}
            elif not line.startswith("# HELP"):
                errors.append(f"{where}: unrecognized comment line")
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            errors.append(f"{where}: not a 'name value' sample")
            continue
        name_labels, raw_value = parts
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"{where}: non-numeric value '{raw_value}'")
            continue
        if value != value or value in (float("inf"), float("-inf")):
            errors.append(f"{where}: non-finite value")
            continue
        brace = name_labels.find("{")
        name = name_labels[:brace] if brace >= 0 else name_labels
        labels = name_labels[brace:] if brace >= 0 else ""
        if not NAME_RE.match(name):
            errors.append(f"{where}: bad sample name '{name}'")
            continue
        if not name.startswith("kflush_"):
            errors.append(f"{where}: sample '{name}' lacks kflush_ prefix")
        base, suffix = family_of(name)
        kind = types.get(base)
        if kind is None:
            errors.append(f"{where}: sample '{name}' has no # TYPE line")
            continue
        if kind == "histogram":
            h = hists[base]
            if suffix == "_bucket":
                m = LE_RE.match(labels)
                le = parse_le(m.group(1)) if m else None
                if le is None:
                    errors.append(f"{where}: _bucket without a valid "
                                  f"le label")
                    continue
                h["buckets"].append((le, value))
            elif suffix == "_sum":
                h["sum"] = value
            elif suffix == "_count":
                h["count"] = value
            else:
                errors.append(f"{where}: bare sample '{name}' for "
                              f"histogram family")
            continue
        # counter / gauge
        if labels:
            errors.append(f"{where}: unexpected labels on {kind} '{name}'")
        if name in seen_scalar:
            errors.append(f"{where}: duplicate sample for '{name}'")
        seen_scalar.add(name)
        if kind == "counter" and value < 0:
            errors.append(f"{where}: counter '{name}' is negative")

    for name, h in sorted(hists.items()):
        where = f"{path}:{name}"
        if not h["buckets"]:
            errors.append(f"{where}: histogram has no _bucket series")
            continue
        if h["sum"] is None:
            errors.append(f"{where}: histogram missing _sum")
        if h["count"] is None:
            errors.append(f"{where}: histogram missing _count")
            continue
        les = [le for le, _ in h["buckets"]]
        if len(set(les)) != len(les):
            errors.append(f"{where}: duplicate le bucket")
        if les != sorted(les):
            errors.append(f"{where}: buckets not in ascending le order")
        if not les or les[-1] != float("inf"):
            errors.append(f"{where}: missing mandatory le=\"+Inf\" bucket")
            continue
        counts = [v for _, v in h["buckets"]]
        if any(counts[i] > counts[i + 1] for i in range(len(counts) - 1)):
            errors.append(f"{where}: bucket counts not cumulative")
        if counts[-1] != h["count"]:
            errors.append(f"{where}: +Inf bucket {counts[-1]:.0f} != "
                          f"_count {h['count']:.0f}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    families = 0
    for path in argv[1:]:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        before = len(errors)
        lint(path, text, errors)
        families += text.count("# TYPE ")
        if len(errors) == before:
            print(f"{path}: OK ({text.count('# TYPE ')} families)")
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"validate_prometheus: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
