#!/usr/bin/env python3
"""Schema check for the BENCH_*.json artifacts bench binaries emit.

Usage:  scripts/validate_bench_json.py [--baseline FILE] [--tolerance R]
            BENCH_snapshot.json [more.json ...]

Validates the contract CI's bench-smoke job gates on (and that
scripts/plot_bench.py & downstream dashboards consume):

  {"bench": <name>, "scale": <number>, "policies": {<policy>: <snapshot>}}

where each <snapshot> is a MetricsSnapshot::ToJson() object holding
"counters"/"gauges"/"histograms" maps, with the per-phase flush counters
(flush.phaseN.*) and per-query-type latency histograms
(query.latency_micros.<type>.<hit|miss>) present, and every histogram
carrying count/min/max/mean/sum and p50/p90/p95/p99/p999 fields. The durable
tier's disk.* recovery counters and flush_buffer.requeues are required
unconditionally (zero on non-durable runs); the wal.* series are
validated as an all-or-nothing family when any of them appears, with
wal.fsync_micros's count cross-checked against the wal.fsyncs counter.

BENCH_net_load.json (bench_net_load) carries one snapshot per
arrival-rate point and is additionally audited for zero silent drops:
bench.offered must equal acked+skipped+nacked and bench.queried_back
must equal bench.acked. Each snapshot must also carry the server's net.*
families, with every net.ingest_ack_micros.<stage> histogram count equal
to net.ingest_acks (the per-request stage decomposition reconciles
exactly).

BENCH_insert_breakdown.json (bench_micro --breakdown) carries a reduced
snapshot per policy — the digestion-cost gauges (bench.insert_cpu_ns,
bench.phase_ns.*) plus the flush counters the phase table is printed from —
and is validated against its own schema.

With --baseline FILE, the insert_breakdown artifact among the inputs is
additionally gated against the committed baseline: per policy, the
bench.insert_cpu_ns gauge may not exceed the baseline by more than
--tolerance (default 0.10, i.e. a 10% regression budget). A win larger
than the tolerance prints the ratchet command to re-pin the baseline.
Scale-mismatched baselines are skipped with a warning, not failed — the
gate only compares like with like.

Exits 0 when every file validates; prints each problem and exits 1
otherwise. Stdlib only (json) — safe for minimal CI images.
"""

import json
import sys

REQUIRED_TOP_KEYS = ("bench", "scale", "policies")
REQUIRED_SNAPSHOT_KEYS = ("counters", "gauges", "histograms")
HISTOGRAM_FIELDS = ("count", "min", "max", "mean", "sum",
                    "p50", "p90", "p95", "p99", "p999")
PHASE_COUNTER_FIELDS = ("runs", "candidates_scanned", "heap_selected",
                        "postings", "entries", "records", "record_bytes",
                        "bytes_freed", "micros")
# Counters every policy run must report, whatever the workload. The
# disk.* recovery counters and flush_buffer.requeues are exported
# unconditionally (zero on non-durable runs), so they are schema too.
REQUIRED_COUNTERS = ("ingest.inserted", "flush.cycles",
                     "flush.records_flushed", "flush.postings_dropped",
                     "disk.postings_added", "disk.records_recovered",
                     "disk.torn_bytes_truncated", "disk.fsyncs",
                     "flush_buffer.requeues", "query.executed")
REQUIRED_GAUGES = ("memory.budget_bytes", "memory.data_used_bytes",
                   "store.resident_records")
QUERY_TYPES = ("single", "and", "or")
OUTCOMES = ("hit", "miss")

# Durable-tier series (docs/INTERNALS.md, "Durability"). Exported only
# when the run enables a WAL, so they are validated as an all-or-nothing
# family: any wal.* key present => the whole family must be.
WAL_COUNTERS = ("wal.records_appended", "wal.bytes_appended", "wal.commits",
                "wal.fsyncs", "wal.records_recovered",
                "wal.torn_bytes_truncated")
WAL_HISTOGRAMS = ("wal.fsync_micros",)

# Reduced schema for BENCH_insert_breakdown.json: the digestion perf gate
# reads bench.insert_cpu_ns; the phase table reads bench.phase_ns.*.
BREAKDOWN_GAUGES = (
    "bench.inserts", "bench.insert_cpu_ns", "bench.tweets_per_sec",
    "bench.phase_ns.tokenize", "bench.phase_ns.route", "bench.phase_ns.store",
    "bench.phase_ns.index", "bench.phase_ns.account", "bench.phase_ns.sum")
BREAKDOWN_COUNTERS = (
    "ingest.inserted", "flush.cycles", "flush.records_flushed",
    "flush.phase1.micros", "flush.phase2.micros", "flush.phase3.micros")
# The gate metric and its regression budget.
GATE_GAUGE = "bench.insert_cpu_ns"
DEFAULT_TOLERANCE = 0.10


def check_histogram(errors, where, hist):
    if not isinstance(hist, dict):
        errors.append(f"{where}: histogram is not an object")
        return
    for field in HISTOGRAM_FIELDS:
        if field not in hist:
            errors.append(f"{where}: histogram missing '{field}'")


def check_snapshot(errors, where, snap):
    for key in REQUIRED_SNAPSHOT_KEYS:
        if key not in snap or not isinstance(snap[key], dict):
            errors.append(f"{where}: missing or non-object '{key}'")
            return
    counters, histograms = snap["counters"], snap["histograms"]

    for name in REQUIRED_COUNTERS:
        if name not in counters:
            errors.append(f"{where}: missing counter '{name}'")
    for name in REQUIRED_GAUGES:
        if name not in snap["gauges"]:
            errors.append(f"{where}: missing gauge '{name}'")

    # Per-phase flush counters for all three phases (single-phase policies
    # report under phase1 and still export zeroed phase2/phase3 series).
    for phase in (1, 2, 3):
        for field in PHASE_COUNTER_FIELDS:
            name = f"flush.phase{phase}.{field}"
            if name not in counters:
                errors.append(f"{where}: missing counter '{name}'")

    for hist_name, hist in histograms.items():
        check_histogram(errors, f"{where}/{hist_name}", hist)

    # Latency histograms per query type and outcome. Any given workload
    # seed may not exercise every (type, outcome) cell, but each type must
    # appear in at least one outcome once queries ran.
    if counters.get("query.executed", 0) > 0:
        for qtype in QUERY_TYPES:
            present = any(
                f"query.latency_micros.{qtype}.{outcome}" in histograms
                for outcome in OUTCOMES)
            if not present:
                errors.append(
                    f"{where}: no latency histogram for query type '{qtype}'")

    if "flush.cycle_micros" not in histograms:
        errors.append(f"{where}: missing histogram 'flush.cycle_micros'")

    check_wal_family(errors, where, counters, histograms)


def check_wal_family(errors, where, counters, histograms):
    """Durability-enabled runs export the wal.* family; a partial family
    means the exporter and this schema have drifted apart."""
    present = (any(name in counters for name in WAL_COUNTERS)
               or any(name in histograms for name in WAL_HISTOGRAMS))
    if not present:
        return
    for name in WAL_COUNTERS:
        if name not in counters:
            errors.append(f"{where}: missing counter '{name}' "
                          f"(wal.* family is all-or-nothing)")
    for name in WAL_HISTOGRAMS:
        if name not in histograms:
            errors.append(f"{where}: missing histogram '{name}' "
                          f"(wal.* family is all-or-nothing)")
    # Every fsync is timed, so the histogram count must equal the counter.
    fsyncs = counters.get("wal.fsyncs")
    hist = histograms.get("wal.fsync_micros")
    if (isinstance(fsyncs, (int, float)) and isinstance(hist, dict)
            and hist.get("count") is not None and hist["count"] != fsyncs):
        errors.append(f"{where}: wal.fsync_micros count {hist['count']} "
                      f"!= wal.fsyncs counter {fsyncs}")


def check_shard_scaling(errors, path, doc):
    """Extra rules for BENCH_shard_scaling.json: one snapshot per shard
    count ("shards1", "shards2", ...), each carrying the bench.* gauges
    the scaling curve is plotted from and the CPU-time histograms the
    work-span (critical-path) series is computed from."""
    policies = doc["policies"]
    shard_keys = [k for k in policies if k.startswith("shards")]
    if len(shard_keys) < 2:
        errors.append(
            f"{path}: shard_scaling needs >=2 'shardsN' snapshots, "
            f"got {sorted(policies)}")
        return
    for key in shard_keys:
        where = f"{path}:{key}"
        snap = policies[key]
        gauges = snap.get("gauges", {})
        for name in ("bench.num_shards", "bench.hw_concurrency",
                     "bench.ingest_tweets_per_sec", "bench.cp_tweets_per_sec",
                     "bench.query_per_sec", "bench.routed_copies"):
            if name not in gauges:
                errors.append(f"{where}: missing gauge '{name}'")
        if gauges.get("bench.num_shards") != int(key[len("shards"):]):
            errors.append(f"{where}: bench.num_shards gauge disagrees "
                          f"with snapshot key")
        for name in ("bench.ingest_tweets_per_sec", "bench.cp_tweets_per_sec"):
            if name in gauges and gauges[name] <= 0:
                errors.append(f"{where}: gauge '{name}' must be > 0")
        histograms = snap.get("histograms", {})
        for name in ("system.digest_cpu_micros_per_batch",
                     "flush.cycle_cpu_micros"):
            if name not in histograms:
                errors.append(f"{where}: missing histogram '{name}'")


def check_net_load(errors, path, doc):
    """Extra rules for BENCH_net_load.json: one snapshot per arrival-rate
    point ("rate<R>"), each carrying the client-side latency histograms
    and the zero-silent-drop accounting gauges — offered must partition
    exactly into acked/skipped/nacked, and every acked record must have
    been queried back (bench.silent_drops == 0)."""
    policies = doc["policies"]
    rate_keys = [k for k in policies if k.startswith("rate")]
    if not rate_keys:
        errors.append(f"{path}: net_load needs >=1 'rate<R>' snapshot, "
                      f"got {sorted(policies)}")
        return
    for key in rate_keys:
        where = f"{path}:{key}"
        snap = policies[key]
        gauges = snap.get("gauges", {})
        for name in ("bench.rate_target", "bench.users", "bench.batch",
                     "bench.offered", "bench.acked", "bench.skipped",
                     "bench.nacked", "bench.nacks_overloaded",
                     "bench.queries_sent", "bench.queries_ok",
                     "bench.queried_back", "bench.silent_drops",
                     "bench.offered_per_sec", "bench.acked_per_sec"):
            if name not in gauges:
                errors.append(f"{where}: missing gauge '{name}'")
        offered = gauges.get("bench.offered", 0)
        accounted = (gauges.get("bench.acked", 0)
                     + gauges.get("bench.skipped", 0)
                     + gauges.get("bench.nacked", 0))
        if offered <= 0:
            errors.append(f"{where}: bench.offered must be > 0")
        elif offered != accounted:
            errors.append(
                f"{where}: offered {offered} != acked+skipped+nacked "
                f"{accounted} (records unaccounted for)")
        if gauges.get("bench.silent_drops", 1) != 0:
            errors.append(f"{where}: bench.silent_drops must be 0, got "
                          f"{gauges.get('bench.silent_drops')}")
        if gauges.get("bench.queried_back") != gauges.get("bench.acked"):
            errors.append(f"{where}: bench.queried_back "
                          f"{gauges.get('bench.queried_back')} != "
                          f"bench.acked {gauges.get('bench.acked')}")
        histograms = snap.get("histograms", {})
        for name in ("net.ingest_latency_micros", "net.query_latency_micros"):
            if name not in histograms:
                errors.append(f"{where}: missing histogram '{name}'")
        ingest = histograms.get("net.ingest_latency_micros", {})
        if isinstance(ingest, dict) and ingest.get("count", 0) <= 0:
            errors.append(f"{where}: net.ingest_latency_micros is empty")
        # Server-side net.* families: ack counters plus the per-stage
        # ack-latency decomposition. Each stage histogram must hold
        # exactly one sample per acked ingest request.
        counters = snap.get("counters", {})
        for name in ("net.ingest_requests", "net.ingest_acks",
                     "net.records_offered", "net.records_acked",
                     "net.frames_received"):
            if name not in counters:
                errors.append(f"{where}: missing counter '{name}'")
        acks = counters.get("net.ingest_acks", 0)
        if acks <= 0:
            errors.append(f"{where}: net.ingest_acks must be > 0")
        for stage in ("decode", "admission", "commit", "respond"):
            name = f"net.ingest_ack_micros.{stage}"
            hist = histograms.get(name)
            if not isinstance(hist, dict):
                errors.append(f"{where}: missing histogram '{name}'")
                continue
            if hist.get("count", -1) != acks:
                errors.append(
                    f"{where}: {name} count {hist.get('count')} != "
                    f"net.ingest_acks {acks} (stage histograms must "
                    f"reconcile exactly)")


SUB_COUNTERS = ("sub.registered", "sub.unsubscribed", "sub.deltas_published",
                "sub.deltas_pushed", "sub.deltas_dropped_on_disconnect",
                "sub.member_evictions", "sub.refills", "sub.snapshot_queries")
# An idle subscription subsystem must be (nearly) free: zero-subscription
# ingest may not trail the no-manager baseline by more than 2%.
ZERO_SUB_BUDGET_BPS = 200


def check_subscriptions(errors, path, doc):
    """Extra rules for BENCH_subscriptions.json: one snapshot per
    standing-query count ("nomanager", "subs0", "subs100", "subs10000").
    Manager-attached points must carry the full sub.* family with the
    accounting invariant intact (published partitions exactly into pushed
    + dropped-on-disconnect); subs0 must publish nothing and stay within
    the zero-subscription overhead budget vs the no-manager baseline."""
    policies = doc["policies"]
    for key in ("nomanager", "subs0", "subs100", "subs10000"):
        if key not in policies:
            errors.append(f"{path}: subscriptions needs a '{key}' snapshot, "
                          f"got {sorted(policies)}")
            return
    for key, snap in policies.items():
        where = f"{path}:{key}"
        gauges = snap.get("gauges", {})
        counters = snap.get("counters", {})
        for name in ("bench.num_subscriptions", "bench.ingest_tweets_per_sec",
                     "bench.baseline_tweets_per_sec", "bench.overhead_bps"):
            if name not in gauges:
                errors.append(f"{where}: missing gauge '{name}'")
        if gauges.get("bench.ingest_tweets_per_sec", 0) <= 0:
            errors.append(f"{where}: bench.ingest_tweets_per_sec must be > 0")
        if key == "nomanager":
            if any(name in counters for name in SUB_COUNTERS):
                errors.append(f"{where}: no-manager baseline must not carry "
                              f"sub.* counters")
            continue
        for name in SUB_COUNTERS:
            if name not in counters:
                errors.append(f"{where}: missing counter '{name}'")
        published = counters.get("sub.deltas_published", -1)
        accounted = (counters.get("sub.deltas_pushed", 0)
                     + counters.get("sub.deltas_dropped_on_disconnect", 0))
        if published != accounted:
            errors.append(
                f"{where}: sub.deltas_published {published} != pushed+dropped "
                f"{accounted} (delta accounting does not partition)")
        if key == "subs0":
            if published != 0:
                errors.append(f"{where}: zero subscriptions must publish "
                              f"nothing, got {published}")
            bps = gauges.get("bench.zero_sub_overhead_bps")
            if bps is None:
                errors.append(f"{where}: missing gauge "
                              f"'bench.zero_sub_overhead_bps'")
            elif bps > ZERO_SUB_BUDGET_BPS:
                errors.append(
                    f"{where}: zero-subscription ingest overhead {bps} bps "
                    f"exceeds the {ZERO_SUB_BUDGET_BPS} bps budget (idle "
                    f"subscription subsystem is not free)")
        elif published <= 0:
            errors.append(f"{where}: {key} should publish deltas, got "
                          f"{published}")


def check_insert_breakdown(errors, path, doc):
    """Reduced schema for bench_micro --breakdown output."""
    for policy, snap in doc["policies"].items():
        where = f"{path}:{policy}"
        for key in REQUIRED_SNAPSHOT_KEYS:
            if key not in snap or not isinstance(snap[key], dict):
                errors.append(f"{where}: missing or non-object '{key}'")
                return
        for name in BREAKDOWN_GAUGES:
            if name not in snap["gauges"]:
                errors.append(f"{where}: missing gauge '{name}'")
        for name in BREAKDOWN_COUNTERS:
            if name not in snap["counters"]:
                errors.append(f"{where}: missing counter '{name}'")
        if snap["gauges"].get(GATE_GAUGE, 0) <= 0:
            errors.append(f"{where}: gauge '{GATE_GAUGE}' must be > 0")


def gate_against_baseline(errors, path, doc, baseline_path, tolerance):
    """Ratcheting perf gate: per-policy digestion CPU cost vs the committed
    baseline. Regressions beyond `tolerance` fail; wins beyond it print the
    command that re-pins the ratchet."""
    try:
        with open(baseline_path, encoding="utf-8") as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{baseline_path}: unreadable baseline: {e}")
        return
    if base.get("bench") != doc.get("bench"):
        errors.append(f"{baseline_path}: baseline bench "
                      f"'{base.get('bench')}' != '{doc.get('bench')}'")
        return
    if base.get("scale") != doc.get("scale"):
        print(f"NOTE perf gate skipped: baseline scale {base.get('scale')} "
              f"!= current scale {doc.get('scale')} (re-record the baseline "
              f"at the CI scale to arm the gate)")
        return
    wins = []
    for policy, snap in base.get("policies", {}).items():
        base_ns = snap.get("gauges", {}).get(GATE_GAUGE)
        cur_snap = doc["policies"].get(policy)
        if base_ns is None or base_ns <= 0:
            continue
        if cur_snap is None:
            errors.append(f"{path}: policy '{policy}' present in baseline "
                          f"but missing from current run")
            continue
        cur_ns = cur_snap.get("gauges", {}).get(GATE_GAUGE, 0)
        ratio = cur_ns / base_ns
        verdict = "ok"
        if ratio > 1 + tolerance:
            errors.append(
                f"{path}: perf regression: {policy} {GATE_GAUGE} "
                f"{cur_ns:.0f}ns vs baseline {base_ns:.0f}ns "
                f"({(ratio - 1) * 100:+.1f}%, budget {tolerance * 100:.0f}%)")
            verdict = "REGRESSION"
        elif ratio < 1 - tolerance:
            wins.append(policy)
            verdict = "win"
        print(f"gate {policy}: {cur_ns:.0f}ns vs baseline {base_ns:.0f}ns "
              f"({(ratio - 1) * 100:+.1f}%) {verdict}")
    if wins:
        print(f"perf win on {', '.join(wins)} — ratchet the baseline with:\n"
              f"  cp {path} {baseline_path}")


def check_file(errors, path, baseline=None, tolerance=DEFAULT_TOLERANCE):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            errors.append(f"{path}: missing top-level key '{key}'")
            return
    if not isinstance(doc["scale"], (int, float)):
        errors.append(f"{path}: 'scale' is not a number")
    policies = doc["policies"]
    if not isinstance(policies, dict) or not policies:
        errors.append(f"{path}: 'policies' is empty or not an object")
        return
    if doc["bench"] == "insert_breakdown":
        check_insert_breakdown(errors, path, doc)
        if baseline is not None and not errors:
            gate_against_baseline(errors, path, doc, baseline, tolerance)
        return
    for policy, snap in policies.items():
        check_snapshot(errors, f"{path}:{policy}", snap)
    if doc["bench"] == "shard_scaling":
        check_shard_scaling(errors, path, doc)
    if doc["bench"] == "net_load":
        check_net_load(errors, path, doc)
    if doc["bench"] == "subscriptions":
        check_subscriptions(errors, path, doc)


def main(argv):
    baseline = None
    tolerance = DEFAULT_TOLERANCE
    files = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--baseline":
            i += 1
            if i >= len(argv):
                print("--baseline needs a file argument", file=sys.stderr)
                return 2
            baseline = argv[i]
        elif arg == "--tolerance":
            i += 1
            if i >= len(argv):
                print("--tolerance needs a number argument", file=sys.stderr)
                return 2
            tolerance = float(argv[i])
        else:
            files.append(arg)
        i += 1
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in files:
        check_file(errors, path, baseline=baseline, tolerance=tolerance)
    for err in errors:
        print(f"FAIL {err}")
    if errors:
        print(f"{len(errors)} problem(s) in {len(files)} file(s)")
        return 1
    print(f"OK: {len(files)} file(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
