#!/usr/bin/env python3
"""Schema check for the BENCH_*.json artifacts bench binaries emit.

Usage:  scripts/validate_bench_json.py BENCH_snapshot.json [more.json ...]

Validates the contract CI's bench-smoke job gates on (and that
scripts/plot_bench.py & downstream dashboards consume):

  {"bench": <name>, "scale": <number>, "policies": {<policy>: <snapshot>}}

where each <snapshot> is a MetricsSnapshot::ToJson() object holding
"counters"/"gauges"/"histograms" maps, with the per-phase flush counters
(flush.phaseN.*) and per-query-type latency histograms
(query.latency_micros.<type>.<hit|miss>) present, and every histogram
carrying count/min/max/mean/sum and p50/p90/p95/p99 fields.

Exits 0 when every file validates; prints each problem and exits 1
otherwise. Stdlib only (json) — safe for minimal CI images.
"""

import json
import sys

REQUIRED_TOP_KEYS = ("bench", "scale", "policies")
REQUIRED_SNAPSHOT_KEYS = ("counters", "gauges", "histograms")
HISTOGRAM_FIELDS = ("count", "min", "max", "mean", "sum",
                    "p50", "p90", "p95", "p99")
PHASE_COUNTER_FIELDS = ("runs", "candidates_scanned", "heap_selected",
                        "postings", "entries", "records", "record_bytes",
                        "bytes_freed", "micros")
# Counters every policy run must report, whatever the workload.
REQUIRED_COUNTERS = ("ingest.inserted", "flush.cycles",
                     "flush.records_flushed", "flush.postings_dropped",
                     "disk.postings_added", "query.executed")
REQUIRED_GAUGES = ("memory.budget_bytes", "memory.data_used_bytes",
                   "store.resident_records")
QUERY_TYPES = ("single", "and", "or")
OUTCOMES = ("hit", "miss")


def check_histogram(errors, where, hist):
    if not isinstance(hist, dict):
        errors.append(f"{where}: histogram is not an object")
        return
    for field in HISTOGRAM_FIELDS:
        if field not in hist:
            errors.append(f"{where}: histogram missing '{field}'")


def check_snapshot(errors, where, snap):
    for key in REQUIRED_SNAPSHOT_KEYS:
        if key not in snap or not isinstance(snap[key], dict):
            errors.append(f"{where}: missing or non-object '{key}'")
            return
    counters, histograms = snap["counters"], snap["histograms"]

    for name in REQUIRED_COUNTERS:
        if name not in counters:
            errors.append(f"{where}: missing counter '{name}'")
    for name in REQUIRED_GAUGES:
        if name not in snap["gauges"]:
            errors.append(f"{where}: missing gauge '{name}'")

    # Per-phase flush counters for all three phases (single-phase policies
    # report under phase1 and still export zeroed phase2/phase3 series).
    for phase in (1, 2, 3):
        for field in PHASE_COUNTER_FIELDS:
            name = f"flush.phase{phase}.{field}"
            if name not in counters:
                errors.append(f"{where}: missing counter '{name}'")

    for hist_name, hist in histograms.items():
        check_histogram(errors, f"{where}/{hist_name}", hist)

    # Latency histograms per query type and outcome. Any given workload
    # seed may not exercise every (type, outcome) cell, but each type must
    # appear in at least one outcome once queries ran.
    if counters.get("query.executed", 0) > 0:
        for qtype in QUERY_TYPES:
            present = any(
                f"query.latency_micros.{qtype}.{outcome}" in histograms
                for outcome in OUTCOMES)
            if not present:
                errors.append(
                    f"{where}: no latency histogram for query type '{qtype}'")

    if "flush.cycle_micros" not in histograms:
        errors.append(f"{where}: missing histogram 'flush.cycle_micros'")


def check_shard_scaling(errors, path, doc):
    """Extra rules for BENCH_shard_scaling.json: one snapshot per shard
    count ("shards1", "shards2", ...), each carrying the bench.* gauges
    the scaling curve is plotted from and the CPU-time histograms the
    work-span (critical-path) series is computed from."""
    policies = doc["policies"]
    shard_keys = [k for k in policies if k.startswith("shards")]
    if len(shard_keys) < 2:
        errors.append(
            f"{path}: shard_scaling needs >=2 'shardsN' snapshots, "
            f"got {sorted(policies)}")
        return
    for key in shard_keys:
        where = f"{path}:{key}"
        snap = policies[key]
        gauges = snap.get("gauges", {})
        for name in ("bench.num_shards", "bench.hw_concurrency",
                     "bench.ingest_tweets_per_sec", "bench.cp_tweets_per_sec",
                     "bench.query_per_sec", "bench.routed_copies"):
            if name not in gauges:
                errors.append(f"{where}: missing gauge '{name}'")
        if gauges.get("bench.num_shards") != int(key[len("shards"):]):
            errors.append(f"{where}: bench.num_shards gauge disagrees "
                          f"with snapshot key")
        for name in ("bench.ingest_tweets_per_sec", "bench.cp_tweets_per_sec"):
            if name in gauges and gauges[name] <= 0:
                errors.append(f"{where}: gauge '{name}' must be > 0")
        histograms = snap.get("histograms", {})
        for name in ("system.digest_cpu_micros_per_batch",
                     "flush.cycle_cpu_micros"):
            if name not in histograms:
                errors.append(f"{where}: missing histogram '{name}'")


def check_file(errors, path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            errors.append(f"{path}: missing top-level key '{key}'")
            return
    if not isinstance(doc["scale"], (int, float)):
        errors.append(f"{path}: 'scale' is not a number")
    policies = doc["policies"]
    if not isinstance(policies, dict) or not policies:
        errors.append(f"{path}: 'policies' is empty or not an object")
        return
    for policy, snap in policies.items():
        check_snapshot(errors, f"{path}:{policy}", snap)
    if doc["bench"] == "shard_scaling":
        check_shard_scaling(errors, path, doc)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        check_file(errors, path)
    for err in errors:
        print(f"FAIL {err}")
    if errors:
        print(f"{len(errors)} problem(s) in {len(argv) - 1} file(s)")
        return 1
    print(f"OK: {len(argv) - 1} file(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
