#!/usr/bin/env python3
"""Convert kflush bench output into per-figure CSV files.

Usage:
    python3 scripts/plot_bench.py bench_output.txt out_dir/

Every line of the form `[figX] series x value` becomes a row of
out_dir/figX.csv with columns series,x,value — ready for any plotting
tool. If matplotlib is importable, a quick-look PNG per figure is also
rendered (series as lines over the x categories).
"""

import collections
import csv
import os
import re
import sys

ROW = re.compile(r"^\[([\w-]+)\]\s+(\S+)\s+(\S+)\s+([-\d.]+)\s*$")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    src, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    figures = collections.defaultdict(list)
    with open(src) as f:
        for line in f:
            m = ROW.match(line)
            if m:
                fig, series, x, value = m.groups()
                figures[fig].append((series, x, float(value)))

    for fig, rows in sorted(figures.items()):
        path = os.path.join(out_dir, f"{fig}.csv")
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["series", "x", "value"])
            writer.writerows(rows)
        print(f"wrote {path} ({len(rows)} rows)")

    try:
        import matplotlib  # noqa: F401

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSVs only")
        return 0

    for fig, rows in sorted(figures.items()):
        series = collections.defaultdict(list)
        x_order = []
        for name, x, value in rows:
            if ":" in name:
                continue  # skip per-type breakdown series in the quick look
            if x not in x_order:
                x_order.append(x)
            series[name].append((x, value))
        if not series:
            continue
        plt.figure(figsize=(6, 4))
        for name, points in series.items():
            xs = [x_order.index(x) for x, _ in points]
            ys = [v for _, v in points]
            plt.plot(xs, ys, marker="o", label=name)
        plt.xticks(range(len(x_order)), x_order, rotation=30)
        plt.title(fig)
        plt.legend(fontsize=7)
        plt.tight_layout()
        png = os.path.join(out_dir, f"{fig}.png")
        plt.savefig(png, dpi=120)
        plt.close()
        print(f"wrote {png}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
