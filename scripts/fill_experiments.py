#!/usr/bin/env python3
"""Inject measured tables from bench_output.txt into EXPERIMENTS.md.

Replaces each `<!-- FIGx -->` marker with markdown tables generated from
the corresponding `[figNx] series x value` rows.

Usage: python3 scripts/fill_experiments.py bench_output.txt EXPERIMENTS.md
"""

import collections
import re
import sys

ROW = re.compile(r"^\[([\w-]+)\]\s+(\S+)\s+(\S+)\s+([-\d.]+)\s*$")
# Per-type / auxiliary breakdown series kept out of the summary tables.
SKIP_SUFFIXES = (":single", ":and", ":or", ":flushbuf")

MARKER_FIGS = {
    "FIG1": ["fig1"],
    "FIG7": ["fig7a", "fig7b", "fig7c"],
    "FIG8": ["fig8a", "fig8b", "fig8c"],
    "FIG9": ["fig9a", "fig9b", "fig9c"],
    "FIG10": ["fig10a", "fig10b"],
    "FIG11": ["fig11a", "fig11b"],
    "FIG12": ["fig12a", "fig12b"],
}

FIG_TITLES = {
    "fig1": "snapshot at k=20 (useless % / k-filled count)",
    "fig7a": "k-filled keywords vs k",
    "fig7b": "k-filled keywords vs flushing budget",
    "fig7c": "k-filled keywords vs memory budget",
    "fig8a": "hit % (correlated) vs k",
    "fig8b": "hit % (correlated) vs flushing budget",
    "fig8c": "hit % (correlated) vs memory budget",
    "fig9a": "hit % (uniform) vs k",
    "fig9b": "hit % (uniform) vs flushing budget",
    "fig9c": "hit % (uniform) vs memory budget",
    "fig10a": "policy bookkeeping memory (MB) vs k",
    "fig10b": "digestion rate (K tweets/s) vs k",
    "fig11a": "k-filled spatial tiles vs memory",
    "fig11b": "spatial hit % vs memory",
    "fig12a": "k-filled user ids vs memory",
    "fig12b": "user-timeline hit % vs memory",
}


def load_rows(path):
    figures = collections.defaultdict(list)
    with open(path) as f:
        for line in f:
            m = ROW.match(line)
            if m:
                fig, series, x, value = m.groups()
                figures[fig].append((series, x, float(value)))
    return figures


def make_table(rows):
    x_order, series_order = [], []
    values = {}
    for series, x, value in rows:
        if series.endswith(SKIP_SUFFIXES):
            continue
        if x not in x_order:
            x_order.append(x)
        if series not in series_order:
            series_order.append(series)
        values[(series, x)] = value
    if not values:
        return "(no data)\n"
    out = ["| | " + " | ".join(series_order) + " |",
           "|---|" + "---|" * len(series_order)]
    for x in x_order:
        cells = []
        for s in series_order:
            v = values.get((s, x))
            cells.append("" if v is None else f"{v:g}")
        out.append(f"| {x} | " + " | ".join(cells) + " |")
    return "\n".join(out) + "\n"


def micro_block(path):
    lines, keep = [], False
    with open(path) as f:
        for line in f:
            if "bench_micro" in line and line.startswith("######"):
                keep = True
                continue
            if keep and line.startswith("######"):
                break
            if keep and (line.startswith("BM_") or "Benchmark" in line or
                         line.startswith("---")):
                lines.append(line.rstrip())
    return "```\n" + "\n".join(lines) + "\n```\n"


def fig5_block(path):
    with open(path) as f:
        for line in f:
            if line.startswith("summary: phase1-only"):
                return "Measured summary: " + line[len("summary: "):].strip() + "\n"
    return "(no data)\n"


def main():
    bench_path, md_path = sys.argv[1], sys.argv[2]
    figures = load_rows(bench_path)
    with open(md_path) as f:
        text = f.read()

    for marker, figs in MARKER_FIGS.items():
        blocks = []
        for fig in figs:
            blocks.append(f"**{fig}** — {FIG_TITLES[fig]}:\n\n" +
                          make_table(figures.get(fig, [])))
        text = text.replace(f"<!-- {marker} -->", "\n".join(blocks))
    text = text.replace("<!-- FIG5 -->", fig5_block(bench_path))
    text = text.replace("<!-- MICRO -->", micro_block(bench_path))

    with open(md_path, "w") as f:
        f.write(text)
    print(f"updated {md_path}")


if __name__ == "__main__":
    main()
