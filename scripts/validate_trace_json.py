#!/usr/bin/env python3
"""Schema check for Chrome trace-event JSON written by TraceExporter.

Usage:  scripts/validate_trace_json.py trace.json [more.json ...]

Validates the contract CI's bench-smoke job gates on, which is also what
Perfetto / chrome://tracing need to load the file:

  {"traceEvents": [<event>...],
   "displayTimeUnit": "ms",
   "otherData": {"events_emitted": N, "events_dropped": N}}

where every <event> carries name/cat/ph/ts/pid/tid, ph is one of
B/E/i/s/t/f, instants ("i") carry a scope "s", flow events ("s"/"t"/"f")
carry a numeric "id" with flow ends ("f") binding via bp == "e",
timestamps are non-decreasing per thread, and every thread's B/E events
nest — no span ends without a begin, none left dangling unless the ring
dropped events (otherData.events_dropped > 0 relaxes the balance check,
since wraparound can eat either end of a span).

Exits 0 when every file validates; prints each problem and exits 1
otherwise. Stdlib only (json) — safe for minimal CI images.
"""

import json
import sys

EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")
PHASES = ("B", "E", "i", "s", "t", "f")
FLOW_PHASES = ("s", "t", "f")


def check_events(errors, path, events, lossy):
    last_ts = {}    # tid -> last timestamp seen
    open_spans = {} # tid -> stack of open span names
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in EVENT_KEYS:
            if key not in ev:
                errors.append(f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph not in PHASES:
            errors.append(f"{where}: ph '{ph}' not one of {'/'.join(PHASES)}")
            continue
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant without a valid scope 's'")
        if ph in FLOW_PHASES:
            if not isinstance(ev.get("id"), int):
                errors.append(f"{where}: flow event without integer 'id'")
            if ph == "f" and ev.get("bp") != "e":
                errors.append(f"{where}: flow end without bp == 'e'")
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: non-numeric ts")
            continue
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' is not an object")
        tid = ev.get("tid")
        if tid in last_ts and ev["ts"] < last_ts[tid]:
            errors.append(f"{where}: ts went backwards on tid {tid}")
        last_ts[tid] = ev["ts"]
        if ph == "B":
            open_spans.setdefault(tid, []).append(ev.get("name"))
        elif ph == "E":
            stack = open_spans.get(tid, [])
            if stack:
                stack.pop()
            elif not lossy:
                errors.append(f"{where}: span end without a begin on tid {tid}")
    if not lossy:
        for tid, stack in open_spans.items():
            for name in stack:
                errors.append(f"{path}: span '{name}' on tid {tid} never ends")


def check_file(errors, path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path}: missing or non-array 'traceEvents'")
        return
    other = doc.get("otherData")
    if not isinstance(other, dict):
        errors.append(f"{path}: missing 'otherData'")
        return
    for key in ("events_emitted", "events_dropped"):
        if not isinstance(other.get(key), int):
            errors.append(f"{path}: otherData missing integer '{key}'")
            return
    if other["events_dropped"] > other["events_emitted"]:
        errors.append(f"{path}: more events dropped than emitted")
    lossy = other["events_dropped"] > 0
    if not lossy and len(events) != other["events_emitted"]:
        errors.append(
            f"{path}: {len(events)} events but otherData claims "
            f"{other['events_emitted']} emitted with none dropped")
    check_events(errors, path, events, lossy)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        check_file(errors, path)
    for err in errors:
        print(f"FAIL {err}")
    if errors:
        print(f"{len(errors)} problem(s) in {len(argv) - 1} file(s)")
        return 1
    print(f"OK: {len(argv) - 1} file(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
