#!/usr/bin/env bash
# Repo verification gate: tier-1 suite plus the sanitizer jobs that guard
# the concurrency paths (docs/INTERNALS.md, "Threading model & sanitizers").
#
# Usage:  scripts/check.sh [tier1|tsan|asan|stress|crash|subs|bench-smoke|
#                           net-smoke|ops-smoke|all]   (default: all)
#
# Jobs (each one is what CI runs as a separate job):
#   tier1       - plain RelWithDebInfo build, full ctest suite
#   tsan        - ThreadSanitizer build, full suite + stress harness, time-boxed
#   asan        - ASan+UBSan build, full suite + stress harness, time-boxed
#   stress      - just `ctest -L stress` under both sanitizers (quick race gate)
#   crash       - `ctest -L crash`: the crash-recovery differential oracle
#                 (docs/INTERNALS.md, "Durability"). Forks the durable store,
#                 kills it at every WAL/segment crash point plus a fixed seed
#                 matrix of random points, and proves recovery loses no acked
#                 record and answers queries identically.
#   subs        - `ctest -L subs`: the continuous-query suite
#                 (docs/INTERNALS.md, "Continuous queries") — the
#                 standing-query differential oracle (seeded stream vs a
#                 brute-force reference, byte-identical folded delta
#                 streams across every policy and shard count, including
#                 audit-asserted member evictions with disk-backed
#                 refill), the 500-seed delta-fold property test, and the
#                 SubscriptionManager units. Runs at the default shard
#                 count, then again at KFLUSH_TEST_SHARDS=1, then the
#                 subscription-overhead bench whose artifact carries the
#                 zero-subscription perf gate (<= 2% vs no-manager,
#                 enforced by scripts/validate_bench_json.py).
#   bench-smoke - tiny-scale bench_snapshot run; validates the BENCH_*.json
#                 metrics artifact schema with scripts/validate_bench_json.py,
#                 then a traced bench_fig5_memory_behavior run validated with
#                 scripts/validate_trace_json.py. Artifacts land in
#                 KFLUSH_BENCH_OUT (default: a temp dir) so CI can upload them.
#   net-smoke   - the network front-end over real loopback TCP
#                 (docs/INTERNALS.md, "Networking"): a tiny in-process
#                 bench_net_load run (validates BENCH_net_load.json — zero
#                 silent drops, offered == acked + skipped + nacked), then
#                 the external loop: `kflushctl serve` in the background,
#                 driven by bench_net_load --connect with a protocol
#                 Shutdown at the end; the serve process must exit 0 after
#                 verifying its own accounting.
#   ops-smoke   - the live ops surface (docs/OBSERVABILITY.md): serve in
#                 the background, readiness via `kflushctl health`, real
#                 load, then a kStatsProm scrape linted with
#                 scripts/validate_prometheus.py, `kflushctl top --once`
#                 with the stage counts cross-checked against
#                 net.ingest_acks, and a protocol shutdown that must
#                 drain and exit 0. Artifacts (scrape, top output, serve
#                 log) land in KFLUSH_BENCH_OUT.
#
# The stress harness derives all RNG streams from one base seed; on failure
# we print how to replay it. Override with KFLUSH_STRESS_SEED=<seed>.
set -u
cd "$(dirname "$0")/.."

JOBS="${KFLUSH_BUILD_JOBS:-$(nproc)}"
# Time-box per sanitizer ctest invocation (TSan runs ~5-15x slower).
STRESS_TIMEOUT="${KFLUSH_STRESS_TIMEOUT:-3600}"
FAILED=()

note() { printf '\n== %s ==\n' "$*"; }

replay_hint() {
  echo "stress harness failed: look for '[stress] base seed' above;"
  echo "replay with  KFLUSH_STRESS_SEED=<seed> ctest --test-dir $1 -L stress"
}

build() {  # build <preset>
  cmake --preset "$1" && cmake --build --preset "$1" -j "${JOBS}"
}

run_ctest() {  # run_ctest <builddir> <label: all|stress>
  local dir="$1" what="$2" rc
  if [ "${what}" = stress ]; then
    timeout "${STRESS_TIMEOUT}" ctest --test-dir "${dir}" -L stress \
        --output-on-failure
  else
    timeout "${STRESS_TIMEOUT}" ctest --test-dir "${dir}" --output-on-failure
  fi
  rc=$?
  if [ ${rc} -eq 124 ]; then
    echo "ctest in ${dir} exceeded the ${STRESS_TIMEOUT}s time box"
  fi
  return ${rc}
}

job_tier1() {
  note "tier1: plain build + full suite"
  build default && run_ctest build all || return 1
  # Shard matrix: the full suite above ran the `shards` label (routing
  # goldens, merge property tests, differential oracle) at the default
  # KFLUSH_TEST_SHARDS=4; re-run it at 1 shard so the degenerate
  # single-shard deployment stays oracle-identical too.
  note "tier1: shard matrix (KFLUSH_TEST_SHARDS=1)"
  KFLUSH_TEST_SHARDS=1 timeout "${STRESS_TIMEOUT}" \
      ctest --test-dir build -L shards --output-on-failure
}

job_tsan() {
  note "tsan: ThreadSanitizer build + full suite (incl. stress harness)"
  build tsan && run_ctest build-tsan all || { replay_hint build-tsan; return 1; }
}

job_asan() {
  note "asan: ASan+UBSan build + full suite (incl. stress harness)"
  build asan && run_ctest build-asan all || { replay_hint build-asan; return 1; }
}

job_stress() {
  note "stress: race harness only, under TSan then ASan+UBSan"
  { build tsan && run_ctest build-tsan stress; } \
      || { replay_hint build-tsan; return 1; }
  { build asan && run_ctest build-asan stress; } \
      || { replay_hint build-asan; return 1; }
}

job_crash() {
  note "crash: crash-recovery differential oracle (ctest -L crash)"
  # The oracle's kill-point matrix is seeded from a fixed base inside the
  # test (kSeedBase), so failures replay exactly with
  #   ctest --test-dir build -L crash -R <failing param>
  build default || return 1
  timeout "${STRESS_TIMEOUT}" ctest --test-dir build -L crash \
      --output-on-failure
}

job_subs() {
  note "subs: continuous-query oracle + fold property tests (ctest -L subs)"
  build default || return 1
  timeout "${STRESS_TIMEOUT}" ctest --test-dir build -L subs \
      --output-on-failure || return 1
  # Shard matrix: the oracle's fan-out merge must stay reference-identical
  # on a degenerate single-shard deployment too.
  note "subs: shard matrix (KFLUSH_TEST_SHARDS=1)"
  KFLUSH_TEST_SHARDS=1 timeout "${STRESS_TIMEOUT}" \
      ctest --test-dir build -L subs --output-on-failure || return 1
  # Subscription-overhead bench: the artifact carries the
  # bench.zero_sub_overhead_bps perf gate the validator enforces.
  note "subs: subscription-overhead bench + artifact gate"
  local out scale
  cmake --build build -j "${JOBS}" --target bench_subscriptions || return 1
  out="${KFLUSH_BENCH_OUT:-$(mktemp -d)}"
  mkdir -p "${out}"
  scale="${KFLUSH_BENCH_SCALE:-0.05}"
  KFLUSH_BENCH_SCALE="${scale}" KFLUSH_BENCH_OUT="${out}" \
      ./build/bench/bench_subscriptions || return 1
  python3 scripts/validate_bench_json.py \
      "${out}/BENCH_subscriptions.json"
}

job_bench_smoke() {
  note "bench-smoke: tiny bench runs + BENCH_*.json and trace schema checks"
  local out scale
  build default && cmake --build build -j "${JOBS}" \
      --target bench_snapshot bench_fig5_memory_behavior \
               bench_shard_scaling bench_micro || return 1
  out="${KFLUSH_BENCH_OUT:-$(mktemp -d)}"
  mkdir -p "${out}"
  scale="${KFLUSH_BENCH_SCALE:-0.05}"
  KFLUSH_BENCH_SCALE="${scale}" KFLUSH_BENCH_OUT="${out}" \
      ./build/bench/bench_snapshot || return 1
  KFLUSH_BENCH_SCALE="${scale}" KFLUSH_BENCH_OUT="${out}" \
      ./build/bench/bench_shard_scaling || return 1
  # Digestion perf gate: per-insert CPU cost vs the committed ratchet
  # baseline (bench/baselines/). Fails on >10% regression per policy.
  KFLUSH_BENCH_SCALE="${scale}" KFLUSH_BENCH_OUT="${out}" \
      ./build/bench/bench_micro --breakdown || return 1
  python3 scripts/validate_bench_json.py \
      --baseline bench/baselines/BENCH_baseline.json \
      "${out}"/BENCH_*.json || return 1
  KFLUSH_BENCH_SCALE="${scale}" KFLUSH_BENCH_OUT="${out}" \
      ./build/bench/bench_fig5_memory_behavior \
      --trace-out "${out}/trace_fig5.json" || return 1
  python3 scripts/validate_trace_json.py "${out}/trace_fig5.json"
}

job_net_smoke() {
  note "net-smoke: loopback load harness + kflushctl serve round trip"
  local out scale port rc serve_pid
  build default && cmake --build build -j "${JOBS}" \
      --target bench_net_load kflushctl || return 1
  out="${KFLUSH_BENCH_OUT:-$(mktemp -d)}"
  mkdir -p "${out}"
  scale="${KFLUSH_BENCH_SCALE:-0.05}"
  # In-process: server + sharded system in the bench binary; the run
  # itself fails on any accounting hole (silent drop, offered !=
  # acked + skipped + nacked), then the artifact schema is checked.
  KFLUSH_BENCH_SCALE="${scale}" KFLUSH_BENCH_OUT="${out}" \
      ./build/bench/bench_net_load --users 4 --seconds 1 \
      --rates 4000,12000 || return 1
  python3 scripts/validate_bench_json.py \
      "${out}/BENCH_net_load.json" || return 1
  # External: a real serve process, driven over loopback, shut down via
  # the protocol. serve exits non-zero if its accounting has a hole.
  port=$(( 20000 + RANDOM % 20000 ))
  ./build/tools/kflushctl serve --port "${port}" --shards 2 \
      --memory-mb 32 &
  serve_pid=$!
  for _ in $(seq 1 50); do
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "net-smoke: kflushctl serve died before accepting connections"
      wait "${serve_pid}"
      return 1
    fi
    (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null && break
    sleep 0.1
  done
  KFLUSH_BENCH_SCALE="${scale}" \
      ./build/bench/bench_net_load --connect "127.0.0.1:${port}" \
      --users 2 --seconds 1 --rates 4000 --shutdown
  rc=$?
  if [ ${rc} -ne 0 ]; then
    kill "${serve_pid}" 2>/dev/null
    wait "${serve_pid}" 2>/dev/null
    return 1
  fi
  wait "${serve_pid}"
  rc=$?
  if [ ${rc} -ne 0 ]; then
    echo "net-smoke: kflushctl serve exited ${rc} (accounting hole?)"
    return 1
  fi
}

job_ops_smoke() {
  note "ops-smoke: serve + kStatsProm scrape lint + kflushctl top/health"
  local out scale port rc serve_pid
  build default && cmake --build build -j "${JOBS}" \
      --target bench_net_load kflushctl || return 1
  out="${KFLUSH_BENCH_OUT:-$(mktemp -d)}"
  mkdir -p "${out}"
  scale="${KFLUSH_BENCH_SCALE:-0.05}"
  port=$(( 20000 + RANDOM % 20000 ))
  ./build/tools/kflushctl serve --port "${port}" --shards 2 \
      --memory-mb 32 --slow-request-micros 2000000 \
      > "${out}/ops_serve.log" 2>&1 &
  serve_pid=$!
  # Readiness through the protocol itself: health answers kServing.
  for _ in $(seq 1 50); do
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "ops-smoke: kflushctl serve died before serving"
      cat "${out}/ops_serve.log"
      wait "${serve_pid}"
      return 1
    fi
    ./build/tools/kflushctl health --port "${port}" >/dev/null 2>&1 && break
    sleep 0.1
  done
  ./build/tools/kflushctl health --port "${port}" || {
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  # Some real traffic so the stage histograms have samples to lint.
  KFLUSH_BENCH_SCALE="${scale}" \
      ./build/bench/bench_net_load --connect "127.0.0.1:${port}" \
      --users 2 --seconds 1 --rates 4000 || {
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  # Scrape the exposition, lint it, and check the stage histograms
  # reconcile against the ack counter end to end.
  ./build/tools/kflushctl scrape --port "${port}" \
      > "${out}/ops_scrape.prom" || {
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  python3 scripts/validate_prometheus.py "${out}/ops_scrape.prom" || {
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  ./build/tools/kflushctl top --port "${port}" --once \
      > "${out}/ops_top.txt" || {
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  grep -q '^ingest_acks ' "${out}/ops_top.txt" || {
    echo "ops-smoke: top --once missing ingest_acks"
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  acks=$(awk '/^ingest_acks /{print $2}' "${out}/ops_top.txt")
  for stage in decode admission commit respond; do
    count=$(awk -v k="stage_${stage}_count" '$1==k{print $2}' \
        "${out}/ops_top.txt")
    if [ "${count}" != "${acks}" ]; then
      echo "ops-smoke: stage_${stage}_count ${count} != ingest_acks ${acks}"
      kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
      return 1
    fi
  done
  # Protocol shutdown; serve must drain and exit 0.
  ./build/tools/kflushctl shutdown --port "${port}" || {
    kill "${serve_pid}" 2>/dev/null; wait "${serve_pid}" 2>/dev/null
    return 1
  }
  wait "${serve_pid}"
  rc=$?
  if [ ${rc} -ne 0 ]; then
    echo "ops-smoke: kflushctl serve exited ${rc}"
    cat "${out}/ops_serve.log"
    return 1
  fi
  grep -q 'draining' "${out}/ops_serve.log" || {
    echo "ops-smoke: serve log missing the draining transition"
    return 1
  }
}

run_job() { "job_${1//-/_}" || FAILED+=("$1"); }

case "${1:-all}" in
  tier1|tsan|asan|stress|crash|subs|bench-smoke|net-smoke|ops-smoke) run_job "$1" ;;
  all) run_job tier1; run_job tsan; run_job asan; run_job crash
       run_job subs; run_job bench-smoke; run_job net-smoke; run_job ops-smoke ;;
  *) echo "usage: $0 [tier1|tsan|asan|stress|crash|subs|bench-smoke|net-smoke|ops-smoke|all]" >&2
     exit 2 ;;
esac

if [ ${#FAILED[@]} -gt 0 ]; then
  note "FAILED jobs: ${FAILED[*]}"
  exit 1
fi
note "all jobs passed"
