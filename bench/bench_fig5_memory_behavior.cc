// Figure 5: memory-consumption behaviour over time.
//
// (a) With only Phase 1 (regular flushing), each flush frees less than the
//     one before and utilization saturates at ~100%.
// (b) With all three phases, every flush frees the full budget B and the
//     timeline is a stable sawtooth.
//
// Prints two series of utilization samples (fraction of budget, sampled
// every fixed number of arrivals).

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig5", "memory consumption timeline: Phase 1 only vs full policy");

  ExperimentConfig phase1_only = DefaultConfig(PolicyKind::kKFlushing);
  phase1_only.store.enable_phase2 = false;
  phase1_only.store.enable_phase3 = false;

  ExperimentConfig full = DefaultConfig(PolicyKind::kKFlushing);

  const uint64_t sample_every =
      static_cast<uint64_t>(20'000 * Scale());
  const size_t num_samples = 50;

  auto a = MemoryTimeline(phase1_only, sample_every, num_samples);
  auto b = MemoryTimeline(full, sample_every, num_samples);

  for (size_t i = 0; i < num_samples; ++i) {
    PrintRow("fig5a", "phase1_only", std::to_string(i), a[i] * 100.0);
  }
  for (size_t i = 0; i < num_samples; ++i) {
    PrintRow("fig5b", "three_phase", std::to_string(i), b[i] * 100.0);
  }

  // Summary: tail behaviour.
  double a_tail_min = 1e9, b_tail_min = 1e9;
  for (size_t i = num_samples / 2; i < num_samples; ++i) {
    a_tail_min = std::min(a_tail_min, a[i]);
    b_tail_min = std::min(b_tail_min, b[i]);
  }
  std::printf(
      "\nsummary: phase1-only tail min utilization = %.1f%% (saturated), "
      "three-phase tail min = %.1f%% (sawtooth dips after each flush)\n",
      a_tail_min * 100.0, b_tail_min * 100.0);
  return 0;
}
