// Figure 11: kFlushing extensibility — the SPATIAL attribute (equal-area
// grid tiles, ~4 mi²; §V-D). kFlushing-MK is omitted as in the paper
// (spatial AND queries are semantically invalid, so MK == kFlushing).
//   (a) number of k-filled spatial tiles vs memory budget,
//   (b) hit ratio vs memory budget, uniform and correlated loads.

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

namespace {

ExperimentConfig SpatialConfig(PolicyKind policy, WorkloadKind load,
                               int mem_mb) {
  ExperimentConfig config = DefaultConfig(policy);
  config.store.attribute = AttributeKind::kSpatial;
  config.workload.attribute = AttributeKind::kSpatial;
  config.workload.kind = load;
  config.store.memory_budget_bytes =
      static_cast<size_t>(mem_mb * Scale() * (1 << 20));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig11a", "k-filled spatial tiles vs memory budget");
  for (int mem_mb : {8, 16, 32, 48}) {
    for (PolicyKind policy : NoMkPolicies()) {
      ExperimentConfig config =
          SpatialConfig(policy, WorkloadKind::kCorrelated, mem_mb);
      config.num_queries /= 2;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig11a", PolicyKindName(policy),
               std::to_string(mem_mb) + "MB",
               static_cast<double>(result.k_filled_terms));
    }
  }

  PrintHeader("fig11b", "spatial hit ratio vs memory budget");
  for (WorkloadKind load :
       {WorkloadKind::kUniform, WorkloadKind::kCorrelated}) {
    for (int mem_mb : {8, 16, 32, 48}) {
      for (PolicyKind policy : NoMkPolicies()) {
        ExperimentConfig config = SpatialConfig(policy, load, mem_mb);
        ExperimentResult result = RunExperiment(config);
        PrintRow("fig11b",
                 std::string(PolicyKindName(policy)) + ":" +
                     WorkloadKindName(load),
                 std::to_string(mem_mb) + "MB",
                 result.query_metrics.HitRatio() * 100.0);
      }
    }
  }
  return 0;
}
