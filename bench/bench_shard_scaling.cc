// Shard-scaling benchmark: ingest throughput and fan-out query throughput
// of ShardedMicroblogSystem at 1 / 2 / 4 / 8 shards over the identical
// pre-generated stream. Each configuration gets the same total memory
// budget (split across shards), so adding shards buys parallel digestion
// and parallel flush cycles, not more memory.
//
// Two throughput views per shard count:
//
//   * ingest_tweets_per_sec — wall-clock, bounded by the cores actually
//     available. On a single-core host every digestion thread timeshares
//     one CPU, so this curve is flat regardless of how well the work
//     partitions (check the bench.hw_concurrency gauge in the artifact).
//   * cp_tweets_per_sec — work-span critical path: tweets divided by the
//     busiest shard's busy time (its digestion micros + flush-cycle
//     micros). This is the throughput a host with >= N cores realizes,
//     and ingest_scalability (its ratio vs 1 shard) is the
//     hardware-independent scaling curve; >= 2x at 4 shards means the
//     partitioning is sound.
//
// Rows:
//   [shard_scaling] ingest_tweets_per_sec  <shards>  <wall-clock value>
//   [shard_scaling] ingest_speedup         <shards>  <wall vs 1 shard>
//   [shard_scaling] cp_tweets_per_sec      <shards>  <critical-path value>
//   [shard_scaling] ingest_scalability     <shards>  <cp vs 1 shard>
//   [shard_scaling] query_per_sec          <shards>  <fan-out queries/sec>
//   [shard_scaling] routed_copies          <shards>  <per-shard copies>
//
// The BENCH_shard_scaling.json artifact carries one aggregated registry
// snapshot per shard count (keys "shards1", "shards2", ...), each with
// bench.ingest_tweets_per_sec / bench.cp_tweets_per_sec /
// bench.num_shards / bench.hw_concurrency gauges for the validator and
// for cross-run comparison.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/metrics_registry.h"
#include "core/sharded_system.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"

namespace kflush {
namespace {

struct ScalingResult {
  size_t shards = 0;
  double ingest_tweets_per_sec = 0.0;
  double cp_tweets_per_sec = 0.0;
  double query_per_sec = 0.0;
  uint64_t routed_copies = 0;
  MetricsSnapshot snapshot;
};

// A shard's busy time is what its dedicated core would spend: digesting
// routed batches plus running its flush cycles. The critical path of the
// parallel ingest is the busiest shard. Uses the CPU-time histograms
// (ThreadCpuMicros), not the wall-time ones: when N digestion threads
// timeshare fewer than N cores, wall time per batch inflates with the
// scheduler's preemption, while CPU time stays a property of the work.
uint64_t ShardBusyMicros(const MetricsSnapshot& snap) {
  uint64_t busy = 0;
  auto it = snap.histograms.find("system.digest_cpu_micros_per_batch");
  if (it != snap.histograms.end()) busy += it->second.sum();
  it = snap.histograms.find("flush.cycle_cpu_micros");
  if (it != snap.histograms.end()) busy += it->second.sum();
  return busy;
}

ScalingResult RunOne(size_t shards,
                     const std::vector<std::vector<Microblog>>& batches,
                     const TweetGeneratorOptions& stream,
                     uint64_t num_queries) {
  ShardedSystemOptions options;
  // Flush-active regime: the stream is ~2x the budget, so every shard
  // runs flush cycles concurrently with digestion (the deployment the
  // paper targets), not a fits-in-memory toy.
  options.system.store.memory_budget_bytes =
      static_cast<size_t>(32.0 * bench::Scale() * (1 << 20));
  options.system.store.k = 20;
  options.system.store.policy = PolicyKind::kKFlushing;
  options.num_shards = shards;
  ShardedMicroblogSystem system(options);
  system.Start();

  // --- Ingest phase: four producers push pre-generated batches through
  // the routing layer (the batches are copied per run so every shard
  // count digests the identical stream). ---
  const auto ingest_start = std::chrono::steady_clock::now();
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t b = static_cast<size_t>(p); b < batches.size();
           b += kProducers) {
        std::vector<Microblog> copy = batches[b];
        if (!system.Submit(std::move(copy))) return;
      }
    });
  }
  for (auto& t : producers) t.join();
  // Wait until every routed copy is digested (Stop drains, but we want
  // the timing to cover digestion, not just enqueueing).
  while (system.digested() < system.routed_copies()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto ingest_end = std::chrono::steady_clock::now();

  uint64_t tweets = 0;
  for (const auto& batch : batches) tweets += batch.size();
  const double ingest_secs =
      std::chrono::duration<double>(ingest_end - ingest_start).count();

  // --- Query phase: correlated keyword fan-out against the live system.---
  QueryWorkloadOptions workload;
  workload.seed = 4242;
  workload.kind = WorkloadKind::kCorrelated;
  QueryGenerator queries(workload, stream);
  const auto query_start = std::chrono::steady_clock::now();
  for (uint64_t q = 0; q < num_queries; ++q) {
    auto result = system.Query(queries.Next());
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
    }
  }
  const auto query_end = std::chrono::steady_clock::now();
  const double query_secs =
      std::chrono::duration<double>(query_end - query_start).count();

  system.Stop();

  std::vector<MetricsSnapshot> parts;
  parts.reserve(shards);
  uint64_t critical_path_micros = 0;
  for (size_t i = 0; i < shards; ++i) {
    parts.push_back(system.shard_store(i)->metrics_registry()->Snapshot());
    critical_path_micros =
        std::max(critical_path_micros, ShardBusyMicros(parts.back()));
  }

  ScalingResult r;
  r.shards = shards;
  r.ingest_tweets_per_sec =
      ingest_secs > 0.0 ? static_cast<double>(tweets) / ingest_secs : 0.0;
  r.cp_tweets_per_sec =
      critical_path_micros > 0
          ? static_cast<double>(tweets) * 1e6 /
                static_cast<double>(critical_path_micros)
          : 0.0;
  r.query_per_sec =
      query_secs > 0.0 ? static_cast<double>(num_queries) / query_secs : 0.0;
  r.routed_copies = system.routed_copies();

  r.snapshot = AggregateSnapshots(parts);
  r.snapshot.gauges["bench.num_shards"] = static_cast<int64_t>(shards);
  r.snapshot.gauges["bench.hw_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  r.snapshot.gauges["bench.ingest_tweets_per_sec"] =
      static_cast<int64_t>(r.ingest_tweets_per_sec);
  r.snapshot.gauges["bench.cp_tweets_per_sec"] =
      static_cast<int64_t>(r.cp_tweets_per_sec);
  r.snapshot.gauges["bench.query_per_sec"] =
      static_cast<int64_t>(r.query_per_sec);
  r.snapshot.gauges["bench.routed_copies"] =
      static_cast<int64_t>(r.routed_copies);
  return r;
}

}  // namespace
}  // namespace kflush

int main(int argc, char** argv) {
  using namespace kflush;
  auto trace = bench::TraceSessionFromArgs(argc, argv);
  bench::PrintHeader("shard_scaling",
                     "ingest/query throughput vs shard count (same total "
                     "budget, identical stream)");
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores > 0 && cores < 4) {
    std::fprintf(stderr,
                 "note: %u core(s) available; wall-clock speedup is "
                 "core-bound, read ingest_scalability (work-span critical "
                 "path) for the partitioning curve\n",
                 cores);
  }

  // Pre-generate the stream once; every shard count replays it.
  TweetGeneratorOptions stream;
  stream.seed = 20160516;
  stream.vocabulary_size =
      static_cast<uint64_t>(200'000 * bench::Scale());
  stream.num_users = static_cast<uint64_t>(100'000 * bench::Scale());
  stream.keyword_zipf_s = 1.2;
  const uint64_t total_tweets =
      static_cast<uint64_t>(240'000 * bench::Scale());
  const uint64_t num_queries =
      static_cast<uint64_t>(4'000 * bench::Scale());
  constexpr size_t kBatchSize = 500;

  TweetGenerator gen(stream);
  std::vector<std::vector<Microblog>> batches;
  for (uint64_t done = 0; done < total_tweets; done += kBatchSize) {
    batches.emplace_back();
    gen.FillBatch(kBatchSize, &batches.back());
  }

  std::vector<std::pair<std::string, MetricsSnapshot>> artifacts;
  double wall_baseline = 0.0;
  double cp_baseline = 0.0;
  for (size_t shards : {1, 2, 4, 8}) {
    ScalingResult r = RunOne(shards, batches, stream, num_queries);
    if (shards == 1) {
      wall_baseline = r.ingest_tweets_per_sec;
      cp_baseline = r.cp_tweets_per_sec;
    }
    const std::string x = std::to_string(shards);
    bench::PrintRow("shard_scaling", "ingest_tweets_per_sec", x,
                    r.ingest_tweets_per_sec);
    bench::PrintRow("shard_scaling", "ingest_speedup", x,
                    wall_baseline > 0.0
                        ? r.ingest_tweets_per_sec / wall_baseline
                        : 0.0);
    bench::PrintRow("shard_scaling", "cp_tweets_per_sec", x,
                    r.cp_tweets_per_sec);
    bench::PrintRow("shard_scaling", "ingest_scalability", x,
                    cp_baseline > 0.0 ? r.cp_tweets_per_sec / cp_baseline
                                      : 0.0);
    bench::PrintRow("shard_scaling", "query_per_sec", x, r.query_per_sec);
    bench::PrintRow("shard_scaling", "routed_copies", x,
                    static_cast<double>(r.routed_copies));
    artifacts.emplace_back("shards" + x, std::move(r.snapshot));
  }
  bench::WriteBenchJson("shard_scaling", artifacts);
  return 0;
}
