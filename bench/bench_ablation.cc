// Ablation studies for the design choices DESIGN.md calls out (not paper
// figures, but they quantify why each piece exists):
//   1. Phase contribution: Phase 1 only vs Phases 1+2 vs full 1+2+3 —
//      hit ratio and flush-cycle behaviour.
//   2. Victim ordering in Phase 3: the paper argues for least-recently-
//      QUERIED ordering from query temporal locality; we compare the full
//      policy on the correlated load (where recency matters) vs the
//      uniform load (where it cannot).
//   3. Ranking function: temporal vs popularity-weighted (scores computed
//      on arrival, §IV-B) — the policy is ranking-agnostic.

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("ablation-phases", "hit ratio and flushed bytes by enabled phases");
  struct PhaseSetup {
    const char* name;
    bool phase2;
    bool phase3;
  };
  for (const PhaseSetup& setup :
       {PhaseSetup{"phase1_only", false, false},
        PhaseSetup{"phases_1_2", true, false},
        PhaseSetup{"phases_1_2_3", true, true}}) {
    ExperimentConfig config = DefaultConfig(PolicyKind::kKFlushing);
    config.store.enable_phase2 = setup.phase2;
    config.store.enable_phase3 = setup.phase3;
    // Run long enough for Phase 1 to saturate (Figure 5(a)); the phase
    // mix only differs once the easy useless data is gone.
    config.steady_state_flushes = 25;
    ExperimentResult result = RunExperiment(config);
    PrintRow("ablation-phases", setup.name, "hit%",
             result.query_metrics.HitRatio() * 100.0);
    PrintRow("ablation-phases", setup.name, "flush_cycles",
             static_cast<double>(result.policy_stats.flush_cycles));
    PrintRow("ablation-phases", setup.name, "mem_util%",
             100.0 * static_cast<double>(result.data_bytes_used) /
                 static_cast<double>(config.store.memory_budget_bytes));
    PrintRow("ablation-phases", setup.name, "p1_postings",
             static_cast<double>(result.policy_stats.phases[0].postings));
    PrintRow("ablation-phases", setup.name, "p2_postings",
             static_cast<double>(result.policy_stats.phases[1].postings));
    PrintRow("ablation-phases", setup.name, "p3_postings",
             static_cast<double>(result.policy_stats.phases[2].postings));
  }

  PrintHeader("ablation-ranking", "temporal vs popularity ranking");
  for (RankingKind ranking :
       {RankingKind::kTemporal, RankingKind::kPopularity}) {
    for (PolicyKind policy :
         {PolicyKind::kFifo, PolicyKind::kKFlushing}) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.ranking = ranking;
      ExperimentResult result = RunExperiment(config);
      PrintRow("ablation-ranking",
               std::string(PolicyKindName(policy)) + ":" +
                   RankingKindName(ranking),
               "hit%", result.query_metrics.HitRatio() * 100.0);
      PrintRow("ablation-ranking",
               std::string(PolicyKindName(policy)) + ":" +
                   RankingKindName(ranking),
               "k_filled", static_cast<double>(result.k_filled_terms));
    }
  }

  PrintHeader("ablation-phase3-order",
              "Phase 3 victim ordering: least-recently-QUERIED (paper) vs "
              "least-recently-arrived, in the all-k-filled regime Phase 3 "
              "exists for");
  // Phase 3 is the last resort: it fires only once every keyword holds
  // exactly k (steady streams keep Phases 1-2 sufficient; Phase 3 matters
  // under topic churn). Build that regime directly: V keywords at exactly
  // k, a hot subset queried, then a forced flush — and measure how many
  // hot keywords survive under each ordering.
  for (bool by_query_time : {true, false}) {
    StoreOptions sopts;
    sopts.memory_budget_bytes = 64 << 20;  // never auto-fills
    sopts.k = 20;
    sopts.policy = PolicyKind::kKFlushing;
    sopts.phase3_by_query_time = by_query_time;
    sopts.auto_flush = false;
    SimClock clock(1'000);
    sopts.clock = &clock;
    MicroblogStore store(sopts);
    QueryEngine engine(&store);

    const uint64_t kVocab =
        static_cast<uint64_t>(4'000 * Scale() < 400 ? 400 : 4'000 * Scale());
    // Fill every keyword to exactly k, round-robin so arrival times
    // interleave across keywords.
    for (uint32_t round = 0; round < sopts.k; ++round) {
      for (uint64_t kw = 0; kw < kVocab; ++kw) {
        Microblog blog;
        blog.created_at = clock.Advance(1);
        blog.keywords = {static_cast<KeywordId>(kw)};
        blog.text = "phase3 ablation filler text for realistic size";
        (void)store.Insert(std::move(blog));
      }
    }
    // Query the hot 20%.
    const uint64_t hot = kVocab / 5;
    Rng rng(5);
    for (int q = 0; q < 20'000; ++q) {
      clock.Advance(1);
      TopKQuery query;
      query.terms = {rng.Uniform(hot)};
      query.type = QueryType::kSingle;
      (void)engine.Execute(query);
    }
    // Force one flush of 40% of contents: Phases 1-2 find nothing,
    // Phase 3 must evict roughly 40% of the (all exactly-k) entries.
    store.policy()->Flush(store.tracker().DataUsed() * 2 / 5);
    size_t hot_survivors = 0;
    for (uint64_t kw = 0; kw < hot; ++kw) {
      if (store.policy()->EntrySize(kw) >= sopts.k) ++hot_survivors;
    }
    const PolicyStats stats = store.policy()->stats();
    PrintRow("ablation-phase3-order",
             by_query_time ? "last_queried" : "last_arrived",
             "hot_survive%",
             100.0 * static_cast<double>(hot_survivors) /
                 static_cast<double>(hot));
    PrintRow("ablation-phase3-order",
             by_query_time ? "last_queried" : "last_arrived", "p3_postings",
             static_cast<double>(stats.phases[2].postings));
  }

  PrintHeader("ablation-B", "flush-cycle count vs flushing budget B");
  for (int budget_pct : {2, 5, 10, 20, 40}) {
    ExperimentConfig config = DefaultConfig(PolicyKind::kKFlushing);
    config.store.flush_fraction = budget_pct / 100.0;
    // Fixed stream volume (not a fixed trigger count) so the cycle count
    // reflects B: tiny budgets flush constantly (§II-C's rationale for a
    // minimum B), large ones rarely but brutally.
    config.steady_state_flushes = ~uint64_t{0};
    config.max_stream_tweets =
        static_cast<uint64_t>(500'000 * Scale());
    ExperimentResult result = RunExperiment(config);
    // The problem formulation's rationale (§II-C): a tiny B means flushing
    // runs constantly; a big B evicts useful data.
    PrintRow("ablation-B", "flush_cycles",
             "B=" + std::to_string(budget_pct) + "%",
             static_cast<double>(result.policy_stats.flush_cycles));
    PrintRow("ablation-B", "hit%", "B=" + std::to_string(budget_pct) + "%",
             result.query_metrics.HitRatio() * 100.0);
  }
  return 0;
}
