// Subscription-overhead benchmark: what do standing queries cost the
// ingest path? The digestion hot loop gained an OnInsert publish hook
// (sub/subscription_manager.h); this bench measures the same seeded
// stream inserted into the same sharded deployment at four points:
//
//   nomanager — no SubscriptionManager attached at all (the PR-9 path)
//   subs0     — manager attached, zero standing queries (hook overhead:
//               one atomic load per insert, nothing else)
//   subs100   — 100 standing keyword queries over the hot vocabulary
//   subs10000 — 10,000 standing queries (stress fan-out in the hook)
//
// Each point is the fastest of five full runs, with the repeats
// round-robined across the points (rather than all repeats of one point
// back to back) so slow host-frequency drift lands on every point
// equally. The zero-subscription overhead vs the no-manager baseline —
// the perf-gate input for "an idle subscription subsystem is free"
// (budget: <= 2% = 200 bps, enforced by scripts/validate_bench_json.py)
// — is a *paired* estimator exported as bench.zero_sub_overhead_bps:
// the median over repeats of the per-repeat nomanager/subs0 throughput
// ratio, because the two runs of a pair execute back to back (drift
// cancels) and the median sheds jitter spikes a best-of comparison is
// still exposed to.
//
// Rows:
//   [subscriptions] ingest_tweets_per_sec  <point>  <best-of-5>
//   [subscriptions] overhead_pct           <point>  <vs nomanager>
//   [subscriptions] deltas_published       <point>  <manager counter>
//   [subscriptions] zero_sub_overhead_bps  subs0    <paired median>
//
// The BENCH_subscriptions.json artifact carries one aggregated snapshot
// per point, with the manager's sub.* families merged in (the validator
// re-checks sub.deltas_published == sub.deltas_pushed +
// sub.deltas_dropped_on_disconnect per point) plus the bench.* gauges.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/metrics_registry.h"
#include "core/sharded_store.h"
#include "gen/tweet_generator.h"
#include "sub/subscription_manager.h"

namespace kflush {
namespace {

constexpr size_t kShards = 2;
constexpr uint32_t kSubK = 10;
constexpr int kRepeats = 5;

struct PointResult {
  double ingest_tweets_per_sec = 0.0;
  uint64_t deltas_published = 0;
  MetricsSnapshot snapshot;
};

/// One full run: fresh deployment, optional manager with `num_subs`
/// standing keyword queries, insert the whole stream, then run the mixed
/// query workload the validator's per-type latency rule expects.
/// `num_subs` < 0 means no manager at all.
PointResult RunOne(int num_subs, const std::vector<Microblog>& stream,
                   uint64_t vocabulary_size) {
  ShardedStoreOptions options;
  // Flush-active: the stream overshoots the budget, so eviction hooks
  // (OnRecordEvicted -> refill scheduling) are part of what is measured.
  options.store.memory_budget_bytes =
      static_cast<size_t>(8.0 * bench::Scale() * (1 << 20));
  options.store.k = 20;
  options.store.policy = PolicyKind::kKFlushing;
  options.num_shards = kShards;
  ShardedMicroblogStore store(options);

  std::unique_ptr<SubscriptionManager> subs;
  std::vector<uint64_t> sub_ids;
  if (num_subs >= 0) {
    subs = MakeSubscriptions(&store);
    sub_ids.reserve(static_cast<size_t>(num_subs));
    for (int i = 0; i < num_subs; ++i) {
      SubscriptionSpec spec;
      spec.kind = SubKind::kKeyword;
      spec.k = kSubK;
      spec.term = static_cast<TermId>(
          static_cast<uint64_t>(i) % (vocabulary_size > 0 ? vocabulary_size
                                                          : 1));
      auto id = subs->Subscribe(spec);
      if (id.ok()) sub_ids.push_back(*id);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  for (const Microblog& blog : stream) {
    Status s = store.Insert(blog);
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      break;
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  // Query phase (outside the timed window): one batch per query type so
  // the aggregated snapshot carries every per-type latency family.
  for (uint64_t q = 0; q < 200; ++q) {
    const TermId a = static_cast<TermId>(q % vocabulary_size);
    const TermId b = static_cast<TermId>((q + 7) % vocabulary_size);
    store.engine()->Execute({{a}, QueryType::kSingle, 10});
    store.engine()->Execute({{a, b}, QueryType::kAnd, 10});
    store.engine()->Execute({{a, b}, QueryType::kOr, 10});
  }

  PointResult r;
  r.ingest_tweets_per_sec =
      secs > 0.0 ? static_cast<double>(stream.size()) / secs : 0.0;
  r.snapshot = store.AggregatedMetrics();
  if (subs != nullptr) {
    // Drained shutdown: consume every outbox so the accounting the
    // validator re-checks partitions into pushed (drained) only.
    subs->ProcessPendingRefills();
    std::vector<SubDelta> deltas;
    for (uint64_t id : sub_ids) {
      deltas.clear();
      subs->DrainDeltas(id, &deltas);
    }
    subs->Shutdown();
    const MetricsSnapshot sub_snap = subs->metrics_registry()->Snapshot();
    for (const auto& [name, value] : sub_snap.counters) {
      r.snapshot.counters[name] = value;
    }
    for (const auto& [name, value] : sub_snap.gauges) {
      r.snapshot.gauges[name] = value;
    }
    r.deltas_published = sub_snap.counters.count("sub.deltas_published") > 0
                             ? sub_snap.counters.at("sub.deltas_published")
                             : 0;
  }
  return r;
}

}  // namespace
}  // namespace kflush

int main(int argc, char** argv) {
  using namespace kflush;
  auto trace = bench::TraceSessionFromArgs(argc, argv);
  bench::PrintHeader("subscriptions",
                     "ingest throughput vs standing-query count "
                     "(best-of-5, round-robin; overhead vs no-manager "
                     "baseline)");

  TweetGeneratorOptions stream_options;
  stream_options.seed = 20160516;
  stream_options.vocabulary_size =
      static_cast<uint64_t>(20'000 * bench::Scale());
  if (stream_options.vocabulary_size == 0) stream_options.vocabulary_size = 1;
  stream_options.num_users = static_cast<uint64_t>(10'000 * bench::Scale());
  if (stream_options.num_users == 0) stream_options.num_users = 1;
  stream_options.keyword_zipf_s = 1.2;
  uint64_t total_tweets = static_cast<uint64_t>(60'000 * bench::Scale());
  // Floor the stream length: the zero-subscription gate compares two
  // timed regions against each other, and below ~20k tweets (a few ms
  // of work at CI scale) the comparison swings past the 2% budget on
  // scheduler jitter alone.
  if (total_tweets < 20'000) total_tweets = 20'000;

  TweetGenerator gen(stream_options);
  std::vector<Microblog> stream;
  gen.FillBatch(total_tweets, &stream);

  struct Point {
    const char* key;
    int num_subs;  // -1: no manager attached
  };
  const Point points[] = {
      {"nomanager", -1}, {"subs0", 0}, {"subs100", 100}, {"subs10000", 10000}};

  // One untimed warm-up run so the first measured point does not pay the
  // allocator / page-cache cold start alone (the overhead gate compares
  // the first two points against each other).
  RunOne(-1, stream, stream_options.vocabulary_size);

  // Round-robin the repeats across the points so host-frequency drift
  // over the measurement window biases every point alike; a sequential
  // per-point layout was seen swinging the nomanager/subs0 comparison by
  // +-8% on a shared host.
  constexpr size_t kNumPoints = sizeof(points) / sizeof(points[0]);
  PointResult bests[kNumPoints];
  std::vector<double> rep_tps[kNumPoints];
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (size_t i = 0; i < kNumPoints; ++i) {
      PointResult r =
          RunOne(points[i].num_subs, stream, stream_options.vocabulary_size);
      rep_tps[i].push_back(r.ingest_tweets_per_sec);
      if (r.ingest_tweets_per_sec > bests[i].ingest_tweets_per_sec) {
        bests[i] = std::move(r);
      }
    }
  }

  // The zero-subscription perf gate uses a paired estimator, not the
  // best-of numbers above: within each repeat the nomanager and subs0
  // runs execute back to back, so their per-repeat ratio cancels slow
  // host-frequency drift, and the median over repeats sheds the jitter
  // spikes that routinely swing a single comparison by +-3% on a shared
  // host — more than the whole 2% budget.
  std::vector<double> paired_ratios;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const double base = rep_tps[0][static_cast<size_t>(rep)];
    const double subs0 = rep_tps[1][static_cast<size_t>(rep)];
    if (base > 0.0 && subs0 > 0.0) paired_ratios.push_back(base / subs0);
  }
  std::sort(paired_ratios.begin(), paired_ratios.end());
  const double median_ratio =
      paired_ratios.empty() ? 1.0 : paired_ratios[paired_ratios.size() / 2];
  const int64_t zero_sub_overhead_bps =
      median_ratio > 1.0
          ? static_cast<int64_t>((median_ratio - 1.0) * 10'000.0)
          : 0;

  std::vector<std::pair<std::string, MetricsSnapshot>> artifacts;
  double baseline_tps = 0.0;
  for (size_t i = 0; i < kNumPoints; ++i) {
    const Point& point = points[i];
    PointResult& best = bests[i];
    if (point.num_subs < 0) baseline_tps = best.ingest_tweets_per_sec;
    const double overhead_pct =
        baseline_tps > 0.0 && best.ingest_tweets_per_sec > 0.0
            ? (baseline_tps / best.ingest_tweets_per_sec - 1.0) * 100.0
            : 0.0;
    bench::PrintRow("subscriptions", "ingest_tweets_per_sec", point.key,
                    best.ingest_tweets_per_sec);
    bench::PrintRow("subscriptions", "overhead_pct", point.key, overhead_pct);
    bench::PrintRow("subscriptions", "deltas_published", point.key,
                    static_cast<double>(best.deltas_published));

    best.snapshot.gauges["bench.num_subscriptions"] =
        point.num_subs < 0 ? -1 : point.num_subs;
    best.snapshot.gauges["bench.ingest_tweets_per_sec"] =
        static_cast<int64_t>(best.ingest_tweets_per_sec);
    best.snapshot.gauges["bench.baseline_tweets_per_sec"] =
        static_cast<int64_t>(baseline_tps);
    // Basis points so the integer gauge keeps enough resolution for the
    // 2% (200 bps) budget; negative (faster than baseline) clamps to 0.
    const int64_t overhead_bps =
        overhead_pct > 0.0 ? static_cast<int64_t>(overhead_pct * 100.0) : 0;
    best.snapshot.gauges["bench.overhead_bps"] = overhead_bps;
    if (point.num_subs == 0) {
      best.snapshot.gauges["bench.zero_sub_overhead_bps"] =
          zero_sub_overhead_bps;
      bench::PrintRow("subscriptions", "zero_sub_overhead_bps", point.key,
                      static_cast<double>(zero_sub_overhead_bps));
    }
    artifacts.emplace_back(point.key, std::move(best.snapshot));
  }
  bench::WriteBenchJson("subscriptions", artifacts);
  return 0;
}
