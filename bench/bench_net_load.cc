// Network load harness: an open-loop load generator over the TCP
// front-end (src/net). N simulated users pipeline ingest batches and
// top-k queries at a configured total arrival rate — sends happen on the
// arrival schedule, never gated on responses, so the measured latencies
// are free of coordinated omission (each request's latency is clocked
// from its *scheduled* send time to its response).
//
// The harness is also the zero-silent-drop audit: every record carries a
// unique marker keyword bucket, every response is an explicit ack or
// NACK, and at the end each bucket is queried back through the same
// protocol. The run FAILS (exit 1) unless
//
//   offered == acked + skipped + nacked         (protocol accounting)
//   queried-back == acked                       (no admitted record lost)
//
// Rows per arrival-rate point:
//   [net_load] offered_per_sec   <rate>  ...
//   [net_load] acked_per_sec     <rate>  ...
//   [net_load] nack_pct          <rate>  ...
//   [net_load] ingest_p50_micros / _p99 / _p999
//   [net_load] query_p50_micros  / _p99 / _p999
//   [net_load] silent_drops      <rate>  0.0000
//
// BENCH_net_load.json carries, per rate point ("rate<R>"), the aggregated
// shard registry snapshot merged with the server's net.* registry (ack
// counters and the per-stage net.ingest_ack_micros.* histograms), plus
// bench.* gauges (offered/acked/nacked/silent_drops/acked_per_sec/...)
// and the client-side net.ingest_latency_micros /
// net.query_latency_micros histograms. Each stage histogram's count must
// equal net.ingest_acks exactly — the run FAILS otherwise.
// scripts/validate_bench_json.py --bench net_load checks all of it.
//
// Default: in-process server on an ephemeral loopback port (real TCP,
// real epoll loop). --connect HOST:PORT drives an external `kflushctl
// serve` instead (rows + drop audit only; no JSON artifact, since shard
// registries live in the server process).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/metrics_registry.h"
#include "core/sharded_system.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "util/histogram.h"

namespace kflush {
namespace {

using Clock = std::chrono::steady_clock;

// Marker keywords live far above any generator-assigned KeywordId
// (KeywordId is 32-bit; the base + every bucket still fits).
constexpr KeywordId kMarkerBase = 1'000'000'000;
constexpr size_t kBuckets = 64;

struct LoadOptions {
  size_t users = 8;
  size_t batch = 64;
  double seconds = 2.0;
  size_t shards = 4;
  size_t queue_capacity = 128;
  std::vector<double> rates;  // total records/sec per point
  std::string connect_host;   // empty = in-process server
  uint16_t connect_port = 0;
  bool shutdown_after = false;  // --connect mode: protocol shutdown at end
};

struct Pending {
  bool is_query = false;
  uint64_t records = 0;
  size_t bucket = 0;
  uint64_t sched_micros = 0;  // scheduled send time, relative to start
};

struct UserResult {
  uint64_t offered = 0;
  uint64_t acked = 0;
  uint64_t skipped = 0;
  uint64_t nacked = 0;
  uint64_t nacks_overloaded = 0;
  uint64_t nacks_other = 0;
  uint64_t queries_sent = 0;
  uint64_t queries_ok = 0;
  std::vector<uint64_t> bucket_acked = std::vector<uint64_t>(kBuckets, 0);
  Histogram ingest_latency;
  Histogram query_latency;
  bool transport_error = false;
};

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// One simulated user: a sender thread streaming framed requests on the
/// arrival schedule and a reader thread draining responses. Every 8th
/// request is a top-k query against an already-used marker bucket.
void RunUser(const std::string& host, uint16_t port, const LoadOptions& load,
             size_t user, size_t point, Clock::time_point start,
             UserResult* result) {
  auto client = net::NetClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "user %zu: %s\n", user,
                 client.status().ToString().c_str());
    result->transport_error = true;
    return;
  }
  net::NetClient* c = client->get();

  // Per-user send interval so the fleet's total ingest rate is
  // load.rates[point] records/sec.
  const double per_user_rate = load.rates[point] / load.users;
  const double interval_secs = load.batch / per_user_rate;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(interval_secs));
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(load.seconds));

  std::mutex mu;
  std::unordered_map<uint64_t, Pending> pending;
  std::atomic<uint64_t> sent_total{0};
  std::atomic<bool> sender_done{false};

  std::thread reader([&] {
    uint64_t received = 0;
    while (true) {
      if (sender_done.load(std::memory_order_acquire) &&
          received >= sent_total.load(std::memory_order_acquire)) {
        break;
      }
      auto reply = c->RecvMessage();
      if (!reply.ok()) {
        // EOF with everything answered is a clean close; anything else
        // is a transport failure the accounting check will surface.
        if (!(sender_done.load(std::memory_order_acquire) &&
              received >= sent_total.load(std::memory_order_acquire))) {
          result->transport_error = true;
        }
        break;
      }
      ++received;
      Pending p;
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = pending.find(reply->request_id);
        if (it == pending.end()) continue;  // unmatched; counted as lost
        p = it->second;
        pending.erase(it);
      }
      const uint64_t latency =
          MicrosSince(start) > p.sched_micros
              ? MicrosSince(start) - p.sched_micros
              : 0;
      if (p.is_query) {
        result->query_latency.Record(latency);
        if (reply->type == net::MsgType::kQueryResult) ++result->queries_ok;
      } else {
        result->ingest_latency.Record(latency);
        if (reply->type == net::MsgType::kIngestAck) {
          result->acked += reply->admitted;
          result->skipped += reply->skipped;
          result->bucket_acked[p.bucket] += reply->admitted;
        } else if (reply->type == net::MsgType::kNack) {
          result->nacked += p.records;
          if (reply->reason == net::NackReason::kOverloaded) {
            ++result->nacks_overloaded;
          } else {
            ++result->nacks_other;
          }
        }
      }
    }
  });

  uint64_t seq = 0;
  for (;; ++seq) {
    const auto sched = start + interval * seq;
    if (sched >= deadline) break;
    std::this_thread::sleep_until(sched);
    const uint64_t sched_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(sched - start)
            .count());
    const size_t bucket = (user + seq) % kBuckets;
    const KeywordId term = static_cast<KeywordId>(
        kMarkerBase + point * kBuckets + bucket);
    std::string wire;
    const uint64_t id = c->NextRequestId();
    Pending p;
    p.sched_micros = sched_micros;
    p.bucket = bucket;
    if (seq % 8 == 7) {
      p.is_query = true;
      TopKQuery query;
      query.terms = {term};
      query.k = 10;
      net::EncodeQuery(id, query, &wire);
      ++result->queries_sent;
    } else {
      std::vector<Microblog> blogs(load.batch);
      for (size_t i = 0; i < blogs.size(); ++i) {
        blogs[i].user_id = static_cast<UserId>(user);
        blogs[i].keywords = {term};
        blogs[i].text = "net-load";
      }
      p.records = blogs.size();
      result->offered += blogs.size();
      net::EncodeIngest(id, blogs, &wire);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      pending[id] = p;
    }
    sent_total.fetch_add(1, std::memory_order_release);
    if (!c->SendRaw(wire).ok()) {
      result->transport_error = true;
      break;
    }
  }
  sender_done.store(true, std::memory_order_release);
  // The reader may be blocked in read() with every response already
  // consumed; one final ping unblocks it and is itself consumed.
  {
    std::string wire;
    net::EncodeEmpty(net::MsgType::kPing, c->NextRequestId(), &wire);
    sent_total.fetch_add(1, std::memory_order_release);
    c->SendRaw(wire);
  }
  reader.join();
}

struct PointResult {
  double rate = 0.0;
  double wall_secs = 0.0;
  uint64_t offered = 0, acked = 0, skipped = 0, nacked = 0;
  uint64_t nacks_overloaded = 0, nacks_other = 0;
  uint64_t queries_sent = 0, queries_ok = 0;
  uint64_t queried_back = 0;
  int64_t silent_drops = 0;
  bool transport_error = false;
  Histogram ingest_latency;
  Histogram query_latency;
  MetricsSnapshot snapshot;  // in-process mode only
  bool have_snapshot = false;
};

/// Queries every marker bucket back through the protocol until the
/// returned total stops short of `expect` no longer (the server may still
/// be digesting tail batches), then returns the final count.
uint64_t QueryBack(net::NetClient* c, size_t point,
                   const std::vector<uint64_t>& bucket_acked,
                   uint64_t expect) {
  uint64_t total = 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    total = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      if (bucket_acked[b] == 0) continue;
      TopKQuery query;
      query.terms = {kMarkerBase + point * kBuckets + b};
      query.k = static_cast<uint32_t>(bucket_acked[b] + 16);
      auto result = c->Query(query);
      if (!result.ok()) {
        std::fprintf(stderr, "query-back failed: %s\n",
                     result.status().ToString().c_str());
        return total;
      }
      total += result->results.size();
    }
    if (total >= expect) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return total;
}

PointResult RunPoint(const std::string& host, uint16_t port,
                     const LoadOptions& load, size_t point) {
  PointResult r;
  r.rate = load.rates[point];
  std::vector<UserResult> users(load.users);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (size_t u = 0; u < load.users; ++u) {
    threads.emplace_back(RunUser, host, port, std::cref(load), u, point,
                         start, &users[u]);
  }
  for (auto& t : threads) t.join();
  r.wall_secs = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<uint64_t> bucket_acked(kBuckets, 0);
  for (const UserResult& u : users) {
    r.offered += u.offered;
    r.acked += u.acked;
    r.skipped += u.skipped;
    r.nacked += u.nacked;
    r.nacks_overloaded += u.nacks_overloaded;
    r.nacks_other += u.nacks_other;
    r.queries_sent += u.queries_sent;
    r.queries_ok += u.queries_ok;
    r.transport_error |= u.transport_error;
    r.ingest_latency.Merge(u.ingest_latency);
    r.query_latency.Merge(u.query_latency);
    for (size_t b = 0; b < kBuckets; ++b) bucket_acked[b] += u.bucket_acked[b];
  }

  auto control = net::NetClient::Connect(host, port);
  if (control.ok()) {
    r.queried_back = QueryBack(control->get(), point, bucket_acked, r.acked);
  } else {
    std::fprintf(stderr, "control connect failed: %s\n",
                 control.status().ToString().c_str());
    r.transport_error = true;
  }
  r.silent_drops = static_cast<int64_t>(r.acked) -
                   static_cast<int64_t>(r.queried_back);
  return r;
}

const char* const kStages[] = {"decode", "admission", "commit", "respond"};

void PrintPoint(const PointResult& r) {
  const std::string x = std::to_string(static_cast<long>(r.rate));
  const double secs = r.wall_secs > 0 ? r.wall_secs : 1.0;
  bench::PrintRow("net_load", "offered_per_sec", x, r.offered / secs);
  bench::PrintRow("net_load", "acked_per_sec", x, r.acked / secs);
  bench::PrintRow("net_load", "nack_pct", x,
                  r.offered > 0 ? 100.0 * r.nacked / r.offered : 0.0);
  bench::PrintRow("net_load", "ingest_p50_micros", x,
                  static_cast<double>(r.ingest_latency.Percentile(50)));
  bench::PrintRow("net_load", "ingest_p99_micros", x,
                  static_cast<double>(r.ingest_latency.Percentile(99)));
  bench::PrintRow("net_load", "ingest_p999_micros", x,
                  static_cast<double>(r.ingest_latency.Percentile(99.9)));
  bench::PrintRow("net_load", "query_p50_micros", x,
                  static_cast<double>(r.query_latency.Percentile(50)));
  bench::PrintRow("net_load", "query_p99_micros", x,
                  static_cast<double>(r.query_latency.Percentile(99)));
  bench::PrintRow("net_load", "query_p999_micros", x,
                  static_cast<double>(r.query_latency.Percentile(99.9)));
  bench::PrintRow("net_load", "silent_drops", x,
                  static_cast<double>(r.silent_drops));
  // Server-side ack-latency decomposition (in-process mode only): where
  // the acked ingest time went, per stage.
  if (r.have_snapshot) {
    for (const char* stage : kStages) {
      auto it = r.snapshot.histograms.find(
          std::string("net.ingest_ack_micros.") + stage);
      if (it == r.snapshot.histograms.end()) continue;
      bench::PrintRow("net_load", std::string("stage_") + stage +
                                      "_p50_micros",
                      x, static_cast<double>(it->second.Percentile(50)));
      bench::PrintRow("net_load", std::string("stage_") + stage +
                                      "_p99_micros",
                      x, static_cast<double>(it->second.Percentile(99)));
    }
  }
}

/// Audits one point; returns false (and explains) on any accounting hole.
bool CheckPoint(const PointResult& r) {
  bool ok = true;
  if (r.transport_error) {
    std::fprintf(stderr, "FAIL rate=%ld: transport error during run\n",
                 static_cast<long>(r.rate));
    ok = false;
  }
  if (r.offered != r.acked + r.skipped + r.nacked) {
    std::fprintf(stderr,
                 "FAIL rate=%ld: offered %llu != acked %llu + skipped %llu "
                 "+ nacked %llu (records unaccounted for)\n",
                 static_cast<long>(r.rate),
                 static_cast<unsigned long long>(r.offered),
                 static_cast<unsigned long long>(r.acked),
                 static_cast<unsigned long long>(r.skipped),
                 static_cast<unsigned long long>(r.nacked));
    ok = false;
  }
  if (r.silent_drops != 0) {
    std::fprintf(stderr,
                 "FAIL rate=%ld: %lld acked records not queryable back "
                 "(silent drop!)\n",
                 static_cast<long>(r.rate),
                 static_cast<long long>(r.silent_drops));
    ok = false;
  }
  // Stage-histogram reconciliation: every acked ingest request must have
  // landed exactly one sample in each of the four stage histograms.
  if (r.have_snapshot) {
    const uint64_t acks = r.snapshot.counter_or("net.ingest_acks");
    for (const char* stage : kStages) {
      auto it = r.snapshot.histograms.find(
          std::string("net.ingest_ack_micros.") + stage);
      const uint64_t samples =
          it == r.snapshot.histograms.end() ? 0 : it->second.count();
      if (samples != acks) {
        std::fprintf(stderr,
                     "FAIL rate=%ld: stage %s has %llu samples but "
                     "net.ingest_acks is %llu (stage histograms must "
                     "reconcile exactly)\n",
                     static_cast<long>(r.rate), stage,
                     static_cast<unsigned long long>(samples),
                     static_cast<unsigned long long>(acks));
        ok = false;
      }
    }
  }
  return ok;
}

LoadOptions ParseArgs(int argc, char** argv) {
  LoadOptions load;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (std::strncmp(argv[i], flag, n) != 0) return nullptr;
      if (argv[i][n] == '=') return argv[i] + n + 1;
      if (argv[i][n] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--users")) {
      load.users = static_cast<size_t>(std::atol(v));
    } else if (const char* v = value("--batch")) {
      load.batch = static_cast<size_t>(std::atol(v));
    } else if (const char* v = value("--seconds")) {
      load.seconds = std::atof(v);
    } else if (const char* v = value("--shards")) {
      load.shards = static_cast<size_t>(std::atol(v));
    } else if (const char* v = value("--queue-capacity")) {
      load.queue_capacity = static_cast<size_t>(std::atol(v));
    } else if (const char* v = value("--rates")) {
      load.rates.clear();
      std::string list = v;
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        load.rates.push_back(std::atof(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      load.shutdown_after = true;
    } else if (const char* v = value("--connect")) {
      std::string hp = v;
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants HOST:PORT\n");
        std::exit(2);
      }
      load.connect_host = hp.substr(0, colon);
      load.connect_port =
          static_cast<uint16_t>(std::atoi(hp.c_str() + colon + 1));
    }
  }
  if (load.users == 0 || load.batch == 0 || load.rates.size() > 16) {
    std::fprintf(stderr, "bad load options\n");
    std::exit(2);
  }
  if (load.rates.empty()) {
    // Default sweep: below and past the single-digest-thread knee at
    // smoke scale.
    load.rates = {20'000 * bench::Scale(), 80'000 * bench::Scale()};
  }
  return load;
}

}  // namespace
}  // namespace kflush

int main(int argc, char** argv) {
  using namespace kflush;
  auto trace = bench::TraceSessionFromArgs(argc, argv);
  LoadOptions load = ParseArgs(argc, argv);
  bench::PrintHeader(
      "net_load",
      "open-loop TCP load: " + std::to_string(load.users) + " users x " +
          std::to_string(load.rates.size()) + " rate points, batch " +
          std::to_string(load.batch));

  const bool external = !load.connect_host.empty();
  std::vector<std::pair<std::string, MetricsSnapshot>> artifacts;
  bool ok = true;

  for (size_t point = 0; point < load.rates.size(); ++point) {
    PointResult r;
    if (external) {
      r = RunPoint(load.connect_host, load.connect_port, load, point);
    } else {
      // Fresh system + server per rate point: each point's registry
      // snapshot and drop audit cover exactly its own load.
      ShardedSystemOptions options;
      options.num_shards = load.shards;
      options.system.ingest_queue_capacity = load.queue_capacity;
      options.system.store.memory_budget_bytes =
          static_cast<size_t>(32.0 * bench::Scale() * (1 << 20));
      options.system.store.k = 20;
      options.system.store.policy = PolicyKind::kKFlushing;
      ShardedMicroblogSystem system(options);
      system.Start();
      net::ServerOptions server_options;
      server_options.admission_queue_soft_limit = load.queue_capacity;
      net::NetServer server(&system, server_options);
      Status s = server.Start();
      if (!s.ok()) {
        std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
        return 1;
      }
      r = RunPoint("127.0.0.1", server.port(), load, point);
      server.Stop();
      system.Stop();
      std::vector<MetricsSnapshot> parts;
      for (size_t i = 0; i < load.shards; ++i) {
        parts.push_back(system.shard_store(i)->metrics_registry()->Snapshot());
      }
      r.snapshot = AggregateSnapshots(parts);
      // Merge the server's own net.* families (stage histograms included)
      // after both Stop()s: the registry is quiesced, so the stage counts
      // reconcile exactly against net.ingest_acks.
      MetricsSnapshot net_snap = server.metrics_registry()->Snapshot();
      for (auto& [name, value] : net_snap.counters) {
        r.snapshot.counters[name] = value;
      }
      for (auto& [name, value] : net_snap.gauges) {
        r.snapshot.gauges[name] = value;
      }
      for (auto& [name, hist] : net_snap.histograms) {
        r.snapshot.histograms[name] = std::move(hist);
      }
      r.have_snapshot = true;
    }
    PrintPoint(r);
    ok &= CheckPoint(r);
    if (r.have_snapshot) {
      const double secs = r.wall_secs > 0 ? r.wall_secs : 1.0;
      r.snapshot.gauges["bench.rate_target"] =
          static_cast<int64_t>(r.rate);
      r.snapshot.gauges["bench.users"] = static_cast<int64_t>(load.users);
      r.snapshot.gauges["bench.batch"] = static_cast<int64_t>(load.batch);
      r.snapshot.gauges["bench.offered"] = static_cast<int64_t>(r.offered);
      r.snapshot.gauges["bench.acked"] = static_cast<int64_t>(r.acked);
      r.snapshot.gauges["bench.skipped"] = static_cast<int64_t>(r.skipped);
      r.snapshot.gauges["bench.nacked"] = static_cast<int64_t>(r.nacked);
      r.snapshot.gauges["bench.nacks_overloaded"] =
          static_cast<int64_t>(r.nacks_overloaded);
      r.snapshot.gauges["bench.queries_sent"] =
          static_cast<int64_t>(r.queries_sent);
      r.snapshot.gauges["bench.queries_ok"] =
          static_cast<int64_t>(r.queries_ok);
      r.snapshot.gauges["bench.queried_back"] =
          static_cast<int64_t>(r.queried_back);
      r.snapshot.gauges["bench.silent_drops"] = r.silent_drops;
      r.snapshot.gauges["bench.offered_per_sec"] =
          static_cast<int64_t>(r.offered / secs);
      r.snapshot.gauges["bench.acked_per_sec"] =
          static_cast<int64_t>(r.acked / secs);
      r.snapshot.histograms["net.ingest_latency_micros"] = r.ingest_latency;
      r.snapshot.histograms["net.query_latency_micros"] = r.query_latency;
      artifacts.emplace_back(
          "rate" + std::to_string(static_cast<long>(r.rate)),
          std::move(r.snapshot));
    }
  }

  if (!external) bench::WriteBenchJson("net_load", artifacts);
  if (external && load.shutdown_after) {
    auto control =
        net::NetClient::Connect(load.connect_host, load.connect_port);
    if (!control.ok() || !control->get()->Shutdown().ok()) {
      std::fprintf(stderr, "shutdown request failed\n");
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "net_load: accounting FAILED\n");
    return 1;
  }
  std::printf("net_load: accounting clean (every offered record acked, "
              "skipped, or nacked; every ack queryable)\n");
  return 0;
}
