// Figure 7: number of k-filled keywords (keywords holding at least k
// in-memory microblogs — a query on them is a memory hit) in steady state,
// for all four policies:
//   (a) varying k,
//   (b) varying the flushing budget B (% of memory),
//   (c) varying the memory budget.
//
// Paper shape: kFlushing variations accumulate a multiple of FIFO's and
// LRU's k-filled keywords, with the largest gap at tight memory budgets;
// kFlushing-MK tracks slightly below kFlushing.

#include <algorithm>

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig7a", "k-filled keywords vs k");
  for (uint32_t k : {5, 10, 20, 40, 80}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.k = k;
      config.num_queries /= 2;  // k-filled is a structural metric
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig7a", PolicyKindName(policy), "k=" + std::to_string(k),
               static_cast<double>(result.k_filled_terms));
    }
  }

  PrintHeader("fig7b", "k-filled keywords vs flushing budget (% of memory)");
  for (int budget_pct : {20, 40, 60, 80, 100}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.flush_fraction = budget_pct / 100.0;
      config.num_queries /= 2;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig7b", PolicyKindName(policy),
               "B=" + std::to_string(budget_pct) + "%",
               static_cast<double>(result.k_filled_terms));
    }
  }

  PrintHeader("fig7c", "k-filled keywords vs memory budget");
  for (int mem_mb : {8, 16, 32, 48}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.memory_budget_bytes = static_cast<size_t>(
          mem_mb * Scale() * (1 << 20));
      config.num_queries /= 2;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig7c", PolicyKindName(policy),
               std::to_string(mem_mb) + "MB",
               static_cast<double>(result.k_filled_terms));
    }
  }
  return 0;
}
