// Figure 10: flushing overhead vs k.
//   (a) Policy bookkeeping memory: LRU's per-item global list is the most
//       expensive, kFlushing variations keep per-entry (not per-item)
//       metadata plus a temporary flush buffer, FIFO needs almost nothing
//       (its segments double as flush units).
//   (b) Digestion rate under stress: unbounded ingest with a concurrent
//       background flusher and query threads. FIFO digests fastest,
//       kFlushing slightly below (insertion bookkeeping), kFlushing-MK
//       below that, and LRU collapses due to global-list contention.

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "core/system.h"

using namespace kflush;
using namespace kflush::bench;

namespace {

/// Streams as fast as possible for `seconds` of wall time with two query
/// threads running; returns digested tweets per second.
double MeasureDigestionRate(PolicyKind policy, uint32_t k, double seconds) {
  SystemOptions opts;
  opts.store = DefaultConfig(policy).store;
  opts.store.k = k;
  opts.ingest_queue_capacity = 64;
  MicroblogSystem system(opts);
  system.Start();

  std::atomic<bool> stop{false};

  // Query threads: keep the access path hot (this is what serializes LRU).
  TweetGeneratorOptions stream = DefaultConfig(policy).stream;
  std::vector<std::thread> query_threads;
  for (int t = 0; t < 4; ++t) {
    query_threads.emplace_back([&system, &stop, stream, t] {
      QueryWorkloadOptions wopts;
      wopts.seed = 9000 + static_cast<uint64_t>(t);
      QueryGenerator queries(wopts, stream);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = system.Query(queries.Next());
        (void)result;
      }
    });
  }

  // Producer: generate batches as fast as the queue accepts them.
  std::thread producer([&system, &stop, stream] {
    TweetGenerator gen(stream);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<Microblog> batch;
      gen.FillBatch(512, &batch);
      if (!system.Submit(std::move(batch))) break;
    }
  });

  Stopwatch watch;
  while (watch.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const uint64_t digested_before_stop = system.digested();
  const double elapsed = watch.ElapsedSeconds();
  stop.store(true);
  producer.join();
  for (auto& t : query_threads) t.join();
  system.Stop();
  return static_cast<double>(digested_before_stop) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig10a", "policy bookkeeping memory (MB) vs k");
  for (uint32_t k : {5, 20, 80}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.k = k;
      config.num_queries /= 2;
      ExperimentResult result = RunExperiment(config);
      const double overhead_mb =
          static_cast<double>(result.aux_memory_bytes +
                              result.peak_flush_buffer_bytes) /
          (1 << 20);
      PrintRow("fig10a", PolicyKindName(policy), "k=" + std::to_string(k),
               overhead_mb);
      PrintRow("fig10a", std::string(PolicyKindName(policy)) + ":flushbuf",
               "k=" + std::to_string(k),
               static_cast<double>(result.peak_flush_buffer_bytes) /
                   (1 << 20));
    }
  }

  PrintHeader("fig10b",
              "digestion rate (K tweets/sec) under concurrent flush+query");
  const double seconds = 3.0 * Scale() < 0.5 ? 0.5 : 3.0 * Scale();
  for (uint32_t k : {5, 20, 80}) {
    for (PolicyKind policy : AllPolicies()) {
      const double rate = MeasureDigestionRate(policy, k, seconds);
      PrintRow("fig10b", PolicyKindName(policy), "k=" + std::to_string(k),
               rate / 1000.0);
    }
  }
  return 0;
}
