// Figure 1 / §V-A: snapshot analysis of in-memory contents.
//
// Reproduces the paper's motivating measurement: under temporal (FIFO)
// flushing, a large share of memory holds "useless" beyond-top-k postings
// (the paper measured >75% on real tweets at k=20), while under kFlushing
// the useless share collapses and several times more keywords are k-filled.

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig1", "in-memory snapshot: useless postings and k-filled keywords");
  std::printf("%-14s %10s %12s %12s %10s %12s\n", "policy", "entries",
              "postings", "useless", "useless%", "k_filled");
  std::vector<std::pair<std::string, MetricsSnapshot>> per_policy;
  for (PolicyKind policy : AllPolicies()) {
    ExperimentConfig config = DefaultConfig(policy);
    config.num_queries = config.num_queries / 4;  // snapshot needs few queries
    ExperimentResult result = RunExperiment(config);
    const FrequencySnapshot& f = result.frequency;
    std::printf("%-14s %10zu %12zu %12zu %9.1f%% %12zu\n",
                PolicyKindName(policy), f.num_entries, f.total_postings,
                f.useless_postings, f.useless_fraction * 100.0,
                f.k_filled_entries);
    PrintRow("fig1", std::string(PolicyKindName(policy)) + ":useless_pct",
             "k=20", f.useless_fraction * 100.0);
    PrintRow("fig1", std::string(PolicyKindName(policy)) + ":k_filled",
             "k=20", static_cast<double>(f.k_filled_entries));
    per_policy.emplace_back(PolicyKindName(policy), result.metrics);
  }
  // Machine-readable companion: the full registry snapshot per policy
  // (per-phase flush counters, per-query-type latency percentiles, ...).
  WriteBenchJson("snapshot", per_policy);
  std::printf(
      "\npaper's claim: FIFO-style temporal flushing leaves most postings\n"
      "beyond top-k (75%% at k=20 on real tweets); kFlushing trims them.\n");
  return 0;
}
