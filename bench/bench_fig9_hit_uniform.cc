// Figure 9: memory hit ratio on the UNIFORM query workload (every term in
// the vocabulary equally likely — the worst-case / quality-of-service
// workload), for all four policies, varying k / flushing budget / memory.
//
// Paper shape: absolute hit ratios are uniformly low (most of the
// vocabulary can never be k-filled), but kFlushing variations deliver a
// large *relative* improvement over FIFO and LRU (paper: 26-330%).

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  const uint64_t uniform_queries =
      static_cast<uint64_t>(40'000 * Scale());  // low rates need resolution

  PrintHeader("fig9a", "hit ratio (uniform load) vs k");
  for (uint32_t k : {5, 10, 20, 40, 80}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.workload.kind = WorkloadKind::kUniform;
      config.store.k = k;
      config.num_queries = uniform_queries;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig9a", PolicyKindName(policy), "k=" + std::to_string(k),
               result.query_metrics.HitRatio() * 100.0);
    }
  }

  PrintHeader("fig9b", "hit ratio (uniform load) vs flushing budget");
  for (int budget_pct : {20, 40, 60, 80, 100}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.workload.kind = WorkloadKind::kUniform;
      config.store.flush_fraction = budget_pct / 100.0;
      config.num_queries = uniform_queries;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig9b", PolicyKindName(policy),
               "B=" + std::to_string(budget_pct) + "%",
               result.query_metrics.HitRatio() * 100.0);
    }
  }

  PrintHeader("fig9c", "hit ratio (uniform load) vs memory budget");
  for (int mem_mb : {8, 16, 32, 48}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.workload.kind = WorkloadKind::kUniform;
      config.store.memory_budget_bytes = static_cast<size_t>(
          mem_mb * Scale() * (1 << 20));
      config.num_queries = uniform_queries;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig9c", PolicyKindName(policy),
               std::to_string(mem_mb) + "MB",
               result.query_metrics.HitRatio() * 100.0);
    }
  }
  return 0;
}
