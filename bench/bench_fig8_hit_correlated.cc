// Figure 8: memory hit ratio on the CORRELATED query workload (a term's
// query probability equals its occurrence probability in the stream), for
// all four policies:
//   (a) varying k, (b) varying the flushing budget, (c) varying memory.
//
// Paper shape: kFlushing variations consistently above LRU and FIFO;
// kFlushing-MK above plain kFlushing (the AND-query lift, §IV-D); hit
// ratio falls with k and with flushing budget, rises with memory.

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

namespace {

void PrintResult(const char* fig, PolicyKind policy, const std::string& x,
                 const ExperimentResult& result) {
  const auto& m = result.query_metrics;
  PrintRow(fig, PolicyKindName(policy), x, m.HitRatio() * 100.0);
  PrintRow(fig, std::string(PolicyKindName(policy)) + ":single", x,
           m.HitRatioFor(QueryType::kSingle) * 100.0);
  PrintRow(fig, std::string(PolicyKindName(policy)) + ":and", x,
           m.HitRatioFor(QueryType::kAnd) * 100.0);
  PrintRow(fig, std::string(PolicyKindName(policy)) + ":or", x,
           m.HitRatioFor(QueryType::kOr) * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig8a", "hit ratio (correlated load) vs k");
  for (uint32_t k : {5, 10, 20, 40, 80}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.k = k;
      PrintResult("fig8a", policy, "k=" + std::to_string(k),
                  RunExperiment(config));
    }
  }

  PrintHeader("fig8b", "hit ratio (correlated load) vs flushing budget");
  for (int budget_pct : {20, 40, 60, 80, 100}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.flush_fraction = budget_pct / 100.0;
      PrintResult("fig8b", policy, "B=" + std::to_string(budget_pct) + "%",
                  RunExperiment(config));
    }
  }

  PrintHeader("fig8c", "hit ratio (correlated load) vs memory budget");
  for (int mem_mb : {8, 16, 32, 48}) {
    for (PolicyKind policy : AllPolicies()) {
      ExperimentConfig config = DefaultConfig(policy);
      config.store.memory_budget_bytes = static_cast<size_t>(
          mem_mb * Scale() * (1 << 20));
      PrintResult("fig8c", policy, std::to_string(mem_mb) + "MB",
                  RunExperiment(config));
    }
  }
  return 0;
}
