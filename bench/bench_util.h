// Shared helpers for the figure-reproduction benchmarks: default
// experiment configurations (the paper's defaults, scaled to laptop-sized
// budgets — see DESIGN.md) and paper-style series printing.
//
// Every bench binary prints rows of the form
//   [figure] <series>  <x>  <value>
// so the paper's plots can be regenerated directly from stdout.
//
// Set KFLUSH_BENCH_SCALE (e.g. 0.25) to shrink budgets/query counts for a
// quick smoke run.

#ifndef KFLUSH_BENCH_BENCH_UTIL_H_
#define KFLUSH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/trace.h"
#include "sim/experiment.h"

namespace kflush {
namespace bench {

/// Global scale factor from KFLUSH_BENCH_SCALE (default 1.0).
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("KFLUSH_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

/// The paper's default setup, scaled: k=20, B=10%, memory budget 32 MB
/// (stands in for the paper's 30 GB; vocabulary and user population scale
/// with it so the budget:working-set ratio is preserved).
inline ExperimentConfig DefaultConfig(PolicyKind policy) {
  ExperimentConfig config;
  config.store.policy = policy;
  config.store.memory_budget_bytes =
      static_cast<size_t>(32.0 * Scale() * (1 << 20));
  config.store.flush_fraction = 0.10;
  config.store.k = 20;
  config.stream.seed = 20160516;  // ICDE'16 ;-)
  config.stream.vocabulary_size =
      static_cast<uint64_t>(200'000 * Scale());
  config.stream.num_users = static_cast<uint64_t>(100'000 * Scale());
  // Hashtag rank-frequency skew: empirical fits for Twitter hashtags land
  // around 1.1-1.3; 1.2 reproduces the paper's measured ~75% useless
  // memory under temporal flushing at k=20.
  config.stream.keyword_zipf_s = 1.2;
  config.workload.seed = 4242;
  config.workload.kind = WorkloadKind::kCorrelated;
  // Enough flush cycles that Phase 1's easy pickings are exhausted and
  // Phases 2/3 participate — the genuine steady state ("after filling the
  // memory budget and multiple data flushes", §V).
  config.steady_state_flushes = 8;
  config.num_queries = static_cast<uint64_t>(20'000 * Scale());
  return config;
}

/// Parses --trace-out FILE (or --trace-out=FILE) from a bench binary's
/// argv and returns a ScopedTraceFile: keep it alive for the duration of
/// main so the whole run is recorded and dumped on exit. Without the flag
/// (or with no args at all) the session is an inert no-op.
inline ScopedTraceFile TraceSessionFromArgs(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      path = argv[i] + 12;
    }
  }
  return ScopedTraceFile(path);
}

/// All four policies in presentation order.
inline std::vector<PolicyKind> AllPolicies() {
  return {PolicyKind::kFifo, PolicyKind::kKFlushing,
          PolicyKind::kKFlushingMK, PolicyKind::kLru};
}

/// Three policies (spatial/user experiments omit kFlushing-MK; §V-D).
inline std::vector<PolicyKind> NoMkPolicies() {
  return {PolicyKind::kFifo, PolicyKind::kKFlushing, PolicyKind::kLru};
}

/// Prints one figure row: "[fig] series x value".
inline void PrintRow(const std::string& figure, const std::string& series,
                     const std::string& x, double value) {
  std::printf("[%s] %-24s %-12s %.4f\n", figure.c_str(), series.c_str(),
              x.c_str(), value);
  std::fflush(stdout);
}

inline void PrintHeader(const std::string& figure,
                        const std::string& description) {
  std::printf("=== %s: %s ===\n", figure.c_str(), description.c_str());
  std::fflush(stdout);
}

/// Writes one machine-readable benchmark artifact, BENCH_<name>.json:
///   {"bench": <name>, "scale": <s>, "policies": {<policy>: <registry
///    snapshot JSON>, ...}}
/// into the directory named by KFLUSH_BENCH_OUT (default: the working
/// directory). CI's bench-smoke job validates the schema with
/// scripts/validate_bench_json.py. Returns the path written, or "" on
/// failure.
inline std::string WriteBenchJson(
    const std::string& name,
    const std::vector<std::pair<std::string, MetricsSnapshot>>& per_policy) {
  std::string dir = ".";
  if (const char* env = std::getenv("KFLUSH_BENCH_OUT")) {
    if (env[0] != '\0') dir = env;
  }
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ostringstream os;
  os << "{\"bench\":\"" << name << "\",\"scale\":" << Scale()
     << ",\"policies\":{";
  bool first = true;
  for (const auto& [policy, snapshot] : per_policy) {
    if (!first) os << ',';
    first = false;
    os << '"' << policy << "\":" << snapshot.ToJson();
  }
  os << "}}";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return "";
  }
  out << os.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
  return path;
}

}  // namespace bench
}  // namespace kflush

#endif  // KFLUSH_BENCH_BENCH_UTIL_H_
