// Figure 12: kFlushing extensibility — the USER attribute (user-timeline
// search; single-key queries only, as in practice; §V-D).
//   (a) number of k-filled user ids vs memory budget,
//   (b) hit ratio vs memory budget, uniform and correlated loads.
//
// Paper note: the correlated-load improvement is larger here than for
// keywords — highly active users produce an even more skewed useless-data
// distribution.

#include "bench_util.h"

using namespace kflush;
using namespace kflush::bench;

namespace {

ExperimentConfig UserConfig(PolicyKind policy, WorkloadKind load,
                            int mem_mb) {
  ExperimentConfig config = DefaultConfig(policy);
  config.store.attribute = AttributeKind::kUser;
  config.workload.attribute = AttributeKind::kUser;
  config.workload.kind = load;
  config.store.memory_budget_bytes =
      static_cast<size_t>(mem_mb * Scale() * (1 << 20));
  // User activity is the skew driver here; keep the paper's user count
  // scaled with memory.
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  auto trace_session = kflush::bench::TraceSessionFromArgs(argc, argv);
  PrintHeader("fig12a", "k-filled user ids vs memory budget");
  for (int mem_mb : {8, 16, 32, 48}) {
    for (PolicyKind policy : NoMkPolicies()) {
      ExperimentConfig config =
          UserConfig(policy, WorkloadKind::kCorrelated, mem_mb);
      config.num_queries /= 2;
      ExperimentResult result = RunExperiment(config);
      PrintRow("fig12a", PolicyKindName(policy),
               std::to_string(mem_mb) + "MB",
               static_cast<double>(result.k_filled_terms));
    }
  }

  PrintHeader("fig12b", "user-timeline hit ratio vs memory budget");
  for (WorkloadKind load :
       {WorkloadKind::kUniform, WorkloadKind::kCorrelated}) {
    for (int mem_mb : {8, 16, 32, 48}) {
      for (PolicyKind policy : NoMkPolicies()) {
        ExperimentConfig config = UserConfig(policy, load, mem_mb);
        ExperimentResult result = RunExperiment(config);
        PrintRow("fig12b",
                 std::string(PolicyKindName(policy)) + ":" +
                     WorkloadKindName(load),
                 std::to_string(mem_mb) + "MB",
                 result.query_metrics.HitRatio() * 100.0);
      }
    }
  }
  return 0;
}
