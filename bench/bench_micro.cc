// Component micro-benchmarks (google-benchmark): the hot paths behind the
// system-level numbers — posting-list insertion, index insert/query, the
// Phase 2 single-pass victim selection, record (de)serialization, and the
// end-to-end store insert path per policy.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "core/store.h"
#include "core/trace.h"
#include "gen/tweet_generator.h"
#include "index/inverted_index.h"
#include "storage/serde.h"
#include "util/clock.h"
#include "util/zipf.h"

namespace kflush {
namespace {

void BM_PostingListHeadInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PostingList list;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      list.Insert(static_cast<MicroblogId>(i), static_cast<double>(i));
    }
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PostingListHeadInsert);

void BM_PostingListTrim(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      list.Insert(static_cast<MicroblogId>(i), static_cast<double>(i));
    }
    std::vector<Posting> trimmed;
    state.ResumeTiming();
    list.TrimBeyondK(20, nullptr, &trimmed);
    benchmark::DoNotOptimize(trimmed.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PostingListTrim)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InvertedIndexInsert(benchmark::State& state) {
  InvertedIndex index;
  Rng rng(1);
  ZipfGenerator zipf(100000, 1.1);
  MicroblogId id = 0;
  for (auto _ : state) {
    ++id;
    index.Insert(zipf.Sample(&rng), id, static_cast<double>(id), id, 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedIndexInsert);

void BM_InvertedIndexQuery(benchmark::State& state) {
  InvertedIndex index;
  Rng rng(2);
  ZipfGenerator zipf(10000, 1.1);
  for (MicroblogId id = 0; id < 200000; ++id) {
    index.Insert(zipf.Sample(&rng), id, static_cast<double>(id), id, 0);
  }
  std::vector<MicroblogId> out;
  for (auto _ : state) {
    out.clear();
    index.Query(zipf.Sample(&rng), 20, 1, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedIndexQuery);

void BM_SerdeRoundTrip(benchmark::State& state) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  Microblog blog = gen.Next();
  blog.id = 1;
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    EncodeMicroblog(blog, &buf);
    Microblog decoded;
    size_t consumed = 0;
    benchmark::DoNotOptimize(
        DecodeMicroblog(buf.data(), buf.size(), &decoded, &consumed).ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_SerdeRoundTrip);

void BM_StoreInsert(benchmark::State& state) {
  const PolicyKind policy = static_cast<PolicyKind>(state.range(0));
  StoreOptions opts;
  opts.policy = policy;
  opts.memory_budget_bytes = 64 << 20;
  opts.k = 20;
  MicroblogStore store(opts);
  TweetGeneratorOptions gopts;
  gopts.vocabulary_size = 100000;
  TweetGenerator gen(gopts);
  for (auto _ : state) {
    Status s = store.Insert(gen.Next());
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(PolicyKindName(policy));
}
BENCHMARK(BM_StoreInsert)
    ->Arg(static_cast<int>(PolicyKind::kFifo))
    ->Arg(static_cast<int>(PolicyKind::kLru))
    ->Arg(static_cast<int>(PolicyKind::kKFlushing))
    ->Arg(static_cast<int>(PolicyKind::kKFlushingMK));

void BM_TweetGeneration(benchmark::State& state) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next().id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TweetGeneration);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(3);
  ZipfGenerator zipf(1000000, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

// --- Trace-recorder overhead: the disabled cases bound what compiled-in
// instrumentation costs every un-traced run (should be one relaxed load
// and a branch); the enabled case prices an actual ring emit.

void BM_TraceInstantDisabled(benchmark::State& state) {
  Tracer::Global()->Stop();
  uint64_t x = 0;
  for (auto _ : state) {
    KFLUSH_TRACE_INSTANT("bench", "noop", TraceArg::Uint("x", ++x));
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstantDisabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  Tracer::Global()->Stop();
  for (auto _ : state) {
    TraceSpan span("bench", "noop");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceInstantEnabled(benchmark::State& state) {
  Tracer::Global()->Start();
  uint64_t x = 0;
  for (auto _ : state) {
    KFLUSH_TRACE_INSTANT("bench", "emit", TraceArg::Uint("x", ++x),
                         TraceArg::Str("kind", "bench"));
  }
  benchmark::DoNotOptimize(x);
  Tracer::Global()->Stop();
  Tracer::Global()->Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstantEnabled);

// ---------------------------------------------------------------------------
// --breakdown mode: per-insert digestion cost, phase by phase.
//
// Runs outside google-benchmark: a real-path gate loop (store.Insert over
// pre-generated tweets, min CPU/insert across repetitions — the number the
// perf gate in scripts/validate_bench_json.py ratchets against) plus an
// instrumented loop that drives the same pipeline component by component to
// attribute the cost to tokenize / route / store / index / account phases.
// Emits BENCH_insert_breakdown.json (WriteBenchJson schema; validated by
// CI's bench-smoke job).
// ---------------------------------------------------------------------------

struct InsertBreakdown {
  uint64_t tokenize_ns = 0;  // attribute term extraction
  uint64_t route_ns = 0;     // id/timestamp stamping + ranking score
  uint64_t store_ns = 0;     // raw-store put (arena-backed blob encode)
  uint64_t index_ns = 0;     // policy insert into the inverted index
  uint64_t account_ns = 0;   // budget check + any inline flush it triggers
};

std::vector<Microblog> GenerateTweets(size_t n) {
  TweetGeneratorOptions gopts;
  gopts.vocabulary_size = 100000;
  TweetGenerator gen(gopts);
  std::vector<Microblog> tweets;
  tweets.reserve(n);
  for (size_t i = 0; i < n; ++i) tweets.push_back(gen.Next());
  return tweets;
}

StoreOptions BreakdownStoreOptions(PolicyKind policy) {
  StoreOptions opts;
  opts.policy = policy;
  opts.memory_budget_bytes = 64 << 20;
  opts.k = 20;
  return opts;
}

/// Real-path cost: CPU ns per store.Insert, minimum over `reps` runs (the
/// min is the stable estimator for thread CPU time under host noise).
uint64_t GateCpuNsPerInsert(PolicyKind policy,
                            const std::vector<Microblog>& tweets, int reps) {
  uint64_t best = ~uint64_t{0};
  for (int rep = 0; rep < reps; ++rep) {
    MicroblogStore store(BreakdownStoreOptions(policy));
    std::vector<Microblog> batch = tweets;  // consumed by move below
    const uint64_t begin = ThreadCpuNanos();
    for (Microblog& tweet : batch) {
      Status s = store.Insert(std::move(tweet));
      benchmark::DoNotOptimize(s.ok());
    }
    const uint64_t per_insert = (ThreadCpuNanos() - begin) / tweets.size();
    best = std::min(best, per_insert);
  }
  return best;
}

/// Phase attribution: drives the store's own components through the same
/// sequence MicroblogStore::Insert runs, a thread-CPU clock read between
/// phases. The clock reads add overhead the real path does not pay, so the
/// phase sum runs above the gate number; shares are what matter here.
InsertBreakdown BreakdownPhases(PolicyKind policy,
                                const std::vector<Microblog>& tweets,
                                MetricsSnapshot* store_metrics) {
  MicroblogStore store(BreakdownStoreOptions(policy));
  InsertBreakdown total;
  std::vector<TermId> terms;
  MicroblogId next_id = 1;
  for (const Microblog& tweet : tweets) {
    Microblog blog = tweet;
    const uint64_t t0 = ThreadCpuNanos();
    terms.clear();
    store.extractor()->ExtractTerms(blog, &terms);
    const uint64_t t1 = ThreadCpuNanos();
    blog.id = next_id++;
    blog.created_at = store.clock()->NowMicros();
    const double score = store.ranking()->Score(blog);
    const uint64_t t2 = ThreadCpuNanos();
    if (terms.empty()) continue;
    Status s = store.raw_store()->Put(blog, static_cast<uint32_t>(terms.size()));
    benchmark::DoNotOptimize(s.ok());
    const uint64_t t3 = ThreadCpuNanos();
    store.policy()->Insert(blog, terms, score);
    const uint64_t t4 = ThreadCpuNanos();
    if (store.MemoryFull()) store.FlushOnce();
    const uint64_t t5 = ThreadCpuNanos();
    total.tokenize_ns += t1 - t0;
    total.route_ns += t2 - t1;
    total.store_ns += t3 - t2;
    total.index_ns += t4 - t3;
    total.account_ns += t5 - t4;
  }
  const uint64_t n = tweets.size();
  *store_metrics = store.metrics_registry()->Snapshot();
  return InsertBreakdown{total.tokenize_ns / n, total.route_ns / n,
                         total.store_ns / n, total.index_ns / n,
                         total.account_ns / n};
}

int RunInsertBreakdown(size_t num_inserts) {
  // Floor of 20K inserts: the perf gate compares bench.insert_cpu_ns across
  // runs, and tiny samples are dominated by cold caches and scheduler noise.
  const size_t n = std::max<size_t>(
      20000, static_cast<size_t>(static_cast<double>(num_inserts) *
                                 kflush::bench::Scale()));
  std::printf("=== insert breakdown: %zu inserts/policy, SIMD=%s ===\n", n,
              simd::kAvx2Enabled ? "avx2" : "scalar");
  const std::vector<Microblog> tweets = GenerateTweets(n);
  std::vector<std::pair<std::string, MetricsSnapshot>> per_policy;
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    const uint64_t gate_ns = GateCpuNsPerInsert(policy, tweets, /*reps=*/5);
    MetricsSnapshot store_metrics;
    const InsertBreakdown phases =
        BreakdownPhases(policy, tweets, &store_metrics);
    const uint64_t phase_sum = phases.tokenize_ns + phases.route_ns +
                               phases.store_ns + phases.index_ns +
                               phases.account_ns;
    MetricsSnapshot snap;
    snap.counters["ingest.inserted"] = n;
    snap.gauges["bench.inserts"] = static_cast<int64_t>(n);
    snap.gauges["bench.insert_cpu_ns"] = static_cast<int64_t>(gate_ns);
    snap.gauges["bench.tweets_per_sec"] =
        static_cast<int64_t>(gate_ns == 0 ? 0 : 1'000'000'000ull / gate_ns);
    snap.gauges["bench.phase_ns.tokenize"] =
        static_cast<int64_t>(phases.tokenize_ns);
    snap.gauges["bench.phase_ns.route"] = static_cast<int64_t>(phases.route_ns);
    snap.gauges["bench.phase_ns.store"] = static_cast<int64_t>(phases.store_ns);
    snap.gauges["bench.phase_ns.index"] = static_cast<int64_t>(phases.index_ns);
    snap.gauges["bench.phase_ns.account"] =
        static_cast<int64_t>(phases.account_ns);
    snap.gauges["bench.phase_ns.sum"] = static_cast<int64_t>(phase_sum);
    std::printf(
        "%-14s %6lu ns/insert (%lu tweets/s) | tokenize %lu route %lu "
        "store %lu index %lu account %lu (sum %lu, incl. timer overhead)\n",
        PolicyKindName(policy), static_cast<unsigned long>(gate_ns),
        static_cast<unsigned long>(gate_ns == 0 ? 0
                                                : 1'000'000'000ull / gate_ns),
        static_cast<unsigned long>(phases.tokenize_ns),
        static_cast<unsigned long>(phases.route_ns),
        static_cast<unsigned long>(phases.store_ns),
        static_cast<unsigned long>(phases.index_ns),
        static_cast<unsigned long>(phases.account_ns),
        static_cast<unsigned long>(phase_sum));
    // Flush attribution from the instrumented run (the `account` phase in
    // bulk is flush amortization; this splits it by policy phase).
    const auto& counters = store_metrics.counters;
    auto counter = [&](const char* name) -> uint64_t {
      auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    std::printf(
        "  flush: %lu cycles, %lu records | phase micros p1 %lu p2 %lu "
        "p3 %lu\n",
        static_cast<unsigned long>(counter("flush.cycles")),
        static_cast<unsigned long>(counter("flush.records_flushed")),
        static_cast<unsigned long>(counter("flush.phase1.micros")),
        static_cast<unsigned long>(counter("flush.phase2.micros")),
        static_cast<unsigned long>(counter("flush.phase3.micros")));
    for (const char* name :
         {"flush.cycles", "flush.records_flushed", "flush.phase1.micros",
          "flush.phase2.micros", "flush.phase3.micros"}) {
      snap.counters[name] = counter(name);
    }
    per_policy.emplace_back(PolicyKindName(policy), std::move(snap));
  }
  return kflush::bench::WriteBenchJson("insert_breakdown", per_policy).empty()
             ? 1
             : 0;
}

}  // namespace
}  // namespace kflush

int main(int argc, char** argv) {
  // --breakdown[=N] short-circuits into the phase-attribution mode; every
  // other invocation runs the google-benchmark suite unchanged.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--breakdown") == 0) {
      return kflush::RunInsertBreakdown(100000);
    }
    if (std::strncmp(argv[i], "--breakdown=", 12) == 0) {
      return kflush::RunInsertBreakdown(
          static_cast<size_t>(std::strtoull(argv[i] + 12, nullptr, 10)));
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
