// Component micro-benchmarks (google-benchmark): the hot paths behind the
// system-level numbers — posting-list insertion, index insert/query, the
// Phase 2 single-pass victim selection, record (de)serialization, and the
// end-to-end store insert path per policy.

#include <benchmark/benchmark.h>

#include "core/store.h"
#include "core/trace.h"
#include "gen/tweet_generator.h"
#include "index/inverted_index.h"
#include "storage/serde.h"
#include "util/zipf.h"

namespace kflush {
namespace {

void BM_PostingListHeadInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PostingList list;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      list.Insert(static_cast<MicroblogId>(i), static_cast<double>(i));
    }
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PostingListHeadInsert);

void BM_PostingListTrim(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PostingList list;
    for (size_t i = 0; i < n; ++i) {
      list.Insert(static_cast<MicroblogId>(i), static_cast<double>(i));
    }
    std::vector<Posting> trimmed;
    state.ResumeTiming();
    list.TrimBeyondK(20, nullptr, &trimmed);
    benchmark::DoNotOptimize(trimmed.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PostingListTrim)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InvertedIndexInsert(benchmark::State& state) {
  InvertedIndex index;
  Rng rng(1);
  ZipfGenerator zipf(100000, 1.1);
  MicroblogId id = 0;
  for (auto _ : state) {
    ++id;
    index.Insert(zipf.Sample(&rng), id, static_cast<double>(id), id, 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedIndexInsert);

void BM_InvertedIndexQuery(benchmark::State& state) {
  InvertedIndex index;
  Rng rng(2);
  ZipfGenerator zipf(10000, 1.1);
  for (MicroblogId id = 0; id < 200000; ++id) {
    index.Insert(zipf.Sample(&rng), id, static_cast<double>(id), id, 0);
  }
  std::vector<MicroblogId> out;
  for (auto _ : state) {
    out.clear();
    index.Query(zipf.Sample(&rng), 20, 1, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedIndexQuery);

void BM_SerdeRoundTrip(benchmark::State& state) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  Microblog blog = gen.Next();
  blog.id = 1;
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    EncodeMicroblog(blog, &buf);
    Microblog decoded;
    size_t consumed = 0;
    benchmark::DoNotOptimize(
        DecodeMicroblog(buf.data(), buf.size(), &decoded, &consumed).ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_SerdeRoundTrip);

void BM_StoreInsert(benchmark::State& state) {
  const PolicyKind policy = static_cast<PolicyKind>(state.range(0));
  StoreOptions opts;
  opts.policy = policy;
  opts.memory_budget_bytes = 64 << 20;
  opts.k = 20;
  MicroblogStore store(opts);
  TweetGeneratorOptions gopts;
  gopts.vocabulary_size = 100000;
  TweetGenerator gen(gopts);
  for (auto _ : state) {
    Status s = store.Insert(gen.Next());
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(PolicyKindName(policy));
}
BENCHMARK(BM_StoreInsert)
    ->Arg(static_cast<int>(PolicyKind::kFifo))
    ->Arg(static_cast<int>(PolicyKind::kLru))
    ->Arg(static_cast<int>(PolicyKind::kKFlushing))
    ->Arg(static_cast<int>(PolicyKind::kKFlushingMK));

void BM_TweetGeneration(benchmark::State& state) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next().id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TweetGeneration);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(3);
  ZipfGenerator zipf(1000000, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

// --- Trace-recorder overhead: the disabled cases bound what compiled-in
// instrumentation costs every un-traced run (should be one relaxed load
// and a branch); the enabled case prices an actual ring emit.

void BM_TraceInstantDisabled(benchmark::State& state) {
  Tracer::Global()->Stop();
  uint64_t x = 0;
  for (auto _ : state) {
    KFLUSH_TRACE_INSTANT("bench", "noop", TraceArg::Uint("x", ++x));
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstantDisabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  Tracer::Global()->Stop();
  for (auto _ : state) {
    TraceSpan span("bench", "noop");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceInstantEnabled(benchmark::State& state) {
  Tracer::Global()->Start();
  uint64_t x = 0;
  for (auto _ : state) {
    KFLUSH_TRACE_INSTANT("bench", "emit", TraceArg::Uint("x", ++x),
                         TraceArg::Str("kind", "bench"));
  }
  benchmark::DoNotOptimize(x);
  Tracer::Global()->Stop();
  Tracer::Global()->Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstantEnabled);

}  // namespace
}  // namespace kflush

BENCHMARK_MAIN();
