#include "net/protocol.h"

#include <cstring>

#include "storage/durability.h"
#include "storage/serde.h"

namespace kflush {
namespace net {
namespace {

// Little-endian scalar append/read, matching storage/serde.cc's record
// encoding (this tree targets little-endian hosts; the memcpy form is
// alignment-safe either way).

template <typename T>
void Put(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Bounds-checked scalar read; false when fewer than sizeof(T) bytes
/// remain.
template <typename T>
bool Get(const char** p, const char* end, T* out) {
  if (static_cast<size_t>(end - *p) < sizeof(T)) return false;
  std::memcpy(out, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed message: ") + what);
}

/// Smallest possible EncodeMicroblog output (no location, no keywords,
/// empty text). Bounds attacker-declared record counts before reserve():
/// a checksum-valid frame declaring count=0xFFFFFFFF must be rejected
/// up front, not turned into a multi-GB allocation.
size_t MinEncodedRecordBytes() {
  static const size_t min_bytes = [] {
    std::string s;
    EncodeMicroblog(Microblog{}, &s);
    return s.size();
  }();
  return min_bytes;
}

void FramePayload(const std::string& payload, std::string* wire) {
  AppendFrame(payload.data(), payload.size(), wire);
}

void PutHeader(MsgType type, uint64_t request_id, std::string* payload) {
  Put<uint8_t>(payload, static_cast<uint8_t>(type));
  Put<uint64_t>(payload, request_id);
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kIngest: return "ingest";
    case MsgType::kIngestAck: return "ingest-ack";
    case MsgType::kNack: return "nack";
    case MsgType::kQuery: return "query";
    case MsgType::kQueryResult: return "query-result";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsResult: return "stats-result";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownAck: return "shutdown-ack";
    case MsgType::kStatsProm: return "stats-prom";
    case MsgType::kHealth: return "health";
    case MsgType::kHealthResult: return "health-result";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kSubAck: return "sub-ack";
    case MsgType::kUnsubscribe: return "unsubscribe";
    case MsgType::kPush: return "push";
  }
  return "unknown";
}

const char* ServingStateName(ServingState state) {
  switch (state) {
    case ServingState::kStarting: return "starting";
    case ServingState::kServing: return "serving";
    case ServingState::kDraining: return "draining";
  }
  return "unknown";
}

const char* NackReasonName(NackReason reason) {
  switch (reason) {
    case NackReason::kOverloaded: return "overloaded";
    case NackReason::kStopped: return "stopped";
    case NackReason::kMalformed: return "malformed";
    case NackReason::kTooLarge: return "too-large";
    case NackReason::kInternal: return "internal";
  }
  return "unknown";
}

void EncodeEmpty(MsgType type, uint64_t request_id, std::string* wire) {
  std::string payload;
  PutHeader(type, request_id, &payload);
  FramePayload(payload, wire);
}

void EncodeIngest(uint64_t request_id, const std::vector<Microblog>& blogs,
                  std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kIngest, request_id, &payload);
  Put<uint32_t>(&payload, static_cast<uint32_t>(blogs.size()));
  for (const Microblog& blog : blogs) {
    EncodeMicroblog(blog, &payload);
  }
  FramePayload(payload, wire);
}

void EncodeIngestAck(uint64_t request_id, uint32_t admitted, uint32_t skipped,
                     std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kIngestAck, request_id, &payload);
  Put<uint32_t>(&payload, admitted);
  Put<uint32_t>(&payload, skipped);
  FramePayload(payload, wire);
}

void EncodeNack(uint64_t request_id, NackReason reason, uint32_t queue_depth,
                std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kNack, request_id, &payload);
  Put<uint8_t>(&payload, static_cast<uint8_t>(reason));
  Put<uint32_t>(&payload, queue_depth);
  FramePayload(payload, wire);
}

void EncodeQuery(uint64_t request_id, const TopKQuery& query,
                 std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kQuery, request_id, &payload);
  Put<uint8_t>(&payload, static_cast<uint8_t>(query.type));
  Put<uint32_t>(&payload, query.k);
  Put<uint16_t>(&payload, static_cast<uint16_t>(query.terms.size()));
  for (TermId term : query.terms) {
    Put<uint64_t>(&payload, term);
  }
  FramePayload(payload, wire);
}

void EncodeQueryResult(uint64_t request_id, const QueryResult& result,
                       std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kQueryResult, request_id, &payload);
  Put<uint8_t>(&payload, result.memory_hit ? 1 : 0);
  Put<uint32_t>(&payload, static_cast<uint32_t>(result.from_memory));
  Put<uint32_t>(&payload, static_cast<uint32_t>(result.from_disk));
  Put<uint32_t>(&payload, static_cast<uint32_t>(result.results.size()));
  for (const Microblog& blog : result.results) {
    EncodeMicroblog(blog, &payload);
  }
  FramePayload(payload, wire);
}

void EncodeStatsResult(uint64_t request_id, const std::string& json,
                       std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kStatsResult, request_id, &payload);
  payload.append(json);
  FramePayload(payload, wire);
}

void EncodeHealthResult(uint64_t request_id, ServingState state,
                        uint64_t uptime_micros, std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kHealthResult, request_id, &payload);
  Put<uint8_t>(&payload, static_cast<uint8_t>(state));
  Put<uint64_t>(&payload, uptime_micros);
  FramePayload(payload, wire);
}

void EncodeSubscribe(uint64_t request_id, const SubscriptionSpec& spec,
                     std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kSubscribe, request_id, &payload);
  Put<uint8_t>(&payload, static_cast<uint8_t>(spec.kind));
  Put<uint32_t>(&payload, spec.k);
  Put<uint64_t>(&payload, spec.term);
  Put<uint64_t>(&payload, spec.user);
  Put<double>(&payload, spec.box.min_lat);
  Put<double>(&payload, spec.box.min_lon);
  Put<double>(&payload, spec.box.max_lat);
  Put<double>(&payload, spec.box.max_lon);
  FramePayload(payload, wire);
}

void EncodeSubAck(uint64_t request_id, uint64_t sub_id, std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kSubAck, request_id, &payload);
  Put<uint64_t>(&payload, sub_id);
  FramePayload(payload, wire);
}

void EncodeUnsubscribe(uint64_t request_id, uint64_t sub_id,
                       std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kUnsubscribe, request_id, &payload);
  Put<uint64_t>(&payload, sub_id);
  FramePayload(payload, wire);
}

void EncodePush(uint64_t sub_id, bool terminal,
                const std::vector<SubDelta>& deltas, std::string* wire) {
  std::string payload;
  PutHeader(MsgType::kPush, /*request_id=*/0, &payload);
  Put<uint64_t>(&payload, sub_id);
  Put<uint8_t>(&payload, terminal ? 1 : 0);
  Put<uint32_t>(&payload, static_cast<uint32_t>(deltas.size()));
  for (const SubDelta& delta : deltas) {
    Put<uint64_t>(&payload, delta.seq);
    Put<uint8_t>(&payload, static_cast<uint8_t>(delta.kind));
    Put<double>(&payload, delta.score);
    Put<uint64_t>(&payload, delta.id);
    const bool has_record = delta.kind == SubDeltaKind::kEnter;
    Put<uint8_t>(&payload, has_record ? 1 : 0);
    if (has_record) EncodeMicroblog(delta.record, &payload);
  }
  FramePayload(payload, wire);
}

FrameStatus PeekFrame(const char* data, size_t len, size_t max_payload,
                      size_t* frame_len) {
  if (len < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, data + sizeof(uint32_t), sizeof(payload_len));
  if (payload_len > kMaxFramePayloadBytes || payload_len > max_payload) {
    return FrameStatus::kCorrupt;
  }
  if (len < kFrameHeaderBytes + payload_len) return FrameStatus::kNeedMore;
  *frame_len = kFrameHeaderBytes + payload_len;
  return FrameStatus::kFrame;
}

Status DecodeMessage(const char* data, size_t frame_len, Message* out) {
  const char* payload = nullptr;
  uint32_t payload_len = 0;
  size_t consumed = 0;
  // On a stream, PeekFrame already guaranteed the whole frame is
  // buffered, so kTorn here can only mean a checksum failure.
  if (ReadFrame(data, frame_len, &payload, &payload_len, &consumed) !=
      FrameRead::kOk) {
    return Status::Corruption("frame checksum mismatch");
  }
  const char* p = payload;
  const char* end = payload + payload_len;
  uint8_t raw_type = 0;
  if (!Get(&p, end, &raw_type) || !Get(&p, end, &out->request_id)) {
    return Malformed("truncated header");
  }
  if (raw_type < static_cast<uint8_t>(MsgType::kPing) ||
      raw_type > static_cast<uint8_t>(MsgType::kPush)) {
    return Malformed("unknown message type");
  }
  out->type = static_cast<MsgType>(raw_type);
  switch (out->type) {
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kStats:
    case MsgType::kStatsProm:
    case MsgType::kHealth:
    case MsgType::kShutdown:
    case MsgType::kShutdownAck:
      break;
    case MsgType::kIngest: {
      uint32_t count = 0;
      if (!Get(&p, end, &count)) return Malformed("ingest count");
      if (count > static_cast<size_t>(end - p) / MinEncodedRecordBytes()) {
        return Malformed("ingest count exceeds payload");
      }
      out->blogs.clear();
      out->blogs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        Microblog blog;
        size_t used = 0;
        Status s = DecodeMicroblog(p, static_cast<size_t>(end - p), &blog,
                                   &used);
        if (!s.ok()) return s;
        p += used;
        out->blogs.push_back(std::move(blog));
      }
      break;
    }
    case MsgType::kIngestAck:
      if (!Get(&p, end, &out->admitted) || !Get(&p, end, &out->skipped)) {
        return Malformed("ingest ack");
      }
      break;
    case MsgType::kNack: {
      uint8_t raw_reason = 0;
      if (!Get(&p, end, &raw_reason) || !Get(&p, end, &out->queue_depth)) {
        return Malformed("nack");
      }
      if (raw_reason < static_cast<uint8_t>(NackReason::kOverloaded) ||
          raw_reason > static_cast<uint8_t>(NackReason::kInternal)) {
        return Malformed("nack reason");
      }
      out->reason = static_cast<NackReason>(raw_reason);
      break;
    }
    case MsgType::kQuery: {
      uint8_t raw_qtype = 0;
      uint16_t num_terms = 0;
      if (!Get(&p, end, &raw_qtype) || !Get(&p, end, &out->query.k) ||
          !Get(&p, end, &num_terms)) {
        return Malformed("query header");
      }
      if (raw_qtype > static_cast<uint8_t>(QueryType::kOr)) {
        return Malformed("query type");
      }
      out->query.type = static_cast<QueryType>(raw_qtype);
      if (num_terms > static_cast<size_t>(end - p) / sizeof(uint64_t)) {
        return Malformed("query term count exceeds payload");
      }
      out->query.terms.clear();
      out->query.terms.reserve(num_terms);
      for (uint16_t i = 0; i < num_terms; ++i) {
        TermId term = 0;
        if (!Get(&p, end, &term)) return Malformed("query terms");
        out->query.terms.push_back(term);
      }
      break;
    }
    case MsgType::kQueryResult: {
      uint8_t hit = 0;
      uint32_t count = 0;
      if (!Get(&p, end, &hit) || !Get(&p, end, &out->from_memory) ||
          !Get(&p, end, &out->from_disk) || !Get(&p, end, &count)) {
        return Malformed("query result header");
      }
      out->memory_hit = hit != 0;
      if (count > static_cast<size_t>(end - p) / MinEncodedRecordBytes()) {
        return Malformed("query result count exceeds payload");
      }
      out->blogs.clear();
      out->blogs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        Microblog blog;
        size_t used = 0;
        Status s = DecodeMicroblog(p, static_cast<size_t>(end - p), &blog,
                                   &used);
        if (!s.ok()) return s;
        p += used;
        out->blogs.push_back(std::move(blog));
      }
      break;
    }
    case MsgType::kStatsResult:
      out->text.assign(p, static_cast<size_t>(end - p));
      p = end;
      break;
    case MsgType::kHealthResult: {
      uint8_t raw_state = 0;
      if (!Get(&p, end, &raw_state) || !Get(&p, end, &out->uptime_micros)) {
        return Malformed("health result");
      }
      if (raw_state < static_cast<uint8_t>(ServingState::kStarting) ||
          raw_state > static_cast<uint8_t>(ServingState::kDraining)) {
        return Malformed("serving state");
      }
      out->health = static_cast<ServingState>(raw_state);
      break;
    }
    case MsgType::kSubscribe: {
      uint8_t raw_kind = 0;
      if (!Get(&p, end, &raw_kind) || !Get(&p, end, &out->spec.k) ||
          !Get(&p, end, &out->spec.term) || !Get(&p, end, &out->spec.user) ||
          !Get(&p, end, &out->spec.box.min_lat) ||
          !Get(&p, end, &out->spec.box.min_lon) ||
          !Get(&p, end, &out->spec.box.max_lat) ||
          !Get(&p, end, &out->spec.box.max_lon)) {
        return Malformed("subscribe");
      }
      if (raw_kind < static_cast<uint8_t>(SubKind::kKeyword) ||
          raw_kind > static_cast<uint8_t>(SubKind::kUser)) {
        return Malformed("subscription kind");
      }
      out->spec.kind = static_cast<SubKind>(raw_kind);
      break;
    }
    case MsgType::kSubAck:
    case MsgType::kUnsubscribe:
      if (!Get(&p, end, &out->sub_id)) return Malformed("subscription id");
      break;
    case MsgType::kPush: {
      uint8_t flags = 0;
      uint32_t count = 0;
      if (!Get(&p, end, &out->sub_id) || !Get(&p, end, &flags) ||
          !Get(&p, end, &count)) {
        return Malformed("push header");
      }
      out->push_terminal = (flags & 1) != 0;
      // Fixed delta prefix: seq(8) + kind(1) + score(8) + id(8) +
      // has_record(1). Bounds attacker-declared counts before reserve().
      constexpr size_t kMinDeltaBytes = 26;
      if (count > static_cast<size_t>(end - p) / kMinDeltaBytes) {
        return Malformed("push count exceeds payload");
      }
      out->deltas.clear();
      out->deltas.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        SubDelta delta;
        uint8_t raw_kind = 0;
        uint8_t has_record = 0;
        if (!Get(&p, end, &delta.seq) || !Get(&p, end, &raw_kind) ||
            !Get(&p, end, &delta.score) || !Get(&p, end, &delta.id) ||
            !Get(&p, end, &has_record)) {
          return Malformed("push delta");
        }
        if (raw_kind < static_cast<uint8_t>(SubDeltaKind::kEnter) ||
            raw_kind > static_cast<uint8_t>(SubDeltaKind::kTerminal)) {
          return Malformed("push delta kind");
        }
        if (has_record > 1) return Malformed("push delta record flag");
        delta.kind = static_cast<SubDeltaKind>(raw_kind);
        if (has_record != 0) {
          size_t used = 0;
          Status s = DecodeMicroblog(p, static_cast<size_t>(end - p),
                                     &delta.record, &used);
          if (!s.ok()) return s;
          p += used;
        }
        out->deltas.push_back(std::move(delta));
      }
      break;
    }
  }
  if (p != end) return Malformed("trailing bytes");
  return Status::OK();
}

}  // namespace net
}  // namespace kflush
