// Wire protocol of the kflush network front-end: a batched,
// length-prefixed binary protocol for ingest and top-k queries over a
// ShardedMicroblogSystem (docs/INTERNALS.md, "Networking").
//
// Every message travels as one checksummed frame — the exact format the
// WAL and segment store share (storage/durability.h):
//
//   u32 masked_crc32c(payload) | u32 payload_len | payload
//
// and every payload starts with a fixed message header:
//
//   u8 MsgType | u64 request_id | body
//
// request_id is caller-chosen and echoed verbatim in the response, so a
// pipelining client can correlate acks to in-flight requests. Bodies
// (little-endian, record encoding = storage/serde.h EncodeMicroblog):
//
//   kIngest       u32 count | record × count
//   kIngestAck    u32 admitted | u32 skipped
//   kNack         u8 NackReason | u32 queue_depth
//   kQuery        u8 QueryType | u32 k | u16 num_terms | u64 term × n
//   kQueryResult  u8 memory_hit | u32 from_memory | u32 from_disk |
//                 u32 count | record × count
//   kStatsResult  raw UTF-8 text (JSON for kStats requests, Prometheus
//                 exposition for kStatsProm requests)
//   kHealthResult u8 ServingState | u64 uptime_micros
//   kSubscribe    u8 SubKind | u32 k | u64 term | u64 user |
//                 f64 min_lat | f64 min_lon | f64 max_lat | f64 max_lon
//                 (only the fields the kind implies are read)
//   kSubAck       u64 sub_id (answers kSubscribe and kUnsubscribe)
//   kUnsubscribe  u64 sub_id
//   kPush         u64 sub_id | u8 flags | u32 count | delta × count
//                 delta = u64 seq | u8 SubDeltaKind | f64 score |
//                         u64 id | u8 has_record | [record]
//                 flags bit 0 = terminal: the server has dropped this
//                 subscription (NACK-style — e.g. the slow-consumer
//                 backpressure limit tripped) and no further deltas will
//                 ever arrive for it. Pushes are server-initiated:
//                 request_id is 0, never correlated to a request.
//   kPing, kPong, kStats, kStatsProm, kHealth, kShutdown, kShutdownAck
//                 (empty)
//
// Admission is explicit: an ingest batch is either fully admitted on
// every owner shard (kIngestAck) or fully rejected (kNack) — the server
// never silently drops records, and a kNack guarantees no shard holds
// any part of the batch, so retrying the identical payload cannot
// double-insert.

#ifndef KFLUSH_NET_PROTOCOL_H_
#define KFLUSH_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "model/microblog.h"
#include "sub/subscription.h"
#include "util/status.h"

namespace kflush {
namespace net {

enum class MsgType : uint8_t {
  kPing = 1,
  kPong = 2,
  kIngest = 3,
  kIngestAck = 4,
  kNack = 5,
  kQuery = 6,
  kQueryResult = 7,
  kStats = 8,
  kStatsResult = 9,
  kShutdown = 10,
  kShutdownAck = 11,
  kStatsProm = 12,  // request Prometheus exposition; answered by kStatsResult
  kHealth = 13,     // request serving state; answered by kHealthResult
  kHealthResult = 14,
  kSubscribe = 15,    // register a standing top-k; answered by kSubAck
  kSubAck = 16,       // carries the subscription id
  kUnsubscribe = 17,  // answered by kSubAck echoing the id
  kPush = 18,         // server-initiated delta batch for one subscription
};

const char* MsgTypeName(MsgType type);

/// Server lifecycle as reported by kHealthResult: drain-aware load
/// balancers and CI readiness checks gate on kServing.
enum class ServingState : uint8_t {
  kStarting = 1,  // bound but the event loop is not accepting work yet
  kServing = 2,   // accepting ingest and queries
  kDraining = 3,  // shutdown requested; in-flight work finishing
};

const char* ServingStateName(ServingState state);

/// Why an ingest or query request was refused. Every reason is an
/// explicit protocol-level answer; "silently dropped" is not a state.
enum class NackReason : uint8_t {
  kOverloaded = 1,  // an owner shard's ingest queue is full; retry later
  kStopped = 2,     // the system is shutting down
  kMalformed = 3,   // the request failed to parse or was semantically bad
  kTooLarge = 4,    // batch exceeds the server's max_batch_records
  kInternal = 5,    // server-side execution error (e.g. query failure)
};

const char* NackReasonName(NackReason reason);

/// One decoded message. A plain product type: only the fields implied by
/// `type` are meaningful (see the body table above).
struct Message {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;

  std::vector<Microblog> blogs;  // kIngest, kQueryResult

  uint32_t admitted = 0;  // kIngestAck
  uint32_t skipped = 0;   // kIngestAck

  NackReason reason = NackReason::kMalformed;  // kNack
  uint32_t queue_depth = 0;                    // kNack

  TopKQuery query;  // kQuery

  bool memory_hit = false;   // kQueryResult
  uint32_t from_memory = 0;  // kQueryResult
  uint32_t from_disk = 0;    // kQueryResult

  std::string text;  // kStatsResult

  ServingState health = ServingState::kStarting;  // kHealthResult
  uint64_t uptime_micros = 0;                     // kHealthResult

  SubscriptionSpec spec;         // kSubscribe
  uint64_t sub_id = 0;           // kSubAck, kUnsubscribe, kPush
  bool push_terminal = false;    // kPush (flags bit 0)
  std::vector<SubDelta> deltas;  // kPush
};

// --- encoders: append one complete framed message to *wire -------------

void EncodeEmpty(MsgType type, uint64_t request_id, std::string* wire);
void EncodeIngest(uint64_t request_id, const std::vector<Microblog>& blogs,
                  std::string* wire);
void EncodeIngestAck(uint64_t request_id, uint32_t admitted, uint32_t skipped,
                     std::string* wire);
void EncodeNack(uint64_t request_id, NackReason reason, uint32_t queue_depth,
                std::string* wire);
void EncodeQuery(uint64_t request_id, const TopKQuery& query,
                 std::string* wire);
void EncodeQueryResult(uint64_t request_id, const QueryResult& result,
                       std::string* wire);
void EncodeStatsResult(uint64_t request_id, const std::string& json,
                       std::string* wire);
void EncodeHealthResult(uint64_t request_id, ServingState state,
                        uint64_t uptime_micros, std::string* wire);
void EncodeSubscribe(uint64_t request_id, const SubscriptionSpec& spec,
                     std::string* wire);
void EncodeSubAck(uint64_t request_id, uint64_t sub_id, std::string* wire);
void EncodeUnsubscribe(uint64_t request_id, uint64_t sub_id,
                       std::string* wire);
/// Pushes are server-initiated: request_id is always encoded as 0.
void EncodePush(uint64_t sub_id, bool terminal,
                const std::vector<SubDelta>& deltas, std::string* wire);

// --- stream decoding ---------------------------------------------------

/// What the head of a receive buffer holds.
enum class FrameStatus : int {
  kNeedMore = 0,  // a complete frame has not arrived yet; keep reading
  kFrame,         // data[0..*frame_len) is one complete frame
  kCorrupt,       // the header declares an implausible payload length —
                  // the stream is broken, close the connection
};

/// Inspects the frame header at data[0..len) without touching payload
/// bytes or the checksum. `max_payload` bounds acceptable frames (the
/// server uses its configured limit; pass kMaxFramePayloadBytes for the
/// format's own cap).
FrameStatus PeekFrame(const char* data, size_t len, size_t max_payload,
                      size_t* frame_len);

/// Verifies and decodes one complete frame (as delimited by PeekFrame).
/// Corruption on checksum mismatch or a malformed payload.
Status DecodeMessage(const char* data, size_t frame_len, Message* out);

}  // namespace net
}  // namespace kflush

#endif  // KFLUSH_NET_PROTOCOL_H_
