// NetClient: a small blocking TCP client for the kflush wire protocol.
// Two usage modes:
//
//   * Synchronous request/response (Ping, Ingest, Query, Stats,
//     Shutdown): one outstanding request at a time, single-threaded.
//   * Pipelined: a sender thread streams pre-encoded frames with
//     SendRaw() while a reader thread drains responses with
//     RecvMessage(). The server answers a connection's requests in
//     order, so responses arrive FIFO per connection; request_ids keep
//     the correlation honest. This is the open-loop mode the load
//     harness drives.

#ifndef KFLUSH_NET_CLIENT_H_
#define KFLUSH_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace kflush {
namespace net {

class NetClient {
 public:
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  static Result<std::unique_ptr<NetClient>> Connect(const std::string& host,
                                                    uint16_t port);

  /// Fresh request id (unique per client instance).
  uint64_t NextRequestId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Writes the whole byte string (one or more pre-encoded frames) to
  /// the socket. Safe concurrently with RecvMessage(), not with itself.
  Status SendRaw(const std::string& wire);

  /// Blocks until one complete message arrives (or the peer closes:
  /// IOError "connection closed").
  Result<Message> RecvMessage();

  // --- synchronous conveniences ----------------------------------------

  Status Ping();

  /// Sends one ingest batch and returns the server's answer — an
  /// kIngestAck or kNack Message (transport errors are the error arm).
  Result<Message> Ingest(const std::vector<Microblog>& blogs);

  /// Runs one top-k query; a server NACK becomes a non-OK Status.
  Result<QueryResult> Query(const TopKQuery& query);

  /// Fetches the server's stats JSON.
  Result<std::string> Stats();

  /// Fetches the server's Prometheus text exposition (every registry
  /// family: shard-system metrics plus the server's own net.* series).
  Result<std::string> StatsProm();

  /// Health probe reply: lifecycle state + server uptime.
  struct HealthInfo {
    ServingState state = ServingState::kStarting;
    uint64_t uptime_micros = 0;
  };

  /// Asks the server for its lifecycle state (kStarting / kServing /
  /// kDraining).
  Result<HealthInfo> Health();

  /// Requests server shutdown and waits for the ack.
  Status Shutdown();

  // --- continuous queries ------------------------------------------------

  /// Registers a standing top-k; returns the server-assigned sub_id.
  /// Server-initiated kPush frames interleaved with the ack are buffered
  /// for RecvPush, never lost.
  Result<uint64_t> Subscribe(const SubscriptionSpec& spec);

  /// Tears down a standing top-k (kSubAck echoes the id back). Pushes
  /// already in flight when the request lands are buffered for RecvPush.
  Status Unsubscribe(uint64_t sub_id);

  /// Returns the next kPush frame: buffered ones first, then blocking on
  /// the socket. Any other message type arriving here is an error (use
  /// this only when no request is outstanding).
  Result<Message> RecvPush();

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  /// RecvMessage, but parks server-initiated kPush frames in
  /// pending_pushes_ so a synchronous request sees only its reply.
  Result<Message> RecvReply();

  int fd_;
  std::string inbuf_;
  std::deque<Message> pending_pushes_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace net
}  // namespace kflush

#endif  // KFLUSH_NET_CLIENT_H_
