#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "core/trace.h"
#include "util/clock.h"
#include "util/logging.h"

namespace kflush {
namespace net {
namespace {

constexpr int kListenBacklog = 128;
constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

// epoll event tag: fd in the low 32 bits, connection generation in the
// high 32. A CloseConnection followed by an accept within one epoll_wait
// batch can hand the same fd number to a new connection; stale events
// still queued in that batch then carry the old generation and are
// skipped instead of dispatching to (and possibly closing) the new
// connection. The listening socket and eventfd use generation 0 — they
// stay open for the server's lifetime, so their fds are never reused.
uint64_t PackTag(int fd, uint32_t gen) {
  return (static_cast<uint64_t>(gen) << 32) | static_cast<uint32_t>(fd);
}

}  // namespace

NetServer::NetServer(ShardedMicroblogSystem* system, ServerOptions options)
    : system_(system), options_(std::move(options)) {
  subs_ = MakeSubscriptions(system_);
  c_sub_pushes_ = subs_->metrics_registry()->counter("sub.pushes");
  MetricsRegistry* r = registry_.get();
  c_connections_accepted_ = r->counter("net.connections_accepted");
  c_connections_closed_ = r->counter("net.connections_closed");
  c_frames_received_ = r->counter("net.frames_received");
  c_bytes_received_ = r->counter("net.bytes_received");
  c_bytes_sent_ = r->counter("net.bytes_sent");
  c_ingest_requests_ = r->counter("net.ingest_requests");
  c_ingest_acks_ = r->counter("net.ingest_acks");
  c_records_offered_ = r->counter("net.records_offered");
  c_records_acked_ = r->counter("net.records_acked");
  c_records_skipped_ = r->counter("net.records_skipped");
  c_records_nacked_ = r->counter("net.records_nacked");
  c_nacks_overloaded_ = r->counter("net.nacks.overloaded");
  c_nacks_stopped_ = r->counter("net.nacks.stopped");
  c_nacks_malformed_ = r->counter("net.nacks.malformed");
  c_nacks_too_large_ = r->counter("net.nacks.too_large");
  c_nacks_internal_ = r->counter("net.nacks.internal");
  c_queries_ = r->counter("net.queries");
  c_read_pauses_ = r->counter("net.read_pauses");
  g_connections_live_ = r->gauge("net.connections_live");
  g_pending_write_bytes_ = r->gauge("net.pending_write_bytes");
  h_stage_decode_ = r->histogram("net.ingest_ack_micros.decode");
  h_stage_admission_ = r->histogram("net.ingest_ack_micros.admission");
  h_stage_commit_ = r->histogram("net.ingest_ack_micros.commit");
  h_stage_respond_ = r->histogram("net.ingest_ack_micros.respond");
  h_query_micros_ = r->histogram("net.query_micros");
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    Status s = Errno("epoll_create1");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    Status s = Errno("eventfd");
    ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = PackTag(listen_fd_, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = PackTag(wake_fd_, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  // Outbox notifications (digestion and flushing threads) ride the same
  // eventfd the stop path uses: queue the sub id, poke the loop. Stop()
  // quiesces this callback before wake_fd_ closes.
  subs_->set_notifier([this](uint64_t sub_id) {
    {
      std::lock_guard<std::mutex> lock(push_mu_);
      pending_push_subs_.push_back(sub_id);
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  });
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  start_micros_ = MonotonicMicros();
  health_.store(static_cast<uint8_t>(ServingState::kServing),
                std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void NetServer::RequestStop() {
  // Atomic stores only: this must stay async-signal-safe.
  health_.store(static_cast<uint8_t>(ServingState::kDraining),
                std::memory_order_release);
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::Stop() {
  RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Quiesce the outbox notifier BEFORE closing wake_fd_: a digestion
  // thread mid-callback must not write into a closed (or recycled) fd.
  if (subs_) subs_->set_notifier(nullptr);
  // The loop thread closed the connections; release the listening state.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void NetServer::AwaitStop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock,
                [this] { return !running_.load(std::memory_order_acquire); });
}

void NetServer::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      KFLUSH_WARN("epoll_wait failed: " << std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = static_cast<int>(events[i].data.u64 & 0xFFFFFFFFu);
      const uint32_t gen = static_cast<uint32_t>(events[i].data.u64 >> 32);
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drained,
                                            sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      auto it = connections_.find(fd);
      // Generation mismatch: the event is for an already-closed
      // connection whose fd number was reused within this batch.
      if (it == connections_.end() || it->second->gen != gen) continue;
      Connection* conn = it->second.get();
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) HandleReadable(conn);
      // HandleReadable may have closed the connection (protocol error /
      // EOF); re-look it up before the write half.
      it = connections_.find(fd);
      if (it == connections_.end() || it->second->gen != gen) continue;
      if ((mask & EPOLLOUT) != 0) HandleWritable(it->second.get());
      if (shutdown_via_protocol_) break;
    }
    DrainSubscriptionPushes();
    if (shutdown_via_protocol_) break;
  }
  // Teardown on the loop thread: close every connection, then flip
  // running_ so AwaitStop wakes.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    running_.store(false, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void NetServer::AcceptConnections() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      KFLUSH_WARN("accept failed: " << std::strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->gen = ++next_conn_gen_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = PackTag(fd, conn->gen);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
    c_connections_accepted_->Increment();
    g_connections_live_->Add(1);
  }
}

void NetServer::HandleReadable(Connection* conn) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      c_bytes_received_->Add(static_cast<uint64_t>(n));
      // Oversized pipelining guard: cap the unparsed buffer at one max
      // frame plus a read chunk; ProcessInput below will drain it.
      if (conn->in.size() >
          options_.max_frame_bytes + kFrameHeaderBytes + kReadChunk) {
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      // Serve whatever complete frames arrived, then close. ProcessInput
      // can destroy *conn (malformed frame whose NACK flushes fully, or
      // a write error), so capture the fd first and only touch the
      // connection again through a fresh lookup.
      const int fd = conn->fd;
      ProcessInput(conn);
      auto it = connections_.find(fd);
      if (it != connections_.end()) {
        FlushWrites(it->second.get());
        CloseConnection(fd);
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  ProcessInput(conn);
}

void NetServer::ProcessInput(Connection* conn) {
  size_t consumed = 0;
  const int fd = conn->fd;
  while (true) {
    size_t frame_len = 0;
    const FrameStatus fs =
        PeekFrame(conn->in.data() + consumed, conn->in.size() - consumed,
                  options_.max_frame_bytes, &frame_len);
    if (fs == FrameStatus::kNeedMore) break;
    if (fs == FrameStatus::kCorrupt) {
      c_nacks_malformed_->Increment();
      EncodeNack(0, NackReason::kMalformed, 0, &conn->out);
      conn->close_after_flush = true;
      conn->in.clear();
      consumed = 0;
      break;
    }
    Message message;
    const uint64_t decode_start = MonotonicMicros();
    Status s = DecodeMessage(conn->in.data() + consumed, frame_len, &message);
    const uint64_t decode_micros = MonotonicMicros() - decode_start;
    consumed += frame_len;
    c_frames_received_->Increment();
    if (!s.ok()) {
      // The frame was checksum-intact but semantically malformed (or the
      // checksum failed): explicit NACK, then drop the stream — framing
      // can no longer be trusted.
      c_nacks_malformed_->Increment();
      EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
      conn->close_after_flush = true;
      break;
    }
    HandleMessage(conn, std::move(message), decode_micros);
    if (connections_.count(fd) == 0) {  // handler closed it
      RecordAckStamps();
      return;
    }
    if (conn->close_after_flush || shutdown_via_protocol_) break;
  }
  if (consumed > 0) conn->in.erase(0, consumed);
  FlushWrites(conn);
  // After the write attempt so the respond stage covers the actual
  // write()s, not just the encode.
  RecordAckStamps();
}

void NetServer::RecordAckStamps() {
  if (pending_ack_stamps_.empty()) return;
  const uint64_t now = MonotonicMicros();
  for (const auto& [request_id, encoded_at] : pending_ack_stamps_) {
    h_stage_respond_->Record(now > encoded_at ? now - encoded_at : 0);
  }
  Tracer* tracer = Tracer::Global();
  if (tracer->enabled()) {
    TraceSpan span("net", "ack_write",
                   {TraceArg::Uint("acks", pending_ack_stamps_.size())});
    for (const auto& [request_id, encoded_at] : pending_ack_stamps_) {
      tracer->EmitFlow(TraceEventType::kFlowStep, "net", "request",
                       request_id, {});
    }
  }
  pending_ack_stamps_.clear();
}

void NetServer::HandleMessage(Connection* conn, Message message,
                              uint64_t decode_micros) {
  switch (message.type) {
    case MsgType::kPing:
      EncodeEmpty(MsgType::kPong, message.request_id, &conn->out);
      break;
    case MsgType::kIngest:
      HandleIngest(conn, std::move(message), decode_micros);
      break;
    case MsgType::kQuery:
      HandleQuery(conn, message);
      break;
    case MsgType::kStats:
      EncodeStatsResult(message.request_id, StatsJson(), &conn->out);
      break;
    case MsgType::kStatsProm:
      EncodeStatsResult(message.request_id, PrometheusText(), &conn->out);
      break;
    case MsgType::kHealth:
      EncodeHealthResult(message.request_id, health(),
                         MonotonicMicros() - start_micros_, &conn->out);
      break;
    case MsgType::kSubscribe:
      HandleSubscribe(conn, message);
      break;
    case MsgType::kUnsubscribe:
      HandleUnsubscribe(conn, message);
      break;
    case MsgType::kShutdown:
      // Flip health before the ack goes out so a client probing kHealth
      // right after its kShutdownAck observes kDraining.
      health_.store(static_cast<uint8_t>(ServingState::kDraining),
                    std::memory_order_release);
      EncodeEmpty(MsgType::kShutdownAck, message.request_id, &conn->out);
      conn->close_after_flush = true;
      shutdown_via_protocol_ = true;
      break;
    default:
      // Server-to-client message types arriving at the server are a
      // client bug, not a stream corruption: NACK and keep the stream.
      c_nacks_malformed_->Increment();
      EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
      break;
  }
}

void NetServer::HandleIngest(Connection* conn, Message message,
                             uint64_t decode_micros) {
  const uint64_t admit_start = MonotonicMicros();
  TraceSpan span("net", "ingest",
                 {TraceArg::Uint("request_id", message.request_id),
                  TraceArg::Uint("records", message.blogs.size())});
  c_ingest_requests_->Increment();
  const uint64_t offered = message.blogs.size();
  c_records_offered_->Add(offered);
  if (offered > options_.max_batch_records) {
    c_nacks_too_large_->Increment();
    c_records_nacked_->Add(offered);
    EncodeNack(message.request_id, NackReason::kTooLarge, 0, &conn->out);
    return;
  }
  const size_t depth = system_->max_queue_depth();
  if (options_.admission_queue_soft_limit > 0 &&
      depth >= options_.admission_queue_soft_limit) {
    c_nacks_overloaded_->Increment();
    c_records_nacked_->Add(offered);
    EncodeNack(message.request_id, NackReason::kOverloaded,
               static_cast<uint32_t>(depth), &conn->out);
    return;
  }
  // The ticket closes the request's commit-stage clock from whichever
  // digestion thread durably commits the last owner sub-batch; it keeps
  // the registry alive on its own, so a completion racing server
  // teardown records into a still-valid histogram.
  auto ticket = std::make_shared<IngestTicket>();
  ticket->request_id = message.request_id;
  ticket->commit_hist = h_stage_commit_;
  ticket->slow_micros = options_.slow_request_micros;
  ticket->registry_keepalive = registry_;
  // Flow id = request_id: the arc the trace viewer draws from this
  // reactor-side span through each shard's digest_batch to the ack write.
  KFLUSH_TRACE_FLOW_BEGIN("net", "request", message.request_id,
                          TraceArg::Uint("records", offered));
  // Stamped immediately before TrySubmit: the commit stage measures
  // submit -> durable commit, and must be set before any sub-batch can
  // be enqueued (a digestion thread may Complete() the ticket before
  // TrySubmit even returns).
  ticket->admit_micros = MonotonicMicros();
  uint64_t admitted = 0;
  uint64_t skipped = 0;
  const ShardedMicroblogSystem::SubmitOutcome outcome =
      system_->TrySubmit(std::move(message.blogs), &admitted, &skipped,
                         ticket);
  switch (outcome) {
    case ShardedMicroblogSystem::SubmitOutcome::kAccepted: {
      c_records_acked_->Add(admitted);
      c_records_skipped_->Add(skipped);
      EncodeIngestAck(message.request_id, static_cast<uint32_t>(admitted),
                      static_cast<uint32_t>(skipped), &conn->out);
      // Stage samples are recorded only for acked requests, so each stage
      // histogram's count stays exactly net.ingest_acks. The respond
      // stamp is drained after the write attempt (RecordAckStamps).
      const uint64_t acked_at = MonotonicMicros();
      h_stage_decode_->Record(decode_micros);
      h_stage_admission_->Record(
          acked_at > admit_start ? acked_at - admit_start : 0);
      c_ingest_acks_->Increment();
      pending_ack_stamps_.emplace_back(message.request_id, acked_at);
      break;
    }
    case ShardedMicroblogSystem::SubmitOutcome::kOverloaded:
      c_nacks_overloaded_->Increment();
      c_records_nacked_->Add(offered);
      EncodeNack(message.request_id, NackReason::kOverloaded,
                 static_cast<uint32_t>(system_->max_queue_depth()),
                 &conn->out);
      break;
    case ShardedMicroblogSystem::SubmitOutcome::kStopped:
      c_nacks_stopped_->Increment();
      c_records_nacked_->Add(offered);
      EncodeNack(message.request_id, NackReason::kStopped, 0, &conn->out);
      break;
  }
}

void NetServer::HandleQuery(Connection* conn, const Message& message) {
  const uint64_t start = MonotonicMicros();
  TraceSpan span("net", "query",
                 {TraceArg::Uint("request_id", message.request_id)});
  c_queries_->Increment();
  if (message.query.terms.empty()) {
    c_nacks_malformed_->Increment();
    EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
  } else {
    Result<QueryResult> result = system_->Query(message.query);
    if (!result.ok()) {
      c_nacks_internal_->Increment();
      EncodeNack(message.request_id, NackReason::kInternal, 0, &conn->out);
    } else {
      EncodeQueryResult(message.request_id, *result, &conn->out);
    }
  }
  // Single exit: every query outcome (including NACKs) lands one sample,
  // so net.query_micros count == net.queries.
  const uint64_t micros = MonotonicMicros() - start;
  h_query_micros_->Record(micros);
  if (options_.slow_request_micros > 0 &&
      micros >= options_.slow_request_micros) {
    KFLUSH_WARN("slow-request request_id="
                << message.request_id << " query_micros=" << micros
                << " threshold_micros=" << options_.slow_request_micros);
  }
}

void NetServer::HandleSubscribe(Connection* conn, const Message& message) {
  TraceSpan span("net", "subscribe",
                 {TraceArg::Uint("request_id", message.request_id)});
  Result<uint64_t> r = subs_->Subscribe(message.spec);
  if (!r.ok()) {
    if (r.status().IsInvalidArgument()) {
      c_nacks_malformed_->Increment();
      EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
    } else {
      c_nacks_internal_->Increment();
      EncodeNack(message.request_id, NackReason::kInternal, 0, &conn->out);
    }
    return;
  }
  const uint64_t sub_id = *r;
  conn->sub_ids.push_back(sub_id);
  sub_conns_[sub_id] = conn->fd;
  // The seed snapshot already queued this sub's initial deltas via the
  // notifier; the ack is encoded first, so the client always observes
  // kSubAck before the first kPush.
  EncodeSubAck(message.request_id, sub_id, &conn->out);
}

void NetServer::HandleUnsubscribe(Connection* conn, const Message& message) {
  // A connection may only tear down its own standing queries.
  auto it = sub_conns_.find(message.sub_id);
  if (it == sub_conns_.end() || it->second != conn->fd) {
    c_nacks_malformed_->Increment();
    EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
    return;
  }
  Status s = subs_->Unsubscribe(message.sub_id);
  if (!s.ok()) {
    c_nacks_internal_->Increment();
    EncodeNack(message.request_id, NackReason::kInternal, 0, &conn->out);
    return;
  }
  sub_conns_.erase(it);
  auto& ids = conn->sub_ids;
  ids.erase(std::remove(ids.begin(), ids.end(), message.sub_id), ids.end());
  EncodeSubAck(message.request_id, message.sub_id, &conn->out);
}

void NetServer::DrainSubscriptionPushes() {
  if (subs_->num_active() == 0 && sub_conns_.empty()) {
    // Still swap out stale notifications queued by just-terminated subs so
    // the pending list cannot grow without bound.
    std::lock_guard<std::mutex> lock(push_mu_);
    pending_push_subs_.clear();
    return;
  }
  // Eviction refills queue without a notification of their own; apply
  // them here so a refill-emitted delta (which does notify) lands in this
  // same wake-up instead of waiting for unrelated traffic.
  subs_->ProcessPendingRefills();
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(push_mu_);
    ids.swap(pending_push_subs_);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<SubDelta> deltas;
  for (uint64_t sub_id : ids) {
    auto sit = sub_conns_.find(sub_id);
    if (sit == sub_conns_.end()) continue;  // already torn down
    auto cit = connections_.find(sit->second);
    if (cit == connections_.end()) continue;
    Connection* conn = cit->second.get();
    const size_t pending = conn->out.size() - conn->out_offset;
    if (pending > options_.conn_write_buffer_limit) {
      // Slow consumer with deltas due: never silently drop deltas or let
      // them balloon the buffer — terminal-push every standing query on
      // the connection and drop the connection itself.
      DropConnectionSubscriptions(conn, /*terminal_push=*/true);
      conn->close_after_flush = true;
      FlushWrites(conn);
      continue;
    }
    deltas.clear();
    if (!subs_->DrainDeltas(sub_id, &deltas) || deltas.empty()) continue;
    EncodePush(sub_id, /*terminal=*/false, deltas, &conn->out);
    c_sub_pushes_->Increment();
    KFLUSH_TRACE_FLOW_STEP("sub", "subscription", sub_id,
                           TraceArg::Uint("push_deltas", deltas.size()));
    FlushWrites(conn);
  }
}

void NetServer::DropConnectionSubscriptions(Connection* conn,
                                            bool terminal_push) {
  for (uint64_t sub_id : conn->sub_ids) {
    if (terminal_push) {
      EncodePush(sub_id, /*terminal=*/true, {}, &conn->out);
      c_sub_pushes_->Increment();
    }
    // Undrained deltas are counted into sub.deltas_dropped_on_disconnect
    // by the manager; sub.deltas_published stays reconciled.
    subs_->Unsubscribe(sub_id);
    sub_conns_.erase(sub_id);
  }
  conn->sub_ids.clear();
}

void NetServer::FlushWrites(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::write(conn->fd, conn->out.data() + conn->out_offset,
                conn->out.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      c_bytes_sent_->Add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  if (conn->out_offset >= conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      CloseConnection(conn->fd);
      return;
    }
  }
  UpdateInterest(conn);
}

void NetServer::HandleWritable(Connection* conn) { FlushWrites(conn); }

void NetServer::UpdateInterest(Connection* conn) {
  const size_t pending = conn->out.size() - conn->out_offset;
  // Delta-fold this connection's pending bytes into the gauge: the gauge
  // converges to the cross-connection total without a rescan.
  if (pending != conn->pending_reported) {
    g_pending_write_bytes_->Add(static_cast<int64_t>(pending) -
                                static_cast<int64_t>(conn->pending_reported));
    conn->pending_reported = pending;
  }
  const bool want_write = pending > 0;
  // Connection-level backpressure: past the limit, stop reading until
  // the peer drains half of it.
  bool read_paused = conn->read_paused;
  if (!read_paused && pending > options_.conn_write_buffer_limit) {
    read_paused = true;
    c_read_pauses_->Increment();
  } else if (read_paused && pending <= options_.conn_write_buffer_limit / 2) {
    read_paused = false;
  }
  if (want_write == conn->want_write && read_paused == conn->read_paused) {
    return;
  }
  conn->want_write = want_write;
  conn->read_paused = read_paused;
  epoll_event ev{};
  ev.events = (read_paused ? 0u : EPOLLIN) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = PackTag(conn->fd, conn->gen);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  DropConnectionSubscriptions(it->second.get(), /*terminal_push=*/false);
  if (it->second->pending_reported > 0) {
    g_pending_write_bytes_->Add(
        -static_cast<int64_t>(it->second->pending_reported));
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  c_connections_closed_->Increment();
  g_connections_live_->Add(-1);
}

NetServer::Stats NetServer::stats() const {
  // Derived view over the registry — the counters ARE the stats; this
  // struct just freezes one read of each.
  Stats s;
  s.connections_accepted = c_connections_accepted_->value();
  s.connections_closed = c_connections_closed_->value();
  s.frames_received = c_frames_received_->value();
  s.bytes_received = c_bytes_received_->value();
  s.bytes_sent = c_bytes_sent_->value();
  s.ingest_requests = c_ingest_requests_->value();
  s.records_offered = c_records_offered_->value();
  s.records_acked = c_records_acked_->value();
  s.records_skipped = c_records_skipped_->value();
  s.records_nacked = c_records_nacked_->value();
  s.nacks_overloaded = c_nacks_overloaded_->value();
  s.nacks_stopped = c_nacks_stopped_->value();
  s.nacks_malformed = c_nacks_malformed_->value();
  s.nacks_too_large = c_nacks_too_large_->value();
  s.nacks_internal = c_nacks_internal_->value();
  s.queries = c_queries_->value();
  s.read_pauses = c_read_pauses_->value();
  return s;
}

std::string NetServer::PrometheusText() const {
  // Shard-system registries aggregated (per-shard series kept only when
  // there is more than one shard — duplicates otherwise), then the
  // server's own net.* families merged on top. Name collisions cannot
  // happen: shard registries never register net.* instruments.
  std::vector<MetricsSnapshot> parts;
  parts.reserve(system_->num_shards());
  for (size_t i = 0; i < system_->num_shards(); ++i) {
    parts.push_back(system_->shard_store(i)->metrics_registry()->Snapshot());
  }
  MetricsSnapshot merged =
      AggregateSnapshots(parts, /*include_per_shard=*/system_->num_shards() >
                                    1);
  MetricsSnapshot net = registry_->Snapshot();
  for (auto& [name, value] : net.counters) merged.counters[name] = value;
  for (auto& [name, value] : net.gauges) merged.gauges[name] = value;
  for (auto& [name, hist] : net.histograms) {
    merged.histograms[name] = std::move(hist);
  }
  // The sub.* families (including sub.pushes, which the loop thread
  // counts into the manager's registry) ride the same exposition.
  MetricsSnapshot sub = subs_->metrics_registry()->Snapshot();
  for (auto& [name, value] : sub.counters) merged.counters[name] = value;
  for (auto& [name, value] : sub.gauges) merged.gauges[name] = value;
  for (auto& [name, hist] : sub.histograms) {
    merged.histograms[name] = std::move(hist);
  }
  return merged.ToPrometheus();
}

std::string NetServer::StatsJson() const {
  const Stats s = stats();
  std::ostringstream os;
  os << "{\"system\":{"
     << "\"accepted\":" << system_->accepted()
     << ",\"digested_copies\":" << system_->digested()
     << ",\"routed_copies\":" << system_->routed_copies()
     << ",\"skipped_no_terms\":" << system_->skipped_no_terms()
     << ",\"num_shards\":" << system_->num_shards()
     << ",\"queue_depth_total\":" << system_->total_queue_depth()
     << ",\"queue_depth_max\":" << system_->max_queue_depth()
     << "},\"server\":{"
     << "\"connections_accepted\":" << s.connections_accepted
     << ",\"connections_closed\":" << s.connections_closed
     << ",\"frames_received\":" << s.frames_received
     << ",\"bytes_received\":" << s.bytes_received
     << ",\"bytes_sent\":" << s.bytes_sent
     << ",\"ingest_requests\":" << s.ingest_requests
     << ",\"records_offered\":" << s.records_offered
     << ",\"records_acked\":" << s.records_acked
     << ",\"records_skipped\":" << s.records_skipped
     << ",\"records_nacked\":" << s.records_nacked
     << ",\"nacks_overloaded\":" << s.nacks_overloaded
     << ",\"nacks_stopped\":" << s.nacks_stopped
     << ",\"nacks_malformed\":" << s.nacks_malformed
     << ",\"nacks_too_large\":" << s.nacks_too_large
     << ",\"nacks_internal\":" << s.nacks_internal
     << ",\"queries\":" << s.queries
     << ",\"read_pauses\":" << s.read_pauses
     << "},\"subscriptions\":{"
     << "\"active\":" << subs_->num_active()
     << ",\"pushes\":" << c_sub_pushes_->value() << "}}";
  return os.str();
}

}  // namespace net
}  // namespace kflush
