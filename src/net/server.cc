#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/logging.h"

namespace kflush {
namespace net {
namespace {

constexpr int kListenBacklog = 128;
constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

// epoll event tag: fd in the low 32 bits, connection generation in the
// high 32. A CloseConnection followed by an accept within one epoll_wait
// batch can hand the same fd number to a new connection; stale events
// still queued in that batch then carry the old generation and are
// skipped instead of dispatching to (and possibly closing) the new
// connection. The listening socket and eventfd use generation 0 — they
// stay open for the server's lifetime, so their fds are never reused.
uint64_t PackTag(int fd, uint32_t gen) {
  return (static_cast<uint64_t>(gen) << 32) | static_cast<uint32_t>(fd);
}

}  // namespace

NetServer::NetServer(ShardedMicroblogSystem* system, ServerOptions options)
    : system_(system), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    Status s = Errno("epoll_create1");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    Status s = Errno("eventfd");
    ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = PackTag(listen_fd_, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = PackTag(wake_fd_, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void NetServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::Stop() {
  RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread closed the connections; release the listening state.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void NetServer::AwaitStop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock,
                [this] { return !running_.load(std::memory_order_acquire); });
}

void NetServer::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      KFLUSH_WARN("epoll_wait failed: " << std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = static_cast<int>(events[i].data.u64 & 0xFFFFFFFFu);
      const uint32_t gen = static_cast<uint32_t>(events[i].data.u64 >> 32);
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drained,
                                            sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      auto it = connections_.find(fd);
      // Generation mismatch: the event is for an already-closed
      // connection whose fd number was reused within this batch.
      if (it == connections_.end() || it->second->gen != gen) continue;
      Connection* conn = it->second.get();
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) HandleReadable(conn);
      // HandleReadable may have closed the connection (protocol error /
      // EOF); re-look it up before the write half.
      it = connections_.find(fd);
      if (it == connections_.end() || it->second->gen != gen) continue;
      if ((mask & EPOLLOUT) != 0) HandleWritable(it->second.get());
      if (shutdown_via_protocol_) break;
    }
    if (shutdown_via_protocol_) break;
  }
  // Teardown on the loop thread: close every connection, then flip
  // running_ so AwaitStop wakes.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    running_.store(false, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void NetServer::AcceptConnections() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      KFLUSH_WARN("accept failed: " << std::strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->gen = ++next_conn_gen_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = PackTag(fd, conn->gen);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::HandleReadable(Connection* conn) {
  char chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      counters_.bytes_received.fetch_add(static_cast<uint64_t>(n),
                                         std::memory_order_relaxed);
      // Oversized pipelining guard: cap the unparsed buffer at one max
      // frame plus a read chunk; ProcessInput below will drain it.
      if (conn->in.size() >
          options_.max_frame_bytes + kFrameHeaderBytes + kReadChunk) {
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      // Serve whatever complete frames arrived, then close. ProcessInput
      // can destroy *conn (malformed frame whose NACK flushes fully, or
      // a write error), so capture the fd first and only touch the
      // connection again through a fresh lookup.
      const int fd = conn->fd;
      ProcessInput(conn);
      auto it = connections_.find(fd);
      if (it != connections_.end()) {
        FlushWrites(it->second.get());
        CloseConnection(fd);
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  ProcessInput(conn);
}

void NetServer::ProcessInput(Connection* conn) {
  size_t consumed = 0;
  const int fd = conn->fd;
  while (true) {
    size_t frame_len = 0;
    const FrameStatus fs =
        PeekFrame(conn->in.data() + consumed, conn->in.size() - consumed,
                  options_.max_frame_bytes, &frame_len);
    if (fs == FrameStatus::kNeedMore) break;
    if (fs == FrameStatus::kCorrupt) {
      counters_.nacks_malformed.fetch_add(1, std::memory_order_relaxed);
      EncodeNack(0, NackReason::kMalformed, 0, &conn->out);
      conn->close_after_flush = true;
      conn->in.clear();
      consumed = 0;
      break;
    }
    Message message;
    Status s = DecodeMessage(conn->in.data() + consumed, frame_len, &message);
    consumed += frame_len;
    counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
    if (!s.ok()) {
      // The frame was checksum-intact but semantically malformed (or the
      // checksum failed): explicit NACK, then drop the stream — framing
      // can no longer be trusted.
      counters_.nacks_malformed.fetch_add(1, std::memory_order_relaxed);
      EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
      conn->close_after_flush = true;
      break;
    }
    HandleMessage(conn, std::move(message));
    if (connections_.count(fd) == 0) return;  // handler closed it
    if (conn->close_after_flush || shutdown_via_protocol_) break;
  }
  if (consumed > 0) conn->in.erase(0, consumed);
  FlushWrites(conn);
}

void NetServer::HandleMessage(Connection* conn, Message message) {
  switch (message.type) {
    case MsgType::kPing:
      EncodeEmpty(MsgType::kPong, message.request_id, &conn->out);
      break;
    case MsgType::kIngest:
      HandleIngest(conn, std::move(message));
      break;
    case MsgType::kQuery:
      HandleQuery(conn, message);
      break;
    case MsgType::kStats:
      EncodeStatsResult(message.request_id, StatsJson(), &conn->out);
      break;
    case MsgType::kShutdown:
      EncodeEmpty(MsgType::kShutdownAck, message.request_id, &conn->out);
      conn->close_after_flush = true;
      shutdown_via_protocol_ = true;
      break;
    default:
      // Server-to-client message types arriving at the server are a
      // client bug, not a stream corruption: NACK and keep the stream.
      counters_.nacks_malformed.fetch_add(1, std::memory_order_relaxed);
      EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
      break;
  }
}

void NetServer::HandleIngest(Connection* conn, Message message) {
  counters_.ingest_requests.fetch_add(1, std::memory_order_relaxed);
  const uint64_t offered = message.blogs.size();
  counters_.records_offered.fetch_add(offered, std::memory_order_relaxed);
  if (offered > options_.max_batch_records) {
    counters_.nacks_too_large.fetch_add(1, std::memory_order_relaxed);
    counters_.records_nacked.fetch_add(offered, std::memory_order_relaxed);
    EncodeNack(message.request_id, NackReason::kTooLarge, 0, &conn->out);
    return;
  }
  const size_t depth = system_->max_queue_depth();
  if (options_.admission_queue_soft_limit > 0 &&
      depth >= options_.admission_queue_soft_limit) {
    counters_.nacks_overloaded.fetch_add(1, std::memory_order_relaxed);
    counters_.records_nacked.fetch_add(offered, std::memory_order_relaxed);
    EncodeNack(message.request_id, NackReason::kOverloaded,
               static_cast<uint32_t>(depth), &conn->out);
    return;
  }
  uint64_t admitted = 0;
  uint64_t skipped = 0;
  const ShardedMicroblogSystem::SubmitOutcome outcome =
      system_->TrySubmit(std::move(message.blogs), &admitted, &skipped);
  switch (outcome) {
    case ShardedMicroblogSystem::SubmitOutcome::kAccepted:
      counters_.records_acked.fetch_add(admitted, std::memory_order_relaxed);
      counters_.records_skipped.fetch_add(skipped, std::memory_order_relaxed);
      EncodeIngestAck(message.request_id, static_cast<uint32_t>(admitted),
                      static_cast<uint32_t>(skipped), &conn->out);
      break;
    case ShardedMicroblogSystem::SubmitOutcome::kOverloaded:
      counters_.nacks_overloaded.fetch_add(1, std::memory_order_relaxed);
      counters_.records_nacked.fetch_add(offered, std::memory_order_relaxed);
      EncodeNack(message.request_id, NackReason::kOverloaded,
                 static_cast<uint32_t>(system_->max_queue_depth()),
                 &conn->out);
      break;
    case ShardedMicroblogSystem::SubmitOutcome::kStopped:
      counters_.nacks_stopped.fetch_add(1, std::memory_order_relaxed);
      counters_.records_nacked.fetch_add(offered, std::memory_order_relaxed);
      EncodeNack(message.request_id, NackReason::kStopped, 0, &conn->out);
      break;
  }
}

void NetServer::HandleQuery(Connection* conn, const Message& message) {
  counters_.queries.fetch_add(1, std::memory_order_relaxed);
  if (message.query.terms.empty()) {
    counters_.nacks_malformed.fetch_add(1, std::memory_order_relaxed);
    EncodeNack(message.request_id, NackReason::kMalformed, 0, &conn->out);
    return;
  }
  Result<QueryResult> result = system_->Query(message.query);
  if (!result.ok()) {
    counters_.nacks_internal.fetch_add(1, std::memory_order_relaxed);
    EncodeNack(message.request_id, NackReason::kInternal, 0, &conn->out);
    return;
  }
  EncodeQueryResult(message.request_id, *result, &conn->out);
}

void NetServer::FlushWrites(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::write(conn->fd, conn->out.data() + conn->out_offset,
                conn->out.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      counters_.bytes_sent.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->fd);
    return;
  }
  if (conn->out_offset >= conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) {
      CloseConnection(conn->fd);
      return;
    }
  }
  UpdateInterest(conn);
}

void NetServer::HandleWritable(Connection* conn) { FlushWrites(conn); }

void NetServer::UpdateInterest(Connection* conn) {
  const size_t pending = conn->out.size() - conn->out_offset;
  const bool want_write = pending > 0;
  // Connection-level backpressure: past the limit, stop reading until
  // the peer drains half of it.
  bool read_paused = conn->read_paused;
  if (!read_paused && pending > options_.conn_write_buffer_limit) {
    read_paused = true;
    counters_.read_pauses.fetch_add(1, std::memory_order_relaxed);
  } else if (read_paused && pending <= options_.conn_write_buffer_limit / 2) {
    read_paused = false;
  }
  if (want_write == conn->want_write && read_paused == conn->read_paused) {
    return;
  }
  conn->want_write = want_write;
  conn->read_paused = read_paused;
  epoll_event ev{};
  ev.events = (read_paused ? 0u : EPOLLIN) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = PackTag(conn->fd, conn->gen);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  s.frames_received =
      counters_.frames_received.load(std::memory_order_relaxed);
  s.bytes_received = counters_.bytes_received.load(std::memory_order_relaxed);
  s.bytes_sent = counters_.bytes_sent.load(std::memory_order_relaxed);
  s.ingest_requests =
      counters_.ingest_requests.load(std::memory_order_relaxed);
  s.records_offered =
      counters_.records_offered.load(std::memory_order_relaxed);
  s.records_acked = counters_.records_acked.load(std::memory_order_relaxed);
  s.records_skipped =
      counters_.records_skipped.load(std::memory_order_relaxed);
  s.records_nacked = counters_.records_nacked.load(std::memory_order_relaxed);
  s.nacks_overloaded =
      counters_.nacks_overloaded.load(std::memory_order_relaxed);
  s.nacks_stopped = counters_.nacks_stopped.load(std::memory_order_relaxed);
  s.nacks_malformed =
      counters_.nacks_malformed.load(std::memory_order_relaxed);
  s.nacks_too_large =
      counters_.nacks_too_large.load(std::memory_order_relaxed);
  s.nacks_internal = counters_.nacks_internal.load(std::memory_order_relaxed);
  s.queries = counters_.queries.load(std::memory_order_relaxed);
  s.read_pauses = counters_.read_pauses.load(std::memory_order_relaxed);
  return s;
}

std::string NetServer::StatsJson() const {
  const Stats s = stats();
  std::ostringstream os;
  os << "{\"system\":{"
     << "\"accepted\":" << system_->accepted()
     << ",\"digested_copies\":" << system_->digested()
     << ",\"routed_copies\":" << system_->routed_copies()
     << ",\"skipped_no_terms\":" << system_->skipped_no_terms()
     << ",\"num_shards\":" << system_->num_shards()
     << ",\"queue_depth_total\":" << system_->total_queue_depth()
     << ",\"queue_depth_max\":" << system_->max_queue_depth()
     << "},\"server\":{"
     << "\"connections_accepted\":" << s.connections_accepted
     << ",\"connections_closed\":" << s.connections_closed
     << ",\"frames_received\":" << s.frames_received
     << ",\"bytes_received\":" << s.bytes_received
     << ",\"bytes_sent\":" << s.bytes_sent
     << ",\"ingest_requests\":" << s.ingest_requests
     << ",\"records_offered\":" << s.records_offered
     << ",\"records_acked\":" << s.records_acked
     << ",\"records_skipped\":" << s.records_skipped
     << ",\"records_nacked\":" << s.records_nacked
     << ",\"nacks_overloaded\":" << s.nacks_overloaded
     << ",\"nacks_stopped\":" << s.nacks_stopped
     << ",\"nacks_malformed\":" << s.nacks_malformed
     << ",\"nacks_too_large\":" << s.nacks_too_large
     << ",\"nacks_internal\":" << s.nacks_internal
     << ",\"queries\":" << s.queries
     << ",\"read_pauses\":" << s.read_pauses << "}}";
  return os.str();
}

}  // namespace net
}  // namespace kflush
