// NetServer: the epoll event-loop front-end that makes the sharded
// system an actual service. One loop thread multiplexes every
// connection; frames are decoded with net/protocol.h, ingest goes
// through ShardedMicroblogSystem::TrySubmit (all-or-nothing, explicit
// NACK on overload — the event loop never blocks on a full shard
// queue), queries run inline through the fan-out engine, and two
// backpressure mechanisms bound memory:
//
//   * admission control: an ingest batch is NACKed kOverloaded when any
//     owner shard's queue is full (TrySubmit) or, earlier, when the
//     deepest shard queue reaches admission_queue_soft_limit — the
//     server-side view of the system.queue_depth gauge.
//   * connection-level backpressure: a connection whose pending response
//     bytes exceed conn_write_buffer_limit stops being read (EPOLLIN is
//     dropped) until the client drains its side, so one slow reader
//     cannot balloon server memory.
//
// See docs/INTERNALS.md, "Networking".

#ifndef KFLUSH_NET_SERVER_H_
#define KFLUSH_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/sharded_system.h"
#include "net/protocol.h"
#include "util/status.h"

namespace kflush {
namespace net {

struct ServerOptions {
  /// Listen address. Loopback by default; the harness and tests never
  /// need more.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  uint16_t port = 0;
  /// Ingest batches above this record count are NACKed kTooLarge.
  size_t max_batch_records = 16 * 1024;
  /// Frames above this payload size are a protocol error (connection
  /// closed); bounds per-connection buffering.
  size_t max_frame_bytes = 8u << 20;
  /// NACK ingest (kOverloaded) once the deepest shard ingest queue
  /// reaches this many batches, before even routing the batch. 0
  /// disables the early check; TrySubmit's full-queue reservation check
  /// still applies either way.
  size_t admission_queue_soft_limit = 0;
  /// Stop reading a connection while its pending response bytes exceed
  /// this; resume once drained below half of it.
  size_t conn_write_buffer_limit = 4u << 20;
};

class NetServer {
 public:
  /// Monotonic server-side tallies, readable while running. acked/nacked
  /// record counts partition offered records exactly: nothing is ever
  /// silently dropped.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    uint64_t bytes_sent = 0;
    uint64_t ingest_requests = 0;
    uint64_t records_offered = 0;
    uint64_t records_acked = 0;     // admitted with terms
    uint64_t records_skipped = 0;   // admitted, dropped as term-less
    uint64_t records_nacked = 0;
    uint64_t nacks_overloaded = 0;
    uint64_t nacks_stopped = 0;
    uint64_t nacks_malformed = 0;
    uint64_t nacks_too_large = 0;
    uint64_t nacks_internal = 0;
    uint64_t queries = 0;
    uint64_t read_pauses = 0;  // connection-level backpressure engaged
  };

  /// `system` must outlive the server and be Start()ed by the caller.
  NetServer(ShardedMicroblogSystem* system, ServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and launches the event-loop thread.
  Status Start();

  /// Stops the loop, closes every connection, joins. Idempotent; safe to
  /// call concurrently with a protocol-initiated shutdown.
  void Stop();

  /// Async-signal-safe stop request: flags the loop and pokes its
  /// eventfd, nothing else (no join, no frees). A signal handler calls
  /// this; the main thread then AwaitStop()s and Stop()s normally.
  void RequestStop();

  /// Blocks until the server stops (protocol kShutdown, Stop(), or a
  /// fatal loop error).
  void AwaitStop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  Stats stats() const;

  /// The JSON document served for kStats requests (system counters,
  /// queue depths, server tallies).
  std::string StatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    /// Distinguishes this connection from an earlier one that had the
    /// same fd number; epoll events are tagged with it so stale events
    /// left in a batch after a close never dispatch to a successor.
    uint32_t gen = 0;
    std::string in;      // unparsed request bytes
    std::string out;     // unsent response bytes
    size_t out_offset = 0;
    bool want_write = false;    // EPOLLOUT armed
    bool read_paused = false;   // EPOLLIN dropped (backpressure)
    bool close_after_flush = false;
  };

  void Loop();
  void AcceptConnections();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Parses and serves every complete frame in conn->in.
  void ProcessInput(Connection* conn);
  void HandleMessage(Connection* conn, Message message);
  void HandleIngest(Connection* conn, Message message);
  void HandleQuery(Connection* conn, const Message& message);
  /// write()s as much of conn->out as the socket takes; arms EPOLLOUT on
  /// a partial write and engages read-pause past the buffer limit.
  void FlushWrites(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(int fd);
  void RequestStopFromLoop();

  ShardedMicroblogSystem* system_;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool shutdown_via_protocol_ = false;  // loop-thread only

  std::map<int, std::unique_ptr<Connection>> connections_;  // loop-thread only
  uint32_t next_conn_gen_ = 0;  // loop-thread only; 0 reserved for non-conn fds

  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  // Stats counters: written by the loop thread, read from any thread.
  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> frames_received{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> ingest_requests{0};
    std::atomic<uint64_t> records_offered{0};
    std::atomic<uint64_t> records_acked{0};
    std::atomic<uint64_t> records_skipped{0};
    std::atomic<uint64_t> records_nacked{0};
    std::atomic<uint64_t> nacks_overloaded{0};
    std::atomic<uint64_t> nacks_stopped{0};
    std::atomic<uint64_t> nacks_malformed{0};
    std::atomic<uint64_t> nacks_too_large{0};
    std::atomic<uint64_t> nacks_internal{0};
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> read_pauses{0};
  };
  AtomicStats counters_;
};

}  // namespace net
}  // namespace kflush

#endif  // KFLUSH_NET_SERVER_H_
