// NetServer: the epoll event-loop front-end that makes the sharded
// system an actual service. One loop thread multiplexes every
// connection; frames are decoded with net/protocol.h, ingest goes
// through ShardedMicroblogSystem::TrySubmit (all-or-nothing, explicit
// NACK on overload — the event loop never blocks on a full shard
// queue), queries run inline through the fan-out engine, and two
// backpressure mechanisms bound memory:
//
//   * admission control: an ingest batch is NACKed kOverloaded when any
//     owner shard's queue is full (TrySubmit) or, earlier, when the
//     deepest shard queue reaches admission_queue_soft_limit — the
//     server-side view of the system.queue_depth gauge.
//   * connection-level backpressure: a connection whose pending response
//     bytes exceed conn_write_buffer_limit stops being read (EPOLLIN is
//     dropped) until the client drains its side, so one slow reader
//     cannot balloon server memory.
//
// The server also fronts the continuous-query subsystem: kSubscribe
// registers a standing top-k with the SubscriptionManager, and the
// digestion threads' outbox notifications wake the loop (via the same
// eventfd the stop path uses) to drain deltas into server-initiated
// kPush frames. A subscriber whose connection is already past the write
// buffer limit when a push comes due is not silently throttled — the
// server sends a terminal kPush (NACK-style), unsubscribes every
// standing query on the connection, and drops the connection.
//
// See docs/INTERNALS.md, "Networking" and "Continuous queries".

#ifndef KFLUSH_NET_SERVER_H_
#define KFLUSH_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/metrics_registry.h"
#include "core/sharded_system.h"
#include "net/protocol.h"
#include "sub/subscription_manager.h"
#include "util/status.h"

namespace kflush {
namespace net {

struct ServerOptions {
  /// Listen address. Loopback by default; the harness and tests never
  /// need more.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  uint16_t port = 0;
  /// Ingest batches above this record count are NACKed kTooLarge.
  size_t max_batch_records = 16 * 1024;
  /// Frames above this payload size are a protocol error (connection
  /// closed); bounds per-connection buffering.
  size_t max_frame_bytes = 8u << 20;
  /// NACK ingest (kOverloaded) once the deepest shard ingest queue
  /// reaches this many batches, before even routing the batch. 0
  /// disables the early check; TrySubmit's full-queue reservation check
  /// still applies either way.
  size_t admission_queue_soft_limit = 0;
  /// Stop reading a connection while its pending response bytes exceed
  /// this; resume once drained below half of it.
  size_t conn_write_buffer_limit = 4u << 20;
  /// Emit one structured slow-request log line (keyed by request_id) when
  /// an accepted ingest's commit stage — admission to durable commit of
  /// the last owner sub-batch — or a query reaches this many
  /// microseconds. 0 disables.
  uint64_t slow_request_micros = 0;
};

class NetServer {
 public:
  /// Monotonic server-side tallies, readable while running. acked/nacked
  /// record counts partition offered records exactly: nothing is ever
  /// silently dropped.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_received = 0;
    uint64_t bytes_received = 0;
    uint64_t bytes_sent = 0;
    uint64_t ingest_requests = 0;
    uint64_t records_offered = 0;
    uint64_t records_acked = 0;     // admitted with terms
    uint64_t records_skipped = 0;   // admitted, dropped as term-less
    uint64_t records_nacked = 0;
    uint64_t nacks_overloaded = 0;
    uint64_t nacks_stopped = 0;
    uint64_t nacks_malformed = 0;
    uint64_t nacks_too_large = 0;
    uint64_t nacks_internal = 0;
    uint64_t queries = 0;
    uint64_t read_pauses = 0;  // connection-level backpressure engaged
  };

  /// `system` must outlive the server and be Start()ed by the caller.
  NetServer(ShardedMicroblogSystem* system, ServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and launches the event-loop thread.
  Status Start();

  /// Stops the loop, closes every connection, joins. Idempotent; safe to
  /// call concurrently with a protocol-initiated shutdown.
  void Stop();

  /// Async-signal-safe stop request: flags the loop and pokes its
  /// eventfd, nothing else (no join, no frees). A signal handler calls
  /// this; the main thread then AwaitStop()s and Stop()s normally.
  void RequestStop();

  /// Blocks until the server stops (protocol kShutdown, Stop(), or a
  /// fatal loop error).
  void AwaitStop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  Stats stats() const;

  /// The JSON document served for kStats requests (system counters,
  /// queue depths, server tallies).
  std::string StatsJson() const;

  /// The Prometheus exposition served for kStatsProm requests: the
  /// aggregated shard snapshots (plus per-shard series when sharded)
  /// merged with the server's own net.* registry.
  std::string PrometheusText() const;

  /// Lifecycle as served for kHealth requests: kStarting until Start()
  /// succeeds, kServing while the loop accepts work, kDraining once a
  /// stop was requested (signal, Stop(), or protocol shutdown).
  ServingState health() const {
    return static_cast<ServingState>(
        health_.load(std::memory_order_acquire));
  }

  /// The registry backing every net.* series (counters, gauges, and the
  /// per-stage ingest latency histograms). Lives as long as the last
  /// in-flight IngestTicket, not just the server (shared_ptr).
  const std::shared_ptr<MetricsRegistry>& metrics_registry() const {
    return registry_;
  }

  /// The continuous-query subsystem this server fronts (sub.* families
  /// live in its registry; tests reconcile push counts through it).
  SubscriptionManager* subscriptions() { return subs_.get(); }
  const SubscriptionManager* subscriptions() const { return subs_.get(); }

 private:
  struct Connection {
    int fd = -1;
    /// Distinguishes this connection from an earlier one that had the
    /// same fd number; epoll events are tagged with it so stale events
    /// left in a batch after a close never dispatch to a successor.
    uint32_t gen = 0;
    std::string in;      // unparsed request bytes
    std::string out;     // unsent response bytes
    size_t out_offset = 0;
    /// Pending response bytes last folded into net.pending_write_bytes;
    /// the gauge moves by deltas so it converges across connections.
    size_t pending_reported = 0;
    bool want_write = false;    // EPOLLOUT armed
    bool read_paused = false;   // EPOLLIN dropped (backpressure)
    bool close_after_flush = false;
    /// Standing subscriptions registered over this connection; pushes
    /// route back here and a close unsubscribes them all.
    std::vector<uint64_t> sub_ids;
  };

  void Loop();
  void AcceptConnections();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Parses and serves every complete frame in conn->in.
  void ProcessInput(Connection* conn);
  void HandleMessage(Connection* conn, Message message,
                     uint64_t decode_micros);
  void HandleIngest(Connection* conn, Message message,
                    uint64_t decode_micros);
  void HandleQuery(Connection* conn, const Message& message);
  void HandleSubscribe(Connection* conn, const Message& message);
  void HandleUnsubscribe(Connection* conn, const Message& message);
  /// Drains notified subscriptions into kPush frames on the loop thread.
  /// A connection already past the write buffer limit gets the terminal
  /// treatment (DropConnectionSubscriptions + close) instead of more
  /// buffered deltas.
  void DrainSubscriptionPushes();
  /// Unsubscribes every standing query on `conn`. With `terminal_push`,
  /// each gets a terminal kPush frame first (slow-consumer NACK); without
  /// it the connection is already gone and undrained deltas count as
  /// dropped inside the manager.
  void DropConnectionSubscriptions(Connection* conn, bool terminal_push);
  /// Drains pending_ack_stamps_ into the respond-stage histogram after a
  /// write attempt. Must run before ProcessInput returns on every path —
  /// stage-histogram counts reconcile exactly against acked requests.
  void RecordAckStamps();
  /// write()s as much of conn->out as the socket takes; arms EPOLLOUT on
  /// a partial write and engages read-pause past the buffer limit.
  void FlushWrites(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(int fd);
  void RequestStopFromLoop();

  ShardedMicroblogSystem* system_;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool shutdown_via_protocol_ = false;  // loop-thread only

  std::map<int, std::unique_ptr<Connection>> connections_;  // loop-thread only
  uint32_t next_conn_gen_ = 0;  // loop-thread only; 0 reserved for non-conn fds

  // Continuous queries. The manager is constructed with the server (its
  // sinks hook the system's shard stores) so the pointer is stable; the
  // notifier is installed at Start and quiesced in Stop before wake_fd_
  // closes, because digestion threads fire it.
  std::unique_ptr<SubscriptionManager> subs_;
  std::map<uint64_t, int> sub_conns_;  // sub_id -> fd; loop-thread only
  std::mutex push_mu_;
  std::vector<uint64_t> pending_push_subs_;  // guarded by push_mu_

  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  // The single source of truth for every server tally: the registry's
  // net.* families (Stats/StatsJson are derived views). Owned via
  // shared_ptr because in-flight IngestTickets keep the commit-stage
  // histogram alive past server teardown.
  std::shared_ptr<MetricsRegistry> registry_ =
      std::make_shared<MetricsRegistry>();

  // Instruments resolved once in the constructor (pointers are stable for
  // the registry's lifetime). Written by the loop thread (commit-stage
  // histogram: digestion threads), read from any thread.
  Counter* c_connections_accepted_;
  Counter* c_connections_closed_;
  Counter* c_frames_received_;
  Counter* c_bytes_received_;
  Counter* c_bytes_sent_;
  Counter* c_ingest_requests_;
  Counter* c_ingest_acks_;  // acked ingest requests (stage-count anchor)
  Counter* c_records_offered_;
  Counter* c_records_acked_;
  Counter* c_records_skipped_;
  Counter* c_records_nacked_;
  Counter* c_nacks_overloaded_;
  Counter* c_nacks_stopped_;
  Counter* c_nacks_malformed_;
  Counter* c_nacks_too_large_;
  Counter* c_nacks_internal_;
  Counter* c_queries_;
  Counter* c_read_pauses_;
  // Lives in the manager's registry (sub.* family), not registry_: one
  // registry carries the whole subscription story, published through
  // PrometheusText like the shard snapshots.
  Counter* c_sub_pushes_;
  Gauge* g_connections_live_;
  Gauge* g_pending_write_bytes_;
  // Ack latency decomposition, recorded once per *acked* ingest request:
  // decode (frame parse), admission (handler entry -> TrySubmit outcome),
  // commit (submit -> durable commit of the last owner sub-batch, i.e.
  // queue wait + digest + WAL fsync), respond (ack encoded -> write
  // attempt). Each histogram's count equals net.ingest_acks exactly.
  ConcurrentHistogram* h_stage_decode_;
  ConcurrentHistogram* h_stage_admission_;
  ConcurrentHistogram* h_stage_commit_;
  ConcurrentHistogram* h_stage_respond_;
  ConcurrentHistogram* h_query_micros_;

  /// (request_id, ack-encode timestamp) for acks encoded during the
  /// current ProcessInput pass; drained by RecordAckStamps. Loop-thread
  /// only.
  std::vector<std::pair<uint64_t, uint64_t>> pending_ack_stamps_;

  std::atomic<uint8_t> health_{
      static_cast<uint8_t>(ServingState::kStarting)};
  uint64_t start_micros_ = 0;  // MonotonicMicros() at successful Start()
};

}  // namespace net
}  // namespace kflush

#endif  // KFLUSH_NET_SERVER_H_
