#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/durability.h"

namespace kflush {
namespace net {

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<NetClient>> NetClient::Connect(const std::string& host,
                                                      uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<NetClient>(new NetClient(fd));
}

Status NetClient::SendRaw(const std::string& wire) {
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = ::write(fd_, wire.data() + off, wire.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Message> NetClient::RecvMessage() {
  char chunk[64 * 1024];
  for (;;) {
    size_t frame_len = 0;
    FrameStatus fs = PeekFrame(inbuf_.data(), inbuf_.size(),
                               kMaxFramePayloadBytes, &frame_len);
    if (fs == FrameStatus::kCorrupt) {
      return Status::Corruption("implausible frame length from server");
    }
    if (fs == FrameStatus::kFrame) {
      Message message;
      Status s = DecodeMessage(inbuf_.data(), frame_len, &message);
      inbuf_.erase(0, frame_len);
      if (!s.ok()) return s;
      return message;
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connection closed");
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

namespace {

Status UnexpectedReply(MsgType want, const Message& got) {
  if (got.type == MsgType::kNack) {
    return Status::Aborted(std::string("server nack: ") +
                           NackReasonName(got.reason));
  }
  return Status::Internal(std::string("expected ") + MsgTypeName(want) +
                          ", got " + MsgTypeName(got.type));
}

}  // namespace

Status NetClient::Ping() {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeEmpty(MsgType::kPing, id, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kPong) return UnexpectedReply(MsgType::kPong, *reply);
  return Status::OK();
}

Result<Message> NetClient::Ingest(const std::vector<Microblog>& blogs) {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeIngest(id, blogs, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kIngestAck && reply->type != MsgType::kNack) {
    return UnexpectedReply(MsgType::kIngestAck, *reply);
  }
  return reply;
}

Result<QueryResult> NetClient::Query(const TopKQuery& query) {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeQuery(id, query, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kQueryResult) {
    return UnexpectedReply(MsgType::kQueryResult, *reply);
  }
  QueryResult result;
  result.results = std::move(reply->blogs);
  result.memory_hit = reply->memory_hit;
  result.from_memory = reply->from_memory;
  result.from_disk = reply->from_disk;
  return result;
}

Result<std::string> NetClient::Stats() {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeEmpty(MsgType::kStats, id, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kStatsResult) {
    return UnexpectedReply(MsgType::kStatsResult, *reply);
  }
  return std::move(reply->text);
}

Result<std::string> NetClient::StatsProm() {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeEmpty(MsgType::kStatsProm, id, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kStatsResult) {
    return UnexpectedReply(MsgType::kStatsResult, *reply);
  }
  return std::move(reply->text);
}

Result<NetClient::HealthInfo> NetClient::Health() {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeEmpty(MsgType::kHealth, id, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kHealthResult) {
    return UnexpectedReply(MsgType::kHealthResult, *reply);
  }
  HealthInfo info;
  info.state = reply->health;
  info.uptime_micros = reply->uptime_micros;
  return info;
}

Result<Message> NetClient::RecvReply() {
  for (;;) {
    Result<Message> m = RecvMessage();
    if (!m.ok()) return m;
    if (m->type == MsgType::kPush) {
      pending_pushes_.push_back(std::move(*m));
      continue;
    }
    return m;
  }
}

Result<uint64_t> NetClient::Subscribe(const SubscriptionSpec& spec) {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeSubscribe(id, spec, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kSubAck) {
    return UnexpectedReply(MsgType::kSubAck, *reply);
  }
  return reply->sub_id;
}

Status NetClient::Unsubscribe(uint64_t sub_id) {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeUnsubscribe(id, sub_id, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvReply();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kSubAck) {
    return UnexpectedReply(MsgType::kSubAck, *reply);
  }
  return Status::OK();
}

Result<Message> NetClient::RecvPush() {
  if (!pending_pushes_.empty()) {
    Message m = std::move(pending_pushes_.front());
    pending_pushes_.pop_front();
    return m;
  }
  Result<Message> m = RecvMessage();
  if (!m.ok()) return m;
  if (m->type != MsgType::kPush) return UnexpectedReply(MsgType::kPush, *m);
  return m;
}

Status NetClient::Shutdown() {
  std::string wire;
  uint64_t id = NextRequestId();
  EncodeEmpty(MsgType::kShutdown, id, &wire);
  Status s = SendRaw(wire);
  if (!s.ok()) return s;
  Result<Message> reply = RecvMessage();
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kShutdownAck) {
    return UnexpectedReply(MsgType::kShutdownAck, *reply);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace kflush
