#include "sim/experiment.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "core/sharded_store.h"
#include "util/logging.h"

namespace kflush {

namespace {

/// Shared run state: a store driven by a SimClock pinned to the stream's
/// arrival timestamps.
struct Run {
  explicit Run(const ExperimentConfig& config)
      : clock(config.stream.start_time),
        store([&] {
          StoreOptions so = config.store;
          so.clock = &clock;
          so.auto_flush = true;
          return so;
        }()),
        engine(&store),
        tweets(config.stream),
        queries(config.workload, config.stream) {}

  /// Streams one tweet, advancing the clock to its arrival time.
  void StreamOne() {
    Microblog blog = tweets.Next();
    clock.Set(blog.created_at);
    Status s = store.Insert(std::move(blog));
    if (!s.ok()) {
      KFLUSH_WARN("experiment insert failed: " << s.ToString());
    }
  }

  SimClock clock;
  MicroblogStore store;
  QueryEngine engine;
  TweetGenerator tweets;
  QueryGenerator queries;
};

/// Sharded variant of Run: ingest routes through ShardedMicroblogStore,
/// queries through the fan-out engine.
struct ShardedRun {
  explicit ShardedRun(const ExperimentConfig& config)
      : clock(config.stream.start_time),
        store([&] {
          ShardedStoreOptions so;
          so.store = config.store;
          so.store.clock = &clock;
          so.store.auto_flush = true;
          so.num_shards = config.shards;
          return so;
        }()),
        tweets(config.stream),
        queries(config.workload, config.stream) {}

  void StreamOne() {
    Microblog blog = tweets.Next();
    clock.Set(blog.created_at);
    Status s = store.Insert(std::move(blog));
    if (!s.ok()) {
      KFLUSH_WARN("experiment insert failed: " << s.ToString());
    }
  }

  SimClock clock;
  ShardedMicroblogStore store;
  TweetGenerator tweets;
  QueryGenerator queries;
};

ExperimentResult RunShardedExperiment(const ExperimentConfig& config) {
  ShardedRun run(config);
  ExperimentResult result;
  const size_t n = run.store.num_shards();

  std::deque<EvictionAuditTrail> audits;
  if (config.audit_evictions) {
    for (size_t i = 0; i < n; ++i) {
      audits.emplace_back();
      run.store.shard(i)->policy()->set_audit_trail(&audits.back());
    }
  }

  {
    TraceSpan span("experiment", "stream_to_steady_state",
                   {TraceArg::Uint("shards", n)});
    // Steady state for the deployment: the shards have together triggered
    // the configured number of flush cycles (each over its own slice of
    // the budget, so per-record cost matches the single-shard driver).
    while (run.store.AggregatedIngestStats().flush_triggers <
               config.steady_state_flushes &&
           run.tweets.generated() < config.max_stream_tweets) {
      run.StreamOne();
    }
    span.End({TraceArg::Uint("tweets", run.tweets.generated())});
  }
  result.reached_steady_state =
      run.store.AggregatedIngestStats().flush_triggers >=
      config.steady_state_flushes;

  TraceSpan measured_span("experiment", "measured_queries",
                          {TraceArg::Uint("queries", config.num_queries)});
  run.store.engine()->ResetMetrics();
  const double tweets_per_query =
      config.queries_per_second <= 0.0
          ? 0.0
          : 1e6 / (config.queries_per_second *
                   static_cast<double>(
                       std::max<Timestamp>(
                           config.stream.arrival_interval_micros, 1)));
  double ingest_debt = 0.0;
  for (uint64_t q = 0; q < config.num_queries; ++q) {
    ingest_debt += tweets_per_query;
    while (ingest_debt >= 1.0) {
      run.StreamOne();
      ingest_debt -= 1.0;
    }
    run.clock.Advance(1);
    TopKQuery query = run.queries.Next();
    auto outcome = run.store.engine()->Execute(query);
    if (!outcome.ok()) {
      KFLUSH_WARN("experiment query failed: " << outcome.status().ToString());
    }
  }
  measured_span.End();

  result.query_metrics = run.store.engine()->metrics();
  if (config.audit_evictions) {
    for (size_t i = 0; i < n; ++i) {
      FlushPolicy* policy = run.store.shard(i)->policy();
      policy->set_audit_trail(nullptr);
      const std::vector<EvictionAuditRecord> records = audits[i].Records();
      Status s = ReconcileAuditWithStats(records, policy->stats());
      if (!s.ok() && result.audit_reconciliation.ok()) {
        result.audit_reconciliation = s;
      }
      result.eviction_audit.insert(result.eviction_audit.end(),
                                   records.begin(), records.end());
    }
  }
  result.k_filled_terms = run.store.NumKFilledTerms();
  result.num_terms = run.store.NumTerms();
  result.aux_memory_bytes = run.store.AuxMemoryBytes();
  result.policy_stats = run.store.AggregatedPolicyStats();
  result.ingest_stats = run.store.AggregatedIngestStats();
  result.disk_stats = run.store.AggregatedDiskStats();
  result.data_bytes_used = run.store.DataUsed();
  result.tweets_streamed = run.tweets.generated();

  std::vector<size_t> sizes;
  run.store.CollectEntrySizes(&sizes);
  result.frequency = ComputeFrequencySnapshot(sizes, run.store.k());

  result.peak_flush_buffer_bytes = run.store.PeakFlushBufferBytes();
  result.metrics = run.store.AggregatedMetrics(/*include_per_shard=*/true);
  return result;
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  if (config.shards > 1) {
    return RunShardedExperiment(config);
  }
  Run run(config);
  ExperimentResult result;

  EvictionAuditTrail audit;
  if (config.audit_evictions) {
    run.store.policy()->set_audit_trail(&audit);
  }

  // --- Phase A: reach steady state ("after filling the main-memory
  // budget and have multiple data flushes", §V). ---
  {
    TraceSpan span("experiment", "stream_to_steady_state");
    while (run.store.ingest_stats().flush_triggers <
               config.steady_state_flushes &&
           run.tweets.generated() < config.max_stream_tweets) {
      run.StreamOne();
    }
    span.End({TraceArg::Uint("tweets", run.tweets.generated())});
  }
  result.reached_steady_state =
      run.store.ingest_stats().flush_triggers >= config.steady_state_flushes;

  // --- Phase B: measured queries interleaved with continued ingest at
  // the configured tweet/query rate ratio. ---
  TraceSpan measured_span("experiment", "measured_queries",
                          {TraceArg::Uint("queries", config.num_queries)});
  run.engine.ResetMetrics();
  const double tweets_per_query =
      config.queries_per_second <= 0.0
          ? 0.0
          : 1e6 / (config.queries_per_second *
                   static_cast<double>(
                       std::max<Timestamp>(
                           config.stream.arrival_interval_micros, 1)));
  double ingest_debt = 0.0;
  for (uint64_t q = 0; q < config.num_queries; ++q) {
    ingest_debt += tweets_per_query;
    while (ingest_debt >= 1.0) {
      run.StreamOne();
      ingest_debt -= 1.0;
    }
    run.clock.Advance(1);  // queries razor-advance the clock
    TopKQuery query = run.queries.Next();
    auto outcome = run.engine.Execute(query);
    if (!outcome.ok()) {
      KFLUSH_WARN("experiment query failed: " << outcome.status().ToString());
    }
  }
  measured_span.End();

  // --- Collect. ---
  result.query_metrics = run.engine.metrics();
  const FlushPolicy* policy = run.store.policy();
  if (config.audit_evictions) {
    run.store.policy()->set_audit_trail(nullptr);
    result.eviction_audit = audit.Records();
    result.audit_reconciliation =
        ReconcileAuditWithStats(result.eviction_audit, policy->stats());
  }
  result.k_filled_terms = policy->NumKFilledTerms();
  result.num_terms = policy->NumTerms();
  result.aux_memory_bytes = policy->AuxMemoryBytes();
  result.policy_stats = policy->stats();
  result.ingest_stats = run.store.ingest_stats();
  result.disk_stats = run.store.disk()->stats();
  result.data_bytes_used = run.store.tracker().DataUsed();
  result.tweets_streamed = run.tweets.generated();

  std::vector<size_t> sizes;
  policy->CollectEntrySizes(&sizes);
  result.frequency = ComputeFrequencySnapshot(sizes, run.store.k());

  result.peak_flush_buffer_bytes = run.store.flush_buffer().peak_bytes();
  result.metrics = run.store.metrics_registry()->Snapshot();
  return result;
}

std::vector<double> MemoryTimeline(const ExperimentConfig& config,
                                   uint64_t sample_every,
                                   size_t num_samples) {
  Run run(config);
  std::vector<double> samples;
  samples.reserve(num_samples);
  const double budget =
      static_cast<double>(config.store.memory_budget_bytes);
  while (samples.size() < num_samples) {
    for (uint64_t i = 0; i < sample_every; ++i) run.StreamOne();
    samples.push_back(
        static_cast<double>(run.store.tracker().DataUsed()) / budget);
  }
  return samples;
}

std::string ExperimentResult::ToString() const {
  std::ostringstream os;
  os << "steady=" << (reached_steady_state ? "yes" : "no")
     << " streamed=" << tweets_streamed << " terms=" << num_terms
     << " k_filled=" << k_filled_terms << " | " << query_metrics.ToString()
     << " | aux_bytes=" << aux_memory_bytes << " | "
     << frequency.ToString();
  return os.str();
}

}  // namespace kflush
