// The reproducible experiment driver behind every figure in the paper's
// evaluation (§V): build a store under one flushing policy, stream
// synthetic tweets until steady state (memory filled, several flushes
// done — "all results are collected only in the steady state"), then
// replay a query workload interleaved with continued ingest at the
// paper's tweet/query rate ratio, and report hit ratios and memory
// statistics. Single-threaded and fully deterministic (SimClock + seeded
// generators); the threaded digestion-rate experiment (Figure 10(b)) uses
// MicroblogSystem directly instead.

#ifndef KFLUSH_SIM_EXPERIMENT_H_
#define KFLUSH_SIM_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "core/query_engine.h"
#include "core/store.h"
#include "core/trace.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "index/index_stats.h"
#include "policy/flush_policy.h"

namespace kflush {

/// Full configuration of one experiment run.
struct ExperimentConfig {
  StoreOptions store;
  TweetGeneratorOptions stream;
  QueryWorkloadOptions workload;

  /// Number of index shards. 1 = the single-store path (bit-for-bit the
  /// pre-sharding driver); >1 routes ingest through ShardedMicroblogStore
  /// and queries through the fan-out engine, and every result field
  /// reports cross-shard aggregates (store.memory_budget_bytes is the
  /// total, split across shards).
  size_t shards = 1;

  /// Steady state is declared after this many flush cycles have run.
  uint64_t steady_state_flushes = 3;
  /// Safety cap on streamed tweets while reaching steady state.
  uint64_t max_stream_tweets = 3'000'000;
  /// Queries measured after steady state.
  uint64_t num_queries = 20'000;
  /// Queries per second (paper: 25,000 query/s against 6,000 tweet/s);
  /// with the stream's arrival interval this fixes how many tweets are
  /// ingested between consecutive queries.
  double queries_per_second = 25'000.0;

  /// Record a per-victim eviction audit trail over the whole run and
  /// cross-check it against the policy's PhaseStats (result fields
  /// eviction_audit / audit_reconciliation). Unbounded memory in the
  /// number of victims; meant for debugging and integration tests.
  bool audit_evictions = false;
};

/// Everything the figures read off one run.
struct ExperimentResult {
  /// Hit ratios over the measured query phase.
  QueryMetricsSnapshot query_metrics;
  /// k-filled terms at the end of the run (Figures 7/11/12).
  size_t k_filled_terms = 0;
  size_t num_terms = 0;
  /// Policy bookkeeping overhead + peak flush-buffer bytes (Figure 10(a)).
  size_t aux_memory_bytes = 0;
  size_t peak_flush_buffer_bytes = 0;
  /// In-memory frequency snapshot (Figure 1 / §V-A analysis).
  FrequencySnapshot frequency;
  PolicyStats policy_stats;
  IngestStats ingest_stats;
  DiskStats disk_stats;
  size_t data_bytes_used = 0;
  uint64_t tweets_streamed = 0;
  /// True if steady state was reached within the stream cap.
  bool reached_steady_state = false;
  /// Full registry snapshot at the end of the run: every instrument plus
  /// the provider-exported component stats (the `flush.phaseN.*` and
  /// `query.latency_micros.*` series the benchmarks serialize).
  MetricsSnapshot metrics;
  /// With config.audit_evictions: every eviction victim of the run, and
  /// the outcome of ReconcileAuditWithStats against policy_stats (OK when
  /// the audit sums match the per-phase counters exactly). Sharded runs
  /// concatenate the per-shard trails (records carry their shard id) and
  /// reconcile each shard against its own policy before reporting the
  /// first failure, if any.
  std::vector<EvictionAuditRecord> eviction_audit;
  Status audit_reconciliation = Status::OK();

  std::string ToString() const;
};

/// Runs one experiment (single-threaded, deterministic).
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Samples of data-memory utilization over time (Figure 5): streams
/// tweets and records utilization (fraction of budget) after every
/// `sample_every` arrivals, for `num_samples` samples.
std::vector<double> MemoryTimeline(const ExperimentConfig& config,
                                   uint64_t sample_every,
                                   size_t num_samples);

}  // namespace kflush

#endif  // KFLUSH_SIM_EXPERIMENT_H_
