#include "index/spatial_grid.h"

#include <algorithm>
#include <cmath>

namespace kflush {

bool AreaContains(const BoundingBox& box, const Microblog& blog) {
  return blog.has_location && box.Contains(blog.location);
}

std::vector<TermId> TilesOverlapping(const SpatialGridMapper& mapper,
                                     const BoundingBox& box,
                                     size_t max_tiles) {
  std::vector<TermId> tiles;
  const double edge = mapper.tile_edge_degrees();
  const double min_lat = std::fmax(box.min_lat, -90.0);
  const double max_lat = std::fmin(box.max_lat, 90.0);
  const double min_lon = std::fmax(box.min_lon, -180.0);
  const double max_lon = std::fmin(box.max_lon, 180.0);
  if (min_lat > max_lat || min_lon > max_lon) return tiles;

  const TermId first = mapper.TileFor(min_lat, min_lon);
  const TermId last = mapper.TileFor(max_lat, max_lon);
  const uint64_t per_row = mapper.tiles_per_row();
  const uint64_t row0 = first / per_row;
  const uint64_t col0 = first % per_row;
  const uint64_t row1 = last / per_row;
  const uint64_t col1 = last % per_row;
  (void)edge;

  for (uint64_t row = row0; row <= row1; ++row) {
    for (uint64_t col = col0; col <= col1; ++col) {
      tiles.push_back(row * per_row + col);
      if (max_tiles != 0 && tiles.size() >= max_tiles) return tiles;
    }
  }
  return tiles;
}

std::vector<TermId> TileNeighborhood(const SpatialGridMapper& mapper,
                                     double lat, double lon, int radius) {
  std::vector<TermId> tiles;
  const TermId center = mapper.TileFor(lat, lon);
  const uint64_t per_row = mapper.tiles_per_row();
  const int64_t row = static_cast<int64_t>(center / per_row);
  const int64_t col = static_cast<int64_t>(center % per_row);
  for (int64_t dr = -radius; dr <= radius; ++dr) {
    for (int64_t dc = -radius; dc <= radius; ++dc) {
      const int64_t r = row + dr;
      const int64_t c = col + dc;
      if (r < 0 || c < 0 || c >= static_cast<int64_t>(per_row)) continue;
      tiles.push_back(static_cast<uint64_t>(r) * per_row +
                      static_cast<uint64_t>(c));
    }
  }
  return tiles;
}

}  // namespace kflush
