#include "index/segmented_index.h"

#include <algorithm>
#include <queue>

namespace kflush {

SegmentedIndex::SegmentedIndex(MemoryTracker* tracker) : tracker_(tracker) {
  segments_.push_front(std::make_unique<InvertedIndex>(tracker_));
}

void SegmentedIndex::Insert(TermId term, MicroblogId id, double score,
                            Timestamp now) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Charge-free overload: FIFO never consumes top-k displacement reports.
  segments_.front()->Insert(term, id, score, now);
}

size_t SegmentedIndex::Query(TermId term, size_t limit,
                             std::vector<MicroblogId>* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Each segment's list is score-ordered; pull the per-segment top-`limit`
  // postings and merge by score. Under temporal ranking newer segments
  // strictly dominate older ones, but a general ranking can interleave.
  std::vector<Posting> candidates;
  for (const auto& segment : segments_) {
    segment->PeekPostings(term, limit, &candidates);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Posting& a, const Posting& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id > b.id;  // newer id first on score ties
            });
  const size_t n = std::min(limit, candidates.size());
  for (size_t i = 0; i < n; ++i) out->push_back(candidates[i].id);
  return n;
}

size_t SegmentedIndex::EntrySize(TermId term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& segment : segments_) total += segment->EntrySize(term);
  return total;
}

void SegmentedIndex::SealActiveSegment() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  segments_.push_front(std::make_unique<InvertedIndex>(tracker_));
}

size_t SegmentedIndex::FlushOldestSegment(
    const std::function<void(TermId, const Posting&)>& on_removed) {
  std::unique_ptr<InvertedIndex> oldest;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    oldest = std::move(segments_.back());
    segments_.pop_back();
    if (segments_.empty()) {
      segments_.push_front(std::make_unique<InvertedIndex>(tracker_));
    }
  }
  const size_t freed = oldest->MemoryBytes();
  std::vector<TermId> terms;
  oldest->ForEachEntry(
      [&](const EntryMeta& meta) { terms.push_back(meta.term); });
  // Victim order must not depend on hash-map iteration: equal-score disk
  // postings are served in registration order, so replayable runs need the
  // segment's entries dropped in a stable (term id) order.
  std::sort(terms.begin(), terms.end());
  for (TermId term : terms) {
    oldest->RemoveMatching(
        term, /*k=*/0, /*should_remove=*/nullptr,
        [&](const Posting& p, bool) { on_removed(term, p); });
  }
  return freed;
}

size_t SegmentedIndex::NumSegments() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return segments_.size();
}

void SegmentedIndex::ForEachTermCount(
    const std::function<void(TermId, size_t)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& segment : segments_) {
    segment->ForEachEntry(
        [&](const EntryMeta& meta) { fn(meta.term, meta.count); });
  }
}

size_t SegmentedIndex::NumTermsWithAtLeast(size_t k) const {
  std::unordered_map<TermId, size_t> counts;
  ForEachTermCount([&](TermId term, size_t count) { counts[term] += count; });
  size_t result = 0;
  for (const auto& [term, count] : counts) {
    if (count >= k) ++result;
  }
  return result;
}

size_t SegmentedIndex::NumTerms() const {
  std::unordered_map<TermId, size_t> counts;
  ForEachTermCount([&](TermId term, size_t count) { counts[term] += count; });
  return counts.size();
}

size_t SegmentedIndex::TotalPostings() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& segment : segments_) total += segment->TotalPostings();
  return total;
}

size_t SegmentedIndex::MemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& segment : segments_) total += segment->MemoryBytes();
  return total;
}

}  // namespace kflush
