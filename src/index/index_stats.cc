#include "index/index_stats.h"

#include <algorithm>
#include <sstream>

namespace kflush {

const std::vector<size_t> kSizeBucketBounds = {1,   2,   5,    10,   20,
                                               50,  100, 200,  500,  1000,
                                               5000};

FrequencySnapshot ComputeFrequencySnapshot(
    const std::vector<size_t>& entry_sizes, size_t k) {
  FrequencySnapshot snap;
  snap.num_entries = entry_sizes.size();
  snap.size_histogram.assign(kSizeBucketBounds.size(), 0);
  for (size_t size : entry_sizes) {
    snap.total_postings += size;
    if (size >= k) ++snap.k_filled_entries;
    if (size > k) snap.useless_postings += size - k;
    snap.max_entry_size = std::max(snap.max_entry_size, size);
    // Find the last bucket whose bound <= size.
    size_t bucket = 0;
    for (size_t b = 0; b < kSizeBucketBounds.size(); ++b) {
      if (size >= kSizeBucketBounds[b]) bucket = b;
    }
    if (size > 0) snap.size_histogram[bucket]++;
  }
  if (snap.total_postings > 0) {
    snap.useless_fraction = static_cast<double>(snap.useless_postings) /
                            static_cast<double>(snap.total_postings);
  }
  if (snap.num_entries > 0) {
    snap.mean_entry_size = static_cast<double>(snap.total_postings) /
                           static_cast<double>(snap.num_entries);
  }
  return snap;
}

std::string FrequencySnapshot::ToString() const {
  std::ostringstream os;
  os << "entries=" << num_entries << " postings=" << total_postings
     << " k_filled=" << k_filled_entries << " useless=" << useless_postings
     << " (" << useless_fraction * 100.0 << "%)"
     << " mean_size=" << mean_entry_size << " max_size=" << max_entry_size;
  return os.str();
}

}  // namespace kflush
