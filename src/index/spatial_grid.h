// Spatial-grid query helpers over the SpatialGridMapper term space
// (paper §V-D: "a spatial grid index that is composed of equal-area spatial
// tiles, each of 4 mile²"). Point queries resolve to the containing tile;
// range queries enumerate the tiles overlapping a bounding box so the query
// engine can evaluate them as a multi-term OR.

#ifndef KFLUSH_INDEX_SPATIAL_GRID_H_
#define KFLUSH_INDEX_SPATIAL_GRID_H_

#include <vector>

#include "model/attribute.h"

namespace kflush {

/// Geographic bounding box (inclusive).
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  bool Contains(const GeoPoint& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }
};

/// The boundary-tile membership predicate: true iff `blog` carries a
/// location inside `box` (inclusive on all edges). A record routed into a
/// tile that merely overlaps the box may still fall outside it — every
/// area surface (the one-shot SearchArea filter and the area-subscription
/// publish path) must decide membership through exactly this function, so
/// a record can never be in the one-shot answer but missed by a standing
/// one, or vice versa.
bool AreaContains(const BoundingBox& box, const Microblog& blog);

/// Returns the TermIds of every grid tile overlapping `box`, capped at
/// `max_tiles` (0 = uncapped). Tiles are emitted row-major.
std::vector<TermId> TilesOverlapping(const SpatialGridMapper& mapper,
                                     const BoundingBox& box,
                                     size_t max_tiles = 0);

/// Returns the TermIds of the (2r+1)² tile neighborhood centered on the
/// tile containing (lat, lon); r = 0 is just the containing tile.
std::vector<TermId> TileNeighborhood(const SpatialGridMapper& mapper,
                                     double lat, double lon, int radius);

}  // namespace kflush

#endif  // KFLUSH_INDEX_SPATIAL_GRID_H_
