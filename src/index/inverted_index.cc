#include "index/inverted_index.h"

#include <algorithm>

namespace kflush {

namespace {
// Finalizer from MurmurHash3: spreads dense TermIds across shards.
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

InvertedIndex::InvertedIndex(MemoryTracker* tracker)
    : tracker_(tracker), shards_(kNumShards) {}

InvertedIndex::~InvertedIndex() { Clear(); }

InvertedIndex::Shard& InvertedIndex::ShardFor(TermId term) {
  return shards_[MixHash(term) % kNumShards];
}

const InvertedIndex::Shard& InvertedIndex::ShardFor(TermId term) const {
  return shards_[MixHash(term) % kNumShards];
}

IndexInsertResult InvertedIndex::Insert(TermId term, MicroblogId id,
                                        double score, Timestamp now, size_t k,
                                        const TopKChargeFn& on_charge,
                                        const TopKChargeFn& on_uncharge) {
  return InsertWith(term, id, score, now, k, MaybeChargeFn{on_charge},
                    MaybeChargeFn{on_uncharge});
}

size_t InvertedIndex::Query(TermId term, size_t limit, Timestamp now,
                            std::vector<MicroblogId>* out) {
  Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return 0;
  it->second.last_query = now;
  return it->second.postings.TopIds(limit, out);
}

size_t InvertedIndex::Peek(TermId term, size_t limit,
                           std::vector<MicroblogId>* out) const {
  const Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return 0;
  return it->second.postings.TopIds(limit, out);
}

size_t InvertedIndex::PeekPostings(TermId term, size_t limit,
                                   std::vector<Posting>* out) const {
  const Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return 0;
  const PostingList& list = it->second.postings;
  const size_t n = std::min(limit, list.size());
  for (size_t i = 0; i < n; ++i) out->push_back(list.at(i));
  return n;
}

size_t InvertedIndex::EntrySize(TermId term) const {
  const Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  return it == shard.entries.end() ? 0 : it->second.postings.size();
}

bool InvertedIndex::GetEntryMeta(TermId term, EntryMeta* meta) const {
  const Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return false;
  const Entry& e = it->second;
  meta->term = term;
  meta->count = e.postings.size();
  meta->bytes =
      kBytesPerEntry + e.postings.size() * PostingList::kBytesPerPosting;
  meta->last_arrival = e.last_arrival;
  meta->last_query = e.last_query;
  return true;
}

size_t InvertedIndex::TrimBeyondK(
    TermId term, size_t k, const std::function<bool(MicroblogId)>& should_trim,
    std::vector<Posting>* out, const TopKChargeFn& on_charge,
    const TopKChargeFn& on_uncharge) {
  Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return 0;
  const size_t trimmed = it->second.postings.TrimBeyondK(
      k, should_trim, out, on_charge, on_uncharge);
  if (trimmed > 0) {
    shard.num_postings.Sub(trimmed);
    shard.bytes.Sub(trimmed * PostingList::kBytesPerPosting);
    if (tracker_ != nullptr) {
      tracker_->Release(MemoryComponent::kIndex,
                        trimmed * PostingList::kBytesPerPosting);
    }
  }
  if (it->second.postings.empty()) {
    shard.entries.erase(it);
    shard.num_entries.Sub(1);
    shard.bytes.Sub(kBytesPerEntry);
    if (tracker_ != nullptr) {
      tracker_->Release(MemoryComponent::kIndex, kBytesPerEntry);
    }
  }
  return trimmed;
}

size_t InvertedIndex::RemoveMatching(
    TermId term, size_t k,
    const std::function<bool(MicroblogId)>& should_remove,
    const std::function<void(const Posting&, bool)>& on_removed,
    const TopKChargeFn& on_charge, const TopKChargeFn& on_uncharge) {
  Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return 0;
  const size_t removed = it->second.postings.RemoveIf(
      k, should_remove, on_removed, on_charge, on_uncharge);
  if (removed > 0) {
    shard.num_postings.Sub(removed);
    shard.bytes.Sub(removed * PostingList::kBytesPerPosting);
    if (tracker_ != nullptr) {
      tracker_->Release(MemoryComponent::kIndex,
                        removed * PostingList::kBytesPerPosting);
    }
  }
  if (it->second.postings.empty()) {
    shard.entries.erase(it);
    shard.num_entries.Sub(1);
    shard.bytes.Sub(kBytesPerEntry);
    if (tracker_ != nullptr) {
      tracker_->Release(MemoryComponent::kIndex, kBytesPerEntry);
    }
  }
  return removed;
}

bool InvertedIndex::ContainsId(TermId term, MicroblogId id) const {
  const Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return false;
  return it->second.postings.Contains(id);
}

bool InvertedIndex::RemoveId(TermId term, MicroblogId id, size_t k,
                             Posting* removed, bool* was_charged,
                             const TopKChargeFn& on_charge,
                             const TopKChargeFn& on_uncharge) {
  Shard& shard = ShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(term);
  if (it == shard.entries.end()) return false;
  if (!it->second.postings.Remove(id, k, removed, was_charged, on_charge,
                                  on_uncharge)) {
    return false;
  }
  shard.num_postings.Sub(1);
  shard.bytes.Sub(PostingList::kBytesPerPosting);
  if (tracker_ != nullptr) {
    tracker_->Release(MemoryComponent::kIndex, PostingList::kBytesPerPosting);
  }
  if (it->second.postings.empty()) {
    shard.entries.erase(it);
    shard.num_entries.Sub(1);
    shard.bytes.Sub(kBytesPerEntry);
    if (tracker_ != nullptr) {
      tracker_->Release(MemoryComponent::kIndex, kBytesPerEntry);
    }
  }
  return true;
}

void InvertedIndex::RebalanceAll(size_t k, const TopKChargeFn& on_charge,
                                 const TopKChargeFn& on_uncharge) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [term, entry] : shard.entries) {
      entry.postings.Rebalance(k, on_charge, on_uncharge);
    }
  }
}

void InvertedIndex::ForEachEntry(
    const std::function<void(const EntryMeta&)>& fn) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [term, entry] : shard.entries) {
      EntryMeta meta;
      meta.term = term;
      meta.count = entry.postings.size();
      meta.bytes = kBytesPerEntry +
                   entry.postings.size() * PostingList::kBytesPerPosting;
      meta.last_arrival = entry.last_arrival;
      meta.last_query = entry.last_query;
      fn(meta);
    }
  }
}

void InvertedIndex::Snapshot(IndexSnapshot* snap) const {
  snap->Clear();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [term, entry] : shard.entries) {
      snap->terms.push_back(term);
      snap->counts.push_back(static_cast<uint32_t>(entry.postings.size()));
      snap->last_arrival.push_back(entry.last_arrival);
      snap->last_query.push_back(entry.last_query);
    }
  }
}

size_t InvertedIndex::NumEntries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.num_entries.Get();
  return total;
}

size_t InvertedIndex::NumEntriesWithAtLeast(size_t k) const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [term, entry] : shard.entries) {
      if (entry.postings.size() >= k) ++count;
    }
  }
  return count;
}

size_t InvertedIndex::TotalPostings() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.num_postings.Get();
  return total;
}

size_t InvertedIndex::MemoryBytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.bytes.Get();
  return total;
}

size_t InvertedIndex::PoolFootprintBytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.pool.FootprintBytes();
  }
  return total;
}

void InvertedIndex::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [term, entry] : shard.entries) {
      const size_t bytes =
          entry.postings.size() * PostingList::kBytesPerPosting +
          kBytesPerEntry;
      shard.bytes.Sub(bytes);
      shard.num_postings.Sub(entry.postings.size());
      shard.num_entries.Sub(1);
      if (tracker_ != nullptr) {
        tracker_->Release(MemoryComponent::kIndex, bytes);
      }
    }
    shard.entries.clear();
  }
}

}  // namespace kflush
