// Temporally segmented index: the substrate of the FIFO baseline. The index
// is a chain of temporally disjoint segments; inserts go to the newest
// (active) segment, and flushing drops whole oldest segments (paper §V:
// "FIFO ... is implemented based on a temporally-segmented hash index that
// consists of multiple temporally disjoint segments. On full memory, the
// oldest index segments are completely flushed out from memory."). Because
// segments double as flush units, FIFO needs no per-item bookkeeping and no
// separate flush buffer — which is why it has the lowest overhead in the
// paper's Figure 10(a).

#ifndef KFLUSH_INDEX_SEGMENTED_INDEX_H_
#define KFLUSH_INDEX_SEGMENTED_INDEX_H_

#include <deque>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"

namespace kflush {

/// A chain of InvertedIndex segments, newest first. Thread-safe.
class SegmentedIndex {
 public:
  explicit SegmentedIndex(MemoryTracker* tracker = nullptr);

  SegmentedIndex(const SegmentedIndex&) = delete;
  SegmentedIndex& operator=(const SegmentedIndex&) = delete;

  /// Inserts into the active (newest) segment.
  void Insert(TermId term, MicroblogId id, double score, Timestamp now);

  /// Top-`limit` ids for `term` merged across all segments by score
  /// (each segment's list is score-ordered; a k-way merge keeps global
  /// order under any ranking function). Appends to `out`, returns count.
  size_t Query(TermId term, size_t limit, std::vector<MicroblogId>* out) const;

  /// Postings under `term` across all segments.
  size_t EntrySize(TermId term) const;

  /// Seals the active segment and opens a new one. The caller (the FIFO
  /// policy) decides the sealing cadence from its byte accounting.
  void SealActiveSegment();

  /// Drops the oldest segment. Every posting it held is reported through
  /// `on_removed` (term + posting). Returns the index-side bytes freed, or
  /// 0 if only the active segment remains (it is never flushed while
  /// another exists; if it is the only segment it IS flushed, and a fresh
  /// active segment replaces it).
  size_t FlushOldestSegment(
      const std::function<void(TermId, const Posting&)>& on_removed);

  size_t NumSegments() const;

  /// Distinct terms whose postings across segments total at least `k`
  /// (the k-filled metric for FIFO).
  size_t NumTermsWithAtLeast(size_t k) const;

  size_t NumTerms() const;
  size_t TotalPostings() const;
  size_t MemoryBytes() const;

  /// Calls `fn(term, count)` once per (segment, term) pair; a term spanning
  /// multiple segments is reported once per segment, so callers aggregate.
  void ForEachTermCount(
      const std::function<void(TermId, size_t)>& fn) const;

 private:
  MemoryTracker* tracker_;
  mutable std::shared_mutex mu_;
  /// segments_.front() is the active (newest) segment.
  std::deque<std::unique_ptr<InvertedIndex>> segments_;
};

}  // namespace kflush

#endif  // KFLUSH_INDEX_SEGMENTED_INDEX_H_
