// Storage engine for PostingList: a structure-of-arrays posting buffer
// sized by power-of-two slab classes (util/arena.h). The motivating
// distribution is the one the real-time-search allocation literature
// reports (see PAPERS.md): the overwhelming majority of terms hold 1-4
// postings, while a short head of hot terms grows into the thousands. So:
//
//   * lists of up to kInlineCapacity postings live entirely inside the
//     object — zero heap traffic for the long tail;
//   * larger lists move to one slab block holding both parallel arrays
//     (scores, then ids), doubling through the owning shard's SlabPool as
//     the term gets hot and shrinking back (with hysteresis) as flushes
//     trim it.
//
// Within a block the live region [0, size) is contiguous but floats at a
// head offset, so the dominant digestion mutation — PushFront of the
// newest, best-ranked posting (temporal scores) — is a pointer decrement.
// When the headroom runs out the region recenters or the block doubles,
// both O(size) against Ω(capacity/2) cheap pushes, keeping PushFront
// amortized O(1). Contiguity is what the SIMD kernels (util/simd.h) scan.
//
// Not thread-safe; owned by an index entry under its shard lock.

#ifndef KFLUSH_INDEX_POSTING_BLOCK_H_
#define KFLUSH_INDEX_POSTING_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "util/arena.h"

namespace kflush {

class PostingBlock {
 public:
  static constexpr size_t kInlineCapacity = 4;
  /// First slab-backed capacity after leaving inline storage.
  static constexpr size_t kFirstBlockCapacity = 8;

  /// `pool` may be null (standalone lists in tests): blocks then come from
  /// operator new. The pool, when given, must outlive this object.
  explicit PostingBlock(SlabPool* pool = nullptr) : pool_(pool) {}
  ~PostingBlock() { FreeBlock(); }

  PostingBlock(const PostingBlock& other);
  PostingBlock& operator=(const PostingBlock& other);
  PostingBlock(PostingBlock&& other) noexcept;
  PostingBlock& operator=(PostingBlock&& other) noexcept;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }
  bool inlined() const { return block_ == nullptr; }

  /// Contiguous views of the live region, best-ranked first.
  const double* scores() const { return ScoresBase() + head_; }
  const uint64_t* ids() const { return IdsBase() + head_; }
  double* mutable_scores() { return ScoresBase() + head_; }
  uint64_t* mutable_ids() { return IdsBase() + head_; }

  double score(size_t i) const { return scores()[i]; }
  uint64_t id(size_t i) const { return ids()[i]; }

  /// Prepend (the digestion fast path). Amortized O(1).
  void PushFront(uint64_t id, double score);

  /// Append (tail reassembly in trims). Amortized O(1).
  void PushBack(uint64_t id, double score);

  /// Make room at logical position `pos` (0 <= pos <= size) and write the
  /// posting there. Shifts whichever side of the gap is shorter.
  void InsertAt(size_t pos, uint64_t id, double score);

  /// Remove the posting at `pos`, closing the gap from the shorter side.
  void EraseAt(size_t pos);

  void PopBack() { --size_; }

  /// Drop every posting past the first `n` (n <= size). O(1); pair with
  /// MaybeShrink() to return slab space.
  void TruncateTo(size_t n) { size_ = static_cast<uint32_t>(n); }

  /// Give back slab space after bulk removals: halves the block when the
  /// live region fits in a quarter of it (hysteresis against the doubling
  /// growth), returning to inline storage for tiny lists.
  void MaybeShrink();

  /// Bytes of block storage currently held (0 while inline).
  size_t BlockBytes() const { return block_ == nullptr ? 0 : cap_ * 16; }

 private:
  double* ScoresBase() const {
    return block_ == nullptr
               ? const_cast<double*>(inline_scores_)
               : reinterpret_cast<double*>(block_);
  }
  uint64_t* IdsBase() const {
    return block_ == nullptr
               ? const_cast<uint64_t*>(inline_ids_)
               : reinterpret_cast<uint64_t*>(block_ + cap_ * sizeof(double));
  }

  /// Reallocate to `new_cap` (a power of two >= size_), recentering the
  /// live region, or back into inline storage when new_cap == 0.
  void Reallocate(size_t new_cap);

  /// Slide the live region so it starts at `new_head`.
  void Recenter(size_t new_head);

  void FreeBlock();
  uint8_t* AllocBlock(size_t cap);

  SlabPool* pool_ = nullptr;
  uint8_t* block_ = nullptr;  // null -> inline arrays below
  uint32_t size_ = 0;
  uint32_t cap_ = kInlineCapacity;
  uint32_t head_ = 0;
  double inline_scores_[kInlineCapacity];
  uint64_t inline_ids_[kInlineCapacity];
};

}  // namespace kflush

#endif  // KFLUSH_INDEX_POSTING_BLOCK_H_
