// A score-ordered posting list: the per-term id list inside an index entry
// (paper Figure 3/4). Ranking scores are computed on microblog arrival
// (paper §IV-B), so the list is maintained in descending score order:
// position 0 is the best-ranked (most recent, under temporal ranking)
// posting and trims happen at the tail. This head-insert / tail-trim
// separation is what lets the flushing thread work without contending with
// digestion (paper §III-A).
//
// Storage is a slab-backed structure-of-arrays block (posting_block.h):
// tiny lists live inline in the object, hot terms grow geometrically
// through the owning shard's SlabPool, and the contiguous score/id arrays
// feed the SIMD scan kernels (util/simd.h).
//
// Top-k charges: policies that maintain per-record top-k reference counts
// (the kFlushing-MK extension, §IV-D) need the set of postings "counted as
// top-k" to change only through explicit, observed transitions — judging
// membership by position against the *current* k is not enough, because k
// itself changes (SetK) and counts granted under one k would be revoked
// under another, drifting without bound. The list therefore owns a charged
// prefix: its first charged() postings hold a charge, every mutation
// reports charge/uncharge transitions through callbacks, and the prefix is
// re-aligned to min(k, size()) lazily as the list is touched. The charged
// set is always a subset of the list, so a record's total charge count
// never exceeds its reference count, under any k schedule.
//
// Charge callbacks come in two flavors: the std::function API below (used
// by policy code, where a per-call indirection is noise against the flush
// work it wraps) and the `*With` templates taking the functors by
// reference, so the digestion fast path — k == 0, no charge observers —
// inlines to a PushFront and nothing else.

#ifndef KFLUSH_INDEX_POSTING_LIST_H_
#define KFLUSH_INDEX_POSTING_LIST_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "index/posting_block.h"
#include "model/microblog.h"
#include "util/simd.h"

namespace kflush {

/// One indexed reference: microblog id plus its precomputed ranking score.
struct Posting {
  MicroblogId id = kInvalidMicroblogId;
  double score = 0.0;
};

/// Outcome of a PostingList insert, consumed by policies that track over-k
/// entries (kFlushing's list L).
struct PostingInsertResult {
  /// List length after the insert.
  size_t size_after = 0;
  /// 0-based position the new posting landed at.
  size_t insert_pos = 0;
};

/// Charge-transition callback: the id gaining or losing a top-k charge.
/// Both callbacks of a pair run while the owning shard lock is held.
using TopKChargeFn = std::function<void(MicroblogId)>;

/// No-op charge observer for paths with no top-k bookkeeping; lets the
/// templated mutators compile the charge machinery away entirely.
struct NoChargeFn {
  void operator()(MicroblogId) const {}
};

/// Adapts a possibly-empty std::function to the templated mutators (the
/// bridge the std::function convenience overloads go through).
struct MaybeChargeFn {
  const TopKChargeFn& fn;
  void operator()(MicroblogId id) const {
    if (fn) fn(id);
  }
};

/// Descending-score list of postings. Not thread-safe; the owning index
/// entry is locked by its shard.
class PostingList {
 public:
  /// `pool`, when given, supplies block storage and must outlive the list
  /// (in the index it is the owning shard's pool).
  explicit PostingList(SlabPool* pool = nullptr) : store_(pool) {}

  /// Inserts keeping (score desc, id desc) order — the exact total order
  /// the query engine's Materialize sorts candidates by, so truncating
  /// this list at any prefix can never disagree with the engine's
  /// tie-break. O(1) when the new posting is the best-ranked (the
  /// overwhelmingly common case under temporal ranking), O(log n) search
  /// + shift of the shorter side otherwise. The charged prefix is
  /// re-aligned to min(k, size()); with k == 0 and NoChargeFn this
  /// compiles to the bare structural insert.
  template <typename ChargeFn, typename UnchargeFn>
  PostingInsertResult InsertWith(MicroblogId id, double score, size_t k,
                                 const ChargeFn& on_charge,
                                 const UnchargeFn& on_uncharge) {
    PostingInsertResult result;
    if (store_.empty() || score > store_.score(0) ||
        (score == store_.score(0) && id > store_.id(0))) {
      // Fast path: new best-ranked posting.
      store_.PushFront(id, score);
      result.insert_pos = 0;
    } else {
      // First position with a strictly smaller score, then back up over
      // the equal-score run so ties stay ordered by descending id.
      size_t pos = simd::InsertPosDesc(store_.scores(), store_.size(), score);
      while (pos > 0 && store_.score(pos - 1) == score &&
             store_.id(pos - 1) < id) {
        --pos;
      }
      result.insert_pos = pos;
      store_.InsertAt(pos, id, score);
    }
    result.size_after = store_.size();
    if (result.insert_pos < charged_) {
      // Landed inside the charged prefix: charge it so the prefix stays
      // contiguous; Rebalance below sheds the excess from the prefix tail
      // (in the steady state that is exactly the posting pushed out of the
      // top-k region).
      on_charge(id);
      ++charged_;
    }
    RebalanceWith(k, on_charge, on_uncharge);
    return result;
  }

  /// std::function convenience overload (policy code); empty callbacks are
  /// allowed and skipped.
  PostingInsertResult Insert(MicroblogId id, double score, size_t k = 0,
                             const TopKChargeFn& on_charge = {},
                             const TopKChargeFn& on_uncharge = {});

  /// Appends the ids of up to `limit` best-ranked postings to `out`.
  /// Returns the number appended.
  size_t TopIds(size_t limit, std::vector<MicroblogId>* out) const;

  /// Removes postings at positions >= k for which `should_trim` returns
  /// true (always true if `should_trim` is empty). Trimmed postings are
  /// appended to `out`; a trimmed (or tail-kept) posting that held a charge
  /// is uncharged, and the prefix is re-aligned to min(k, size()) before
  /// returning. Positions < k are never removed. Returns count trimmed.
  size_t TrimBeyondK(size_t k,
                     const std::function<bool(MicroblogId)>& should_trim,
                     std::vector<Posting>* out,
                     const TopKChargeFn& on_charge = {},
                     const TopKChargeFn& on_uncharge = {});

  /// Removes every posting for which `should_remove` returns true (all if
  /// empty). Each removed posting is reported through `on_removed` along
  /// with whether it held a charge (callers maintaining per-record top-k
  /// refcounts decrement exactly for those). Survivors keep their charges,
  /// then the prefix re-aligns to min(k, size()): postings promoted into it
  /// are reported via `on_charge`, demoted ones via `on_uncharge`. Returns
  /// count removed.
  size_t RemoveIf(size_t k,
                  const std::function<bool(MicroblogId)>& should_remove,
                  const std::function<void(const Posting&, bool /*was_charged*/)>&
                      on_removed,
                  const TopKChargeFn& on_charge = {},
                  const TopKChargeFn& on_uncharge = {});

  /// Removes the posting with `id` if present. Returns true if removed;
  /// sets `*removed` to the removed posting and `*was_charged` when
  /// non-null (the caller owns the removed posting's uncharge). The prefix
  /// then re-aligns to min(k, size()).
  bool Remove(MicroblogId id, size_t k, Posting* removed, bool* was_charged,
              const TopKChargeFn& on_charge = {},
              const TopKChargeFn& on_uncharge = {});

  /// Re-aligns the charged prefix to min(k, size()), reporting each
  /// transition. Used when k changes without a structural mutation.
  template <typename ChargeFn, typename UnchargeFn>
  void RebalanceWith(size_t k, const ChargeFn& on_charge,
                     const UnchargeFn& on_uncharge) {
    const size_t target = std::min(k, store_.size());
    while (charged_ < target) {
      on_charge(store_.id(charged_));
      ++charged_;
    }
    while (charged_ > target) {
      --charged_;
      on_uncharge(store_.id(charged_));
    }
  }

  void Rebalance(size_t k, const TopKChargeFn& on_charge,
                 const TopKChargeFn& on_uncharge);

  /// Number of leading postings currently holding a top-k charge.
  size_t charged() const { return charged_; }

  /// True if `id` occupies a position < k.
  bool IsInTopK(MicroblogId id, size_t k) const;

  bool Contains(MicroblogId id) const;

  size_t size() const { return store_.size(); }
  bool empty() const { return store_.empty(); }

  Posting at(size_t pos) const {
    return Posting{store_.id(pos), store_.score(pos)};
  }

  /// Contiguous SoA views, best-ranked first (SIMD scans, tests).
  const double* scores() const { return store_.scores(); }
  const MicroblogId* ids() const { return store_.ids(); }

  /// Block bytes currently held from the pool (0 while inline).
  size_t BlockBytes() const { return store_.BlockBytes(); }

  /// Bytes charged to the index tracker per posting.
  static constexpr size_t kBytesPerPosting = sizeof(Posting);

 private:
  PostingBlock store_;
  /// Length of the charged prefix; the first charged_ postings hold
  /// charges.
  size_t charged_ = 0;
};

static_assert(sizeof(MicroblogId) == sizeof(uint64_t),
              "posting blocks store ids as raw u64 arrays");

}  // namespace kflush

#endif  // KFLUSH_INDEX_POSTING_LIST_H_
