// A score-ordered posting list: the per-term id list inside an index entry
// (paper Figure 3/4). Ranking scores are computed on microblog arrival
// (paper §IV-B), so the list is maintained in descending score order:
// position 0 is the best-ranked (most recent, under temporal ranking)
// posting and trims happen at the tail. This head-insert / tail-trim
// separation is what lets the flushing thread work without contending with
// digestion (paper §III-A).

#ifndef KFLUSH_INDEX_POSTING_LIST_H_
#define KFLUSH_INDEX_POSTING_LIST_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "model/microblog.h"

namespace kflush {

/// One indexed reference: microblog id plus its precomputed ranking score.
struct Posting {
  MicroblogId id = kInvalidMicroblogId;
  double score = 0.0;
};

/// Outcome of a PostingList insert, consumed by policies that track top-k
/// membership (the kFlushing-MK extension).
struct PostingInsertResult {
  /// List length after the insert.
  size_t size_after = 0;
  /// 0-based position the new posting landed at.
  size_t insert_pos = 0;
};

/// Descending-score list of postings. Not thread-safe; the owning index
/// entry is locked by its shard.
class PostingList {
 public:
  PostingList() = default;

  /// Inserts keeping descending score order; equal scores order newest
  /// first. O(1) when the new posting is the best-ranked (the overwhelmingly
  /// common case under temporal ranking), O(log n) search + O(n) shift
  /// otherwise.
  PostingInsertResult Insert(MicroblogId id, double score);

  /// Appends the ids of up to `limit` best-ranked postings to `out`.
  /// Returns the number appended.
  size_t TopIds(size_t limit, std::vector<MicroblogId>* out) const;

  /// Removes postings at positions >= k for which `should_trim` returns
  /// true (always true if `should_trim` is empty). Trimmed postings are
  /// appended to `out`. Positions < k are never touched, so top-k
  /// membership of surviving postings is unchanged. Returns count trimmed.
  size_t TrimBeyondK(size_t k, const std::function<bool(MicroblogId)>& should_trim,
                     std::vector<Posting>* out);

  /// Removes every posting for which `should_remove` returns true (all if
  /// empty). Each removed posting is reported through `on_removed` along
  /// with whether it occupied a top-k position (position < k) at call time.
  /// Returns count removed.
  size_t RemoveIf(size_t k, const std::function<bool(MicroblogId)>& should_remove,
                  const std::function<void(const Posting&, bool /*was_top_k*/)>&
                      on_removed);

  /// Removes the posting with `id` if present. Returns true if removed;
  /// sets `*removed` to the removed posting and `*was_top_k` (position < k)
  /// when non-null.
  bool Remove(MicroblogId id, size_t k, Posting* removed, bool* was_top_k);

  /// True if `id` occupies a position < k.
  bool IsInTopK(MicroblogId id, size_t k) const;

  bool Contains(MicroblogId id) const;

  size_t size() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }

  const Posting& at(size_t pos) const { return postings_[pos]; }

  /// Iteration, best-ranked first.
  auto begin() const { return postings_.begin(); }
  auto end() const { return postings_.end(); }

  /// Bytes charged to the index tracker per posting.
  static constexpr size_t kBytesPerPosting = sizeof(Posting);

 private:
  std::deque<Posting> postings_;
};

}  // namespace kflush

#endif  // KFLUSH_INDEX_POSTING_LIST_H_
