// A score-ordered posting list: the per-term id list inside an index entry
// (paper Figure 3/4). Ranking scores are computed on microblog arrival
// (paper §IV-B), so the list is maintained in descending score order:
// position 0 is the best-ranked (most recent, under temporal ranking)
// posting and trims happen at the tail. This head-insert / tail-trim
// separation is what lets the flushing thread work without contending with
// digestion (paper §III-A).
//
// Top-k charges: policies that maintain per-record top-k reference counts
// (the kFlushing-MK extension, §IV-D) need the set of postings "counted as
// top-k" to change only through explicit, observed transitions — judging
// membership by position against the *current* k is not enough, because k
// itself changes (SetK) and counts granted under one k would be revoked
// under another, drifting without bound. The list therefore owns a charged
// prefix: its first charged() postings hold a charge, every mutation
// reports charge/uncharge transitions through callbacks, and the prefix is
// re-aligned to min(k, size()) lazily as the list is touched. The charged
// set is always a subset of the list, so a record's total charge count
// never exceeds its reference count, under any k schedule.

#ifndef KFLUSH_INDEX_POSTING_LIST_H_
#define KFLUSH_INDEX_POSTING_LIST_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "model/microblog.h"

namespace kflush {

/// One indexed reference: microblog id plus its precomputed ranking score.
struct Posting {
  MicroblogId id = kInvalidMicroblogId;
  double score = 0.0;
};

/// Outcome of a PostingList insert, consumed by policies that track over-k
/// entries (kFlushing's list L).
struct PostingInsertResult {
  /// List length after the insert.
  size_t size_after = 0;
  /// 0-based position the new posting landed at.
  size_t insert_pos = 0;
};

/// Charge-transition callback: the id gaining or losing a top-k charge.
/// Both callbacks of a pair run while the owning shard lock is held.
using TopKChargeFn = std::function<void(MicroblogId)>;

/// Descending-score list of postings. Not thread-safe; the owning index
/// entry is locked by its shard.
class PostingList {
 public:
  PostingList() = default;

  /// Inserts keeping descending score order; equal scores order newest
  /// first. O(1) when the new posting is the best-ranked (the overwhelmingly
  /// common case under temporal ranking), O(log n) search + O(n) shift
  /// otherwise. The charged prefix is re-aligned to min(k, size()); with
  /// k == 0 and empty callbacks this is free.
  PostingInsertResult Insert(MicroblogId id, double score, size_t k = 0,
                             const TopKChargeFn& on_charge = {},
                             const TopKChargeFn& on_uncharge = {});

  /// Appends the ids of up to `limit` best-ranked postings to `out`.
  /// Returns the number appended.
  size_t TopIds(size_t limit, std::vector<MicroblogId>* out) const;

  /// Removes postings at positions >= k for which `should_trim` returns
  /// true (always true if `should_trim` is empty). Trimmed postings are
  /// appended to `out`; a trimmed (or tail-kept) posting that held a charge
  /// is uncharged, and the prefix is re-aligned to min(k, size()) before
  /// returning. Positions < k are never removed. Returns count trimmed.
  size_t TrimBeyondK(size_t k,
                     const std::function<bool(MicroblogId)>& should_trim,
                     std::vector<Posting>* out,
                     const TopKChargeFn& on_charge = {},
                     const TopKChargeFn& on_uncharge = {});

  /// Removes every posting for which `should_remove` returns true (all if
  /// empty). Each removed posting is reported through `on_removed` along
  /// with whether it held a charge (callers maintaining per-record top-k
  /// refcounts decrement exactly for those). Survivors keep their charges,
  /// then the prefix re-aligns to min(k, size()): postings promoted into it
  /// are reported via `on_charge`, demoted ones via `on_uncharge`. Returns
  /// count removed.
  size_t RemoveIf(size_t k,
                  const std::function<bool(MicroblogId)>& should_remove,
                  const std::function<void(const Posting&, bool /*was_charged*/)>&
                      on_removed,
                  const TopKChargeFn& on_charge = {},
                  const TopKChargeFn& on_uncharge = {});

  /// Removes the posting with `id` if present. Returns true if removed;
  /// sets `*removed` to the removed posting and `*was_charged` when
  /// non-null (the caller owns the removed posting's uncharge). The prefix
  /// then re-aligns to min(k, size()).
  bool Remove(MicroblogId id, size_t k, Posting* removed, bool* was_charged,
              const TopKChargeFn& on_charge = {},
              const TopKChargeFn& on_uncharge = {});

  /// Re-aligns the charged prefix to min(k, size()), reporting each
  /// transition. Used when k changes without a structural mutation.
  void Rebalance(size_t k, const TopKChargeFn& on_charge,
                 const TopKChargeFn& on_uncharge);

  /// Number of leading postings currently holding a top-k charge.
  size_t charged() const { return charged_; }

  /// True if `id` occupies a position < k.
  bool IsInTopK(MicroblogId id, size_t k) const;

  bool Contains(MicroblogId id) const;

  size_t size() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }

  const Posting& at(size_t pos) const { return postings_[pos]; }

  /// Iteration, best-ranked first.
  auto begin() const { return postings_.begin(); }
  auto end() const { return postings_.end(); }

  /// Bytes charged to the index tracker per posting.
  static constexpr size_t kBytesPerPosting = sizeof(Posting);

 private:
  std::deque<Posting> postings_;
  /// Length of the charged prefix; postings_[0..charged_) hold charges.
  size_t charged_ = 0;
};

}  // namespace kflush

#endif  // KFLUSH_INDEX_POSTING_LIST_H_
