// The main-memory attribute index (paper Figure 3): a hash inverted table
// mapping TermIds (keywords / spatial tiles / user ids) to posting lists,
// with per-entry last-arrival and last-query timestamps — the only per-key
// metadata the kFlushing phases need (paper §III-B/III-C: "a single
// timestamp with each keyword rather than a timestamp per each data item").
//
// The table is sharded; each shard holds its own hash map behind a mutex so
// the digestion thread, query threads, and the flushing thread contend only
// on colliding shards. This realizes the paper's "entries are locked one at
// a time so that atomicity overhead is negligible". Each shard also owns a
// SlabPool from which its posting lists draw block storage (see
// posting_block.h), and its statistics counters are shard-local relaxed
// counters aggregated on read — the digestion hot path touches no shared
// atomic.

#ifndef KFLUSH_INDEX_INVERTED_INDEX_H_
#define KFLUSH_INDEX_INVERTED_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "index/posting_list.h"
#include "util/clock.h"
#include "util/memory_tracker.h"
#include "util/relaxed_counter.h"

namespace kflush {

/// Result of an index insert, consumed by flushing policies.
struct IndexInsertResult {
  /// Entry size after the insert.
  size_t size_after = 0;
  /// Position the posting landed at (0 = best ranked).
  size_t insert_pos = 0;
};

/// Metadata snapshot of one entry, used by the Phase 2/3 selection scans.
struct EntryMeta {
  TermId term = kInvalidTermId;
  size_t count = 0;
  /// Index-side bytes this entry accounts for (postings + entry overhead).
  size_t bytes = 0;
  Timestamp last_arrival = 0;
  Timestamp last_query = 0;
};

/// Column-oriented snapshot of every entry's scan metadata, one row per
/// entry. The kFlushing phase scans consume this instead of a per-entry
/// callback: the flat count/timestamp arrays are SIMD-scannable
/// (util/simd.h) and the vectors' capacity survives across cycles.
struct IndexSnapshot {
  std::vector<TermId> terms;
  std::vector<uint32_t> counts;
  std::vector<Timestamp> last_arrival;
  std::vector<Timestamp> last_query;

  size_t size() const { return terms.size(); }
  void Clear() {
    terms.clear();
    counts.clear();
    last_arrival.clear();
    last_query.clear();
  }
};

/// Sharded hash inverted index. Thread-safe.
class InvertedIndex {
 public:
  /// Index-side fixed cost per entry (hash node, timestamps, list header),
  /// charged to MemoryComponent::kIndex alongside the postings.
  static constexpr size_t kBytesPerEntry = 96;

  /// `tracker` may be null (unit tests); when set, index memory is charged
  /// to MemoryComponent::kIndex.
  explicit InvertedIndex(MemoryTracker* tracker = nullptr);
  ~InvertedIndex();

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Inserts `id` with `score` under `term`, stamping the entry's
  /// last-arrival time with `now`. `k` sizes the entry's charged top-k
  /// prefix (pass 0 to disable charging); `on_charge` / `on_uncharge`
  /// report every charge transition (see PostingList) while the entry's
  /// shard lock is still held, so callers can update bookkeeping (e.g.
  /// per-record top-k refcounts) atomically with the structural change — a
  /// concurrent eviction of the same entry then observes either both or
  /// neither. The callbacks must not reenter the index (they may take
  /// raw-store locks: index -> raw is the documented lock order).
  ///
  /// This template takes the callbacks by reference so charge-free callers
  /// (k == 0 with NoChargeFn) compile the bookkeeping away; the
  /// std::function overload below serves policy code.
  template <typename ChargeFn, typename UnchargeFn>
  IndexInsertResult InsertWith(TermId term, MicroblogId id, double score,
                               Timestamp now, size_t k,
                               const ChargeFn& on_charge,
                               const UnchargeFn& on_uncharge) {
    Shard& shard = ShardFor(term);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.entries.try_emplace(term, &shard.pool);
    Entry& entry = it->second;
    size_t charged = PostingList::kBytesPerPosting;
    if (inserted) {
      shard.num_entries.Add(1);
      charged += kBytesPerEntry;
    }
    entry.last_arrival = now;
    const PostingInsertResult pres =
        entry.postings.InsertWith(id, score, k, on_charge, on_uncharge);
    shard.num_postings.Add(1);
    shard.bytes.Add(charged);
    if (tracker_ != nullptr) {
      tracker_->Charge(MemoryComponent::kIndex, charged);
    }
    return IndexInsertResult{pres.size_after, pres.insert_pos};
  }

  /// Charge-free insert (FIFO segments, non-MK policies): the whole top-k
  /// charge machinery compiles to nothing.
  IndexInsertResult Insert(TermId term, MicroblogId id, double score,
                           Timestamp now) {
    return InsertWith(term, id, score, now, /*k=*/0, NoChargeFn{},
                      NoChargeFn{});
  }

  /// std::function overload; empty callbacks are allowed and skipped.
  IndexInsertResult Insert(TermId term, MicroblogId id, double score,
                           Timestamp now, size_t k,
                           const TopKChargeFn& on_charge = {},
                           const TopKChargeFn& on_uncharge = {});

  /// Appends up to `limit` best-ranked ids for `term` to `out` and stamps
  /// the entry's last-query time with `now`. Returns the count appended
  /// (0 if the term has no entry).
  size_t Query(TermId term, size_t limit, Timestamp now,
               std::vector<MicroblogId>* out);

  /// Like Query but does not touch last-query time (policy internals,
  /// tests). Safe to call concurrently with everything else.
  size_t Peek(TermId term, size_t limit, std::vector<MicroblogId>* out) const;

  /// Like Peek but returns full postings (id + score); used by the
  /// segmented index to merge segment lists exactly under any ranking.
  size_t PeekPostings(TermId term, size_t limit,
                      std::vector<Posting>* out) const;

  /// Number of postings under `term` (0 if absent).
  size_t EntrySize(TermId term) const;

  /// Metadata snapshot for `term`; returns false if absent.
  bool GetEntryMeta(TermId term, EntryMeta* meta) const;

  /// Trims postings of `term` beyond position k for which `should_trim`
  /// returns true (all of them if empty). Trimmed postings are appended to
  /// `out`; charge transitions are reported via the callbacks (see
  /// PostingList::TrimBeyondK). Removes the entry entirely if it becomes
  /// empty. Returns count trimmed.
  size_t TrimBeyondK(TermId term, size_t k,
                     const std::function<bool(MicroblogId)>& should_trim,
                     std::vector<Posting>* out,
                     const TopKChargeFn& on_charge = {},
                     const TopKChargeFn& on_uncharge = {});

  /// Removes from `term`'s entry every posting for which `should_remove`
  /// returns true (all if empty); each removal is reported via `on_removed`
  /// with whether it held a top-k charge, and survivors' charge
  /// transitions via `on_charge` / `on_uncharge` (see
  /// PostingList::RemoveIf). All callbacks run under the shard lock and
  /// must not reenter the index. The entry is deleted when it becomes
  /// empty. Returns count removed.
  size_t RemoveMatching(
      TermId term, size_t k,
      const std::function<bool(MicroblogId)>& should_remove,
      const std::function<void(const Posting&, bool /*was_charged*/)>&
          on_removed,
      const TopKChargeFn& on_charge = {},
      const TopKChargeFn& on_uncharge = {});

  /// Removes a single id from `term`'s entry (the LRU eviction path).
  /// Returns true if found; sets `*removed` and `*was_charged` when
  /// non-null (the caller owns the removed posting's uncharge).
  bool RemoveId(TermId term, MicroblogId id, size_t k, Posting* removed,
                bool* was_charged, const TopKChargeFn& on_charge = {},
                const TopKChargeFn& on_uncharge = {});

  /// Re-aligns every entry's charged prefix to min(k, entry size),
  /// reporting transitions through the callbacks — one shard at a time
  /// under its lock. Used after k changes (paper §IV-C) so top-k refcounts
  /// converge to the new k in one pass.
  void RebalanceAll(size_t k, const TopKChargeFn& on_charge,
                    const TopKChargeFn& on_uncharge);

  /// True if `term`'s entry currently references `id`.
  bool ContainsId(TermId term, MicroblogId id) const;

  /// Calls `fn` for every entry's metadata. Shards are visited one at a
  /// time under their lock; the callback must not reenter the index.
  void ForEachEntry(const std::function<void(const EntryMeta&)>& fn) const;

  /// Fills `snap` with one row per entry (Clear()ed first; capacity is
  /// reused). Shards are visited one at a time under their lock, so the
  /// snapshot is per-shard-consistent, like ForEachEntry.
  void Snapshot(IndexSnapshot* snap) const;

  size_t NumEntries() const;

  /// Number of entries holding at least `k` postings (the paper's
  /// "k-filled keywords" metric, Figures 7/11/12).
  size_t NumEntriesWithAtLeast(size_t k) const;

  size_t TotalPostings() const;

  /// Index-side bytes currently charged (entries + postings).
  size_t MemoryBytes() const;

  /// Bytes the per-shard posting pools hold from the OS (physical slab
  /// footprint backing MemoryBytes' logical accounting).
  size_t PoolFootprintBytes() const;

  /// Removes everything (releases all charged bytes).
  void Clear();

 private:
  struct Entry {
    explicit Entry(SlabPool* pool) : postings(pool) {}
    PostingList postings;
    Timestamp last_arrival = 0;
    Timestamp last_query = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    // Declared before `entries` so it outlives them on destruction:
    // posting blocks never outlive their pool.
    SlabPool pool;
    std::unordered_map<TermId, Entry> entries;
    // Written only under `mu`, read lock-free by the aggregating getters.
    ShardCounter bytes;
    ShardCounter num_entries;
    ShardCounter num_postings;
  };

  static constexpr size_t kNumShards = 64;

  Shard& ShardFor(TermId term);
  const Shard& ShardFor(TermId term) const;

  MemoryTracker* tracker_;
  std::vector<Shard> shards_;
};

}  // namespace kflush

#endif  // KFLUSH_INDEX_INVERTED_INDEX_H_
