#include "index/posting_list.h"

namespace kflush {

PostingInsertResult PostingList::Insert(MicroblogId id, double score, size_t k,
                                        const TopKChargeFn& on_charge,
                                        const TopKChargeFn& on_uncharge) {
  return InsertWith(id, score, k, MaybeChargeFn{on_charge},
                    MaybeChargeFn{on_uncharge});
}

void PostingList::Rebalance(size_t k, const TopKChargeFn& on_charge,
                            const TopKChargeFn& on_uncharge) {
  RebalanceWith(k, MaybeChargeFn{on_charge}, MaybeChargeFn{on_uncharge});
}

size_t PostingList::TopIds(size_t limit, std::vector<MicroblogId>* out) const {
  const size_t n = std::min(limit, store_.size());
  const uint64_t* ids = store_.ids();
  out->insert(out->end(), ids, ids + n);
  return n;
}

size_t PostingList::TrimBeyondK(
    size_t k, const std::function<bool(MicroblogId)>& should_trim,
    std::vector<Posting>* out, const TopKChargeFn& on_charge,
    const TopKChargeFn& on_uncharge) {
  size_t trimmed = 0;
  if (store_.size() > k) {
    // Walk the tail back to front, keeping only postings the filter
    // protects. Popping a kept posting shrinks the list, so "positions
    // >= k remain unprocessed" is exactly size() > k.
    std::vector<Posting> kept_tail;
    while (store_.size() > k) {
      const size_t last = store_.size() - 1;
      const Posting p{store_.id(last), store_.score(last)};
      store_.PopBack();
      if (store_.size() < charged_) {
        // A stale charge from a larger k: popping from the back shrinks
        // the prefix one at a time, so it stays contiguous.
        --charged_;
        if (on_uncharge) on_uncharge(p.id);
      }
      if (!should_trim || should_trim(p.id)) {
        out->push_back(p);
        ++trimmed;
      } else {
        kept_tail.push_back(p);
      }
    }
    for (auto it = kept_tail.rbegin(); it != kept_tail.rend(); ++it) {
      store_.PushBack(it->id, it->score);
    }
    store_.MaybeShrink();
  }
  Rebalance(k, on_charge, on_uncharge);
  return trimmed;
}

size_t PostingList::RemoveIf(
    size_t k, const std::function<bool(MicroblogId)>& should_remove,
    const std::function<void(const Posting&, bool)>& on_removed,
    const TopKChargeFn& on_charge, const TopKChargeFn& on_uncharge) {
  size_t removed = 0;
  size_t kept_charged = 0;
  size_t write = 0;
  double* scores = store_.mutable_scores();
  uint64_t* ids = store_.mutable_ids();
  const size_t n = store_.size();
  for (size_t pos = 0; pos < n; ++pos) {
    const bool was_charged = pos < charged_;
    if (!should_remove || should_remove(ids[pos])) {
      if (on_removed) on_removed(Posting{ids[pos], scores[pos]}, was_charged);
      ++removed;
    } else {
      scores[write] = scores[pos];
      ids[write] = ids[pos];
      ++write;
      if (was_charged) ++kept_charged;
    }
  }
  store_.TruncateTo(write);
  store_.MaybeShrink();
  // Surviving charged postings compact into a prefix (charges came from a
  // prefix, removals only close gaps).
  charged_ = kept_charged;
  Rebalance(k, on_charge, on_uncharge);
  return removed;
}

bool PostingList::Remove(MicroblogId id, size_t k, Posting* removed,
                         bool* was_charged, const TopKChargeFn& on_charge,
                         const TopKChargeFn& on_uncharge) {
  const size_t i = simd::FindU64(store_.ids(), store_.size(), id);
  if (i == store_.size()) return false;
  if (removed != nullptr) *removed = Posting{store_.id(i), store_.score(i)};
  if (was_charged != nullptr) *was_charged = i < charged_;
  if (i < charged_) --charged_;  // caller owns the removed charge
  store_.EraseAt(i);
  store_.MaybeShrink();
  Rebalance(k, on_charge, on_uncharge);
  return true;
}

bool PostingList::IsInTopK(MicroblogId id, size_t k) const {
  const size_t n = std::min(k, store_.size());
  return simd::FindU64(store_.ids(), n, id) < n;
}

bool PostingList::Contains(MicroblogId id) const {
  return simd::FindU64(store_.ids(), store_.size(), id) < store_.size();
}

}  // namespace kflush
