#include "index/posting_list.h"

#include <algorithm>

namespace kflush {

PostingInsertResult PostingList::Insert(MicroblogId id, double score) {
  PostingInsertResult result;
  if (postings_.empty() || score >= postings_.front().score) {
    // Fast path: new best-ranked posting (ties rank newest first).
    postings_.push_front({id, score});
    result.insert_pos = 0;
  } else {
    // Find the first position with a strictly smaller score; equal scores
    // keep the earlier arrival after the later one already there — i.e. a
    // tie inserts *before* existing equal scores only via the fast path.
    auto it = std::upper_bound(
        postings_.begin(), postings_.end(), score,
        [](double s, const Posting& p) { return s >= p.score; });
    result.insert_pos = static_cast<size_t>(it - postings_.begin());
    postings_.insert(it, {id, score});
  }
  result.size_after = postings_.size();
  return result;
}

size_t PostingList::TopIds(size_t limit, std::vector<MicroblogId>* out) const {
  const size_t n = std::min(limit, postings_.size());
  for (size_t i = 0; i < n; ++i) out->push_back(postings_[i].id);
  return n;
}

size_t PostingList::TrimBeyondK(
    size_t k, const std::function<bool(MicroblogId)>& should_trim,
    std::vector<Posting>* out) {
  if (postings_.size() <= k) return 0;
  size_t trimmed = 0;
  // Rebuild the tail, keeping only postings the filter protects. Popping a
  // kept posting shrinks the list, so "positions >= k remain unprocessed"
  // is exactly size() > k.
  std::deque<Posting> kept_tail;
  while (postings_.size() > k) {
    Posting p = postings_.back();
    postings_.pop_back();
    if (!should_trim || should_trim(p.id)) {
      out->push_back(p);
      ++trimmed;
    } else {
      kept_tail.push_front(p);
    }
  }
  for (auto& p : kept_tail) postings_.push_back(p);
  return trimmed;
}

size_t PostingList::RemoveIf(
    size_t k, const std::function<bool(MicroblogId)>& should_remove,
    const std::function<void(const Posting&, bool)>& on_removed) {
  size_t removed = 0;
  std::deque<Posting> kept;
  size_t pos = 0;
  for (const Posting& p : postings_) {
    const bool remove = !should_remove || should_remove(p.id);
    if (remove) {
      if (on_removed) on_removed(p, pos < k);
      ++removed;
    } else {
      kept.push_back(p);
    }
    ++pos;
  }
  postings_.swap(kept);
  return removed;
}

bool PostingList::Remove(MicroblogId id, size_t k, Posting* removed,
                         bool* was_top_k) {
  for (size_t i = 0; i < postings_.size(); ++i) {
    if (postings_[i].id == id) {
      if (removed != nullptr) *removed = postings_[i];
      if (was_top_k != nullptr) *was_top_k = i < k;
      postings_.erase(postings_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool PostingList::IsInTopK(MicroblogId id, size_t k) const {
  const size_t n = std::min(k, postings_.size());
  for (size_t i = 0; i < n; ++i) {
    if (postings_[i].id == id) return true;
  }
  return false;
}

bool PostingList::Contains(MicroblogId id) const {
  for (const Posting& p : postings_) {
    if (p.id == id) return true;
  }
  return false;
}

}  // namespace kflush
