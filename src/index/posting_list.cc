#include "index/posting_list.h"

#include <algorithm>

namespace kflush {

void PostingList::Rebalance(size_t k, const TopKChargeFn& on_charge,
                            const TopKChargeFn& on_uncharge) {
  const size_t target = std::min(k, postings_.size());
  while (charged_ < target) {
    if (on_charge) on_charge(postings_[charged_].id);
    ++charged_;
  }
  while (charged_ > target) {
    --charged_;
    if (on_uncharge) on_uncharge(postings_[charged_].id);
  }
}

PostingInsertResult PostingList::Insert(MicroblogId id, double score, size_t k,
                                        const TopKChargeFn& on_charge,
                                        const TopKChargeFn& on_uncharge) {
  PostingInsertResult result;
  if (postings_.empty() || score >= postings_.front().score) {
    // Fast path: new best-ranked posting (ties rank newest first).
    postings_.push_front({id, score});
    result.insert_pos = 0;
  } else {
    // Find the first position with a strictly smaller score; equal scores
    // keep the earlier arrival after the later one already there — i.e. a
    // tie inserts *before* existing equal scores only via the fast path.
    auto it = std::upper_bound(
        postings_.begin(), postings_.end(), score,
        [](double s, const Posting& p) { return s >= p.score; });
    result.insert_pos = static_cast<size_t>(it - postings_.begin());
    postings_.insert(it, {id, score});
  }
  result.size_after = postings_.size();
  if (result.insert_pos < charged_) {
    // Landed inside the charged prefix: charge it so the prefix stays
    // contiguous; Rebalance below sheds the excess from the prefix tail
    // (in the steady state that is exactly the posting pushed out of the
    // top-k region).
    if (on_charge) on_charge(id);
    ++charged_;
  }
  Rebalance(k, on_charge, on_uncharge);
  return result;
}

size_t PostingList::TopIds(size_t limit, std::vector<MicroblogId>* out) const {
  const size_t n = std::min(limit, postings_.size());
  for (size_t i = 0; i < n; ++i) out->push_back(postings_[i].id);
  return n;
}

size_t PostingList::TrimBeyondK(
    size_t k, const std::function<bool(MicroblogId)>& should_trim,
    std::vector<Posting>* out, const TopKChargeFn& on_charge,
    const TopKChargeFn& on_uncharge) {
  size_t trimmed = 0;
  if (postings_.size() > k) {
    // Rebuild the tail, keeping only postings the filter protects. Popping
    // a kept posting shrinks the list, so "positions >= k remain
    // unprocessed" is exactly size() > k.
    std::deque<Posting> kept_tail;
    while (postings_.size() > k) {
      Posting p = postings_.back();
      postings_.pop_back();
      if (postings_.size() < charged_) {
        // A stale charge from a larger k: popping from the back shrinks
        // the prefix one at a time, so it stays contiguous.
        --charged_;
        if (on_uncharge) on_uncharge(p.id);
      }
      if (!should_trim || should_trim(p.id)) {
        out->push_back(p);
        ++trimmed;
      } else {
        kept_tail.push_front(p);
      }
    }
    for (auto& p : kept_tail) postings_.push_back(p);
  }
  Rebalance(k, on_charge, on_uncharge);
  return trimmed;
}

size_t PostingList::RemoveIf(
    size_t k, const std::function<bool(MicroblogId)>& should_remove,
    const std::function<void(const Posting&, bool)>& on_removed,
    const TopKChargeFn& on_charge, const TopKChargeFn& on_uncharge) {
  size_t removed = 0;
  std::deque<Posting> kept;
  size_t kept_charged = 0;
  size_t pos = 0;
  for (const Posting& p : postings_) {
    const bool was_charged = pos < charged_;
    if (!should_remove || should_remove(p.id)) {
      if (on_removed) on_removed(p, was_charged);
      ++removed;
    } else {
      kept.push_back(p);
      if (was_charged) ++kept_charged;
    }
    ++pos;
  }
  postings_.swap(kept);
  // Surviving charged postings compact into a prefix (charges came from a
  // prefix, removals only close gaps).
  charged_ = kept_charged;
  Rebalance(k, on_charge, on_uncharge);
  return removed;
}

bool PostingList::Remove(MicroblogId id, size_t k, Posting* removed,
                         bool* was_charged, const TopKChargeFn& on_charge,
                         const TopKChargeFn& on_uncharge) {
  for (size_t i = 0; i < postings_.size(); ++i) {
    if (postings_[i].id == id) {
      if (removed != nullptr) *removed = postings_[i];
      if (was_charged != nullptr) *was_charged = i < charged_;
      if (i < charged_) --charged_;  // caller owns the removed charge
      postings_.erase(postings_.begin() + static_cast<ptrdiff_t>(i));
      Rebalance(k, on_charge, on_uncharge);
      return true;
    }
  }
  return false;
}

bool PostingList::IsInTopK(MicroblogId id, size_t k) const {
  const size_t n = std::min(k, postings_.size());
  for (size_t i = 0; i < n; ++i) {
    if (postings_[i].id == id) return true;
  }
  return false;
}

bool PostingList::Contains(MicroblogId id) const {
  for (const Posting& p : postings_) {
    if (p.id == id) return true;
  }
  return false;
}

}  // namespace kflush
