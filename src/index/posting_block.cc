#include "index/posting_block.h"

#include <cassert>
#include <cstring>
#include <new>

namespace kflush {

namespace {

void CopyRegion(double* dst_scores, uint64_t* dst_ids, const double* src_scores,
                const uint64_t* src_ids, size_t n) {
  std::memcpy(dst_scores, src_scores, n * sizeof(double));
  std::memcpy(dst_ids, src_ids, n * sizeof(uint64_t));
}

}  // namespace

uint8_t* PostingBlock::AllocBlock(size_t cap) {
  const size_t bytes = cap * 16;  // scores array then ids array
  return pool_ != nullptr ? static_cast<uint8_t*>(pool_->Alloc(bytes))
                          : static_cast<uint8_t*>(::operator new(bytes));
}

void PostingBlock::FreeBlock() {
  if (block_ == nullptr) return;
  if (pool_ != nullptr) {
    pool_->Free(block_, cap_ * 16);
  } else {
    ::operator delete(block_);
  }
  block_ = nullptr;
}

PostingBlock::PostingBlock(const PostingBlock& other) : pool_(other.pool_) {
  if (!other.inlined()) {
    block_ = AllocBlock(other.cap_);
    cap_ = other.cap_;
  }
  size_ = other.size_;
  head_ = other.head_;
  CopyRegion(ScoresBase() + head_, IdsBase() + head_, other.scores(),
             other.ids(), size_);
}

PostingBlock& PostingBlock::operator=(const PostingBlock& other) {
  if (this == &other) return *this;
  FreeBlock();
  pool_ = other.pool_;
  cap_ = kInlineCapacity;
  if (!other.inlined()) {
    block_ = AllocBlock(other.cap_);
    cap_ = other.cap_;
  }
  size_ = other.size_;
  head_ = other.head_;
  CopyRegion(ScoresBase() + head_, IdsBase() + head_, other.scores(),
             other.ids(), size_);
  return *this;
}

PostingBlock::PostingBlock(PostingBlock&& other) noexcept
    : pool_(other.pool_),
      block_(other.block_),
      size_(other.size_),
      cap_(other.cap_),
      head_(other.head_) {
  if (block_ == nullptr) {
    CopyRegion(inline_scores_, inline_ids_, other.inline_scores_,
               other.inline_ids_, kInlineCapacity);
  }
  other.block_ = nullptr;
  other.size_ = 0;
  other.cap_ = kInlineCapacity;
  other.head_ = 0;
}

PostingBlock& PostingBlock::operator=(PostingBlock&& other) noexcept {
  if (this == &other) return *this;
  FreeBlock();
  pool_ = other.pool_;
  block_ = other.block_;
  size_ = other.size_;
  cap_ = other.cap_;
  head_ = other.head_;
  if (block_ == nullptr) {
    CopyRegion(inline_scores_, inline_ids_, other.inline_scores_,
               other.inline_ids_, kInlineCapacity);
  }
  other.block_ = nullptr;
  other.size_ = 0;
  other.cap_ = kInlineCapacity;
  other.head_ = 0;
  return *this;
}

void PostingBlock::Reallocate(size_t new_cap) {
  assert(new_cap == 0 || new_cap >= size_);
  uint8_t* old_block = block_;
  const size_t old_cap = cap_;
  const double* old_scores = scores();
  const uint64_t* old_ids = ids();
  uint8_t* fresh = nullptr;
  size_t fresh_cap = kInlineCapacity;
  size_t fresh_head = 0;
  if (new_cap != 0) {
    fresh = AllocBlock(new_cap);
    fresh_cap = new_cap;
    fresh_head = (new_cap - size_) / 2;
  }
  double* dst_scores =
      fresh != nullptr ? reinterpret_cast<double*>(fresh) : inline_scores_;
  uint64_t* dst_ids =
      fresh != nullptr
          ? reinterpret_cast<uint64_t*>(fresh + fresh_cap * sizeof(double))
          : inline_ids_;
  CopyRegion(dst_scores + fresh_head, dst_ids + fresh_head, old_scores,
             old_ids, size_);
  block_ = fresh;
  cap_ = static_cast<uint32_t>(fresh_cap);
  head_ = static_cast<uint32_t>(fresh_head);
  if (old_block != nullptr) {
    if (pool_ != nullptr) {
      pool_->Free(old_block, old_cap * 16);
    } else {
      ::operator delete(old_block);
    }
  }
}

void PostingBlock::Recenter(size_t new_head) {
  std::memmove(ScoresBase() + new_head, scores(), size_ * sizeof(double));
  std::memmove(IdsBase() + new_head, ids(), size_ * sizeof(uint64_t));
  head_ = static_cast<uint32_t>(new_head);
}

void PostingBlock::PushFront(uint64_t id, double score) {
  if (head_ == 0) {
    // Slide right while at most half full (inline always slides — it must
    // fill before leaving the object); beyond that the move cost outruns
    // the pushes it buys, so double instead. Either way head_ ends > 0.
    if (size_ < cap_ && (block_ == nullptr || size_ * 2 <= cap_)) {
      Recenter((cap_ - size_ + 1) / 2);
    } else {
      Reallocate(block_ == nullptr ? kFirstBlockCapacity : cap_ * 2);
    }
  }
  --head_;
  ScoresBase()[head_] = score;
  IdsBase()[head_] = id;
  ++size_;
}

void PostingBlock::PushBack(uint64_t id, double score) {
  if (head_ + size_ == cap_) {
    // Mirror of PushFront: slide left for tail room (needs >= 2 slack so
    // the floor-half target actually frees a slot), else double.
    if (size_ + 2 <= cap_ && (block_ == nullptr || size_ * 2 <= cap_)) {
      Recenter((cap_ - size_) / 2);
    } else {
      Reallocate(block_ == nullptr ? kFirstBlockCapacity : cap_ * 2);
    }
  }
  ScoresBase()[head_ + size_] = score;
  IdsBase()[head_ + size_] = id;
  ++size_;
}

void PostingBlock::InsertAt(size_t pos, uint64_t id, double score) {
  assert(pos <= size_);
  if (pos == 0) {
    PushFront(id, score);
    return;
  }
  if (pos == size_) {
    PushBack(id, score);
    return;
  }
  if (size_ == cap_) Reallocate(block_ == nullptr ? kFirstBlockCapacity
                                                  : cap_ * 2);
  double* s = ScoresBase();
  uint64_t* d = IdsBase();
  const bool front_shorter = pos <= size_ - pos;
  const bool has_front_room = head_ > 0;
  const bool has_back_room = head_ + size_ < cap_;
  if (has_front_room && (front_shorter || !has_back_room)) {
    std::memmove(s + head_ - 1, s + head_, pos * sizeof(double));
    std::memmove(d + head_ - 1, d + head_, pos * sizeof(uint64_t));
    --head_;
  } else {
    std::memmove(s + head_ + pos + 1, s + head_ + pos,
                 (size_ - pos) * sizeof(double));
    std::memmove(d + head_ + pos + 1, d + head_ + pos,
                 (size_ - pos) * sizeof(uint64_t));
  }
  s[head_ + pos] = score;
  d[head_ + pos] = id;
  ++size_;
}

void PostingBlock::EraseAt(size_t pos) {
  assert(pos < size_);
  double* s = ScoresBase();
  uint64_t* d = IdsBase();
  if (pos < size_ - 1 - pos) {
    std::memmove(s + head_ + 1, s + head_, pos * sizeof(double));
    std::memmove(d + head_ + 1, d + head_, pos * sizeof(uint64_t));
    ++head_;
  } else {
    std::memmove(s + head_ + pos, s + head_ + pos + 1,
                 (size_ - pos - 1) * sizeof(double));
    std::memmove(d + head_ + pos, d + head_ + pos + 1,
                 (size_ - pos - 1) * sizeof(uint64_t));
  }
  --size_;
}

void PostingBlock::MaybeShrink() {
  if (block_ == nullptr) return;
  if (size_ <= kInlineCapacity) {
    Reallocate(0);
    return;
  }
  if (size_ * 4 <= cap_ && cap_ > kFirstBlockCapacity) {
    size_t new_cap = cap_;
    while (new_cap > kFirstBlockCapacity && size_ * 4 <= new_cap) {
      new_cap /= 2;
    }
    Reallocate(new_cap);
  }
}

}  // namespace kflush
