// Statistics over in-memory index contents: the analysis behind the paper's
// Figure 1 and Section V-A ("more than 75% of memory contents are consumed
// by tweets that will never show up in a query answer"). Computed from an
// entry-size snapshot so any policy's index structure can report them.

#ifndef KFLUSH_INDEX_INDEX_STATS_H_
#define KFLUSH_INDEX_INDEX_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kflush {

/// Frequency-distribution summary of index entry sizes.
struct FrequencySnapshot {
  size_t num_entries = 0;
  size_t total_postings = 0;
  /// Entries with at least k postings ("k-filled": a query on them hits).
  size_t k_filled_entries = 0;
  /// Postings at positions >= k within their entry: the paper's "useless
  /// microblogs" that no top-k query can return.
  size_t useless_postings = 0;
  /// useless_postings / total_postings (0 when empty).
  double useless_fraction = 0.0;
  size_t max_entry_size = 0;
  double mean_entry_size = 0.0;
  /// Entry-size histogram: bucket i counts entries of size in
  /// [bounds[i], bounds[i+1]); see kSizeBucketBounds.
  std::vector<size_t> size_histogram;

  std::string ToString() const;
};

/// Bucket lower bounds for FrequencySnapshot::size_histogram.
extern const std::vector<size_t> kSizeBucketBounds;

/// Computes the snapshot from per-entry posting counts against `k`.
FrequencySnapshot ComputeFrequencySnapshot(const std::vector<size_t>& entry_sizes,
                                           size_t k);

}  // namespace kflush

#endif  // KFLUSH_INDEX_INDEX_STATS_H_
