#include "model/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace kflush {

namespace {

const std::unordered_set<std::string_view>& Stopwords() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "a",    "an",  "and", "are", "as",   "at",   "be",   "but", "by",
      "for",  "if",  "in",  "is",  "it",   "its",  "of",   "on",  "or",
      "not",  "no",  "so",  "the", "that", "this", "to",   "was", "we",
      "were", "will", "with", "you", "your", "i",   "me",  "my",  "he",
      "she",  "they", "them", "his", "her",  "rt",  "via",
  };
  return *kSet;
}

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsStopword(std::string_view token) const {
  return Stopwords().count(token) > 0;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> hashtags;
  std::vector<std::string> terms;
  std::unordered_set<std::string> seen;

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    bool is_hashtag = false;
    if (text[i] == '#') {
      is_hashtag = true;
      ++i;
    }
    if (i >= n || !IsTokenChar(text[i])) {
      if (!is_hashtag) ++i;
      continue;
    }
    size_t start = i;
    while (i < n && IsTokenChar(text[i])) ++i;
    std::string token(text.substr(start, i - start));
    std::transform(token.begin(), token.end(), token.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    if (token.size() < options_.min_token_length) continue;
    if (is_hashtag) {
      if (seen.insert(token).second) hashtags.push_back(std::move(token));
    } else {
      if (options_.drop_stopwords && IsStopword(token)) continue;
      if (seen.insert(token).second) terms.push_back(std::move(token));
    }
  }

  if (!options_.hashtags_only) {
    // All tokens count; hashtags first to preserve their salience.
    hashtags.insert(hashtags.end(), std::make_move_iterator(terms.begin()),
                    std::make_move_iterator(terms.end()));
    return hashtags;
  }
  if (!hashtags.empty() || !options_.fallback_to_terms) return hashtags;
  return terms;
}

}  // namespace kflush
