// String interning for keywords. The index and policies work on dense
// KeywordIds; the dictionary maps raw hashtag strings to ids at ingest time
// and back for display. Thread-safe: ingest interns concurrently with query
// threads resolving ids.

#ifndef KFLUSH_MODEL_KEYWORD_DICTIONARY_H_
#define KFLUSH_MODEL_KEYWORD_DICTIONARY_H_

#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/microblog.h"

namespace kflush {

constexpr KeywordId kInvalidKeywordId = ~0U;

/// Bidirectional keyword <-> id mapping.
class KeywordDictionary {
 public:
  KeywordDictionary() = default;
  KeywordDictionary(const KeywordDictionary&) = delete;
  KeywordDictionary& operator=(const KeywordDictionary&) = delete;

  /// Returns the id for `keyword`, interning it if new.
  KeywordId Intern(std::string_view keyword);

  /// Returns the id for `keyword` or kInvalidKeywordId if never interned.
  KeywordId Lookup(std::string_view keyword) const;

  /// Returns the keyword string for `id`; empty string if out of range.
  std::string Name(KeywordId id) const;

  size_t size() const;

  /// Estimated heap footprint (strings + map overhead).
  size_t FootprintBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, KeywordId> by_name_;
  std::vector<std::string> by_id_;
  size_t string_bytes_ = 0;
};

}  // namespace kflush

#endif  // KFLUSH_MODEL_KEYWORD_DICTIONARY_H_
