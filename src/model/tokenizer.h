// Keyword extraction from microblog text. The paper indexes hashtags when
// available, falling back to content terms. The tokenizer lower-cases,
// strips punctuation, drops stopwords and single characters, and can run in
// hashtag-only or all-terms mode.

#ifndef KFLUSH_MODEL_TOKENIZER_H_
#define KFLUSH_MODEL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace kflush {

/// Tokenization behaviour.
struct TokenizerOptions {
  /// If true, only `#hashtag` tokens are produced (the paper's default:
  /// "we use hashtags, if available, as keywords"). If the text has no
  /// hashtags and `fallback_to_terms` is set, plain terms are produced.
  bool hashtags_only = true;
  bool fallback_to_terms = true;
  /// Tokens shorter than this are dropped.
  size_t min_token_length = 2;
  /// Drop common English stopwords in all-terms mode.
  bool drop_stopwords = true;
};

/// Stateless, thread-safe tokenizer.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Extracts keyword tokens from `text`, deduplicated, in first-occurrence
  /// order. Hashtag tokens are returned without the leading '#'.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsStopword(std::string_view token) const;

  TokenizerOptions options_;
};

}  // namespace kflush

#endif  // KFLUSH_MODEL_TOKENIZER_H_
