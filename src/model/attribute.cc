#include "model/attribute.h"

#include <cassert>
#include <cmath>

namespace kflush {

const char* AttributeKindName(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kKeyword:
      return "keyword";
    case AttributeKind::kSpatial:
      return "spatial";
    case AttributeKind::kUser:
      return "user";
  }
  return "unknown";
}

SpatialGridMapper::SpatialGridMapper(double tile_edge_degrees)
    : tile_edge_degrees_(tile_edge_degrees) {
  assert(tile_edge_degrees > 0.0);
  tiles_per_row_ =
      static_cast<uint64_t>(std::ceil(360.0 / tile_edge_degrees_)) + 1;
  num_rows_ = static_cast<uint64_t>(std::ceil(180.0 / tile_edge_degrees_)) + 1;
}

TermId SpatialGridMapper::TileFor(double lat, double lon) const {
  // Clamp into valid WGS84 ranges; malformed coordinates land in edge tiles
  // rather than corrupting the term space.
  lat = std::fmin(std::fmax(lat, -90.0), 90.0);
  lon = std::fmin(std::fmax(lon, -180.0), 180.0);
  const uint64_t row =
      static_cast<uint64_t>((lat + 90.0) / tile_edge_degrees_);
  const uint64_t col =
      static_cast<uint64_t>((lon + 180.0) / tile_edge_degrees_);
  return row * tiles_per_row_ + col;
}

GeoPoint SpatialGridMapper::TileCenter(TermId tile) const {
  const uint64_t row = tile / tiles_per_row_;
  const uint64_t col = tile % tiles_per_row_;
  GeoPoint p;
  p.lat = -90.0 + (static_cast<double>(row) + 0.5) * tile_edge_degrees_;
  p.lon = -180.0 + (static_cast<double>(col) + 0.5) * tile_edge_degrees_;
  return p;
}

void KeywordAttribute::ExtractTerms(const Microblog& blog,
                                    std::vector<TermId>* out) const {
  out->clear();
  out->reserve(blog.keywords.size());
  for (KeywordId kw : blog.keywords) {
    out->push_back(static_cast<TermId>(kw));
  }
}

SpatialAttribute::SpatialAttribute(SpatialGridMapper mapper)
    : mapper_(mapper) {}

void SpatialAttribute::ExtractTerms(const Microblog& blog,
                                    std::vector<TermId>* out) const {
  out->clear();
  if (!blog.has_location) return;
  out->push_back(mapper_.TileFor(blog.location.lat, blog.location.lon));
}

void UserAttribute::ExtractTerms(const Microblog& blog,
                                 std::vector<TermId>* out) const {
  out->clear();
  out->push_back(static_cast<TermId>(blog.user_id));
}

std::unique_ptr<AttributeExtractor> MakeAttribute(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kKeyword:
      return std::make_unique<KeywordAttribute>();
    case AttributeKind::kSpatial:
      return std::make_unique<SpatialAttribute>();
    case AttributeKind::kUser:
      return std::make_unique<UserAttribute>();
  }
  return nullptr;
}

}  // namespace kflush
