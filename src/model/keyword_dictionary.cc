#include "model/keyword_dictionary.h"

#include <mutex>

namespace kflush {

KeywordId KeywordDictionary::Intern(std::string_view keyword) {
  {
    std::shared_lock<std::shared_mutex> read_lock(mu_);
    auto it = by_name_.find(std::string(keyword));
    if (it != by_name_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> write_lock(mu_);
  auto [it, inserted] =
      by_name_.try_emplace(std::string(keyword),
                           static_cast<KeywordId>(by_id_.size()));
  if (inserted) {
    by_id_.push_back(it->first);
    string_bytes_ += keyword.size();
  }
  return it->second;
}

KeywordId KeywordDictionary::Lookup(std::string_view keyword) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(std::string(keyword));
  return it == by_name_.end() ? kInvalidKeywordId : it->second;
}

std::string KeywordDictionary::Name(KeywordId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= by_id_.size()) return "";
  return by_id_[id];
}

size_t KeywordDictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_id_.size();
}

size_t KeywordDictionary::FootprintBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Two copies of each string (map key + vector) plus node/bucket overhead.
  return 2 * string_bytes_ + by_id_.size() * (sizeof(std::string) * 2 + 48);
}

}  // namespace kflush
