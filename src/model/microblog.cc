#include "model/microblog.h"

#include <sstream>

namespace kflush {

size_t Microblog::FootprintBytes() const {
  // Fixed struct overhead plus the variable-length payloads. We charge
  // logical sizes (not allocator capacities) so the same record always
  // accounts to the same number of bytes wherever it lives.
  size_t bytes = sizeof(Microblog);
  bytes += text.size();
  bytes += keywords.size() * sizeof(KeywordId);
  return bytes;
}

std::string Microblog::DebugString() const {
  std::ostringstream os;
  os << "Microblog{id=" << id << " t=" << created_at << " user=" << user_id;
  if (has_location) {
    os << " loc=(" << location.lat << "," << location.lon << ")";
  }
  os << " kws=[";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) os << ",";
    os << keywords[i];
  }
  os << "] text=\"" << text << "\"}";
  return os.str();
}

MicroblogBuilder& MicroblogBuilder::WithId(MicroblogId id) {
  blog_.id = id;
  return *this;
}

MicroblogBuilder& MicroblogBuilder::WithTimestamp(Timestamp ts) {
  blog_.created_at = ts;
  return *this;
}

MicroblogBuilder& MicroblogBuilder::WithUser(UserId user) {
  blog_.user_id = user;
  return *this;
}

MicroblogBuilder& MicroblogBuilder::WithFollowers(uint32_t followers) {
  blog_.follower_count = followers;
  return *this;
}

MicroblogBuilder& MicroblogBuilder::WithLocation(double lat, double lon) {
  blog_.has_location = true;
  blog_.location = {lat, lon};
  return *this;
}

MicroblogBuilder& MicroblogBuilder::WithText(std::string text) {
  blog_.text = std::move(text);
  return *this;
}

MicroblogBuilder& MicroblogBuilder::WithKeywords(
    std::vector<KeywordId> keywords) {
  blog_.keywords = std::move(keywords);
  return *this;
}

MicroblogBuilder& MicroblogBuilder::AddKeyword(KeywordId kw) {
  blog_.keywords.push_back(kw);
  return *this;
}

Microblog MicroblogBuilder::Build() { return std::move(blog_); }

}  // namespace kflush
