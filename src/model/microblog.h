// The microblog record: the unit of data flowing through the system.
// Matches the paper's model (Figure 3): a raw record with an id, arrival
// timestamp, user, optional location, text, and the extracted keyword set
// used by the inverted index.

#ifndef KFLUSH_MODEL_MICROBLOG_H_
#define KFLUSH_MODEL_MICROBLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.h"

namespace kflush {

/// Unique microblog identifier (assigned by the ingest path, monotonically
/// increasing with arrival order).
using MicroblogId = uint64_t;

/// A term in the generic attribute space: an interned keyword id, a spatial
/// tile id, or a user id, depending on the index's attribute (paper §IV-A).
using TermId = uint64_t;

/// Interned keyword identifier (dense, assigned by KeywordDictionary).
using KeywordId = uint32_t;

using UserId = uint64_t;

constexpr MicroblogId kInvalidMicroblogId = ~0ULL;
constexpr TermId kInvalidTermId = ~0ULL;

/// WGS84 coordinate carried by geotagged microblogs.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// One microblog (tweet / comment / check-in).
struct Microblog {
  MicroblogId id = kInvalidMicroblogId;
  /// Arrival timestamp; the default (temporal) ranking orders by this.
  Timestamp created_at = 0;
  UserId user_id = 0;
  /// Author's follower count, used by the popularity ranking function.
  uint32_t follower_count = 0;
  bool has_location = false;
  GeoPoint location;
  std::string text;
  /// Interned keywords (hashtags) extracted at ingest time.
  std::vector<KeywordId> keywords;

  /// Estimated in-memory footprint in bytes, charged to the raw store.
  /// Deterministic in the logical content (uses sizes, not capacities) so
  /// that Charge/Release pairs always balance.
  size_t FootprintBytes() const;

  /// Compact single-line rendering for examples and debugging.
  std::string DebugString() const;
};

/// Fluent builder for tests and examples.
class MicroblogBuilder {
 public:
  MicroblogBuilder& WithId(MicroblogId id);
  MicroblogBuilder& WithTimestamp(Timestamp ts);
  MicroblogBuilder& WithUser(UserId user);
  MicroblogBuilder& WithFollowers(uint32_t followers);
  MicroblogBuilder& WithLocation(double lat, double lon);
  MicroblogBuilder& WithText(std::string text);
  MicroblogBuilder& WithKeywords(std::vector<KeywordId> keywords);
  MicroblogBuilder& AddKeyword(KeywordId kw);

  Microblog Build();

 private:
  Microblog blog_;
};

}  // namespace kflush

#endif  // KFLUSH_MODEL_MICROBLOG_H_
