// Search attributes (paper §IV-A). The store and the flushing policies are
// generic over a term space: an AttributeExtractor maps each microblog to
// the TermIds under which it is indexed — its keywords, its spatial grid
// tile, or its author's user id. One index + policy implementation then
// serves keyword search, location search, and user-timeline search.

#ifndef KFLUSH_MODEL_ATTRIBUTE_H_
#define KFLUSH_MODEL_ATTRIBUTE_H_

#include <memory>
#include <vector>

#include "model/microblog.h"

namespace kflush {

/// Which microblog attribute an index is built over.
enum class AttributeKind : int {
  kKeyword = 0,  // "Find k microblogs that contain keyword w"
  kSpatial,      // "Find k microblogs posted in location tile t"
  kUser,         // "Find k microblogs posted by user u"
};

const char* AttributeKindName(AttributeKind kind);

/// Maps (lat, lon) to equal-area grid tiles. The paper uses ~4 mi² tiles;
/// we parameterize the tile edge in degrees of latitude and correct
/// longitude spacing at the equator-scale approximation the paper's grid
/// implies (equal-area tiles over the region of interest).
class SpatialGridMapper {
 public:
  /// `tile_edge_degrees` is the tile side length in degrees. The default
  /// 0.029 degrees of latitude ~= 2 miles, giving ~4 mi² tiles.
  explicit SpatialGridMapper(double tile_edge_degrees = 0.029);

  /// Returns the TermId of the tile containing (lat, lon). Total ordering of
  /// tiles is row-major over the lat/lon grid covering the globe.
  TermId TileFor(double lat, double lon) const;

  /// Center coordinates of a tile (for display / debugging).
  GeoPoint TileCenter(TermId tile) const;

  uint64_t tiles_per_row() const { return tiles_per_row_; }
  double tile_edge_degrees() const { return tile_edge_degrees_; }

 private:
  double tile_edge_degrees_;
  uint64_t tiles_per_row_;
  uint64_t num_rows_;
};

/// Maps a microblog to the index terms it appears under.
class AttributeExtractor {
 public:
  virtual ~AttributeExtractor() = default;

  virtual AttributeKind kind() const = 0;

  /// Appends the microblog's terms to `out` (cleared first). A microblog
  /// with no terms under this attribute (e.g. no location) is simply not
  /// indexed.
  virtual void ExtractTerms(const Microblog& blog,
                            std::vector<TermId>* out) const = 0;
};

/// Keyword attribute: one term per extracted keyword.
class KeywordAttribute : public AttributeExtractor {
 public:
  AttributeKind kind() const override { return AttributeKind::kKeyword; }
  void ExtractTerms(const Microblog& blog,
                    std::vector<TermId>* out) const override;
};

/// Spatial attribute: the single grid tile containing the post location.
class SpatialAttribute : public AttributeExtractor {
 public:
  explicit SpatialAttribute(SpatialGridMapper mapper = SpatialGridMapper());

  AttributeKind kind() const override { return AttributeKind::kSpatial; }
  void ExtractTerms(const Microblog& blog,
                    std::vector<TermId>* out) const override;

  const SpatialGridMapper& mapper() const { return mapper_; }

 private:
  SpatialGridMapper mapper_;
};

/// User attribute: the single author id.
class UserAttribute : public AttributeExtractor {
 public:
  AttributeKind kind() const override { return AttributeKind::kUser; }
  void ExtractTerms(const Microblog& blog,
                    std::vector<TermId>* out) const override;
};

/// Factory for the three built-in attributes.
std::unique_ptr<AttributeExtractor> MakeAttribute(AttributeKind kind);

}  // namespace kflush

#endif  // KFLUSH_MODEL_ATTRIBUTE_H_
