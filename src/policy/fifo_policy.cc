#include "policy/fifo_policy.h"

namespace kflush {

FifoPolicy::FifoPolicy(const PolicyContext& ctx, uint32_t k,
                       size_t segment_bytes)
    : FlushPolicy(ctx, k), index_(ctx.tracker), segment_bytes_(segment_bytes) {}

void FifoPolicy::Insert(const Microblog& blog, const std::vector<TermId>& terms,
                        double score) {
  const Timestamp now = Now();
  for (TermId term : terms) {
    index_.Insert(term, blog.id, score, now);
  }
  const size_t added = RawDataStore::RecordBytes(blog) +
                       terms.size() * PostingList::kBytesPerPosting;
  const size_t total =
      active_segment_bytes_.fetch_add(added, std::memory_order_relaxed) +
      added;
  if (total >= segment_bytes_) {
    // Single sealer: the thread that crosses the threshold resets the
    // counter, so concurrent inserts cannot seal twice for one crossing.
    size_t expected = total;
    if (active_segment_bytes_.compare_exchange_strong(
            expected, 0, std::memory_order_relaxed)) {
      index_.SealActiveSegment();
    }
  }
}

size_t FifoPolicy::QueryTerm(TermId term, size_t limit,
                             std::vector<MicroblogId>* out,
                             bool record_access) {
  // FIFO keeps no recency metadata; queries are pure reads.
  (void)record_access;
  return index_.Query(term, limit, out);
}

size_t FifoPolicy::EntrySize(TermId term) const {
  return index_.EntrySize(term);
}

size_t FifoPolicy::FlushImpl(size_t bytes_needed) {
  Stopwatch watch;
  size_t freed = 0;
  size_t segments_flushed = 0;
  // Drop whole oldest segments until the budget is met. Flushing the only
  // (active) segment empties memory entirely; stop there regardless.
  while (freed < bytes_needed) {
    const size_t segments_before = index_.NumSegments();
    // Audit granularity: one victim per flushed segment (FIFO has no
    // per-entry decision to record; the whole oldest segment goes).
    BeginVictim(/*phase=*/1, kInvalidTermId);
    const size_t freed_before = freed;
    const size_t index_freed =
        index_.FlushOldestSegment([&](TermId term, const Posting& posting) {
          // The segment's MemoryBytes() below already covers every posting
          // and entry, so only the record-side bytes of the drop may be
          // added here — adding OnPostingDropped's posting bytes too would
          // overstate `freed` and let the cycle stop short of the B budget
          // (memory-accounting drift vs. the tracker's actual delta).
          freed += OnPostingDropped(term, posting) -
                   PostingList::kBytesPerPosting;
        });
    freed += index_freed;
    EndVictim(freed - freed_before);
    ++segments_flushed;
    if (segments_before <= 1) break;  // flushed the last segment
  }
  // Single-phase policy: everything reports under phases[0]; a "candidate"
  // here is a whole flushed segment.
  std::lock_guard<std::mutex> lock(stats_mu_);
  PhaseStats& ps = stats_.phases[0];
  ++ps.runs;
  ps.candidates_scanned += segments_flushed;
  ps.bytes_freed += freed;
  ps.micros += watch.ElapsedMicros();
  return freed;
}

size_t FifoPolicy::NumTerms() const { return index_.NumTerms(); }

size_t FifoPolicy::NumKFilledTerms() const {
  return index_.NumTermsWithAtLeast(k());
}

void FifoPolicy::CollectEntrySizes(std::vector<size_t>* out) const {
  // Per-term totals across segments.
  std::unordered_map<TermId, size_t> counts;
  // SegmentedIndex has no cross-segment iteration helper beyond the stats
  // methods; reuse NumTermsWithAtLeast-style accounting via a snapshot.
  index_.ForEachTermCount(
      [&](TermId term, size_t count) { counts[term] += count; });
  out->reserve(out->size() + counts.size());
  for (const auto& [term, count] : counts) out->push_back(count);
}

size_t FifoPolicy::AuxMemoryBytes() const {
  // Segment headers only: FIFO tracks nothing per item or per entry.
  return index_.NumSegments() * 64;
}

}  // namespace kflush
