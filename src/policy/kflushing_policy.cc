#include "policy/kflushing_policy.h"

#include <algorithm>
#include <queue>

namespace kflush {

namespace {

// Charge-transition functors for the MK digestion fast path: plain structs
// (not std::function) so InsertWith inlines the refcount bump.
struct TopKInc {
  RawDataStore* raw;
  void operator()(MicroblogId id) const { raw->IncrementTopK(id); }
};
struct TopKDec {
  RawDataStore* raw;
  void operator()(MicroblogId id) const { raw->DecrementTopK(id); }
};

}  // namespace

KFlushingPolicy::KFlushingPolicy(const PolicyContext& ctx, uint32_t k,
                                 KFlushingOptions options)
    : FlushPolicy(ctx, k), index_(ctx.tracker), options_(options) {}

KFlushingPolicy::~KFlushingPolicy() {
  if (ctx_.tracker != nullptr) {
    std::lock_guard<SpinLock> lock(over_k_mu_);
    ctx_.tracker->Release(MemoryComponent::kPolicyOverhead,
                          over_k_terms_.size() * kBytesPerTrackedTerm);
  }
}

void KFlushingPolicy::Insert(const Microblog& blog,
                             const std::vector<TermId>& terms, double score) {
  const Timestamp now = Now();
  const uint32_t k = this->k();
  // MK: per-record top-k refcounts follow the entry's charged prefix, and
  // every transition is applied *under the entry's shard lock* (the
  // index -> raw-store lock order), so a flush running RemoveMatching on
  // the same entry observes either {posting present, refcount counted} or
  // neither. Updating after Insert returned would open a window where the
  // flusher decrements a count this thread has not yet incremented (the
  // decrement clamps at 0), leaving the record with a phantom top-k
  // reference that Phase 1 then honors forever.
  const bool mk = options_.mk_extension;
  RawDataStore* raw = ctx_.raw_store;
  for (TermId term : terms) {
    // Non-MK digestion observes no charge transitions, so it takes the
    // charge-free overload (k = 0): the whole charged-prefix machinery
    // compiles away. MK goes through the functor-ref template — no
    // std::function construction or indirect call per insert.
    const IndexInsertResult res =
        mk ? index_.InsertWith(term, blog.id, score, now, k, TopKInc{raw},
                               TopKDec{raw})
           : index_.Insert(term, blog.id, score, now);
    if (res.size_after > k) {
      // Track the over-k entry in L so Phase 1 never scans the index.
      std::lock_guard<SpinLock> lock(over_k_mu_);
      if (over_k_terms_.insert(term).second && ctx_.tracker != nullptr) {
        ctx_.tracker->Charge(MemoryComponent::kPolicyOverhead,
                             kBytesPerTrackedTerm);
      }
    }
  }
}

size_t KFlushingPolicy::QueryTerm(TermId term, size_t limit,
                                  std::vector<MicroblogId>* out,
                                  bool record_access) {
  if (record_access) {
    // Stamps the entry's last-query time — Phase 3's eviction key. Racing
    // queries both write ~NOW, so no extra synchronization is needed
    // beyond the shard lock already taken (paper §III-C).
    return index_.Query(term, limit, Now(), out);
  }
  return index_.Peek(term, limit, out);
}

size_t KFlushingPolicy::EntrySize(TermId term) const {
  return index_.EntrySize(term);
}

void KFlushingPolicy::SetK(uint32_t k) {
  FlushPolicy::SetK(k);
  // L was built against the old k; the next flush rebuilds it by scanning.
  k_changed_.store(true, std::memory_order_relaxed);
}

size_t KFlushingPolicy::FlushImpl(size_t bytes_needed) {
  size_t freed = TimedPhase(1, [&] { return RunPhase1(); });
  if (freed < bytes_needed && options_.enable_phase2) {
    freed += TimedPhase(2, [&] { return RunPhase2(bytes_needed - freed); });
  }
  if (freed < bytes_needed && options_.enable_phase3) {
    freed += TimedPhase(3, [&] { return RunPhase3(bytes_needed - freed); });
  }
  return freed;
}

size_t KFlushingPolicy::TimedPhase(int phase,
                                   const std::function<size_t()>& body) {
  static const char* const kPhaseNames[] = {"phase1", "phase2", "phase3"};
  TraceSpan span("flush", kPhaseNames[phase - 1]);
  current_phase_ = phase;
  Stopwatch watch;
  const size_t freed = body();
  const uint64_t micros = watch.ElapsedMicros();
  current_phase_ = 1;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    PhaseStats& ps = stats_.phases[phase - 1];
    ++ps.runs;
    ps.bytes_freed += freed;
    ps.micros += micros;
  }
  span.End({TraceArg::Uint("bytes_freed", freed)});
  return freed;
}

size_t KFlushingPolicy::RunPhase1() {
  const uint32_t k = this->k();
  std::unordered_set<TermId> terms;
  if (k_changed_.exchange(false, std::memory_order_relaxed)) {
    // k changed since L was built: rebuild by scanning for over-k entries
    // (paper §IV-C — the new k takes effect at this cycle).
    {
      std::lock_guard<SpinLock> lock(over_k_mu_);
      if (ctx_.tracker != nullptr) {
        ctx_.tracker->Release(MemoryComponent::kPolicyOverhead,
                              over_k_terms_.size() * kBytesPerTrackedTerm);
      }
      over_k_terms_.clear();
    }
    index_.Snapshot(&scan_snapshot_);
    scan_indices_.clear();
    simd::AppendIndicesGreater(scan_snapshot_.counts.data(),
                               scan_snapshot_.size(), k, &scan_indices_);
    for (uint32_t i : scan_indices_) terms.insert(scan_snapshot_.terms[i]);
    if (options_.mk_extension) {
      // Charged prefixes (and with them the per-record top-k refcounts)
      // were built against the old k; converge every entry to the new k in
      // one pass so Phase 1's keep-while-top-k-elsewhere test judges
      // against current membership, not history.
      RawDataStore* raw = ctx_.raw_store;
      index_.RebalanceAll(
          k, [raw](MicroblogId id) { raw->IncrementTopK(id); },
          [raw](MicroblogId id) { raw->DecrementTopK(id); });
    }
  } else {
    std::lock_guard<SpinLock> lock(over_k_mu_);
    terms.swap(over_k_terms_);
    if (ctx_.tracker != nullptr) {
      ctx_.tracker->Release(MemoryComponent::kPolicyOverhead,
                            terms.size() * kBytesPerTrackedTerm);
    }
  }

  // Hash-set iteration order varies run to run; trimming in term-id order
  // keeps disk posting registration (and with it equal-score disk reads)
  // replayable across runs.
  std::vector<TermId> ordered(terms.begin(), terms.end());
  std::sort(ordered.begin(), ordered.end());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.phases[0].candidates_scanned += ordered.size();
  }
  size_t freed = 0;
  for (TermId term : ordered) {
    freed += TrimEntry(term, k);
  }
  return freed;
}

size_t KFlushingPolicy::TrimEntry(TermId term, uint32_t k) {
  // Phase 1 victims never involve the heap: rank -1, order key 0.
  BeginVictim(/*phase=*/1, term);
  std::function<bool(MicroblogId)> should_trim;  // default: trim everything
  TopKChargeFn on_charge, on_uncharge;
  if (options_.mk_extension) {
    // MK Phase 1 rule: keep a beyond-top-k posting while its microblog is
    // still within top-k of some other entry (§IV-D condition 2). A
    // beyond-k posting holds no charge here, so its refcount counts only
    // *other* entries — except for stale charges left by a shrunken k,
    // which TrimBeyondK revokes (on_uncharge) before the filter runs.
    RawDataStore* raw = ctx_.raw_store;
    should_trim = [raw](MicroblogId id) { return raw->TopKCount(id) == 0; };
    on_charge = [raw](MicroblogId id) { raw->IncrementTopK(id); };
    on_uncharge = [raw](MicroblogId id) { raw->DecrementTopK(id); };
  }

  std::vector<Posting> trimmed;
  index_.TrimBeyondK(term, k, should_trim, &trimmed, on_charge, on_uncharge);
  size_t freed = 0;
  for (const Posting& p : trimmed) {
    freed += OnPostingDropped(term, p);
  }
  if (options_.mk_extension && index_.EntrySize(term) > k) {
    // Kept postings leave the entry over-k; re-track it so a later Phase 1
    // retires them once they drop out of every top-k.
    std::lock_guard<SpinLock> lock(over_k_mu_);
    if (over_k_terms_.insert(term).second && ctx_.tracker != nullptr) {
      ctx_.tracker->Charge(MemoryComponent::kPolicyOverhead,
                           kBytesPerTrackedTerm);
    }
  }
  EndVictim(freed);
  return freed;
}

std::vector<KFlushingPolicy::Candidate> KFlushingPolicy::SelectVictims(
    std::vector<Candidate> candidates, size_t target) {
  // Single-pass O(n) selection (paper §III-B): keep a max-heap on the
  // order key whose members' bytes sum to at least `target`, replacing the
  // most recent member whenever an older candidate can take its place
  // without dropping the sum below target.
  // Heap order and the replacement test both compare the full
  // (order_key, term) tuple: equal-timestamp candidates resolve by term
  // id, so the selected set cannot flip between runs just because the
  // hash-map scan handed them over in a different order.
  auto more_recent = [](const Candidate& a, const Candidate& b) {
    if (a.order_key != b.order_key) return a.order_key < b.order_key;
    return a.term < b.term;  // heap top = most recent, then largest term
  };
  std::priority_queue<Candidate, std::vector<Candidate>,
                      decltype(more_recent)>
      heap(more_recent);
  size_t sum = 0;
  for (const Candidate& c : candidates) {
    if (sum < target) {
      heap.push(c);
      sum += c.bytes;
    } else if (!heap.empty() && more_recent(c, heap.top())) {
      const Candidate& top = heap.top();
      if (sum - top.bytes + c.bytes >= target) {
        sum -= top.bytes;
        heap.pop();
        heap.push(c);
        sum += c.bytes;
      } else {
        // Replacement would under-shoot the budget: add without removing
        // (paper: "the new keyword is inserted without removing H's most
        // recent keyword").
        heap.push(c);
        sum += c.bytes;
      }
    }
  }
  std::vector<Candidate> selected;
  selected.reserve(heap.size());
  while (!heap.empty()) {
    selected.push_back(heap.top());
    heap.pop();
  }
  return selected;
}

size_t KFlushingPolicy::MeanRecordBytes() const {
  const size_t records = ctx_.raw_store->size();
  return records == 0 ? 0 : ctx_.raw_store->MemoryBytes() / records;
}

size_t KFlushingPolicy::EstimateEntryCost(size_t count,
                                          size_t mean_record_bytes) {
  return InvertedIndex::kBytesPerEntry +
         count * (PostingList::kBytesPerPosting + mean_record_bytes);
}

size_t KFlushingPolicy::EvictEntry(TermId term, int phase, int64_t heap_rank,
                                   Timestamp order_key) {
  BeginVictim(phase, term, heap_rank, order_key);
  const uint32_t k = this->k();

  // MK Phase 2 rule (§IV-D condition 3): keep a posting whose microblog
  // also exists in some entry holding >= k postings — trimming it there
  // would newly break AND queries spanning a frequent keyword. The keep
  // set is computed before mutating so no index locks nest.
  std::function<bool(MicroblogId)> should_remove;  // default: remove all
  if (options_.mk_extension && phase == 2) {
    std::vector<MicroblogId> ids;
    index_.Peek(term, ~size_t{0}, &ids);
    auto keep = std::make_shared<std::unordered_set<MicroblogId>>();
    std::vector<TermId> other_terms;
    for (MicroblogId id : ids) {
      // Copy the record's terms out under the raw-store shard lock, then
      // consult the index with no lock held. Probing the index from inside
      // With() would take index shard locks under a raw-store lock — the
      // reverse of the index -> raw order TrimEntry's predicate uses, a
      // lock-order inversion TSan flags and a real deadlock under load.
      other_terms.clear();
      ctx_.raw_store->With(id, [&](const Microblog& blog) {
        ctx_.extractor->ExtractTerms(blog, &other_terms);
      });
      for (TermId t : other_terms) {
        if (t == term) continue;
        if (index_.EntrySize(t) >= k && index_.ContainsId(t, id)) {
          keep->insert(id);
          break;
        }
      }
    }
    if (!keep->empty()) {
      should_remove = [keep](MicroblogId id) { return keep->count(id) == 0; };
    }
  }

  size_t freed = 0;
  const bool mk = options_.mk_extension;
  RawDataStore* raw = ctx_.raw_store;
  // All callbacks run under the entry's shard lock, keeping the refcounts
  // transactional with the structural change: a removed charged posting
  // gives its count back, and kept postings sliding into the vacated top-k
  // region gain one (without that, a later eviction's uncharge would steal
  // a count belonging to another entry).
  TopKChargeFn on_charge, on_uncharge;
  if (mk) {
    on_charge = [raw](MicroblogId id) { raw->IncrementTopK(id); };
    on_uncharge = [raw](MicroblogId id) { raw->DecrementTopK(id); };
  }
  index_.RemoveMatching(
      term, k, should_remove,
      [&](const Posting& p, bool was_charged) {
        if (mk && was_charged) raw->DecrementTopK(p.id);
        freed += OnPostingDropped(term, p);
      },
      on_charge, on_uncharge);
  const bool entry_gone = index_.EntrySize(term) == 0;
  if (entry_gone) {
    freed += InvertedIndex::kBytesPerEntry;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.phases[phase - 1].entries;
  }
  EndVictim(freed, entry_gone ? 1 : 0);
  return freed;
}

size_t KFlushingPolicy::RunPhase2(size_t bytes_needed) {
  const uint32_t k = this->k();
  size_t freed = 0;
  // The cost estimate can overshoot for records shared across entries, so
  // re-scan until the budget is met or no under-k entries remain.
  while (freed < bytes_needed) {
    index_.Snapshot(&scan_snapshot_);
    scan_indices_.clear();
    simd::AppendIndicesLess(scan_snapshot_.counts.data(),
                            scan_snapshot_.size(), k, &scan_indices_);
    if (scan_indices_.empty()) break;
    // The per-record cost estimate is uniform across this pass: hoist the
    // mean out of the candidate loop (size()/MemoryBytes() aggregate the
    // shard counters — cheap, but not per-candidate cheap).
    const size_t mean_record = MeanRecordBytes();
    std::vector<Candidate> candidates;
    candidates.reserve(scan_indices_.size());
    for (uint32_t i : scan_indices_) {
      candidates.push_back(
          {scan_snapshot_.terms[i], scan_snapshot_.last_arrival[i],
           EstimateEntryCost(scan_snapshot_.counts[i], mean_record)});
    }
    const size_t scanned = candidates.size();
    std::vector<Candidate> victims =
        SelectVictims(std::move(candidates), bytes_needed - freed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.phases[1].candidates_scanned += scanned;
      stats_.phases[1].heap_selected += victims.size();
    }
    if (victims.empty()) break;
    const size_t freed_before = freed;
    for (size_t rank = 0; rank < victims.size(); ++rank) {
      const Candidate& victim = victims[rank];
      freed += EvictEntry(victim.term, /*phase=*/2,
                          static_cast<int64_t>(rank), victim.order_key);
    }
    // MK can keep an entire selected entry (all its microblogs pinned by
    // frequent keywords); without progress, rescanning would spin.
    if (freed == freed_before) break;
  }
  return freed;
}

size_t KFlushingPolicy::RunPhase3(size_t bytes_needed) {
  size_t freed = 0;
  while (freed < bytes_needed) {
    // Phase 3 considers every remaining entry, keyed by last query time so
    // recently popular keywords stay in memory (or by last arrival under
    // the ablation configuration).
    index_.Snapshot(&scan_snapshot_);
    const size_t n = scan_snapshot_.size();
    if (n == 0) break;
    const std::vector<Timestamp>& keys = options_.phase3_by_query_time
                                             ? scan_snapshot_.last_query
                                             : scan_snapshot_.last_arrival;
    const size_t mean_record = MeanRecordBytes();
    std::vector<Candidate> candidates;
    candidates.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      candidates.push_back(
          {scan_snapshot_.terms[i], keys[i],
           EstimateEntryCost(scan_snapshot_.counts[i], mean_record)});
    }
    const size_t scanned = candidates.size();
    std::vector<Candidate> victims =
        SelectVictims(std::move(candidates), bytes_needed - freed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.phases[2].candidates_scanned += scanned;
      stats_.phases[2].heap_selected += victims.size();
    }
    if (victims.empty()) break;
    const size_t freed_before = freed;
    for (size_t rank = 0; rank < victims.size(); ++rank) {
      const Candidate& victim = victims[rank];
      freed += EvictEntry(victim.term, /*phase=*/3,
                          static_cast<int64_t>(rank), victim.order_key);
    }
    if (freed == freed_before) break;
  }
  return freed;
}

size_t KFlushingPolicy::NumTerms() const { return index_.NumEntries(); }

size_t KFlushingPolicy::NumKFilledTerms() const {
  return index_.NumEntriesWithAtLeast(k());
}

void KFlushingPolicy::CollectEntrySizes(std::vector<size_t>* out) const {
  index_.ForEachEntry(
      [&](const EntryMeta& meta) { out->push_back(meta.count); });
}

size_t KFlushingPolicy::AuxMemoryBytes() const {
  size_t bytes = 0;
  {
    std::lock_guard<SpinLock> lock(over_k_mu_);
    bytes += over_k_terms_.size() * kBytesPerTrackedTerm;
  }
  // Per-entry last-arrival + last-query timestamps (vs. FIFO, which keeps
  // neither), plus per-record top-k refcounts in MK mode.
  bytes += index_.NumEntries() * 2 * sizeof(Timestamp);
  if (options_.mk_extension) {
    bytes += ctx_.raw_store->size() * sizeof(uint32_t);
  }
  return bytes;
}

size_t KFlushingPolicy::TrackedOverKTerms() const {
  std::lock_guard<SpinLock> lock(over_k_mu_);
  return over_k_terms_.size();
}

}  // namespace kflush
