#include "policy/flush_policy.h"

#include <sstream>

#include "util/logging.h"

namespace kflush {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kKFlushing:
      return "kFlushing";
    case PolicyKind::kKFlushingMK:
      return "kFlushing-MK";
  }
  return "unknown";
}

std::string PolicyStats::ToString() const {
  std::ostringstream os;
  os << "cycles=" << flush_cycles << " records_flushed=" << records_flushed
     << " bytes_flushed=" << record_bytes_flushed
     << " postings_dropped=" << postings_dropped;
  if (postings_dropped > 0) {
    os << " phases={";
    for (int i = 0; i < 3; ++i) {
      const PhaseStats& ps = phases[i];
      if (ps.runs == 0) continue;
      os << " p" << (i + 1) << "={runs=" << ps.runs
         << " scanned=" << ps.candidates_scanned
         << " selected=" << ps.heap_selected << " postings=" << ps.postings
         << " entries=" << ps.entries << " records=" << ps.records
         << " freed=" << ps.bytes_freed << " us=" << ps.micros << "}";
    }
    os << " }";
  }
  os << " cycle_us={" << cycle_micros.ToString() << "}";
  return os.str();
}

FlushPolicy::FlushPolicy(const PolicyContext& ctx, uint32_t k)
    : ctx_(ctx), k_(k) {}

void FlushPolicy::SetK(uint32_t k) {
  k_.store(k, std::memory_order_relaxed);
}

PolicyStats FlushPolicy::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t FlushPolicy::Flush(size_t bytes_needed) {
  Stopwatch watch;
  current_phase_ = 1;
  const size_t freed = FlushImpl(bytes_needed);
  // One batched write per cycle (paper §III-A: victims are buffered to
  // reduce I/O operations).
  Status s = ctx_.flush_buffer->DrainTo(ctx_.disk_store);
  if (!s.ok()) {
    KFLUSH_ERROR("flush drain failed: " << s.ToString());
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.flush_cycles;
  stats_.cycle_micros.Record(watch.ElapsedMicros());
  return freed;
}

size_t FlushPolicy::OnPostingDropped(TermId term, const Posting& posting) {
  Status s = ctx_.disk_store->AddPosting(term, posting.id, posting.score);
  if (!s.ok()) {
    KFLUSH_ERROR("disk AddPosting failed: " << s.ToString());
  }
  size_t freed = PostingList::kBytesPerPosting;
  const uint32_t remaining = ctx_.raw_store->DecrementPcount(posting.id);
  PhaseStats& phase = stats_.phases[current_phase_ - 1];
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.postings_dropped;
    ++phase.postings;
  }
  if (remaining == 0) {
    auto record = ctx_.raw_store->Remove(posting.id);
    if (record.has_value()) {
      const size_t record_bytes = RawDataStore::RecordBytes(*record);
      freed += record_bytes;
      ctx_.flush_buffer->Add(std::move(*record));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.records_flushed;
      stats_.record_bytes_flushed += record_bytes;
      ++phase.records;
      phase.record_bytes += record_bytes;
    }
  }
  return freed;
}

}  // namespace kflush
