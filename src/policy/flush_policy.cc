#include "policy/flush_policy.h"

#include <sstream>

#include "sub/subscription_sink.h"
#include "util/logging.h"

namespace kflush {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kKFlushing:
      return "kFlushing";
    case PolicyKind::kKFlushingMK:
      return "kFlushing-MK";
  }
  return "unknown";
}

std::string PolicyStats::ToString() const {
  std::ostringstream os;
  os << "cycles=" << flush_cycles << " records_flushed=" << records_flushed
     << " bytes_flushed=" << record_bytes_flushed
     << " postings_dropped=" << postings_dropped;
  if (postings_dropped > 0) {
    os << " phases={";
    for (int i = 0; i < 3; ++i) {
      const PhaseStats& ps = phases[i];
      if (ps.runs == 0) continue;
      os << " p" << (i + 1) << "={runs=" << ps.runs
         << " scanned=" << ps.candidates_scanned
         << " selected=" << ps.heap_selected << " postings=" << ps.postings
         << " entries=" << ps.entries << " records=" << ps.records
         << " freed=" << ps.bytes_freed << " us=" << ps.micros << "}";
    }
    os << " }";
  }
  os << " cycle_us={" << cycle_micros.ToString() << "}";
  return os.str();
}

void MergePolicyStats(const PolicyStats& in, PolicyStats* out) {
  out->flush_cycles += in.flush_cycles;
  out->records_flushed += in.records_flushed;
  out->record_bytes_flushed += in.record_bytes_flushed;
  out->postings_dropped += in.postings_dropped;
  for (int i = 0; i < 3; ++i) {
    PhaseStats& o = out->phases[i];
    const PhaseStats& p = in.phases[i];
    o.runs += p.runs;
    o.candidates_scanned += p.candidates_scanned;
    o.heap_selected += p.heap_selected;
    o.postings += p.postings;
    o.entries += p.entries;
    o.records += p.records;
    o.record_bytes += p.record_bytes;
    o.bytes_freed += p.bytes_freed;
    o.micros += p.micros;
  }
  out->cycle_micros.Merge(in.cycle_micros);
  out->cycle_cpu_micros.Merge(in.cycle_cpu_micros);
}

FlushPolicy::FlushPolicy(const PolicyContext& ctx, uint32_t k)
    : ctx_(ctx), k_(k) {}

void FlushPolicy::SetK(uint32_t k) {
  k_.store(k, std::memory_order_relaxed);
}

PolicyStats FlushPolicy::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t FlushPolicy::Flush(size_t bytes_needed) {
  TraceSpan span("flush", "cycle",
                 {TraceArg::Str("policy", name()),
                  TraceArg::Uint("bytes_needed", bytes_needed),
                  TraceArg::Int("shard", ctx_.shard_id)});
  Stopwatch watch;
  CpuStopwatch cpu_watch;
  current_phase_ = 1;
  const size_t freed = FlushImpl(bytes_needed);
  // One batched write per cycle (paper §III-A: victims are buffered to
  // reduce I/O operations).
  Status s = ctx_.flush_buffer->DrainTo(ctx_.disk_store);
  if (!s.ok()) {
    KFLUSH_ERROR("flush drain failed: " << s.ToString());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.flush_cycles;
    stats_.cycle_micros.Record(watch.ElapsedMicros());
    stats_.cycle_cpu_micros.Record(cpu_watch.ElapsedMicros());
  }
  span.End({TraceArg::Uint("bytes_freed", freed)});
  return freed;
}

void FlushPolicy::BeginVictim(int phase, TermId term, int64_t heap_rank,
                              Timestamp order_key, MicroblogId record_id) {
  victim_ = EvictionAuditRecord{};
  victim_.shard = ctx_.shard_id;
  victim_.phase = phase;
  victim_.term = term;
  victim_.record_id = record_id;
  victim_.heap_rank = heap_rank;
  victim_.order_key = order_key;
  victim_open_ = true;
}

void FlushPolicy::EndVictim(uint64_t bytes_freed, uint64_t entries_evicted) {
  victim_open_ = false;
  victim_.bytes_freed = bytes_freed;
  victim_.entries_evicted = entries_evicted;
  if (audit_trail_ != nullptr) {
    audit_trail_->Append(victim_);
  }
  KFLUSH_TRACE_INSTANT(
      "flush", "evict_victim", TraceArg::Int("phase", victim_.phase),
      TraceArg::Uint("term", victim_.term),
      TraceArg::Int("heap_rank", victim_.heap_rank),
      TraceArg::Uint("order_key", static_cast<uint64_t>(victim_.order_key)),
      TraceArg::Uint("postings", victim_.postings_dropped),
      TraceArg::Uint("entries", victim_.entries_evicted),
      TraceArg::Uint("records", victim_.records_flushed),
      TraceArg::Uint("bytes_freed", victim_.bytes_freed));
}

size_t FlushPolicy::OnPostingDropped(TermId term, const Posting& posting) {
  Status s = ctx_.disk_store->AddPosting(term, posting.id, posting.score);
  if (!s.ok()) {
    KFLUSH_ERROR("disk AddPosting failed: " << s.ToString());
  }
  size_t freed = PostingList::kBytesPerPosting;
  const uint32_t remaining = ctx_.raw_store->DecrementPcount(posting.id);
  PhaseStats& phase = stats_.phases[current_phase_ - 1];
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.postings_dropped;
    ++phase.postings;
  }
  if (victim_open_) ++victim_.postings_dropped;
  if (remaining == 0) {
    auto record = ctx_.raw_store->Remove(posting.id);
    if (record.has_value()) {
      const size_t record_bytes = RawDataStore::RecordBytes(*record);
      freed += record_bytes;
      ctx_.flush_buffer->Add(std::move(*record));
      if (victim_open_) {
        ++victim_.records_flushed;
        victim_.record_bytes += record_bytes;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.records_flushed;
        stats_.record_bytes_flushed += record_bytes;
        ++phase.records;
        phase.record_bytes += record_bytes;
      }
      // The record just left the memory tier. Tell the continuous-query
      // layer so standing results holding it schedule a disk-backed
      // refill; the sink only queues work, it never re-enters the policy.
      if (SubscriptionSink* sink =
              sub_sink_.load(std::memory_order_acquire)) {
        sink->OnRecordEvicted(posting.id);
      }
    }
  }
  return freed;
}

Status ReconcileAuditWithStats(const std::vector<EvictionAuditRecord>& records,
                               const PolicyStats& stats) {
  PhaseStats sums[3];
  for (const EvictionAuditRecord& r : records) {
    if (r.phase < 1 || r.phase > 3) {
      return Status::Internal("audit record with out-of-range phase " +
                              std::to_string(r.phase));
    }
    PhaseStats& s = sums[r.phase - 1];
    s.postings += r.postings_dropped;
    s.entries += r.entries_evicted;
    s.records += r.records_flushed;
    s.record_bytes += r.record_bytes;
    s.bytes_freed += r.bytes_freed;
  }
  for (int i = 0; i < 3; ++i) {
    const PhaseStats& got = sums[i];
    const PhaseStats& want = stats.phases[i];
    auto mismatch = [&](const char* field, uint64_t g, uint64_t w) {
      return Status::Internal(
          "audit/stats mismatch in phase " + std::to_string(i + 1) + " " +
          field + ": audit sum " + std::to_string(g) + " != stats " +
          std::to_string(w));
    };
    if (got.postings != want.postings) {
      return mismatch("postings", got.postings, want.postings);
    }
    if (got.entries != want.entries) {
      return mismatch("entries", got.entries, want.entries);
    }
    if (got.records != want.records) {
      return mismatch("records", got.records, want.records);
    }
    if (got.record_bytes != want.record_bytes) {
      return mismatch("record_bytes", got.record_bytes, want.record_bytes);
    }
    if (got.bytes_freed != want.bytes_freed) {
      return mismatch("bytes_freed", got.bytes_freed, want.bytes_freed);
    }
  }
  return Status::OK();
}

}  // namespace kflush
