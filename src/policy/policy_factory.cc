#include "policy/policy_factory.h"

#include "policy/fifo_policy.h"
#include "policy/kflushing_policy.h"
#include "policy/lru_policy.h"

namespace kflush {

std::unique_ptr<FlushPolicy> MakePolicy(PolicyKind kind,
                                        const PolicyContext& ctx,
                                        const PolicyOptions& options) {
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>(ctx, options.k,
                                          options.fifo_segment_bytes);
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(ctx, options.k);
    case PolicyKind::kKFlushing: {
      KFlushingOptions kf;
      kf.enable_phase2 = options.enable_phase2;
      kf.enable_phase3 = options.enable_phase3;
      kf.phase3_by_query_time = options.phase3_by_query_time;
      kf.mk_extension = false;
      return std::make_unique<KFlushingPolicy>(ctx, options.k, kf);
    }
    case PolicyKind::kKFlushingMK: {
      KFlushingOptions kf;
      kf.enable_phase2 = options.enable_phase2;
      kf.enable_phase3 = options.enable_phase3;
      kf.phase3_by_query_time = options.phase3_by_query_time;
      kf.mk_extension = true;
      return std::make_unique<KFlushingPolicy>(ctx, options.k, kf);
    }
  }
  return nullptr;
}

}  // namespace kflush
