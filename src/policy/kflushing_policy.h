// kFlushing: the paper's three-phase, top-k-aware flushing policy (§III),
// including the multiple-keyword (MK) extension (§IV-D).
//
// Phase 1 (regular):    trim postings beyond top-k from every over-k entry
//                       (tracked incrementally in the list L so Phase 1
//                       never scans the whole index). MK rule: keep a
//                       posting if its microblog is still within top-k of
//                       any other entry (record top-k refcount > 0).
// Phase 2 (aggressive): evict whole entries holding fewer than k postings —
//                       queries on them miss regardless — least recently
//                       *arrived* first, selected by a single-pass O(n)
//                       max-heap. MK rule: keep a posting if its microblog
//                       also exists in some entry with >= k postings.
// Phase 3 (forced):     evict whole entries (now all k-filled), least
//                       recently *queried* first (query temporal locality,
//                       Lin & Mishne 2012), same single-pass selection.
//
// Bookkeeping is per *entry*, not per item: one last-arrival and one
// last-query timestamp per keyword — the key to kFlushing's low overhead
// versus LRU (paper §III-B/III-C, Figure 10).

#ifndef KFLUSH_POLICY_KFLUSHING_POLICY_H_
#define KFLUSH_POLICY_KFLUSHING_POLICY_H_

#include <functional>
#include <unordered_set>

#include "index/inverted_index.h"
#include "policy/flush_policy.h"
#include "util/thread_util.h"

namespace kflush {

/// Which phases run (ablation support; Figure 5(a) is phases={1}).
struct KFlushingOptions {
  bool enable_phase2 = true;
  bool enable_phase3 = true;
  /// The multiple-keyword extension (§IV-D). When set, kind() reports
  /// kKFlushingMK.
  bool mk_extension = false;
  /// Phase 3 victim ordering. The paper argues for least-recently-QUERIED
  /// (query streams exhibit strong temporal locality, Lin & Mishne 2012);
  /// setting this false keys Phase 3 on last-arrival instead — an
  /// ablation that quantifies the §III-C design choice.
  bool phase3_by_query_time = true;
};

/// The kFlushing policy. Thread-safe: Insert/QueryTerm run concurrently
/// with a single flushing thread.
class KFlushingPolicy : public FlushPolicy {
 public:
  /// Approximate bookkeeping bytes per tracked over-k term in L.
  static constexpr size_t kBytesPerTrackedTerm = 16;

  KFlushingPolicy(const PolicyContext& ctx, uint32_t k,
                  KFlushingOptions options = {});
  ~KFlushingPolicy() override;

  PolicyKind kind() const override {
    return options_.mk_extension ? PolicyKind::kKFlushingMK
                                 : PolicyKind::kKFlushing;
  }

  void Insert(const Microblog& blog, const std::vector<TermId>& terms,
              double score) override;
  size_t QueryTerm(TermId term, size_t limit, std::vector<MicroblogId>* out,
                   bool record_access) override;
  size_t EntrySize(TermId term) const override;

  void SetK(uint32_t k) override;

  size_t NumTerms() const override;
  size_t NumKFilledTerms() const override;
  void CollectEntrySizes(std::vector<size_t>* out) const override;
  size_t AuxMemoryBytes() const override;

  const KFlushingOptions& options() const { return options_; }

  /// Size of the over-k tracking list L (tests).
  size_t TrackedOverKTerms() const;

 protected:
  size_t FlushImpl(size_t bytes_needed) override;

 private:
  /// Phase bodies; each returns the data bytes it freed.
  size_t RunPhase1();
  size_t RunPhase2(size_t bytes_needed);
  size_t RunPhase3(size_t bytes_needed);

  /// Runs one phase body with attribution: sets current_phase_ around the
  /// call and records runs/bytes_freed/micros into stats_.phases[phase-1].
  size_t TimedPhase(int phase, const std::function<size_t()>& body);

  /// Trims one over-k entry per the (possibly MK-extended) Phase 1 rule.
  size_t TrimEntry(TermId term, uint32_t k);

  /// The single-pass O(n) victim selection of Phases 2/3 (paper §III-B):
  /// scans `candidates` (term, key-timestamp, bytes) and returns a subset
  /// whose bytes sum to at least `target`, preferring the smallest key
  /// timestamps. Exposed via the .cc for unit testing through the policy.
  struct Candidate {
    TermId term;
    Timestamp order_key;
    size_t bytes;
  };
  static std::vector<Candidate> SelectVictims(std::vector<Candidate> candidates,
                                              size_t target);

  /// Current mean raw-record size, hoisted out of the candidate loops (one
  /// aggregation per selection pass, not per candidate).
  size_t MeanRecordBytes() const;

  /// Estimated full memory cost of an entry holding `count` postings:
  /// index bytes plus the records those postings pin, approximated with
  /// the pass's mean record size.
  static size_t EstimateEntryCost(size_t count, size_t mean_record_bytes);

  /// Removes (possibly partially, under MK) one selected entry; phase = 2
  /// or 3 for stats attribution, heap_rank/order_key for the victim's
  /// audit record (its position in SelectVictims' output and the timestamp
  /// the heap compared). Returns bytes freed.
  size_t EvictEntry(TermId term, int phase, int64_t heap_rank,
                    Timestamp order_key);

  InvertedIndex index_;
  KFlushingOptions options_;

  /// The list L of entries that exceeded k postings since the last Phase 1
  /// run (paper §III-A). A set: each over-k entry appears once.
  mutable SpinLock over_k_mu_;
  std::unordered_set<TermId> over_k_terms_;

  /// Set by SetK; the next flush rebuilds L by scanning (paper §IV-C: the
  /// new k takes effect at the next flushing cycle).
  std::atomic<bool> k_changed_{false};

  /// Scratch for the phase scans (SIMD-swept column snapshot + selected
  /// row indices); capacity survives across cycles. Touched only by the
  /// single flushing thread, like the phase bodies.
  IndexSnapshot scan_snapshot_;
  std::vector<uint32_t> scan_indices_;

  /// friend for white-box tests of SelectVictims.
  friend class KFlushingPolicyTestPeer;
};

}  // namespace kflush

#endif  // KFLUSH_POLICY_KFLUSHING_POLICY_H_
