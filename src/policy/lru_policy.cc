#include "policy/lru_policy.h"

namespace kflush {

LruPolicy::LruPolicy(const PolicyContext& ctx, uint32_t k)
    : FlushPolicy(ctx, k), index_(ctx.tracker) {}

LruPolicy::~LruPolicy() {
  if (ctx_.tracker != nullptr) {
    std::lock_guard<std::mutex> lock(lru_mu_);
    ctx_.tracker->Release(MemoryComponent::kPolicyOverhead,
                          lru_.size() * kBytesPerNode);
  }
}

void LruPolicy::Touch(MicroblogId id) {
  std::lock_guard<std::mutex> lock(lru_mu_);
  auto it = position_.find(id);
  if (it != position_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    return;
  }
  lru_.push_front(id);
  position_[id] = lru_.begin();
  if (ctx_.tracker != nullptr) {
    ctx_.tracker->Charge(MemoryComponent::kPolicyOverhead, kBytesPerNode);
  }
}

MicroblogId LruPolicy::PopColdest() {
  std::lock_guard<std::mutex> lock(lru_mu_);
  if (lru_.empty()) return kInvalidMicroblogId;
  const MicroblogId id = lru_.back();
  lru_.pop_back();
  position_.erase(id);
  if (ctx_.tracker != nullptr) {
    ctx_.tracker->Release(MemoryComponent::kPolicyOverhead, kBytesPerNode);
  }
  return id;
}

void LruPolicy::Untrack(MicroblogId id) {
  std::lock_guard<std::mutex> lock(lru_mu_);
  auto it = position_.find(id);
  if (it == position_.end()) return;
  lru_.erase(it->second);
  position_.erase(it);
  if (ctx_.tracker != nullptr) {
    ctx_.tracker->Release(MemoryComponent::kPolicyOverhead, kBytesPerNode);
  }
}

void LruPolicy::Insert(const Microblog& blog, const std::vector<TermId>& terms,
                       double score) {
  const Timestamp now = Now();
  for (TermId term : terms) {
    index_.Insert(term, blog.id, score, now, /*k=*/0);
  }
  // New arrivals enter at the MRU head (H-Store semantics).
  Touch(blog.id);
}

size_t LruPolicy::QueryTerm(TermId term, size_t limit,
                            std::vector<MicroblogId>* out,
                            bool record_access) {
  (void)record_access;  // LRU recency updates happen via OnResultAccess.
  return index_.Query(term, limit, Now(), out);
}

void LruPolicy::OnResultAccess(const std::vector<MicroblogId>& ids) {
  // Every microblog returned to a query moves to the MRU head — the
  // global-list contention that throttles H-Store-style anti-caching.
  for (MicroblogId id : ids) Touch(id);
}

size_t LruPolicy::EntrySize(TermId term) const {
  return index_.EntrySize(term);
}

size_t LruPolicy::FlushImpl(size_t bytes_needed) {
  Stopwatch watch;
  size_t freed = 0;
  size_t victims_examined = 0;
  size_t entries_erased = 0;
  std::vector<TermId> terms;
  while (freed < bytes_needed) {
    const MicroblogId victim = PopColdest();
    if (victim == kInvalidMicroblogId) break;  // memory is empty
    ++victims_examined;
    // Recover the victim's terms and unlink it from every index entry.
    auto blog = ctx_.raw_store->Get(victim);
    if (!blog.has_value()) continue;  // already gone (defensive)
    // Audit granularity: one victim per evicted record (LRU's decision
    // unit), identified by record id rather than term.
    BeginVictim(/*phase=*/1, kInvalidTermId, /*heap_rank=*/-1,
                /*order_key=*/0, victim);
    const size_t freed_before = freed;
    size_t record_entries_erased = 0;
    terms.clear();
    ctx_.extractor->ExtractTerms(*blog, &terms);
    for (TermId term : terms) {
      Posting removed;
      if (index_.RemoveId(term, victim, /*k=*/0, &removed, nullptr)) {
        freed += OnPostingDropped(term, removed);
        // Entry erased when it became empty.
        if (index_.EntrySize(term) == 0) {
          freed += InvertedIndex::kBytesPerEntry;
          ++record_entries_erased;
        }
      }
    }
    entries_erased += record_entries_erased;
    EndVictim(freed - freed_before, record_entries_erased);
  }
  // Single-phase policy: everything reports under phases[0].
  std::lock_guard<std::mutex> lock(stats_mu_);
  PhaseStats& ps = stats_.phases[0];
  ++ps.runs;
  ps.candidates_scanned += victims_examined;
  ps.entries += entries_erased;
  ps.bytes_freed += freed;
  ps.micros += watch.ElapsedMicros();
  return freed;
}

size_t LruPolicy::NumTerms() const { return index_.NumEntries(); }

size_t LruPolicy::NumKFilledTerms() const {
  return index_.NumEntriesWithAtLeast(k());
}

void LruPolicy::CollectEntrySizes(std::vector<size_t>* out) const {
  index_.ForEachEntry(
      [&](const EntryMeta& meta) { out->push_back(meta.count); });
}

size_t LruPolicy::AuxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(lru_mu_);
  return lru_.size() * kBytesPerNode;
}

size_t LruPolicy::LruListSize() const {
  std::lock_guard<std::mutex> lock(lru_mu_);
  return lru_.size();
}

}  // namespace kflush
