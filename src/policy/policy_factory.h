// Construction of the four evaluated flushing policies from a PolicyKind.

#ifndef KFLUSH_POLICY_POLICY_FACTORY_H_
#define KFLUSH_POLICY_POLICY_FACTORY_H_

#include <memory>

#include "policy/flush_policy.h"

namespace kflush {

/// Policy construction parameters beyond the shared context.
struct PolicyOptions {
  uint32_t k = 20;
  /// FIFO segment size in bytes (typically the flush budget B).
  size_t fifo_segment_bytes = 4 << 20;
  /// kFlushing phase toggles (ablations); MK is implied by the kind.
  bool enable_phase2 = true;
  bool enable_phase3 = true;
  /// kFlushing Phase 3 ordering: last-queried (paper) vs last-arrived.
  bool phase3_by_query_time = true;
};

/// Builds a policy of `kind`. The context pointers must outlive the policy.
std::unique_ptr<FlushPolicy> MakePolicy(PolicyKind kind,
                                        const PolicyContext& ctx,
                                        const PolicyOptions& options);

}  // namespace kflush

#endif  // KFLUSH_POLICY_POLICY_FACTORY_H_
