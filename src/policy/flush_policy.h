// The flushing-policy abstraction. A policy owns the in-memory index
// structure (policies are *structural* in this system: FIFO really is a
// temporally segmented index, LRU really maintains a global access list)
// and implements three responsibilities:
//
//   1. ingest  — index a newly stored microblog,
//   2. query   — serve best-ranked in-memory ids for a term,
//   3. flush   — free at least the requested bytes, moving victims to disk
//                through the shared raw store / flush buffer machinery.
//
// The problem statement (paper §II-C): given in-memory microblogs S and a
// flushing budget B, pick s ⊆ S consuming at least B that maximizes the
// memory hit ratio of incoming top-k queries.

#ifndef KFLUSH_POLICY_FLUSH_POLICY_H_
#define KFLUSH_POLICY_FLUSH_POLICY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/trace.h"
#include "index/posting_list.h"
#include "model/attribute.h"
#include "model/microblog.h"
#include "storage/disk_store.h"
#include "storage/flush_buffer.h"
#include "storage/raw_store.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/memory_tracker.h"
#include "util/status.h"

namespace kflush {

class SubscriptionSink;

/// The four evaluated policies (paper §V).
enum class PolicyKind : int {
  kFifo = 0,     // temporal flushing over a segmented index (baseline)
  kLru,          // H-Store-style anti-caching with a global LRU list
  kKFlushing,    // the paper's three-phase policy
  kKFlushingMK,  // kFlushing + the multiple-keyword extension (§IV-D)
};

const char* PolicyKindName(PolicyKind kind);

/// Shared infrastructure handed to every policy.
struct PolicyContext {
  RawDataStore* raw_store = nullptr;
  DiskStore* disk_store = nullptr;
  FlushBuffer* flush_buffer = nullptr;
  MemoryTracker* tracker = nullptr;
  Clock* clock = nullptr;
  /// Used by policies that must recover a record's terms at flush time
  /// (LRU eviction, kFlushing-MK rules).
  const AttributeExtractor* extractor = nullptr;
  /// Shard this policy serves in a sharded deployment; -1 = standalone.
  /// Labels flush-cycle trace spans and eviction audit records so the
  /// concurrent per-shard cycles remain distinguishable after the fact.
  int shard_id = -1;
};

/// Per-phase breakdown of flushing work. Indices 0..2 are kFlushing's
/// Phases 1..3; single-phase policies (FIFO, LRU) report everything under
/// index 0. These counters back the metrics registry's `flush.phaseN.*`
/// taxonomy (docs/INTERNALS.md) and the conservation invariant
///   records_flushed == Σ phases[i].records.
struct PhaseStats {
  uint64_t runs = 0;                // times the phase body executed
  uint64_t candidates_scanned = 0;  // entries examined by the phase's scan
  uint64_t heap_selected = 0;       // victims chosen by the max-heap pass
  uint64_t postings = 0;            // postings dropped by this phase
  uint64_t entries = 0;             // whole entries evicted by this phase
  uint64_t records = 0;             // records moved to disk via this phase
  uint64_t record_bytes = 0;        // bytes of those records
  uint64_t bytes_freed = 0;         // total data bytes freed by this phase
  uint64_t micros = 0;              // wall time spent in the phase body
};

/// Cumulative policy statistics.
struct PolicyStats {
  uint64_t flush_cycles = 0;
  uint64_t records_flushed = 0;
  uint64_t record_bytes_flushed = 0;
  uint64_t postings_dropped = 0;
  /// Per-phase contributions (see PhaseStats; [0] = Phase 1 / only phase).
  PhaseStats phases[3];
  /// Wall time per flush cycle, microseconds.
  Histogram cycle_micros;
  /// CPU time the flushing thread burned per cycle, microseconds. Differs
  /// from cycle_micros when cores are oversubscribed (the wall clock keeps
  /// ticking while the flusher is descheduled); the shard-scaling bench's
  /// work-span series reads this one.
  Histogram cycle_cpu_micros;

  std::string ToString() const;
};

/// Accumulates `in` into `out`: counters and per-phase fields add, cycle
/// histograms merge. The sharded deployment reports one PolicyStats per
/// shard; experiment/bench aggregation folds them with this so the
/// conservation invariants (records_flushed == Σ phases[i].records, audit
/// reconciliation) keep holding on the aggregate.
void MergePolicyStats(const PolicyStats& in, PolicyStats* out);

/// Abstract flushing policy. Insert/QueryTerm may be called concurrently
/// from many threads; Flush is called from one flushing thread at a time.
class FlushPolicy {
 public:
  explicit FlushPolicy(const PolicyContext& ctx, uint32_t k);
  virtual ~FlushPolicy() = default;

  FlushPolicy(const FlushPolicy&) = delete;
  FlushPolicy& operator=(const FlushPolicy&) = delete;

  virtual PolicyKind kind() const = 0;
  const char* name() const { return PolicyKindName(kind()); }

  /// Indexes `blog` (already Put into the raw store with
  /// pcount == terms.size()) under each of `terms` with ranking `score`.
  virtual void Insert(const Microblog& blog, const std::vector<TermId>& terms,
                      double score) = 0;

  /// Appends up to `limit` best-ranked in-memory ids for `term` to `out`;
  /// returns the count appended. When `record_access` is true the call is
  /// a user query and recency metadata is updated (last-query time for
  /// kFlushing Phase 3, list touches for LRU).
  virtual size_t QueryTerm(TermId term, size_t limit,
                           std::vector<MicroblogId>* out,
                           bool record_access) = 0;

  /// In-memory postings under `term` (the hit predicate's input).
  virtual size_t EntrySize(TermId term) const = 0;

  /// Notifies the policy that these microblogs were returned to a user
  /// query. LRU moves them to the MRU head (the H-Store access path);
  /// other policies keep recency per term, not per item, and ignore this.
  virtual void OnResultAccess(const std::vector<MicroblogId>& ids) {
    (void)ids;
  }

  /// Frees at least `bytes_needed` of data memory (best effort: returns
  /// the bytes actually freed, which is less only when memory is
  /// exhausted of candidates). Victim records are registered with the disk
  /// store; the flush buffer is drained before returning.
  size_t Flush(size_t bytes_needed);

  /// Changes k. Takes effect at the next flush cycle (paper §IV-C).
  virtual void SetK(uint32_t k);
  uint32_t k() const { return k_.load(std::memory_order_relaxed); }

  /// --- introspection (experiment metrics) ---
  virtual size_t NumTerms() const = 0;
  /// Entries holding >= k postings: the "k-filled" metric of Figures 7/11/12.
  virtual size_t NumKFilledTerms() const = 0;
  /// Per-entry posting counts, for frequency snapshots (Figure 1 analysis).
  virtual void CollectEntrySizes(std::vector<size_t>* out) const = 0;
  /// Policy bookkeeping bytes beyond raw data + index (Figure 10(a)).
  virtual size_t AuxMemoryBytes() const = 0;

  PolicyStats stats() const;

  /// Installs (or, with nullptr, removes) the sink for per-victim eviction
  /// audit records. Call while no flush is running; the single flushing
  /// thread reads the pointer without synchronization.
  void set_audit_trail(EvictionAuditTrail* trail) { audit_trail_ = trail; }
  EvictionAuditTrail* audit_trail() const { return audit_trail_; }

  /// Installs (or, with nullptr, removes) the continuous-query publish
  /// sink, notified when a record's last in-memory posting is dropped and
  /// the record leaves the memory tier. Atomic — unlike the audit trail,
  /// a server may install it while the background flusher is mid-cycle.
  void set_subscription_sink(SubscriptionSink* sink) {
    sub_sink_.store(sink, std::memory_order_release);
  }

 protected:
  /// Subclass flush body; returns bytes freed.
  virtual size_t FlushImpl(size_t bytes_needed) = 0;

  /// --- victim-scoped audit accumulation (flush thread only, same
  /// single-thread contract as current_phase_) ---
  ///
  /// A policy brackets each victim — a trimmed entry (kFlushing Phase 1),
  /// an evicted entry (Phases 2/3), a flushed segment (FIFO), an unlinked
  /// record (LRU) — with BeginVictim/EndVictim. OnPostingDropped calls in
  /// between accumulate postings/records/record bytes into the open scope;
  /// EndVictim takes the victim's exact bytes-freed delta (the same number
  /// the policy adds to its phase total, so per-phase audit sums reconcile
  /// exactly with PhaseStats) and the whole entries it removed, then
  /// appends to the audit trail (if installed) and emits a "flush"/
  /// "evict_victim" trace instant (if tracing is on).
  void BeginVictim(int phase, TermId term, int64_t heap_rank = -1,
                   Timestamp order_key = 0,
                   MicroblogId record_id = kInvalidMicroblogId);
  void EndVictim(uint64_t bytes_freed, uint64_t entries_evicted = 0);

  /// Standard handling for a posting leaving the in-memory index: register
  /// the association on disk, decrement the record's reference count, and
  /// when it reaches zero move the record to the flush buffer. Returns the
  /// data bytes freed by this drop (posting bytes, plus record bytes when
  /// the record left memory).
  size_t OnPostingDropped(TermId term, const Posting& posting);

  Timestamp Now() const { return ctx_.clock->NowMicros(); }

  PolicyContext ctx_;
  std::atomic<uint32_t> k_;
  mutable std::mutex stats_mu_;
  PolicyStats stats_;
  /// Phase OnPostingDropped attributes its work to (1..3). Flush resets it
  /// to 1 before FlushImpl, so single-phase policies need not touch it;
  /// kFlushing sets it around each phase body. Only the single flushing
  /// thread reads or writes it, so a plain int is race-free by contract.
  int current_phase_ = 1;

  /// Victim scope state (flush thread only; see BeginVictim/EndVictim).
  EvictionAuditTrail* audit_trail_ = nullptr;
  bool victim_open_ = false;
  EvictionAuditRecord victim_;

  /// Continuous-query eviction hook (see set_subscription_sink).
  std::atomic<SubscriptionSink*> sub_sink_{nullptr};
};

/// Cross-checks an eviction audit trail against the aggregate PhaseStats
/// counters: for each phase, the audit records' postings / entries /
/// records / record-bytes / bytes-freed sums must equal the corresponding
/// PhaseStats fields exactly (both are fed by the same per-victim deltas,
/// so any drift means an instrumentation bug). Returns OK on an exact
/// match, Internal describing the first mismatch otherwise. The trail must
/// cover the policy's whole lifetime (installed before the first flush).
Status ReconcileAuditWithStats(const std::vector<EvictionAuditRecord>& records,
                               const PolicyStats& stats);

}  // namespace kflush

#endif  // KFLUSH_POLICY_FLUSH_POLICY_H_
