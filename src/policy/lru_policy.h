// The LRU anti-caching baseline, modeled on H-Store's anti-cache (paper
// §V: "a global doubly-linked list is maintained to order microblogs in
// least recently used order"). Every insertion and every query access
// touches the global list under one lock — faithfully reproducing both the
// per-item tracking overhead (Figure 10(a)) and the digestion-rate collapse
// under concurrent querying (Figure 10(b)).

#ifndef KFLUSH_POLICY_LRU_POLICY_H_
#define KFLUSH_POLICY_LRU_POLICY_H_

#include <list>
#include <unordered_map>

#include "index/inverted_index.h"
#include "policy/flush_policy.h"

namespace kflush {

/// Anti-caching with a global LRU list over individual microblogs.
class LruPolicy : public FlushPolicy {
 public:
  /// Approximate bookkeeping bytes per tracked record (two list pointers
  /// embedded conceptually in the record's index entry, plus the position
  /// map node).
  static constexpr size_t kBytesPerNode = 48;

  LruPolicy(const PolicyContext& ctx, uint32_t k);
  ~LruPolicy() override;

  PolicyKind kind() const override { return PolicyKind::kLru; }

  void Insert(const Microblog& blog, const std::vector<TermId>& terms,
              double score) override;
  size_t QueryTerm(TermId term, size_t limit, std::vector<MicroblogId>* out,
                   bool record_access) override;
  size_t EntrySize(TermId term) const override;
  void OnResultAccess(const std::vector<MicroblogId>& ids) override;

  size_t NumTerms() const override;
  size_t NumKFilledTerms() const override;
  void CollectEntrySizes(std::vector<size_t>* out) const override;
  size_t AuxMemoryBytes() const override;

  /// Number of records currently tracked by the LRU list (tests).
  size_t LruListSize() const;

 protected:
  size_t FlushImpl(size_t bytes_needed) override;

 private:
  /// Moves `id` to the MRU end, inserting if untracked.
  void Touch(MicroblogId id);
  /// Pops the LRU-end id; returns kInvalidMicroblogId when empty.
  MicroblogId PopColdest();
  void Untrack(MicroblogId id);

  InvertedIndex index_;

  /// The global list: front = most recently used. One mutex guards both
  /// the list and the position map — deliberately global, as in H-Store.
  mutable std::mutex lru_mu_;
  std::list<MicroblogId> lru_;
  std::unordered_map<MicroblogId, std::list<MicroblogId>::iterator> position_;
};

}  // namespace kflush

#endif  // KFLUSH_POLICY_LRU_POLICY_H_
