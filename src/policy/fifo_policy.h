// The FIFO (temporal) flushing baseline: what existing microblog systems do
// implicitly or explicitly (paper §V, Earlybird-style). The index is
// temporally segmented; the active segment seals once it accumulates one
// flush-budget's worth of data, and flushing drops whole oldest segments.
// No per-item bookkeeping at all — lowest overhead, lowest hit ratio.

#ifndef KFLUSH_POLICY_FIFO_POLICY_H_
#define KFLUSH_POLICY_FIFO_POLICY_H_

#include <atomic>

#include "index/segmented_index.h"
#include "policy/flush_policy.h"

namespace kflush {

/// Temporal flushing over a segmented index. Thread-safe.
class FifoPolicy : public FlushPolicy {
 public:
  /// `segment_bytes` is the data volume (records + postings) after which
  /// the active segment seals; sizing it to the flush budget B means one
  /// flush typically drops one segment.
  FifoPolicy(const PolicyContext& ctx, uint32_t k, size_t segment_bytes);

  PolicyKind kind() const override { return PolicyKind::kFifo; }

  void Insert(const Microblog& blog, const std::vector<TermId>& terms,
              double score) override;
  size_t QueryTerm(TermId term, size_t limit, std::vector<MicroblogId>* out,
                   bool record_access) override;
  size_t EntrySize(TermId term) const override;

  size_t NumTerms() const override;
  size_t NumKFilledTerms() const override;
  void CollectEntrySizes(std::vector<size_t>* out) const override;
  size_t AuxMemoryBytes() const override;

  size_t NumSegments() const { return index_.NumSegments(); }

 protected:
  size_t FlushImpl(size_t bytes_needed) override;

 private:
  SegmentedIndex index_;
  const size_t segment_bytes_;
  std::atomic<size_t> active_segment_bytes_{0};
};

}  // namespace kflush

#endif  // KFLUSH_POLICY_FIFO_POLICY_H_
