// Minimal leveled logger. Experiments run at kWarn by default so benchmark
// output stays clean; set KFLUSH_LOG_LEVEL or call SetLogLevel for debugging.
//
// Every line is prefixed with the process-monotonic timestamp (seconds,
// from util/clock.h's MonotonicMicros — the same clock behind trace spans
// and metrics stopwatches) and the logical thread id (util/thread_util.h's
// ThisThreadId — the same id trace events carry), so a log line can be
// placed on a trace timeline directly. KFLUSH_LOG_JSON=1 (or
// SetLogFormat(LogFormat::kJson)) switches to one JSON object per line for
// machine consumption.

#ifndef KFLUSH_UTIL_LOGGING_H_
#define KFLUSH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kflush {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Output shape: classic bracketed text, or one JSON object per line
/// ({"ts_us":..,"tid":..,"level":..,"file":..,"line":..,"msg":..}).
enum class LogFormat : int { kText = 0, kJson };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

#define KFLUSH_LOG(level, msg_expr)                                        \
  do {                                                                     \
    if (static_cast<int>(level) >=                                         \
        static_cast<int>(::kflush::GetLogLevel())) {                       \
      std::ostringstream _os;                                              \
      _os << msg_expr;                                                     \
      ::kflush::internal::LogMessage(level, __FILE__, __LINE__, _os.str());\
    }                                                                      \
  } while (0)

#define KFLUSH_DEBUG(msg) KFLUSH_LOG(::kflush::LogLevel::kDebug, msg)
#define KFLUSH_INFO(msg) KFLUSH_LOG(::kflush::LogLevel::kInfo, msg)
#define KFLUSH_WARN(msg) KFLUSH_LOG(::kflush::LogLevel::kWarn, msg)
#define KFLUSH_ERROR(msg) KFLUSH_LOG(::kflush::LogLevel::kError, msg)

}  // namespace kflush

#endif  // KFLUSH_UTIL_LOGGING_H_
