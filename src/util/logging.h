// Minimal leveled logger. Experiments run at kWarn by default so benchmark
// output stays clean; set KFLUSH_LOG_LEVEL or call SetLogLevel for debugging.

#ifndef KFLUSH_UTIL_LOGGING_H_
#define KFLUSH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kflush {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

#define KFLUSH_LOG(level, msg_expr)                                        \
  do {                                                                     \
    if (static_cast<int>(level) >=                                         \
        static_cast<int>(::kflush::GetLogLevel())) {                       \
      std::ostringstream _os;                                              \
      _os << msg_expr;                                                     \
      ::kflush::internal::LogMessage(level, __FILE__, __LINE__, _os.str());\
    }                                                                      \
  } while (0)

#define KFLUSH_DEBUG(msg) KFLUSH_LOG(::kflush::LogLevel::kDebug, msg)
#define KFLUSH_INFO(msg) KFLUSH_LOG(::kflush::LogLevel::kInfo, msg)
#define KFLUSH_WARN(msg) KFLUSH_LOG(::kflush::LogLevel::kWarn, msg)
#define KFLUSH_ERROR(msg) KFLUSH_LOG(::kflush::LogLevel::kError, msg)

}  // namespace kflush

#endif  // KFLUSH_UTIL_LOGGING_H_
