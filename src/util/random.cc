#include "util/random.h"

#include <cassert>
#include <cmath>

namespace kflush {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands a single seed into well-distributed state words.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 top bits into [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Rng::OneNPlusGeometric(double p_more, uint32_t max_n) {
  uint32_t n = 1;
  while (n < max_n && Bernoulli(p_more)) ++n;
  return n;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace kflush
