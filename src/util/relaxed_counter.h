// A statistics counter owned by a lock-guarded shard: every writer already
// holds the shard's mutex, so updates need no atomic RMW — a relaxed
// load + store pair compiles to plain arithmetic — while aggregating
// readers (size(), MemoryBytes(), ...) may sum shards lock-free. Using the
// shared global std::atomic fetch_add here instead is what made every
// digestion insert bounce counter cache lines across cores.

#ifndef KFLUSH_UTIL_RELAXED_COUNTER_H_
#define KFLUSH_UTIL_RELAXED_COUNTER_H_

#include <atomic>
#include <cstddef>

namespace kflush {

/// Single-writer-at-a-time counter (writer serialization supplied by the
/// caller, e.g. a shard mutex) with lock-free readers.
class ShardCounter {
 public:
  void Add(size_t delta) {
    v_.store(v_.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
  }
  void Sub(size_t delta) {
    v_.store(v_.load(std::memory_order_relaxed) - delta,
             std::memory_order_relaxed);
  }
  size_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> v_{0};
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_RELAXED_COUNTER_H_
