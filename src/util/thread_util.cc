#include "util/thread_util.h"

namespace kflush {

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  static thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace kflush
