#include "util/thread_util.h"

// Header-only helpers; this translation unit anchors the library target.
