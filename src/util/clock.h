// Clock abstractions. The store timestamps arrivals and query accesses; for
// reproducible experiments the simulation advances a logical clock, while
// throughput measurements use the wall clock.

#ifndef KFLUSH_UTIL_CLOCK_H_
#define KFLUSH_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace kflush {

/// Microseconds since an arbitrary epoch.
using Timestamp = uint64_t;

constexpr Timestamp kMicrosPerSecond = 1'000'000;
constexpr Timestamp kMicrosPerMilli = 1'000;

/// THE process-wide monotonic time source (steady_clock). Every wall-time
/// consumer — Stopwatch-fed metrics histograms, trace-event timestamps,
/// log-line prefixes — reads this one function, so a latency sample in a
/// histogram and a span in a trace are directly comparable. Do not call
/// std::chrono clocks directly elsewhere.
Timestamp MonotonicMicros();

/// CPU time consumed by the calling thread, in microseconds. Unlike
/// MonotonicMicros() this does not advance while the thread is descheduled,
/// so per-thread work measured with it is independent of how many other
/// threads timeshare the same cores (the shard-scaling bench's work-span
/// series depends on that). Falls back to MonotonicMicros() on platforms
/// without a per-thread CPU clock.
Timestamp ThreadCpuMicros();

/// ThreadCpuMicros() at nanosecond resolution, for costs far below a
/// microsecond (the per-phase insert breakdown). Same fallback behavior.
uint64_t ThreadCpuNanos();

/// Source of timestamps.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds.
  virtual Timestamp NowMicros() const = 0;
};

/// Monotonic wall clock; a Clock view over MonotonicMicros().
class WallClock : public Clock {
 public:
  Timestamp NowMicros() const override;

  /// Process-wide singleton.
  static WallClock* Default();
};

/// A manually advanced logical clock. Thread-safe: ingest advances it, the
/// flushing and query threads read it.
class SimClock : public Clock {
 public:
  explicit SimClock(Timestamp start = 0) : now_(start) {}

  Timestamp NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Advances by `delta` microseconds; returns the new time.
  Timestamp Advance(Timestamp delta) {
    return now_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  void Set(Timestamp t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

/// Scoped wall-time stopwatch for throughput/latency measurements.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = MonotonicMicros(); }

  /// Elapsed microseconds since construction or last Restart().
  Timestamp ElapsedMicros() const { return MonotonicMicros() - start_; }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / kMicrosPerSecond;
  }

 private:
  Timestamp start_;
};

/// Stopwatch over ThreadCpuMicros(): measures CPU time the calling thread
/// actually burned, not wall time. Start and read on the SAME thread.
class CpuStopwatch {
 public:
  CpuStopwatch() { Restart(); }

  void Restart() { start_ = ThreadCpuMicros(); }

  Timestamp ElapsedMicros() const { return ThreadCpuMicros() - start_; }

 private:
  Timestamp start_;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_CLOCK_H_
