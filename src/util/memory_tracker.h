// Byte-level memory accounting. The flushing problem is defined in bytes
// ("flush at least B% of the memory budget"), so every component that holds
// in-memory state charges/releases bytes against a MemoryTracker. Per-
// component counters also back the Figure 10(a) overhead experiment.
//
// Counters are striped: each thread charges a cache-line-private stripe
// with relaxed adds, and readers aggregate on demand. Digestion threads
// therefore never bounce a shared counter line between cores — the old
// single-atomic design put two fetch_adds on every insert's critical path.
// A single stripe's value is meaningless on its own (a thread may release
// bytes another thread charged, driving its stripe negative); only the
// aggregate is, and it is exact whenever no charge is mid-flight.

#ifndef KFLUSH_UTIL_MEMORY_TRACKER_H_
#define KFLUSH_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace kflush {

/// Logical owners of tracked memory, reported separately so experiments can
/// distinguish data memory from policy bookkeeping overhead.
enum class MemoryComponent : int {
  kRawStore = 0,      // microblog records
  kIndex,             // index entries + posting lists
  kPolicyOverhead,    // policy auxiliary structures (LRU list, L list, ...)
  kFlushBuffer,       // temporary buffer of victims awaiting disk write
  kNumComponents,
};

/// Thread-safe byte accounting against a budget.
class MemoryTracker {
 public:
  /// `budget_bytes` = the main-memory budget (paper default: 30 GB; our
  /// experiments scale it down — see DESIGN.md).
  explicit MemoryTracker(size_t budget_bytes);

  /// Charges `bytes` to `component`. Never fails: the store checks
  /// IsFull() to decide when to trigger flushing, mirroring the paper's
  /// "flush when memory becomes full" trigger rather than rejecting writes.
  void Charge(MemoryComponent component, size_t bytes) {
    Stripe& s = MyStripe();
    s.used.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    s.component[static_cast<int>(component)].fetch_add(
        static_cast<int64_t>(bytes), std::memory_order_relaxed);
  }

  /// Releases `bytes` previously charged to `component` (possibly by a
  /// different thread — stripes may individually go negative).
  void Release(MemoryComponent component, size_t bytes) {
    Stripe& s = MyStripe();
    s.used.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    s.component[static_cast<int>(component)].fetch_sub(
        static_cast<int64_t>(bytes), std::memory_order_relaxed);
  }

  size_t used() const;
  size_t budget() const { return budget_; }

  /// Bytes charged to one component.
  size_t ComponentUsed(MemoryComponent component) const;

  /// True once used >= budget (the flush trigger).
  bool IsFull() const { return used() >= budget_; }

  /// Data bytes: raw store + index (the contents the flushing problem is
  /// defined over; policy bookkeeping and the transient flush buffer are
  /// reported separately as overhead, mirroring the paper's Figure 10(a)).
  size_t DataUsed() const;

  /// True once the data contents fill the budget.
  bool DataFull() const { return DataUsed() >= budget_; }

  /// Fraction of the budget in use, in [0, +inf).
  double Utilization() const {
    return static_cast<double>(used()) / static_cast<double>(budget_);
  }

  /// Human-readable breakdown for logs.
  std::string ToString() const;

 private:
  static constexpr size_t kNumStripes = 8;
  static constexpr int kNumComponents =
      static_cast<int>(MemoryComponent::kNumComponents);

  struct alignas(64) Stripe {
    std::atomic<int64_t> used{0};
    std::atomic<int64_t> component[kNumComponents] = {};
  };

  /// Round-robin stripe assignment, decided once per thread: with up to
  /// kNumStripes live writer threads each stripe's line stays core-local;
  /// beyond that threads share stripes (still correct — the adds are
  /// atomic, just relaxed).
  Stripe& MyStripe();

  int64_t Sum(int component) const;

  const size_t budget_;
  std::atomic<uint32_t> next_stripe_{0};
  Stripe stripes_[kNumStripes];
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_MEMORY_TRACKER_H_
