// Byte-level memory accounting. The flushing problem is defined in bytes
// ("flush at least B% of the memory budget"), so every component that holds
// in-memory state charges/releases bytes against a MemoryTracker. Per-
// component counters also back the Figure 10(a) overhead experiment.

#ifndef KFLUSH_UTIL_MEMORY_TRACKER_H_
#define KFLUSH_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kflush {

/// Logical owners of tracked memory, reported separately so experiments can
/// distinguish data memory from policy bookkeeping overhead.
enum class MemoryComponent : int {
  kRawStore = 0,      // microblog records
  kIndex,             // index entries + posting lists
  kPolicyOverhead,    // policy auxiliary structures (LRU list, L list, ...)
  kFlushBuffer,       // temporary buffer of victims awaiting disk write
  kNumComponents,
};

/// Thread-safe byte accounting against a budget.
class MemoryTracker {
 public:
  /// `budget_bytes` = the main-memory budget (paper default: 30 GB; our
  /// experiments scale it down — see DESIGN.md).
  explicit MemoryTracker(size_t budget_bytes);

  /// Charges `bytes` to `component`. Never fails: the store checks
  /// IsFull() to decide when to trigger flushing, mirroring the paper's
  /// "flush when memory becomes full" trigger rather than rejecting writes.
  void Charge(MemoryComponent component, size_t bytes);

  /// Releases `bytes` previously charged to `component`.
  void Release(MemoryComponent component, size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t budget() const { return budget_; }

  /// Bytes charged to one component.
  size_t ComponentUsed(MemoryComponent component) const;

  /// True once used >= budget (the flush trigger).
  bool IsFull() const { return used() >= budget_; }

  /// Data bytes: raw store + index (the contents the flushing problem is
  /// defined over; policy bookkeeping and the transient flush buffer are
  /// reported separately as overhead, mirroring the paper's Figure 10(a)).
  size_t DataUsed() const {
    return ComponentUsed(MemoryComponent::kRawStore) +
           ComponentUsed(MemoryComponent::kIndex);
  }

  /// True once the data contents fill the budget.
  bool DataFull() const { return DataUsed() >= budget_; }

  /// Fraction of the budget in use, in [0, +inf).
  double Utilization() const {
    return static_cast<double>(used()) / static_cast<double>(budget_);
  }

  /// Human-readable breakdown for logs.
  std::string ToString() const;

 private:
  const size_t budget_;
  std::atomic<size_t> used_;
  std::atomic<size_t> per_component_[static_cast<int>(
      MemoryComponent::kNumComponents)];
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_MEMORY_TRACKER_H_
