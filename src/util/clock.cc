#include "util/clock.h"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace kflush {

Timestamp MonotonicMicros() {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Timestamp ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<Timestamp>(ts.tv_sec) * kMicrosPerSecond +
           static_cast<Timestamp>(ts.tv_nsec) / 1000;
  }
#endif
  return MonotonicMicros();
}

uint64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }
#endif
  return MonotonicMicros() * 1000;
}

Timestamp WallClock::NowMicros() const { return MonotonicMicros(); }

WallClock* WallClock::Default() {
  static WallClock clock;
  return &clock;
}

}  // namespace kflush
