#include "util/clock.h"

#include <chrono>

namespace kflush {

Timestamp MonotonicMicros() {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Timestamp WallClock::NowMicros() const { return MonotonicMicros(); }

WallClock* WallClock::Default() {
  static WallClock clock;
  return &clock;
}

}  // namespace kflush
