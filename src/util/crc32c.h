// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every WAL entry and segment record frame. Software
// slice-by-one table implementation — deterministic across platforms and
// fast enough for flush-batch-sized payloads (the disk tier writes are
// fsync-bound, not checksum-bound). Checksums are *masked* before storage
// (the LevelDB/RocksDB trick: rotate and add a constant) so that a frame
// whose payload embeds another frame's CRC does not self-validate.

#ifndef KFLUSH_UTIL_CRC32C_H_
#define KFLUSH_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace kflush {
namespace crc32c {

/// CRC32C of `data[0..len)` extending `init` (pass 0 for a fresh crc).
uint32_t Extend(uint32_t init, const void* data, size_t len);

inline uint32_t Value(const void* data, size_t len) {
  return Extend(0, data, len);
}

constexpr uint32_t kMaskDelta = 0xa282ead8u;

/// Masked representation stored on disk.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace kflush

#endif  // KFLUSH_UTIL_CRC32C_H_
