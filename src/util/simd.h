// Vectorized scan kernels for the digestion and flush hot paths. The
// dispatch is compile-time: when the build enables AVX2 (KFLUSH_ENABLE_SIMD
// + a -mavx2-capable compiler, see cmake), the AVX2 bodies compile in;
// otherwise the portable scalar fallbacks do. Every kernel has exactly one
// observable contract shared by both bodies — tests/util/simd_test.cc pins
// AVX2-vs-scalar equivalence over randomized inputs, and the scalar bodies
// stay compiled (under *_Scalar names) even in AVX2 builds so the
// equivalence suite runs on one binary.
//
// The kernels operate on the SoA layouts introduced with posting blocks
// (index/posting_block.h): descending score arrays, posting id arrays, and
// the packed per-entry count/timestamp snapshots the kFlushing victim
// scans iterate (index/inverted_index.h, Snapshot()).

#ifndef KFLUSH_UTIL_SIMD_H_
#define KFLUSH_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__AVX2__) && !defined(KFLUSH_SIMD_FORCE_SCALAR)
#define KFLUSH_SIMD_AVX2 1
#include <immintrin.h>
#else
#define KFLUSH_SIMD_AVX2 0
#endif

namespace kflush {
namespace simd {

/// True when the AVX2 bodies are compiled in (diagnostics / bench labels).
constexpr bool kAvx2Enabled = KFLUSH_SIMD_AVX2 != 0;

// ---------------------------------------------------------------------------
// Scalar reference bodies. These ARE the semantics; the AVX2 bodies below
// must match them bit-for-bit (simd_test.cc enforces it).
// ---------------------------------------------------------------------------

/// First index i in [0, n) with value >= scores[i], i.e. the insert
/// position of `value` in a descending score array under the posting-list
/// rule "a new posting goes before the first not-greater score" — among
/// equal scores the newest arrival ranks first. Returns n when every
/// element is > value.
inline size_t InsertPosDescScalar(const double* scores, size_t n,
                                  double value) {
  for (size_t i = 0; i < n; ++i) {
    if (value >= scores[i]) return i;
  }
  return n;
}

/// Index of the first element equal to `id`, or n if absent.
inline size_t FindU64Scalar(const uint64_t* ids, size_t n, uint64_t id) {
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] == id) return i;
  }
  return n;
}

/// Appends to `out` every index i with counts[i] > threshold (the Phase-1
/// over-k rebuild scan).
inline void AppendIndicesGreaterScalar(const uint32_t* counts, size_t n,
                                       uint32_t threshold,
                                       std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] > threshold) out->push_back(static_cast<uint32_t>(i));
  }
}

/// Appends to `out` every index i with counts[i] < threshold (the Phase-2
/// under-k candidate scan).
inline void AppendIndicesLessScalar(const uint32_t* counts, size_t n,
                                    uint32_t threshold,
                                    std::vector<uint32_t>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] < threshold) out->push_back(static_cast<uint32_t>(i));
  }
}

/// Number of elements with counts[i] >= threshold (the k-filled metric).
inline size_t CountAtLeastScalar(const uint32_t* counts, size_t n,
                                 uint32_t threshold) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] >= threshold) ++c;
  }
  return c;
}

// ---------------------------------------------------------------------------
// AVX2 bodies.
// ---------------------------------------------------------------------------

#if KFLUSH_SIMD_AVX2

inline size_t InsertPosDesc(const double* scores, size_t n, double value) {
  // Long descending runs first narrow by binary search (hot terms hold
  // thousands of postings; a linear scan there would dwarf the insert),
  // then the last window scans vectorized.
  size_t lo = 0;
  size_t len = n;
  while (len > 64) {
    const size_t half = len / 2;
    // Predicate "value >= scores[i]" is monotone (false...false
    // true...true) on a descending array.
    if (value >= scores[lo + half]) {
      len = half;
    } else {
      lo += half + 1;
      len -= half + 1;
    }
  }
  const __m256d v = _mm256_set1_pd(value);
  size_t i = lo;
  const size_t end = lo + len;
  for (; i + 4 <= end; i += 4) {
    const __m256d s = _mm256_loadu_pd(scores + i);
    const __m256d ge = _mm256_cmp_pd(v, s, _CMP_GE_OQ);
    const int mask = _mm256_movemask_pd(ge);
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < end; ++i) {
    if (value >= scores[i]) return i;
  }
  return end;
}

inline size_t FindU64(const uint64_t* ids, size_t n, uint64_t id) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(id));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i eq = _mm256_cmpeq_epi64(a, v);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (ids[i] == id) return i;
  }
  return n;
}

namespace internal {

// Shared body for the two filtered-index scans: `kLess` selects
// counts[i] < threshold, otherwise counts[i] > threshold. Comparisons use
// the signed-compare trick (bias by 2^31) since AVX2 lacks unsigned
// 32-bit compares.
template <bool kLess>
inline void AppendIndicesCmp(const uint32_t* counts, size_t n,
                             uint32_t threshold, std::vector<uint32_t>* out) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i t =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(threshold)), bias);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i)),
        bias);
    const __m256i cmp =
        kLess ? _mm256_cmpgt_epi32(t, c) : _mm256_cmpgt_epi32(c, t);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out->push_back(static_cast<uint32_t>(i + bit));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    const bool take = kLess ? counts[i] < threshold : counts[i] > threshold;
    if (take) out->push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace internal

inline void AppendIndicesGreater(const uint32_t* counts, size_t n,
                                 uint32_t threshold,
                                 std::vector<uint32_t>* out) {
  internal::AppendIndicesCmp<false>(counts, n, threshold, out);
}

inline void AppendIndicesLess(const uint32_t* counts, size_t n,
                              uint32_t threshold, std::vector<uint32_t>* out) {
  internal::AppendIndicesCmp<true>(counts, n, threshold, out);
}

inline size_t CountAtLeast(const uint32_t* counts, size_t n,
                           uint32_t threshold) {
  if (threshold == 0) return n;
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  // x >= t  <=>  x > t - 1  (t >= 1 here, so no wraparound).
  const __m256i t = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(threshold - 1)), bias);
  size_t c = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i)),
        bias);
    const __m256i cmp = _mm256_cmpgt_epi32(x, t);
    c += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(cmp)))));
  }
  for (; i < n; ++i) {
    if (counts[i] >= threshold) ++c;
  }
  return c;
}

#else  // !KFLUSH_SIMD_AVX2

inline size_t InsertPosDesc(const double* scores, size_t n, double value) {
  // Same binary-search narrowing as the AVX2 body so the two bodies visit
  // identical windows; only the final window scan is scalar.
  size_t lo = 0;
  size_t len = n;
  while (len > 64) {
    const size_t half = len / 2;
    if (value >= scores[lo + half]) {
      len = half;
    } else {
      lo += half + 1;
      len -= half + 1;
    }
  }
  const size_t r = InsertPosDescScalar(scores + lo, len, value);
  return lo + r;
}

inline size_t FindU64(const uint64_t* ids, size_t n, uint64_t id) {
  return FindU64Scalar(ids, n, id);
}

inline void AppendIndicesGreater(const uint32_t* counts, size_t n,
                                 uint32_t threshold,
                                 std::vector<uint32_t>* out) {
  AppendIndicesGreaterScalar(counts, n, threshold, out);
}

inline void AppendIndicesLess(const uint32_t* counts, size_t n,
                              uint32_t threshold, std::vector<uint32_t>* out) {
  AppendIndicesLessScalar(counts, n, threshold, out);
}

inline size_t CountAtLeast(const uint32_t* counts, size_t n,
                           uint32_t threshold) {
  return CountAtLeastScalar(counts, n, threshold);
}

#endif  // KFLUSH_SIMD_AVX2

}  // namespace simd
}  // namespace kflush

#endif  // KFLUSH_UTIL_SIMD_H_
