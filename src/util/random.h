// Deterministic pseudo-random number generation. All stochastic components
// (stream generators, workload generators) draw from a seeded Rng so that
// experiments are reproducible run-to-run.

#ifndef KFLUSH_UTIL_RANDOM_H_
#define KFLUSH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kflush {

/// xoshiro256** PRNG: fast, high-quality, 64-bit state-splittable generator.
/// Not cryptographically secure (nothing here needs to be).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard-normal variate (Box-Muller).
  double NextGaussian();

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Geometric-ish skewed small counts: returns 1 + Binomial-ish extra terms.
  /// Used for e.g. "number of hashtags in a tweet".
  uint32_t OneNPlusGeometric(double p_more, uint32_t max_n);

  /// Returns an Rng seeded from this one's stream; use to give each
  /// component an independent deterministic stream.
  Rng Split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_RANDOM_H_
