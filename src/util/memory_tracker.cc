#include "util/memory_tracker.h"

#include <cassert>
#include <sstream>

namespace kflush {

namespace {
const char* ComponentName(MemoryComponent c) {
  switch (c) {
    case MemoryComponent::kRawStore:
      return "raw_store";
    case MemoryComponent::kIndex:
      return "index";
    case MemoryComponent::kPolicyOverhead:
      return "policy_overhead";
    case MemoryComponent::kFlushBuffer:
      return "flush_buffer";
    case MemoryComponent::kNumComponents:
      break;
  }
  return "unknown";
}
}  // namespace

MemoryTracker::MemoryTracker(size_t budget_bytes)
    : budget_(budget_bytes), used_(0) {
  assert(budget_bytes > 0);
  for (auto& c : per_component_) c.store(0, std::memory_order_relaxed);
}

void MemoryTracker::Charge(MemoryComponent component, size_t bytes) {
  used_.fetch_add(bytes, std::memory_order_relaxed);
  per_component_[static_cast<int>(component)].fetch_add(
      bytes, std::memory_order_relaxed);
}

void MemoryTracker::Release(MemoryComponent component, size_t bytes) {
  size_t prev = used_.fetch_sub(bytes, std::memory_order_relaxed);
  (void)prev;
  assert(prev >= bytes && "releasing more than charged");
  size_t prev_c = per_component_[static_cast<int>(component)].fetch_sub(
      bytes, std::memory_order_relaxed);
  (void)prev_c;
  assert(prev_c >= bytes && "releasing more than charged to component");
}

size_t MemoryTracker::ComponentUsed(MemoryComponent component) const {
  return per_component_[static_cast<int>(component)].load(
      std::memory_order_relaxed);
}

std::string MemoryTracker::ToString() const {
  std::ostringstream os;
  os << "memory " << used() << "/" << budget_ << " bytes (";
  for (int i = 0; i < static_cast<int>(MemoryComponent::kNumComponents);
       ++i) {
    if (i > 0) os << ", ";
    os << ComponentName(static_cast<MemoryComponent>(i)) << "="
       << per_component_[i].load(std::memory_order_relaxed);
  }
  os << ")";
  return os.str();
}

}  // namespace kflush
