#include "util/memory_tracker.h"

#include <cassert>
#include <sstream>

namespace kflush {

namespace {

const char* ComponentName(MemoryComponent c) {
  switch (c) {
    case MemoryComponent::kRawStore:
      return "raw_store";
    case MemoryComponent::kIndex:
      return "index";
    case MemoryComponent::kPolicyOverhead:
      return "policy_overhead";
    case MemoryComponent::kFlushBuffer:
      return "flush_buffer";
    case MemoryComponent::kNumComponents:
      break;
  }
  return "unknown";
}

/// Threads draw their stripe index from a process-wide sequence (not a
/// per-tracker one: a member thread_local is impossible, and the index is
/// only a spreading heuristic, so sharing the sequence across trackers is
/// fine).
uint32_t NextThreadOrdinal() {
  static std::atomic<uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

uint32_t ThreadOrdinal() {
  static thread_local uint32_t ordinal = NextThreadOrdinal();
  return ordinal;
}

}  // namespace

MemoryTracker::MemoryTracker(size_t budget_bytes) : budget_(budget_bytes) {
  assert(budget_bytes > 0);
}

MemoryTracker::Stripe& MemoryTracker::MyStripe() {
  return stripes_[ThreadOrdinal() % kNumStripes];
}

int64_t MemoryTracker::Sum(int component) const {
  int64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.component[component].load(std::memory_order_relaxed);
  }
  return total;
}

size_t MemoryTracker::used() const {
  int64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.used.load(std::memory_order_relaxed);
  }
  // Concurrent charge/release pairs split across stripes can make a racy
  // aggregate transiently negative; it is exact when quiescent.
  return total > 0 ? static_cast<size_t>(total) : 0;
}

size_t MemoryTracker::ComponentUsed(MemoryComponent component) const {
  const int64_t total = Sum(static_cast<int>(component));
  return total > 0 ? static_cast<size_t>(total) : 0;
}

size_t MemoryTracker::DataUsed() const {
  const int64_t total = Sum(static_cast<int>(MemoryComponent::kRawStore)) +
                        Sum(static_cast<int>(MemoryComponent::kIndex));
  return total > 0 ? static_cast<size_t>(total) : 0;
}

std::string MemoryTracker::ToString() const {
  std::ostringstream os;
  os << "memory " << used() << "/" << budget_ << " bytes (";
  for (int i = 0; i < kNumComponents; ++i) {
    if (i > 0) os << ", ";
    os << ComponentName(static_cast<MemoryComponent>(i)) << "=" << Sum(i);
  }
  os << ")";
  return os.str();
}

}  // namespace kflush
