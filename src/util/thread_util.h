// Small threading helpers used by the system facade and benchmarks:
// a spinlock for very short critical sections (per-index-entry locking),
// a bounded MPSC queue for the ingest pipeline, and a rate gate.

#ifndef KFLUSH_UTIL_THREAD_UTIL_H_
#define KFLUSH_UTIL_THREAD_UTIL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

namespace kflush {

/// Small, stable, process-local id for the calling thread, assigned in
/// order of first use (main thread is almost always 0). Shared by the log
/// prefix and the trace recorder so a log line and a trace span from the
/// same thread carry the same id — unlike OS tids, these are dense and
/// reproducible within a run.
uint32_t ThisThreadId();

/// Test-and-test-and-set spinlock. Used where the paper relies on
/// "entries locked one at a time so atomicity overhead is negligible":
/// critical sections are a few pointer updates, far cheaper than a futex.
class SpinLock {
 public:
  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Bounded multi-producer single-consumer queue with blocking push/pop.
/// Carries microblog batches from producers to the digestion thread.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed; pending items still drain via Pop().
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_THREAD_UTIL_H_
