// Small threading helpers used by the system facade and benchmarks:
// a spinlock for very short critical sections (per-index-entry locking),
// a bounded MPSC queue for the ingest pipeline, and a rate gate.

#ifndef KFLUSH_UTIL_THREAD_UTIL_H_
#define KFLUSH_UTIL_THREAD_UTIL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

namespace kflush {

/// Small, stable, process-local id for the calling thread, assigned in
/// order of first use (main thread is almost always 0). Shared by the log
/// prefix and the trace recorder so a log line and a trace span from the
/// same thread carry the same id — unlike OS tids, these are dense and
/// reproducible within a run.
uint32_t ThisThreadId();

/// Test-and-test-and-set spinlock. Used where the paper relies on
/// "entries locked one at a time so atomicity overhead is negligible":
/// critical sections are a few pointer updates, far cheaper than a futex.
class SpinLock {
 public:
  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Bounded multi-producer single-consumer queue with blocking push/pop.
/// Carries microblog batches from producers to the digestion thread.
///
/// Beyond plain Push/Pop, the queue supports two-phase admission for
/// multi-queue all-or-nothing enqueues: Reserve()/TryReserve() claim one
/// slot of capacity without enqueueing anything, PushReserved() consumes
/// the claim, and CancelReservation() returns it. A reserved slot counts
/// against capacity, so once every owner queue of a routed batch holds a
/// reservation, every PushReserved is guaranteed to succeed without
/// blocking — no sub-batch can be stranded behind a full sibling queue.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || items_.size() + reserved_ < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    depth_.store(items_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Claims one slot of capacity, blocking while full. Returns false once
  /// the queue is closed or AbortReservations() was called.
  bool Reserve() {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || reserve_aborted_ ||
             items_.size() + reserved_ < capacity_;
    });
    if (closed_ || reserve_aborted_) return false;
    ++reserved_;
    return true;
  }

  /// Non-blocking Reserve: false when full, closed, or aborted.
  bool TryReserve() {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || reserve_aborted_ ||
        items_.size() + reserved_ >= capacity_) {
      return false;
    }
    ++reserved_;
    return true;
  }

  /// Returns an unused reservation to the pool.
  void CancelReservation() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --reserved_;
    }
    not_full_.notify_one();
  }

  /// Enqueues into a previously reserved slot. Never blocks; returns
  /// false (consuming the reservation) only if the queue closed since the
  /// Reserve, in which case nothing was enqueued.
  bool PushReserved(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    --reserved_;
    if (closed_) {
      lock.unlock();
      not_full_.notify_one();
      return false;
    }
    items_.push_back(std::move(item));
    depth_.store(items_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Permanently wakes and fails every current and future Reserve()
  /// waiter (already-granted reservations stay valid). Shutdown uses this
  /// to release producers blocked mid-reservation before the queue itself
  /// closes, so a multi-queue submit unwinds with nothing enqueued
  /// instead of committing a partial batch.
  void AbortReservations() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      reserve_aborted_ = true;
    }
    not_full_.notify_all();
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    depth_.store(items_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed; pending items still drain via Pop().
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Lock-free depth estimate, maintained inside the queue ops so readers
  /// (gauges, trace spans, admission checks) never take the queue lock.
  size_t approx_size() const { return depth_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::atomic<size_t> depth_{0};
  size_t reserved_ = 0;
  bool closed_ = false;
  bool reserve_aborted_ = false;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_THREAD_UTIL_H_
