// Minimal JSON string escaping, shared by the structured-log writer and
// the trace exporter (each emits JSON by hand; the repo deliberately has
// no JSON library dependency).

#ifndef KFLUSH_UTIL_JSON_H_
#define KFLUSH_UTIL_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace kflush {

/// Appends `s` to `*out` with JSON string escaping (quotes, backslashes,
/// control characters). Does not add the surrounding quotes.
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace kflush

#endif  // KFLUSH_UTIL_JSON_H_
