// Baked-in sanitizer runtime defaults. Compiled into kflush_util only when
// the build is sanitized (cmake/Sanitizers.cmake); the runtimes call these
// weak hooks before parsing the *SAN_OPTIONS environment variables, so the
// environment still overrides. KFLUSH_SANITIZER_SUPP_DIR points at the
// checked-in suppression files under sanitizers/.

#ifndef KFLUSH_SANITIZER_SUPP_DIR
#define KFLUSH_SANITIZER_SUPP_DIR ""
#endif

extern "C" {

const char* __tsan_default_options() {
  return "suppressions=" KFLUSH_SANITIZER_SUPP_DIR "/tsan.supp"
         ":halt_on_error=1:second_deadlock_stack=1:detect_deadlocks=1";
}

const char* __asan_default_options() {
  return "detect_stack_use_after_return=1:strict_string_checks=1";
}

const char* __asan_default_suppressions() {
  // ASan takes suppressions through this hook (or env), not a file path
  // option; keep the file under sanitizers/asan.supp authoritative for
  // humans and CI, and keep first-party code clean instead of listing
  // anything here.
  return "";
}

const char* __lsan_default_options() {
  return "suppressions=" KFLUSH_SANITIZER_SUPP_DIR "/lsan.supp";
}

const char* __ubsan_default_options() {
  return "suppressions=" KFLUSH_SANITIZER_SUPP_DIR "/ubsan.supp"
         ":print_stacktrace=1";
}

}  // extern "C"
