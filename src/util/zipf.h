// Zipf-distributed sampling over a finite rank space.
//
// The keyword (hashtag), user, and spatial popularity distributions of real
// microblog streams are heavily skewed; the paper's entire premise (75% of
// memory holds "useless" beyond-top-k postings at k=20) follows from that
// skew. We model it with a Zipf law, the standard model for hashtag and
// user-activity frequencies.

#ifndef KFLUSH_UTIL_ZIPF_H_
#define KFLUSH_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace kflush {

/// Samples ranks in [0, n) with P(rank = i) proportional to 1 / (i+1)^s.
///
/// Uses Rejection-Inversion sampling (Hormann & Derflinger 1996), which is
/// O(1) per sample and exact for any n, so vocabularies of millions of
/// keywords cost no setup beyond a few constants.
class ZipfGenerator {
 public:
  /// `n` is the number of distinct items (must be >= 1); `s` is the skew
  /// exponent (s = 0 is uniform; hashtags empirically fit s in [0.9, 1.2]).
  ZipfGenerator(uint64_t n, double s);

  /// Draws one rank in [0, n); rank 0 is the most popular item.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Exact probability of rank i (computed on demand; O(n) the first call
  /// because of the normalization constant, then cached).
  double Probability(uint64_t rank) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_integral_x1_;  // H(1.5) - 1
  double h_integral_n_;   // H(n + 0.5)
  double threshold_;      // 2 - HInverse(H(2.5) - pow(2, -s))
  mutable double harmonic_ = -1.0;  // generalized harmonic number (lazy)
};

/// A discrete distribution over arbitrary weights, sampled in O(1) via
/// Walker's alias method. Used when the workload must match an *empirical*
/// frequency table (e.g. the correlated query load drawn from the realized
/// stream) rather than an analytic law.
class AliasTable {
 public:
  /// Builds the table from non-negative weights; at least one weight must be
  /// positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  uint64_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_ZIPF_H_
