#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace kflush {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

LogLevel LevelFromEnv() {
  const char* env = std::getenv("KFLUSH_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

struct EnvInit {
  EnvInit() { g_level.store(static_cast<int>(LevelFromEnv())); }
};
EnvInit g_env_init;

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  const char* basename = std::strrchr(file, '/');
  basename = basename != nullptr ? basename + 1 : file;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), basename, line,
               msg.c_str());
}

}  // namespace internal

}  // namespace kflush
