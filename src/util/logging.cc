#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/clock.h"
#include "util/json.h"
#include "util/thread_util.h"

namespace kflush {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::mutex g_log_mutex;

LogLevel LevelFromEnv() {
  const char* env = std::getenv("KFLUSH_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogFormat FormatFromEnv() {
  const char* env = std::getenv("KFLUSH_LOG_JSON");
  if (env != nullptr && env[0] == '1' && env[1] == '\0') {
    return LogFormat::kJson;
  }
  return LogFormat::kText;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

struct EnvInit {
  EnvInit() {
    g_level.store(static_cast<int>(LevelFromEnv()));
    g_format.store(static_cast<int>(FormatFromEnv()));
  }
};
EnvInit g_env_init;

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format));
}

LogFormat GetLogFormat() { return static_cast<LogFormat>(g_format.load()); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  const char* basename = std::strrchr(file, '/');
  basename = basename != nullptr ? basename + 1 : file;
  const Timestamp ts = MonotonicMicros();
  const uint32_t tid = ThisThreadId();
  if (GetLogFormat() == LogFormat::kJson) {
    std::string out;
    out.reserve(msg.size() + 96);
    out += "{\"ts_us\":";
    out += std::to_string(ts);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"level\":\"";
    out += LevelName(level);
    out += "\",\"file\":\"";
    AppendJsonEscaped(&out, basename);
    out += "\",\"line\":";
    out += std::to_string(line);
    out += ",\"msg\":\"";
    AppendJsonEscaped(&out, msg);
    out += "\"}";
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", out.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%llu.%06llu t%u %s %s:%d] %s\n",
               static_cast<unsigned long long>(ts / kMicrosPerSecond),
               static_cast<unsigned long long>(ts % kMicrosPerSecond), tid,
               LevelName(level), basename, line, msg.c_str());
}

}  // namespace internal

}  // namespace kflush
