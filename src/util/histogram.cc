#include "util/histogram.h"

#include <algorithm>
#include <sstream>

namespace kflush {

Histogram::Histogram()
    : count_(0), sum_(0), min_(~0ULL), max_(0), buckets_(kNumBuckets, 0) {}

// Exponential buckets: 0..15 linear, then doubling ranges split in 8.
uint64_t Histogram::LowerBound(int bucket) {
  if (bucket < 16) return static_cast<uint64_t>(bucket);
  const int shift = (bucket - 16) / 8;
  const int sub = (bucket - 16) % 8;
  const uint64_t base = 16ULL << shift;
  return base + (static_cast<uint64_t>(sub) * base) / 8;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < 16) return static_cast<int>(value);
  int shift = 0;
  while ((32ULL << shift) <= value && shift < 56) ++shift;
  const uint64_t base = 16ULL << shift;
  int sub = static_cast<int>(((value - base) * 8) / base);
  if (sub > 7) sub = 7;
  int b = 16 + shift * 8 + sub;
  return b >= kNumBuckets ? kNumBuckets - 1 : b;
}

void Histogram::Record(uint64_t value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  buckets_[BucketFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  // Out-of-range p is clamped, and the extremes are answered exactly from
  // the tracked min/max rather than a bucket midpoint.
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  // Nearest-rank: the value at 1-based rank ceil(p/100 * count).
  const double exact = p / 100.0 * static_cast<double>(count_);
  uint64_t target = static_cast<uint64_t>(exact);
  if (static_cast<double>(target) < exact) ++target;
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Midpoint of the bucket's *inclusive* value range, clamped to the
      // observed extremes. Using LowerBound(i + 1) directly would bias
      // every estimate upward by half a step (the bucket is half-open);
      // clamping guarantees a single recorded value round-trips exactly
      // and any estimate stays within one bucket of a real sample.
      uint64_t lo = std::max(LowerBound(i), min());
      uint64_t hi = (i + 1 < kNumBuckets) ? LowerBound(i + 1) - 1 : max_;
      hi = std::min(hi, max_);
      if (hi < lo) hi = lo;
      return lo + (hi - lo) / 2;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99)
     << " max=" << max_;
  return os.str();
}

}  // namespace kflush
