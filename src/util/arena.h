// The memory layer under the digestion hot path (docs/INTERNALS.md,
// "Memory layout"). Two building blocks:
//
//   * Arena     — a bump allocator over geometrically growing chunks. One
//                 pointer increment per allocation, no per-allocation
//                 header, freed only wholesale (Reset / destruction). Its
//                 footprint is a deterministic function of the allocation
//                 sequence, which the byte-accounting tests rely on.
//   * SlabPool  — size-class recycling on top of an Arena. Allocations
//                 round up to a power-of-two class; Free() pushes the
//                 block onto the class's intrusive free list and the next
//                 Alloc of that class pops it. Memory retires to the OS
//                 only when the pool dies, so steady-state flush churn
//                 (posting blocks and record blobs cycling every eviction)
//                 never touches malloc.
//
// Neither type is thread-safe: every pool in the system is owned by one
// RawDataStore / InvertedIndex shard and mutated only under that shard's
// mutex (the same discipline the data it allocates for lives under).
// Logical byte accounting (MemoryTracker charges) stays defined by record
// and posting *content* exactly as before; the pool's slack is observable
// separately via FootprintBytes() for the Figure 10(a)-style overhead
// reporting.

#ifndef KFLUSH_UTIL_ARENA_H_
#define KFLUSH_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace kflush {

/// Chunked bump allocator. Alloc() never fails (aborts on OOM like new);
/// individual allocations cannot be freed — Reset() recycles every chunk
/// for reuse without returning memory to the OS.
class Arena {
 public:
  /// `min_chunk_bytes` sizes the first chunk; later chunks double up to
  /// kMaxChunkBytes. Allocations larger than a chunk get a dedicated
  /// exact-size chunk.
  explicit Arena(size_t min_chunk_bytes = 4096);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Alloc(size_t bytes, size_t align = alignof(max_align_t));

  /// Makes every chunk reusable again. Previously returned pointers are
  /// invalidated; the footprint is unchanged (chunks are kept).
  void Reset();

  /// Total bytes obtained from the OS (chunk payloads + headers).
  /// Deterministic in the sequence of Alloc sizes since construction.
  size_t FootprintBytes() const { return footprint_; }

  /// Bytes handed out since construction or the last Reset(), including
  /// alignment padding.
  size_t AllocatedBytes() const { return allocated_; }

  size_t NumChunks() const { return num_chunks_; }

  static constexpr size_t kMaxChunkBytes = 256 * 1024;

 private:
  struct Chunk {
    Chunk* next;
    size_t size;  // payload bytes following this header
  };

  /// Makes `bytes` available in a fresh or recycled chunk.
  void AddChunk(size_t bytes);

  Chunk* chunks_ = nullptr;    // chunks in use, newest first
  Chunk* recycled_ = nullptr;  // chunks parked by Reset()
  uint8_t* ptr_ = nullptr;     // bump cursor in chunks_
  uint8_t* end_ = nullptr;
  size_t next_chunk_bytes_;
  size_t footprint_ = 0;
  size_t allocated_ = 0;
  size_t num_chunks_ = 0;
};

/// Power-of-two size-class allocator with per-class free lists, backed by
/// an Arena. Classes span [kMinClassBytes, kMaxClassBytes]; larger
/// requests fall through to operator new (tracked separately so the
/// footprint stays exact).
class SlabPool {
 public:
  static constexpr size_t kMinClassBytes = 16;
  static constexpr size_t kMaxClassBytes = 64 * 1024;

  explicit SlabPool(size_t min_chunk_bytes = 4096);
  ~SlabPool();

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Storage for at least `bytes` (16-byte aligned). O(1): pops the class
  /// free list, else bumps the arena.
  void* Alloc(size_t bytes);

  /// Returns the block obtained from Alloc(bytes) for reuse. `bytes` must
  /// be the same value passed to Alloc (the class is recomputed from it).
  void Free(void* p, size_t bytes);

  /// Bytes the pool holds from the OS: arena footprint + oversize blocks.
  size_t FootprintBytes() const;

  /// The class a request of `bytes` rounds up to (what Alloc actually
  /// consumes); oversize requests return `bytes` unchanged.
  static size_t ClassBytes(size_t bytes);

  /// Blocks currently parked on free lists (tests / leak triage).
  size_t FreeBlocks() const { return free_blocks_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr size_t kNumClasses = 13;  // 16 << 0 .. 16 << 12

  static int ClassIndex(size_t bytes);

  Arena arena_;
  FreeNode* free_[kNumClasses] = {};
  size_t free_blocks_ = 0;
  size_t oversize_bytes_ = 0;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_ARENA_H_
