// Simple streaming histogram for latency / size distributions, with
// percentile estimation over exponential buckets (HdrHistogram-lite).

#ifndef KFLUSH_UTIL_HISTOGRAM_H_
#define KFLUSH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kflush {

/// Records non-negative integer samples (e.g. microseconds, bytes) and
/// reports count/mean/min/max and approximate percentiles. Not thread-safe;
/// each thread records into its own histogram and merges.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  uint64_t sum() const { return sum_; }

  /// Approximate value at percentile p in [0, 100].
  uint64_t Percentile(double p) const;

  /// "count=... mean=... p50=... p99=... max=..."
  std::string ToString() const;

  // Bucket introspection, for cumulative exports (Prometheus `_bucket`
  // series). Bucket i covers the value range
  // [BucketLowerBound(i), BucketLowerBound(i+1)); the last bucket is
  // unbounded above.
  static int num_buckets() { return kNumBuckets; }
  static uint64_t BucketLowerBound(int bucket) { return LowerBound(bucket); }
  /// Samples recorded into bucket `bucket` (0 <= bucket < num_buckets()).
  uint64_t bucket_count(int bucket) const { return buckets_[bucket]; }

 private:
  static constexpr int kNumBuckets = 128;
  // Bucket i covers [LowerBound(i), LowerBound(i+1)).
  static uint64_t LowerBound(int bucket);
  static int BucketFor(uint64_t value);

  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace kflush

#endif  // KFLUSH_UTIL_HISTOGRAM_H_
