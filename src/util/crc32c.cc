#include "util/crc32c.h"

namespace kflush {
namespace crc32c {

namespace {

/// Reflected-polynomial table, built once at first use.
struct Table {
  uint32_t entries[256];
  Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Extend(uint32_t init, const void* data, size_t len) {
  static const Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = init ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace kflush
