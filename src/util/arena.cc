#include "util/arena.h"

#include <algorithm>
#include <cassert>
#include <new>

namespace kflush {

namespace {

constexpr size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(size_t min_chunk_bytes)
    : next_chunk_bytes_(std::max<size_t>(min_chunk_bytes, 64)) {}

Arena::~Arena() {
  for (Chunk* list : {chunks_, recycled_}) {
    while (list != nullptr) {
      Chunk* next = list->next;
      ::operator delete(static_cast<void*>(list));
      list = next;
    }
  }
}

void Arena::AddChunk(size_t bytes) {
  // Prefer a parked chunk big enough for the request (Reset() reuse).
  Chunk** prev = &recycled_;
  for (Chunk* c = recycled_; c != nullptr; prev = &c->next, c = c->next) {
    if (c->size >= bytes) {
      *prev = c->next;
      c->next = chunks_;
      chunks_ = c;
      ptr_ = reinterpret_cast<uint8_t*>(c) + sizeof(Chunk);
      end_ = ptr_ + c->size;
      return;
    }
  }
  size_t payload = std::max(bytes, next_chunk_bytes_);
  if (next_chunk_bytes_ < kMaxChunkBytes) {
    next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  }
  void* mem = ::operator new(sizeof(Chunk) + payload);
  Chunk* c = static_cast<Chunk*>(mem);
  c->next = chunks_;
  c->size = payload;
  chunks_ = c;
  ptr_ = static_cast<uint8_t*>(mem) + sizeof(Chunk);
  end_ = ptr_ + payload;
  footprint_ += sizeof(Chunk) + payload;
  ++num_chunks_;
}

void* Arena::Alloc(size_t bytes, size_t align) {
  assert((align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  uint8_t* aligned =
      reinterpret_cast<uint8_t*>(AlignUp(reinterpret_cast<uintptr_t>(ptr_),
                                         align));
  if (aligned + bytes > end_ || ptr_ == nullptr) {
    // Chunk payloads start sizeof(Chunk)-aligned (16 on LP64); request
    // enough slack to re-align inside the fresh chunk if needed.
    AddChunk(bytes + align);
    aligned = reinterpret_cast<uint8_t*>(
        AlignUp(reinterpret_cast<uintptr_t>(ptr_), align));
  }
  allocated_ += static_cast<size_t>(aligned + bytes - ptr_);
  ptr_ = aligned + bytes;
  return aligned;
}

void Arena::Reset() {
  while (chunks_ != nullptr) {
    Chunk* next = chunks_->next;
    chunks_->next = recycled_;
    recycled_ = chunks_;
    chunks_ = next;
  }
  ptr_ = nullptr;
  end_ = nullptr;
  allocated_ = 0;
}

SlabPool::SlabPool(size_t min_chunk_bytes) : arena_(min_chunk_bytes) {}

SlabPool::~SlabPool() = default;

int SlabPool::ClassIndex(size_t bytes) {
  if (bytes <= kMinClassBytes) return 0;
  // Index of the smallest class >= bytes: ceil(log2(bytes)) - log2(16).
  const int bits = 64 - __builtin_clzll(bytes - 1);
  const int idx = bits - 4;
  return idx < static_cast<int>(kNumClasses) ? idx : -1;
}

size_t SlabPool::ClassBytes(size_t bytes) {
  const int idx = ClassIndex(bytes);
  if (idx < 0) return bytes;
  return kMinClassBytes << idx;
}

void* SlabPool::Alloc(size_t bytes) {
  const int idx = ClassIndex(bytes);
  if (idx < 0) {
    oversize_bytes_ += bytes;
    return ::operator new(bytes);
  }
  if (free_[idx] != nullptr) {
    FreeNode* node = free_[idx];
    free_[idx] = node->next;
    --free_blocks_;
    return node;
  }
  return arena_.Alloc(kMinClassBytes << idx, kMinClassBytes);
}

void SlabPool::Free(void* p, size_t bytes) {
  if (p == nullptr) return;
  const int idx = ClassIndex(bytes);
  if (idx < 0) {
    oversize_bytes_ -= bytes;
    ::operator delete(p);
    return;
  }
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = free_[idx];
  free_[idx] = node;
  ++free_blocks_;
}

size_t SlabPool::FootprintBytes() const {
  return arena_.FootprintBytes() + oversize_bytes_;
}

}  // namespace kflush
