#include "util/zipf.h"

#include <cassert>
#include <cmath>

namespace kflush {

// --- ZipfGenerator (rejection-inversion, Hormann & Derflinger 1996) ---
//
// We sample from the density proportional to x^{-s} on [0.5, n + 0.5] via
// the integral H(x) = ((x)^{1-s} - 1) / (1 - s) (or log x when s == 1),
// inverted analytically, with rejection to correct the discretization.

namespace {
// (exp(x * log v) - 1) / x, stable as x -> 0.
double ExpM1Over(double x, double log_v) {
  if (std::abs(x * log_v) > 1e-8) {
    return std::expm1(x * log_v) / x;
  }
  return log_v * (1.0 + 0.5 * x * log_v);
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfGenerator::H(double x) const {
  // Integral of t^{-s} dt, anchored so H works with HInverse below.
  const double log_x = std::log(x);
  return ExpM1Over(1.0 - s_, log_x);
}

double ZipfGenerator::HInverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // numerical guard near the head of the domain
  // log1p(t) / t, stable as t -> 0 (which happens when s == 1).
  double log1p_over_t;
  if (std::abs(t) > 1e-8) {
    log1p_over_t = std::log1p(t) / t;
  } else {
    log1p_over_t = 1.0 - 0.5 * t + t * t / 3.0;
  }
  return std::exp(log1p_over_t * x);
}

uint64_t ZipfGenerator::Sample(Rng* rng) const {
  if (n_ == 1) return 0;
  if (s_ == 0.0) return rng->Uniform(n_);
  while (true) {
    const double u =
        h_integral_n_ + rng->NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::exp(-std::log(kd) * s_)) {
      return k - 1;  // 0-based rank
    }
  }
}

double ZipfGenerator::Probability(uint64_t rank) const {
  assert(rank < n_);
  if (harmonic_ < 0.0) {
    double h = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) h += std::pow(static_cast<double>(i), -s_);
    harmonic_ = h;
  }
  return std::pow(static_cast<double>(rank + 1), -s_) / harmonic_;
}

// --- AliasTable (Walker / Vose) ---

AliasTable::AliasTable(const std::vector<double>& weights) {
  assert(!weights.empty());
  const size_t n = weights.size();
  prob_.resize(n);
  alias_.resize(n);

  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

uint64_t AliasTable::Sample(Rng* rng) const {
  const uint64_t i = rng->Uniform(prob_.size());
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace kflush
