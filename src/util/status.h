// Status / Result error-handling primitives, in the style used throughout
// database codebases (RocksDB, Arrow): fallible operations return a Status
// (or a Result<T> carrying a value), never throw.

#ifndef KFLUSH_UTIL_STATUS_H_
#define KFLUSH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kflush {

/// Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kAborted,
  kInternal,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
/// OK statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error sum type. Accessing the value of an errored Result is a
/// programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success values");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status to the caller.
#define KFLUSH_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::kflush::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace kflush

#endif  // KFLUSH_UTIL_STATUS_H_
