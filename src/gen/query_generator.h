// Query workload generators (paper §V, "Query workloads"): in the absence
// of a standard microblog query benchmark, workloads are generated from
// the data distribution itself.
//
//   Correlated : a term's query probability equals its occurrence
//                probability in the stream (active topics get queried).
//   Uniform    : terms drawn uniformly from the whole vocabulary —
//                the worst-case / quality-of-service workload.
//
// Keyword workloads mix 1/3 single-keyword, 1/3 two-keyword AND, and 1/3
// two-keyword OR queries (the paper's mix). Spatial workloads have no AND
// queries (a point lies in one tile; §V-D) and split the remainder between
// single and OR; user workloads are single-key only, as in practice.

#ifndef KFLUSH_GEN_QUERY_GENERATOR_H_
#define KFLUSH_GEN_QUERY_GENERATOR_H_

#include "core/query_engine.h"
#include "gen/tweet_generator.h"

namespace kflush {

enum class WorkloadKind : int { kCorrelated = 0, kUniform };

const char* WorkloadKindName(WorkloadKind kind);

/// Workload parameters.
struct QueryWorkloadOptions {
  uint64_t seed = 4242;
  WorkloadKind kind = WorkloadKind::kCorrelated;
  AttributeKind attribute = AttributeKind::kKeyword;
  /// k carried on each query; 0 = the store default.
  uint32_t k = 0;
  /// Query-type mix (ignored where the attribute restricts types).
  double single_fraction = 1.0 / 3.0;
  double and_fraction = 1.0 / 3.0;  // remainder is OR

  /// Temporal locality (keyword attribute): with probability `hot_set_p`
  /// a query targets the current hot set of `hot_set_size` keywords, and
  /// the hot set drifts by half its size every `hot_rotation_queries`
  /// queries. Models the strong temporal locality of real microblog query
  /// streams (Lin & Mishne 2012) that kFlushing's Phase 3 exploits.
  /// Disabled (0) by default.
  double hot_set_p = 0.0;
  uint64_t hot_set_size = 0;
  uint64_t hot_rotation_queries = 10'000;
};

/// Generates an endless stream of top-k queries matched to the given
/// tweet-stream model. Not thread-safe; give each query thread its own.
class QueryGenerator {
 public:
  QueryGenerator(QueryWorkloadOptions options,
                 const TweetGeneratorOptions& stream_options);

  /// Produces the next query.
  TopKQuery Next();

  const QueryWorkloadOptions& options() const { return options_; }

 private:
  TermId SampleTerm();
  /// A second, distinct term for multi-term queries. For the correlated
  /// keyword workload the pair is sampled the way co-occurring hashtags
  /// are: both frequency-proportional.
  TermId SampleDistinctTerm(TermId first);
  QueryType SampleType();
  GeoPoint SampleLocation();

  QueryWorkloadOptions options_;
  TweetGeneratorOptions stream_options_;
  uint64_t queries_issued_ = 0;
  Rng rng_;
  ZipfGenerator keyword_zipf_;
  ZipfGenerator user_zipf_;
  ZipfGenerator hotspot_zipf_;
  std::vector<GeoPoint> hotspots_;
  SpatialGridMapper mapper_;
};

}  // namespace kflush

#endif  // KFLUSH_GEN_QUERY_GENERATOR_H_
