// Synthetic microblog stream generator — the stand-in for the paper's 2+
// billion collected tweets (see DESIGN.md, substitutions). The flushing
// policies only observe distributional properties of the stream, which the
// generator reproduces:
//
//   keywords : Zipf-distributed hashtag vocabulary (s ≈ 1.0, the standard
//              hashtag model) with a skewed per-tweet hashtag count — this
//              yields the paper's measured shape that ~75% of memory under
//              temporal flushing holds beyond-top-k postings at k = 20;
//   users    : Zipf user activity; follower counts decay with user rank;
//   location : a mixture of Gaussian hotspots (cities) over a region plus
//              a uniform background;
//   arrivals : strictly increasing timestamps at a configurable rate
//              (default ≈ 6000 tweets/s of simulated time, the paper's
//              replay rate).
//
// Fully deterministic given the seed.

#ifndef KFLUSH_GEN_TWEET_GENERATOR_H_
#define KFLUSH_GEN_TWEET_GENERATOR_H_

#include <vector>

#include "index/spatial_grid.h"
#include "model/microblog.h"
#include "util/random.h"
#include "util/zipf.h"

namespace kflush {

/// Stream model parameters.
struct TweetGeneratorOptions {
  uint64_t seed = 42;

  // Keyword model.
  uint64_t vocabulary_size = 200'000;
  double keyword_zipf_s = 1.1;
  /// Probability of each additional hashtag beyond the first.
  double extra_keyword_p = 0.35;
  uint32_t max_keywords = 4;
  /// Co-occurrence model: real hashtags co-occur topically, which is what
  /// gives multi-keyword AND queries non-empty answers. Each additional
  /// keyword is, with probability `companion_p`, one of the first
  /// keyword's `companion_count` fixed companion tags (deterministic per
  /// keyword); otherwise an independent Zipf draw.
  double companion_p = 0.6;
  uint32_t companion_count = 4;

  // User model.
  uint64_t num_users = 100'000;
  double user_zipf_s = 1.0;

  // Spatial model.
  size_t num_hotspots = 64;
  double hotspot_zipf_s = 1.0;
  double hotspot_stddev_degrees = 0.05;
  /// Fraction of geotagged tweets drawn uniformly over the region instead
  /// of from a hotspot.
  double uniform_location_p = 0.10;
  BoundingBox region{24.0, -125.0, 49.0, -66.0};  // continental US
  double geotagged_fraction = 1.0;

  // Arrival model.
  Timestamp start_time = 1'000'000;
  /// Simulated microseconds between arrivals (166 ≈ 6000 tweets/s).
  Timestamp arrival_interval_micros = 166;

  /// Synthesize a ~140-byte tweet text (realistic record footprint). Turn
  /// off for raw-throughput microbenchmarks.
  bool generate_text = true;
};

/// Deterministic hotspot centers for `options` (shared with the query
/// generator so correlated spatial queries target the same hotspots).
std::vector<GeoPoint> MakeHotspots(const TweetGeneratorOptions& options);

/// The j-th fixed companion tag of `base` (j < companion_count), shared by
/// the stream and the correlated query workload so AND queries target
/// pairs that actually co-occur.
KeywordId CompanionKeyword(KeywordId base, uint32_t j, uint64_t vocabulary);

/// The stream generator. Not thread-safe; give each producer its own.
class TweetGenerator {
 public:
  explicit TweetGenerator(TweetGeneratorOptions options);

  /// Produces the next microblog in arrival order. The id is left unset
  /// (the store assigns it); created_at is the simulated arrival time.
  Microblog Next();

  /// Appends `n` microblogs to `out`.
  void FillBatch(size_t n, std::vector<Microblog>* out);

  /// Number of microblogs generated so far.
  uint64_t generated() const { return count_; }

  const TweetGeneratorOptions& options() const { return options_; }

  /// The analytic keyword distribution (rank 0 = most frequent). The
  /// correlated query workload samples from this same law, matching the
  /// paper's "probability of a keyword being queried equals its occurrence
  /// probability in the dataset".
  const ZipfGenerator& keyword_distribution() const { return keyword_zipf_; }

 private:
  GeoPoint SampleLocation();
  uint32_t FollowersForUserRank(uint64_t rank);
  void SynthesizeText(Microblog* blog);

  TweetGeneratorOptions options_;
  Rng rng_;
  ZipfGenerator keyword_zipf_;
  ZipfGenerator user_zipf_;
  ZipfGenerator hotspot_zipf_;
  std::vector<GeoPoint> hotspots_;
  uint64_t count_ = 0;
};

}  // namespace kflush

#endif  // KFLUSH_GEN_TWEET_GENERATOR_H_
