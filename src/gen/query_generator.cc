#include "gen/query_generator.h"

#include <algorithm>

namespace kflush {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kCorrelated:
      return "correlated";
    case WorkloadKind::kUniform:
      return "uniform";
  }
  return "unknown";
}

QueryGenerator::QueryGenerator(QueryWorkloadOptions options,
                               const TweetGeneratorOptions& stream_options)
    : options_(options),
      stream_options_(stream_options),
      rng_(options.seed),
      keyword_zipf_(stream_options.vocabulary_size,
                    stream_options.keyword_zipf_s),
      user_zipf_(stream_options.num_users, stream_options.user_zipf_s),
      hotspot_zipf_(std::max<size_t>(stream_options.num_hotspots, 1),
                    stream_options.hotspot_zipf_s),
      hotspots_(MakeHotspots(stream_options)),
      mapper_() {}

GeoPoint QueryGenerator::SampleLocation() {
  const BoundingBox& r = stream_options_.region;
  const bool uniform =
      options_.kind == WorkloadKind::kUniform || hotspots_.empty() ||
      rng_.Bernoulli(stream_options_.uniform_location_p);
  if (uniform) {
    GeoPoint p;
    p.lat = r.min_lat + rng_.NextDouble() * (r.max_lat - r.min_lat);
    p.lon = r.min_lon + rng_.NextDouble() * (r.max_lon - r.min_lon);
    return p;
  }
  const GeoPoint& center = hotspots_[hotspot_zipf_.Sample(&rng_)];
  GeoPoint p;
  p.lat = center.lat +
          rng_.NextGaussian() * stream_options_.hotspot_stddev_degrees;
  p.lon = center.lon +
          rng_.NextGaussian() * stream_options_.hotspot_stddev_degrees;
  p.lat = std::clamp(p.lat, -90.0, 90.0);
  p.lon = std::clamp(p.lon, -180.0, 180.0);
  return p;
}

TermId QueryGenerator::SampleTerm() {
  switch (options_.attribute) {
    case AttributeKind::kKeyword:
      if (options_.hot_set_p > 0.0 && options_.hot_set_size > 0 &&
          options_.hot_set_size < stream_options_.vocabulary_size &&
          rng_.Bernoulli(options_.hot_set_p)) {
        // Temporal locality: a drifting window of hot keywords.
        const uint64_t rotation =
            std::max<uint64_t>(options_.hot_rotation_queries, 1);
        const uint64_t step = std::max<uint64_t>(options_.hot_set_size / 2, 1);
        const uint64_t offset =
            (queries_issued_ / rotation) * step %
            (stream_options_.vocabulary_size - options_.hot_set_size);
        return offset + rng_.Uniform(options_.hot_set_size);
      }
      if (options_.kind == WorkloadKind::kUniform) {
        return rng_.Uniform(stream_options_.vocabulary_size);
      }
      return keyword_zipf_.Sample(&rng_);
    case AttributeKind::kSpatial: {
      const GeoPoint p = SampleLocation();
      return mapper_.TileFor(p.lat, p.lon);
    }
    case AttributeKind::kUser:
      if (options_.kind == WorkloadKind::kUniform) {
        return rng_.Uniform(stream_options_.num_users) + 1;
      }
      return user_zipf_.Sample(&rng_) + 1;
  }
  return kInvalidTermId;
}

TermId QueryGenerator::SampleDistinctTerm(TermId first) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    TermId t;
    if (options_.attribute == AttributeKind::kKeyword &&
        options_.kind == WorkloadKind::kCorrelated &&
        stream_options_.companion_count > 0 &&
        rng_.Bernoulli(stream_options_.companion_p)) {
      // Correlated multi-keyword queries ask about tags that actually
      // co-occur in the stream, mirroring how the paper draws queries
      // from the keywords associated with real tweets.
      t = CompanionKeyword(
          static_cast<KeywordId>(first),
          static_cast<uint32_t>(
              rng_.Uniform(stream_options_.companion_count)),
          stream_options_.vocabulary_size);
    } else {
      t = SampleTerm();
    }
    if (t != first) return t;
  }
  // Degenerate distribution (e.g. vocabulary of 1): fall back to first+1.
  return first + 1;
}

QueryType QueryGenerator::SampleType() {
  if (options_.attribute == AttributeKind::kUser) {
    // User-timeline queries are single-key in practice (§V).
    return QueryType::kSingle;
  }
  double single = options_.single_fraction;
  double and_f = options_.and_fraction;
  if (options_.attribute == AttributeKind::kSpatial) {
    // AND is semantically invalid for point-located posts (§V-D); its
    // share folds into the single-tile class.
    single += and_f;
    and_f = 0.0;
  }
  const double r = rng_.NextDouble();
  if (r < single) return QueryType::kSingle;
  if (r < single + and_f) return QueryType::kAnd;
  return QueryType::kOr;
}

TopKQuery QueryGenerator::Next() {
  ++queries_issued_;
  TopKQuery query;
  query.k = options_.k;
  query.type = SampleType();
  const TermId first = SampleTerm();
  query.terms.push_back(first);
  if (query.type != QueryType::kSingle) {
    query.terms.push_back(SampleDistinctTerm(first));
  }
  return query;
}

}  // namespace kflush
