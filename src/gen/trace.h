// Trace files: persist a generated microblog stream so experiments can
// replay exactly the same data, and so heavyweight streams can be produced
// once and shared. Format: a magic header followed by length-prefixed
// serde-encoded records.

#ifndef KFLUSH_GEN_TRACE_H_
#define KFLUSH_GEN_TRACE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "model/microblog.h"
#include "util/status.h"

namespace kflush {

/// Streaming trace writer.
class TraceWriter {
 public:
  static Result<std::unique_ptr<TraceWriter>> Open(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  Status Append(const Microblog& blog);
  Status Flush();
  uint64_t written() const { return written_; }

 private:
  TraceWriter(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_;
  std::string buffer_;
  uint64_t written_ = 0;
};

/// Streaming trace reader.
class TraceReader {
 public:
  static Result<std::unique_ptr<TraceReader>> Open(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Reads the next record. Returns NotFound at end of trace.
  Status Next(Microblog* out);

 private:
  TraceReader(std::string path, std::FILE* file);
  Status FillBuffer();

  std::string path_;
  std::FILE* file_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

/// One-shot helpers.
Status SaveTrace(const std::string& path, const std::vector<Microblog>& blogs);
Result<std::vector<Microblog>> LoadTrace(const std::string& path);

}  // namespace kflush

#endif  // KFLUSH_GEN_TRACE_H_
