#include "gen/trace.h"

#include <cerrno>
#include <cstring>

#include "storage/serde.h"

namespace kflush {

namespace {
constexpr char kMagic[8] = {'K', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr size_t kWriterBufferBytes = 1 << 20;
constexpr size_t kReaderChunkBytes = 1 << 20;
}  // namespace

// --- TraceWriter ---

Result<std::unique_ptr<TraceWriter>> TraceWriter::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file) != sizeof(kMagic)) {
    std::fclose(file);
    return Status::IOError("cannot write trace header to " + path);
  }
  return std::unique_ptr<TraceWriter>(new TraceWriter(path, file));
}

TraceWriter::TraceWriter(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

TraceWriter::~TraceWriter() {
  Status s = Flush();
  (void)s;
  if (file_ != nullptr) std::fclose(file_);
}

Status TraceWriter::Append(const Microblog& blog) {
  EncodeMicroblog(blog, &buffer_);
  ++written_;
  if (buffer_.size() >= kWriterBufferBytes) return Flush();
  return Status::OK();
}

Status TraceWriter::Flush() {
  if (buffer_.empty()) return Status::OK();
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
      buffer_.size()) {
    return Status::IOError("short write to " + path_);
  }
  buffer_.clear();
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

// --- TraceReader ---

Result<std::unique_ptr<TraceReader>> TraceReader::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(file);
    return Status::Corruption(path + " is not a kflush trace");
  }
  return std::unique_ptr<TraceReader>(new TraceReader(path, file));
}

TraceReader::TraceReader(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status TraceReader::FillBuffer() {
  // Compact consumed bytes, then read another chunk.
  buffer_.erase(0, pos_);
  pos_ = 0;
  if (eof_) return Status::OK();
  const size_t old_size = buffer_.size();
  buffer_.resize(old_size + kReaderChunkBytes);
  const size_t got =
      std::fread(buffer_.data() + old_size, 1, kReaderChunkBytes, file_);
  buffer_.resize(old_size + got);
  if (got < kReaderChunkBytes) {
    if (std::ferror(file_) != 0) {
      return Status::IOError("read failed on " + path_);
    }
    eof_ = true;
  }
  return Status::OK();
}

Status TraceReader::Next(Microblog* out) {
  while (true) {
    size_t consumed = 0;
    Status s = DecodeMicroblog(buffer_.data() + pos_, buffer_.size() - pos_,
                               out, &consumed);
    if (s.ok()) {
      pos_ += consumed;
      return Status::OK();
    }
    if (eof_) {
      if (buffer_.size() == pos_) return Status::NotFound("end of trace");
      return Status::Corruption("trailing garbage in " + path_);
    }
    KFLUSH_RETURN_IF_ERROR(FillBuffer());
  }
}

// --- one-shot helpers ---

Status SaveTrace(const std::string& path,
                 const std::vector<Microblog>& blogs) {
  auto writer = TraceWriter::Open(path);
  if (!writer.ok()) return writer.status();
  for (const Microblog& blog : blogs) {
    KFLUSH_RETURN_IF_ERROR((*writer)->Append(blog));
  }
  return (*writer)->Flush();
}

Result<std::vector<Microblog>> LoadTrace(const std::string& path) {
  auto reader = TraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  std::vector<Microblog> blogs;
  Microblog blog;
  while (true) {
    Status s = (*reader)->Next(&blog);
    if (s.IsNotFound()) break;
    if (!s.ok()) return s;
    blogs.push_back(std::move(blog));
  }
  return blogs;
}

}  // namespace kflush
