#include "gen/tweet_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace kflush {

std::vector<GeoPoint> MakeHotspots(const TweetGeneratorOptions& options) {
  // Hotspot centers come from a dedicated sub-seed so the query generator
  // can reproduce them from the options alone.
  Rng rng(options.seed ^ 0xC17E5EEDULL);
  std::vector<GeoPoint> hotspots;
  hotspots.reserve(options.num_hotspots);
  const BoundingBox& r = options.region;
  for (size_t i = 0; i < options.num_hotspots; ++i) {
    GeoPoint p;
    p.lat = r.min_lat + rng.NextDouble() * (r.max_lat - r.min_lat);
    p.lon = r.min_lon + rng.NextDouble() * (r.max_lon - r.min_lon);
    hotspots.push_back(p);
  }
  return hotspots;
}

KeywordId CompanionKeyword(KeywordId base, uint32_t j, uint64_t vocabulary) {
  // splitmix-style mix of (base, j); companions are fixed per keyword.
  uint64_t z = (static_cast<uint64_t>(base) << 8) | j;
  z = (z + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<KeywordId>(z % vocabulary);
}

TweetGenerator::TweetGenerator(TweetGeneratorOptions options)
    : options_(options),
      rng_(options.seed),
      keyword_zipf_(options.vocabulary_size, options.keyword_zipf_s),
      user_zipf_(options.num_users, options.user_zipf_s),
      hotspot_zipf_(std::max<size_t>(options.num_hotspots, 1),
                    options.hotspot_zipf_s),
      hotspots_(MakeHotspots(options)) {}

GeoPoint TweetGenerator::SampleLocation() {
  const BoundingBox& r = options_.region;
  if (hotspots_.empty() || rng_.Bernoulli(options_.uniform_location_p)) {
    GeoPoint p;
    p.lat = r.min_lat + rng_.NextDouble() * (r.max_lat - r.min_lat);
    p.lon = r.min_lon + rng_.NextDouble() * (r.max_lon - r.min_lon);
    return p;
  }
  const GeoPoint& center = hotspots_[hotspot_zipf_.Sample(&rng_)];
  GeoPoint p;
  p.lat = center.lat + rng_.NextGaussian() * options_.hotspot_stddev_degrees;
  p.lon = center.lon + rng_.NextGaussian() * options_.hotspot_stddev_degrees;
  p.lat = std::clamp(p.lat, -90.0, 90.0);
  p.lon = std::clamp(p.lon, -180.0, 180.0);
  return p;
}

uint32_t TweetGenerator::FollowersForUserRank(uint64_t rank) {
  // Follower counts decay with activity rank (heavily skewed, like real
  // social graphs), with multiplicative noise.
  const double base = 2e6 / std::pow(static_cast<double>(rank) + 2.0, 0.9);
  const double noise = 0.5 + rng_.NextDouble();
  return static_cast<uint32_t>(base * noise);
}

void TweetGenerator::SynthesizeText(Microblog* blog) {
  std::string& text = blog->text;
  text.reserve(140);
  for (KeywordId kw : blog->keywords) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "#tag%u ", kw);
    text += buf;
  }
  // Pad with filler words to a realistic tweet length.
  static const char* kFiller[] = {"just",  "saw",   "the",  "new",  "thing",
                                  "today", "wow",   "cant", "wait", "for",
                                  "this",  "really", "great", "news", "here"};
  while (text.size() < 120) {
    text += kFiller[rng_.Uniform(sizeof(kFiller) / sizeof(kFiller[0]))];
    text += ' ';
  }
}

Microblog TweetGenerator::Next() {
  Microblog blog;
  blog.created_at =
      options_.start_time + count_ * options_.arrival_interval_micros;

  // Keywords: 1 + geometric extras, distinct. The first tag is a Zipf
  // draw; extras are topical companions of the first with probability
  // companion_p, independent draws otherwise.
  const uint32_t want =
      rng_.OneNPlusGeometric(options_.extra_keyword_p, options_.max_keywords);
  const KeywordId first =
      static_cast<KeywordId>(keyword_zipf_.Sample(&rng_));
  blog.keywords.push_back(first);
  int attempts = 0;
  while (blog.keywords.size() < want && attempts++ < 32) {
    KeywordId kw;
    if (options_.companion_count > 0 && rng_.Bernoulli(options_.companion_p)) {
      kw = CompanionKeyword(first,
                            static_cast<uint32_t>(
                                rng_.Uniform(options_.companion_count)),
                            options_.vocabulary_size);
    } else {
      kw = static_cast<KeywordId>(keyword_zipf_.Sample(&rng_));
    }
    if (std::find(blog.keywords.begin(), blog.keywords.end(), kw) ==
        blog.keywords.end()) {
      blog.keywords.push_back(kw);
    }
  }

  const uint64_t user_rank = user_zipf_.Sample(&rng_);
  blog.user_id = user_rank + 1;  // user ids are 1-based ranks
  blog.follower_count = FollowersForUserRank(user_rank);

  if (rng_.Bernoulli(options_.geotagged_fraction)) {
    blog.has_location = true;
    blog.location = SampleLocation();
  }

  if (options_.generate_text) SynthesizeText(&blog);

  ++count_;
  return blog;
}

void TweetGenerator::FillBatch(size_t n, std::vector<Microblog>* out) {
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(Next());
}

}  // namespace kflush
