// The store-side publish hook for continuous queries. Deliberately a
// dependency-free interface (model types only) so the core store and the
// flush policies can call into the subscription layer without the core
// library linking against it: MicroblogStore invokes OnInsert at the tail
// of every indexed insert (the digestion path), and FlushPolicy invokes
// OnRecordEvicted at the exact point a record's last in-memory posting is
// dropped and the record moves to the flush buffer. Both hooks sit behind
// one relaxed atomic pointer load, so a deployment with no subscription
// manager installed pays a single branch per insert.

#ifndef KFLUSH_SUB_SUBSCRIPTION_SINK_H_
#define KFLUSH_SUB_SUBSCRIPTION_SINK_H_

#include <vector>

#include "model/microblog.h"

namespace kflush {

class SubscriptionSink {
 public:
  virtual ~SubscriptionSink() = default;

  /// A record was inserted and indexed under `terms` with ranking score
  /// `score`. In a sharded deployment each shard passes its owned term
  /// subset, and term ownership is unique, so every (record, term) pair
  /// is published exactly once deployment-wide. May be called from many
  /// digestion threads concurrently.
  virtual void OnInsert(const Microblog& blog, const std::vector<TermId>& terms,
                        double score) = 0;

  /// The record's last in-memory posting was dropped by a flush cycle and
  /// the record left the memory tier. Called from the flushing thread,
  /// possibly concurrently across shards.
  virtual void OnRecordEvicted(MicroblogId id) = 0;
};

}  // namespace kflush

#endif  // KFLUSH_SUB_SUBSCRIPTION_SINK_H_
