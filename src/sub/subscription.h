// Continuous-query (standing top-k subscription) value types, shared by
// the SubscriptionManager, the wire protocol, and the tests. A client
// registers a (keyword | area | user, k) subscription and from then on
// receives incremental top-k deltas — enter/exit events stamped with a
// per-subscription monotonic sequence number — instead of re-polling the
// one-shot query surface. Folding a subscription's delta stream in
// sequence order reproduces, at any quiescent point, exactly the answer
// the one-shot engine would compute from the full record set; the
// standing-query differential oracle holds the system to that bytewise.

#ifndef KFLUSH_SUB_SUBSCRIPTION_H_
#define KFLUSH_SUB_SUBSCRIPTION_H_

#include <cstdint>

#include "index/spatial_grid.h"
#include "model/microblog.h"

namespace kflush {

/// What a subscription matches (mirrors the one-shot convenience surface:
/// keyword term, bounding-box area, user timeline).
enum class SubKind : uint8_t {
  kKeyword = 1,  // one keyword term (interned KeywordId as TermId)
  kArea = 2,     // bounding box, evaluated over the spatial grid tiles
  kUser = 3,     // one author's timeline (user id as TermId)
};

const char* SubKindName(SubKind kind);

/// A standing top-k registration. Only the fields implied by `kind` are
/// meaningful: `term` for kKeyword, `box` for kArea, `user` for kUser.
struct SubscriptionSpec {
  SubKind kind = SubKind::kKeyword;
  uint32_t k = 0;
  TermId term = kInvalidTermId;
  UserId user = 0;
  BoundingBox box;
};

/// One incremental update to a standing result.
enum class SubDeltaKind : uint8_t {
  kEnter = 1,     // record joins the top-k (carries the full record)
  kExit = 2,      // record leaves the top-k (displaced or k shrank)
  kTerminal = 3,  // subscription terminated server-side (NACK-style:
                  // slow-consumer disconnect); never carries a record
};

const char* SubDeltaKindName(SubDeltaKind kind);

/// One delta in a subscription's update stream. `seq` is contiguous and
/// monotonic per subscription starting at 1 — a consumer that observes a
/// gap has provably lost an update.
struct SubDelta {
  uint64_t seq = 0;
  SubDeltaKind kind = SubDeltaKind::kEnter;
  double score = 0.0;
  MicroblogId id = kInvalidMicroblogId;
  /// Full record for kEnter deltas (so consumers need no follow-up
  /// fetch); default-constructed for kExit/kTerminal.
  Microblog record;
};

/// One member of a standing result, in the engine's materialization
/// order: higher score first, ties broken by higher id.
struct SubMember {
  double score = 0.0;
  MicroblogId id = kInvalidMicroblogId;
};

/// The exact (score desc, id desc) order QueryEngine::Materialize sorts
/// answers by; standing results and the fan-out merge must preserve it.
inline bool SubMemberBetter(double a_score, MicroblogId a_id, double b_score,
                            MicroblogId b_id) {
  if (a_score != b_score) return a_score > b_score;
  return a_id > b_id;
}

}  // namespace kflush

#endif  // KFLUSH_SUB_SUBSCRIPTION_H_
