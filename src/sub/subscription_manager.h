// The continuous-query subsystem. Clients register (keyword | area |
// user, k) subscriptions; the manager maintains each standing top-k
// incrementally from the digestion path (SubscriptionSink::OnInsert) and
// publishes enter/exit deltas, stamped with a contiguous per-subscription
// sequence number, into a per-subscription outbox that the network server
// (or a test) drains.
//
// Eviction integration: when a flush cycle drops the last in-memory
// posting of a record that is a member of a standing result, the manager
// records a member eviction and schedules a disk-backed refill — a
// re-execution of the subscription's snapshot query with
// TopKQuery::force_disk set, so the memory-hit predicate cannot shortcut
// to a (possibly degraded) memory-only answer. Refills run lazily at the
// next drain, off the flushing thread, so the hook never re-enters policy
// or disk locks held by the flush. Because records are insert-only with
// immutable scores, a refill must be a no-op on a correct standing
// result; the standing-query differential oracle
// (tests/integration/subscription_oracle_test.cc) holds exactly that
// across all four policies and every shard count.
//
// Locking (acquisition order): registry_mu_ -> Subscription::mu ->
// member_mu_. The notifier runs under its own notifier_mu_ with no
// manager lock held, so NetServer::Stop can quiesce in-flight
// notifications by installing nullptr before closing its wake fd.

#ifndef KFLUSH_SUB_SUBSCRIPTION_MANAGER_H_
#define KFLUSH_SUB_SUBSCRIPTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/metrics_registry.h"
#include "core/query_engine.h"
#include "sub/subscription.h"
#include "sub/subscription_sink.h"
#include "util/status.h"

namespace kflush {

class ShardedMicroblogStore;
class ShardedMicroblogSystem;

class SubscriptionManager : public SubscriptionSink {
 public:
  /// Executes a subscription's top-k over the FULL record set (memory and
  /// disk; implementations set TopKQuery::force_disk). Used for the
  /// initial snapshot at Subscribe, for k increases, and for
  /// eviction-triggered refills.
  using SnapshotFn =
      std::function<Result<QueryResult>(const SubscriptionSpec&, uint32_t)>;

  /// Invoked (with no manager lock held beyond its own serialization)
  /// whenever a subscription's outbox goes from drained to non-empty; the
  /// server uses it to wake the epoll loop for a push write.
  using Notifier = std::function<void(uint64_t sub_id)>;

  explicit SubscriptionManager(SnapshotFn snapshot);
  ~SubscriptionManager() override;

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  /// Installs/replaces/clears the outbox notifier. Blocks until any
  /// in-flight notification completes, so after set_notifier(nullptr)
  /// returns the previous callback will never run again.
  void set_notifier(Notifier notifier);

  /// Registers the publish hooks on `store` (insert + eviction) and adopts
  /// its attribute/ranking configuration on first attach. The manager
  /// detaches every store in its destructor; the stores must outlive it.
  void AttachStore(MicroblogStore* store);

  /// Registers a standing top-k and seeds it from the snapshot query.
  /// The registration is indexed before the snapshot runs, so an insert
  /// racing Subscribe is either in the snapshot or published as a delta
  /// (enter dedup makes double delivery harmless) — never lost.
  Result<uint64_t> Subscribe(const SubscriptionSpec& spec);

  /// Terminates a subscription. Undrained outbox deltas are counted into
  /// sub.deltas_dropped_on_disconnect. NotFound for unknown ids.
  Status Unsubscribe(uint64_t sub_id);

  /// Changes a subscription's k. Shrinking emits exits for the trimmed
  /// tail; growing refills from the snapshot query.
  Status SetK(uint64_t sub_id, uint32_t k);

  // SubscriptionSink (the digestion/flush-side publish hooks). Both cost
  // one relaxed atomic load when no subscription is active.
  void OnInsert(const Microblog& blog, const std::vector<TermId>& terms,
                double score) override;
  void OnRecordEvicted(MicroblogId id) override;

  /// Moves the subscription's pending deltas into `out` (appended) after
  /// applying any pending eviction refills. Drained deltas count as
  /// pushed: the caller owns their delivery from here. Returns false for
  /// unknown ids.
  bool DrainDeltas(uint64_t sub_id, std::vector<SubDelta>* out);

  /// Copies the current standing result, best-first. Returns false for
  /// unknown ids.
  bool SnapshotMembers(uint64_t sub_id, std::vector<SubMember>* out) const;

  /// Applies queued eviction refills now (DrainDeltas does this
  /// implicitly; tests call it to reach quiescence without draining).
  void ProcessPendingRefills();

  /// Unsubscribes everything (undrained deltas count as dropped).
  /// Idempotent; the destructor calls it.
  void Shutdown();

  size_t num_active() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Record ids whose eviction hit at least one standing result, in
  /// eviction order (capped; for the oracle's audit assertions).
  std::vector<MicroblogId> member_eviction_ids() const;

  /// The sub.* instrument family. The server also counts sub.pushes (push
  /// frames written) here so one registry carries the whole story.
  MetricsRegistry* metrics_registry() { return &metrics_; }
  const MetricsRegistry* metrics_registry() const { return &metrics_; }

 private:
  struct Subscription {
    uint64_t id = 0;
    SubscriptionSpec spec;
    /// Tile terms (area) or the single term (keyword/user) this
    /// subscription is indexed under in by_term_.
    std::vector<TermId> index_terms;

    mutable std::mutex mu;
    uint32_t k = 0;                   // guarded by mu
    std::vector<SubMember> members;   // guarded by mu; best-first
    std::unordered_set<MicroblogId> member_ids;  // guarded by mu
    std::deque<SubDelta> outbox;      // guarded by mu
    uint64_t next_seq = 1;            // guarded by mu
  };

  /// True iff `blog` is a member of the subscription's logical result set
  /// (term routing got it here; this applies the kind-specific filter —
  /// for areas, the shared boundary predicate AreaContains).
  static bool Matches(const Subscription& sub, const Microblog& blog);

  /// Offers one record to the standing result. Emits enter (and a
  /// displaced exit) deltas as needed; duplicate offers are no-ops.
  /// Returns true if any delta was emitted. Caller must NOT hold sub->mu.
  bool Offer(Subscription* sub, const Microblog& blog, double score);

  /// Appends one delta to the outbox and stamps seq. Requires sub->mu.
  void EmitLocked(Subscription* sub, SubDeltaKind kind, double score,
                  MicroblogId id, const Microblog* record,
                  bool* was_empty);

  /// Runs the snapshot query and offers every result (Subscribe seed, k
  /// growth, eviction refill).
  void RefillFromSnapshot(const std::shared_ptr<Subscription>& sub);

  void Notify(uint64_t sub_id);
  void TrackEnter(MicroblogId id, uint64_t sub_id);
  void TrackExit(MicroblogId id, uint64_t sub_id);

  Status ValidateSpec(const SubscriptionSpec& spec,
                      std::vector<TermId>* index_terms) const;

  /// Drops a subscription already removed from the registry: counts its
  /// undrained outbox as dropped and unlinks member tracking.
  void FinishUnsubscribe(const std::shared_ptr<Subscription>& sub);

  SnapshotFn snapshot_;

  mutable std::shared_mutex registry_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Subscription>> subs_;
  std::unordered_map<TermId, std::vector<uint64_t>> by_term_;
  uint64_t next_sub_id_ = 1;

  // Deployment configuration adopted from the first attached store.
  AttributeKind attribute_ = AttributeKind::kKeyword;
  const RankingFunction* ranking_ = nullptr;
  const SpatialGridMapper* mapper_ = nullptr;
  std::vector<MicroblogStore*> attached_;

  // Membership tracking for eviction integration (leaf lock).
  mutable std::mutex member_mu_;
  std::unordered_map<MicroblogId, std::vector<uint64_t>> member_holders_;
  std::vector<MicroblogId> member_evictions_log_;
  std::deque<uint64_t> pending_refills_;

  std::mutex notifier_mu_;
  Notifier notifier_;

  std::atomic<size_t> active_{0};

  MetricsRegistry metrics_;
  Counter* registered_counter_;
  Counter* unsubscribed_counter_;
  Counter* published_counter_;
  Counter* pushed_counter_;
  Counter* dropped_counter_;
  Counter* member_evictions_counter_;
  Counter* refills_counter_;
  Counter* snapshot_queries_counter_;
  Gauge* active_gauge_;
};

/// Wires a manager to a deployment: installs the insert/eviction sinks on
/// every shard store and builds the force-disk snapshot querier over the
/// deployment's query surface. The returned manager must be destroyed
/// before the deployment it watches.
std::unique_ptr<SubscriptionManager> MakeSubscriptions(MicroblogStore* store,
                                                       QueryEngine* engine);
std::unique_ptr<SubscriptionManager> MakeSubscriptions(
    ShardedMicroblogStore* store);
std::unique_ptr<SubscriptionManager> MakeSubscriptions(
    ShardedMicroblogSystem* system);

}  // namespace kflush

#endif  // KFLUSH_SUB_SUBSCRIPTION_MANAGER_H_
