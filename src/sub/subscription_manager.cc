#include "sub/subscription_manager.h"

#include <algorithm>

#include "core/sharded_query_engine.h"
#include "core/sharded_store.h"
#include "core/sharded_system.h"
#include "core/store.h"
#include "core/trace.h"
#include "index/spatial_grid.h"

namespace kflush {

namespace {

/// Area subscriptions may not fan out wider than the one-shot SearchArea
/// surface can answer, or the snapshot/refill queries would fail where
/// registration succeeded.
constexpr size_t kMaxSubscriptionTiles = 256;

/// Hard sanity cap on k (a standing result is materialized in memory).
constexpr uint32_t kMaxSubscriptionK = 100000;

/// Capped length of the member-eviction id log (audit surface only; the
/// counters keep exact totals past the cap).
constexpr size_t kMaxEvictionLog = 1 << 16;

}  // namespace

const char* SubKindName(SubKind kind) {
  switch (kind) {
    case SubKind::kKeyword:
      return "keyword";
    case SubKind::kArea:
      return "area";
    case SubKind::kUser:
      return "user";
  }
  return "unknown";
}

const char* SubDeltaKindName(SubDeltaKind kind) {
  switch (kind) {
    case SubDeltaKind::kEnter:
      return "enter";
    case SubDeltaKind::kExit:
      return "exit";
    case SubDeltaKind::kTerminal:
      return "terminal";
  }
  return "unknown";
}

SubscriptionManager::SubscriptionManager(SnapshotFn snapshot)
    : snapshot_(std::move(snapshot)),
      registered_counter_(metrics_.counter("sub.registered")),
      unsubscribed_counter_(metrics_.counter("sub.unsubscribed")),
      published_counter_(metrics_.counter("sub.deltas_published")),
      pushed_counter_(metrics_.counter("sub.deltas_pushed")),
      dropped_counter_(
          metrics_.counter("sub.deltas_dropped_on_disconnect")),
      member_evictions_counter_(metrics_.counter("sub.member_evictions")),
      refills_counter_(metrics_.counter("sub.refills")),
      snapshot_queries_counter_(metrics_.counter("sub.snapshot_queries")),
      active_gauge_(metrics_.gauge("sub.active")) {}

SubscriptionManager::~SubscriptionManager() {
  Shutdown();
  set_notifier(nullptr);
  for (MicroblogStore* store : attached_) {
    store->set_subscription_sink(nullptr);
  }
}

void SubscriptionManager::set_notifier(Notifier notifier) {
  std::lock_guard<std::mutex> lock(notifier_mu_);
  notifier_ = std::move(notifier);
}

void SubscriptionManager::AttachStore(MicroblogStore* store) {
  if (attached_.empty()) {
    attribute_ = store->options().attribute;
    ranking_ = store->ranking();
    if (attribute_ == AttributeKind::kSpatial) {
      mapper_ =
          &static_cast<const SpatialAttribute*>(store->extractor())->mapper();
    }
  }
  attached_.push_back(store);
  store->set_subscription_sink(this);
}

Status SubscriptionManager::ValidateSpec(
    const SubscriptionSpec& spec, std::vector<TermId>* index_terms) const {
  if (spec.k == 0 || spec.k > kMaxSubscriptionK) {
    return Status::InvalidArgument("subscription k out of range");
  }
  switch (spec.kind) {
    case SubKind::kKeyword:
      if (attribute_ != AttributeKind::kKeyword) {
        return Status::InvalidArgument(
            "keyword subscription on a non-keyword deployment");
      }
      if (spec.term == kInvalidTermId) {
        return Status::InvalidArgument("keyword subscription without a term");
      }
      index_terms->push_back(spec.term);
      return Status::OK();
    case SubKind::kUser:
      if (attribute_ != AttributeKind::kUser) {
        return Status::InvalidArgument(
            "user subscription on a non-user deployment");
      }
      index_terms->push_back(static_cast<TermId>(spec.user));
      return Status::OK();
    case SubKind::kArea: {
      if (attribute_ != AttributeKind::kSpatial || mapper_ == nullptr) {
        return Status::InvalidArgument(
            "area subscription on a non-spatial deployment");
      }
      if (spec.box.min_lat > spec.box.max_lat ||
          spec.box.min_lon > spec.box.max_lon) {
        return Status::InvalidArgument("inverted bounding box");
      }
      std::vector<TermId> tiles =
          TilesOverlapping(*mapper_, spec.box, kMaxSubscriptionTiles + 1);
      if (tiles.empty() || tiles.size() > kMaxSubscriptionTiles) {
        return Status::InvalidArgument(
            "area subscription spans no or too many grid tiles");
      }
      *index_terms = std::move(tiles);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown subscription kind");
}

Result<uint64_t> SubscriptionManager::Subscribe(const SubscriptionSpec& spec) {
  if (attached_.empty()) {
    return Status::InvalidArgument("no store attached");
  }
  std::vector<TermId> index_terms;
  KFLUSH_RETURN_IF_ERROR(ValidateSpec(spec, &index_terms));

  auto sub = std::make_shared<Subscription>();
  sub->spec = spec;
  sub->k = spec.k;
  sub->index_terms = std::move(index_terms);
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    sub->id = next_sub_id_++;
    subs_.emplace(sub->id, sub);
    for (TermId term : sub->index_terms) {
      by_term_[term].push_back(sub->id);
    }
    active_.store(subs_.size(), std::memory_order_release);
    active_gauge_->Set(static_cast<int64_t>(subs_.size()));
  }
  registered_counter_->Increment();
  KFLUSH_TRACE_FLOW_BEGIN("sub", "subscription", sub->id,
                          TraceArg::Str("kind", SubKindName(spec.kind)));
  // Seed from the full record set. The registration above is already
  // visible to OnInsert, so a racing insert lands either in this snapshot
  // or in the delta stream (never neither); Offer's dedup absorbs both.
  RefillFromSnapshot(sub);
  return sub->id;
}

Status SubscriptionManager::Unsubscribe(uint64_t sub_id) {
  std::shared_ptr<Subscription> sub;
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) {
      return Status::NotFound("unknown subscription");
    }
    sub = it->second;
    subs_.erase(it);
    for (TermId term : sub->index_terms) {
      auto tit = by_term_.find(term);
      if (tit == by_term_.end()) continue;
      auto& ids = tit->second;
      ids.erase(std::remove(ids.begin(), ids.end(), sub_id), ids.end());
      if (ids.empty()) by_term_.erase(tit);
    }
    active_.store(subs_.size(), std::memory_order_release);
    active_gauge_->Set(static_cast<int64_t>(subs_.size()));
  }
  FinishUnsubscribe(sub);
  return Status::OK();
}

void SubscriptionManager::FinishUnsubscribe(
    const std::shared_ptr<Subscription>& sub) {
  std::vector<MicroblogId> held;
  uint64_t undrained = 0;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    undrained = sub->outbox.size();
    sub->outbox.clear();
    held.assign(sub->member_ids.begin(), sub->member_ids.end());
    sub->members.clear();
    sub->member_ids.clear();
  }
  if (undrained > 0) dropped_counter_->Add(undrained);
  for (MicroblogId id : held) TrackExit(id, sub->id);
  unsubscribed_counter_->Increment();
  KFLUSH_TRACE_FLOW_END("sub", "subscription", sub->id);
}

Status SubscriptionManager::SetK(uint64_t sub_id, uint32_t k) {
  if (k == 0 || k > kMaxSubscriptionK) {
    return Status::InvalidArgument("subscription k out of range");
  }
  std::shared_ptr<Subscription> sub;
  bool grew = false;
  bool emitted = false;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) {
      return Status::NotFound("unknown subscription");
    }
    sub = it->second;
    std::lock_guard<std::mutex> sub_lock(sub->mu);
    grew = k > sub->k;
    sub->k = k;
    // Shrink: trim the worst tail, emitting exits so the folded stream
    // stays exactly the reference top-k.
    while (sub->members.size() > k) {
      SubMember worst = sub->members.back();
      sub->members.pop_back();
      sub->member_ids.erase(worst.id);
      EmitLocked(sub.get(), SubDeltaKind::kExit, worst.score, worst.id,
                 nullptr, nullptr);
      TrackExit(worst.id, sub->id);
      emitted = true;
    }
  }
  if (emitted) Notify(sub_id);
  // Grow: records displaced under the old k are gone from memory state,
  // so rebuild the larger result from the full record set.
  if (grew) RefillFromSnapshot(sub);
  return Status::OK();
}

bool SubscriptionManager::Matches(const Subscription& sub,
                                  const Microblog& blog) {
  // Term routing already matched keyword/user subscriptions exactly; area
  // subscriptions were routed by overlapping tile and still need the
  // boundary filter — the same predicate the one-shot SearchArea applies.
  if (sub.spec.kind == SubKind::kArea) {
    return AreaContains(sub.spec.box, blog);
  }
  return true;
}

void SubscriptionManager::EmitLocked(Subscription* sub, SubDeltaKind kind,
                                     double score, MicroblogId id,
                                     const Microblog* record,
                                     bool* was_empty) {
  if (was_empty != nullptr) *was_empty = sub->outbox.empty();
  SubDelta delta;
  delta.seq = sub->next_seq++;
  delta.kind = kind;
  delta.score = score;
  delta.id = id;
  if (record != nullptr) delta.record = *record;
  sub->outbox.push_back(std::move(delta));
  published_counter_->Increment();
  KFLUSH_TRACE_FLOW_STEP("sub", "subscription", sub->id,
                         TraceArg::Str("delta", SubDeltaKindName(kind)));
}

bool SubscriptionManager::Offer(Subscription* sub, const Microblog& blog,
                                double score) {
  std::lock_guard<std::mutex> lock(sub->mu);
  if (sub->member_ids.count(blog.id) > 0) return false;  // duplicate offer
  SubMember incoming{score, blog.id};
  if (sub->members.size() >= sub->k) {
    const SubMember& worst = sub->members.back();
    if (!SubMemberBetter(incoming.score, incoming.id, worst.score, worst.id)) {
      return false;  // does not make the top-k
    }
    SubMember displaced = sub->members.back();
    sub->members.pop_back();
    sub->member_ids.erase(displaced.id);
    EmitLocked(sub, SubDeltaKind::kExit, displaced.score, displaced.id,
               nullptr, nullptr);
    TrackExit(displaced.id, sub->id);
  }
  auto pos = std::lower_bound(
      sub->members.begin(), sub->members.end(), incoming,
      [](const SubMember& a, const SubMember& b) {
        return SubMemberBetter(a.score, a.id, b.score, b.id);
      });
  sub->members.insert(pos, incoming);
  sub->member_ids.insert(blog.id);
  EmitLocked(sub, SubDeltaKind::kEnter, score, blog.id, &blog, nullptr);
  TrackEnter(blog.id, sub->id);
  return true;
}

void SubscriptionManager::OnInsert(const Microblog& blog,
                                   const std::vector<TermId>& terms,
                                   double score) {
  if (active_.load(std::memory_order_relaxed) == 0) return;
  std::vector<uint64_t> to_notify;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    for (TermId term : terms) {
      auto it = by_term_.find(term);
      if (it == by_term_.end()) continue;
      for (uint64_t sub_id : it->second) {
        auto sit = subs_.find(sub_id);
        if (sit == subs_.end()) continue;
        Subscription* sub = sit->second.get();
        if (!Matches(*sub, blog)) continue;
        if (Offer(sub, blog, score)) to_notify.push_back(sub_id);
      }
    }
  }
  for (uint64_t sub_id : to_notify) Notify(sub_id);
}

void SubscriptionManager::OnRecordEvicted(MicroblogId id) {
  if (active_.load(std::memory_order_relaxed) == 0) return;
  std::unique_lock<std::mutex> lock(member_mu_);
  auto it = member_holders_.find(id);
  if (it == member_holders_.end() || it->second.empty()) return;
  // A member of a standing result just left the memory tier. Queue a
  // disk-backed refill for every holder; it runs at the next drain, off
  // this (flushing) thread.
  member_evictions_counter_->Increment();
  if (member_evictions_log_.size() < kMaxEvictionLog) {
    member_evictions_log_.push_back(id);
  }
  std::vector<uint64_t> holders = it->second;
  for (uint64_t sub_id : holders) {
    pending_refills_.push_back(sub_id);
  }
  lock.unlock();
  // Wake the drainer so the refill runs promptly rather than riding the
  // next unrelated delta. The notifier takes no manager lock, so firing
  // it from the flushing thread cannot deadlock.
  for (uint64_t sub_id : holders) Notify(sub_id);
}

void SubscriptionManager::ProcessPendingRefills() {
  std::deque<uint64_t> pending;
  {
    std::lock_guard<std::mutex> lock(member_mu_);
    pending.swap(pending_refills_);
  }
  if (pending.empty()) return;
  std::vector<uint64_t> unique(pending.begin(), pending.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  for (uint64_t sub_id : unique) {
    std::shared_ptr<Subscription> sub;
    {
      std::shared_lock<std::shared_mutex> lock(registry_mu_);
      auto it = subs_.find(sub_id);
      if (it == subs_.end()) continue;  // unsubscribed since the eviction
      sub = it->second;
    }
    refills_counter_->Increment();
    RefillFromSnapshot(sub);
  }
}

void SubscriptionManager::RefillFromSnapshot(
    const std::shared_ptr<Subscription>& sub) {
  if (!snapshot_ || ranking_ == nullptr) return;
  uint32_t k;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    k = sub->k;
  }
  snapshot_queries_counter_->Increment();
  Result<QueryResult> result = snapshot_(sub->spec, k);
  if (!result.ok()) return;
  bool emitted = false;
  {
    // Offers happen under the registry lock (like OnInsert) so they
    // cannot race FinishUnsubscribe's outbox accounting.
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    if (subs_.find(sub->id) == subs_.end()) return;
    for (const Microblog& blog : result->results) {
      if (Offer(sub.get(), blog, ranking_->Score(blog))) emitted = true;
    }
  }
  if (emitted) Notify(sub->id);
}

bool SubscriptionManager::DrainDeltas(uint64_t sub_id,
                                      std::vector<SubDelta>* out) {
  ProcessPendingRefills();
  std::shared_ptr<Subscription> sub;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) return false;
    sub = it->second;
  }
  size_t drained = 0;
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    drained = sub->outbox.size();
    for (SubDelta& delta : sub->outbox) {
      out->push_back(std::move(delta));
    }
    sub->outbox.clear();
  }
  if (drained > 0) pushed_counter_->Add(drained);
  return true;
}

bool SubscriptionManager::SnapshotMembers(uint64_t sub_id,
                                          std::vector<SubMember>* out) const {
  std::shared_ptr<Subscription> sub;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) return false;
    sub = it->second;
  }
  std::lock_guard<std::mutex> lock(sub->mu);
  out->assign(sub->members.begin(), sub->members.end());
  return true;
}

void SubscriptionManager::Shutdown() {
  std::unordered_map<uint64_t, std::shared_ptr<Subscription>> subs;
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    subs.swap(subs_);
    by_term_.clear();
    active_.store(0, std::memory_order_release);
    active_gauge_->Set(0);
  }
  for (auto& [id, sub] : subs) {
    (void)id;
    FinishUnsubscribe(sub);
  }
  {
    std::lock_guard<std::mutex> lock(member_mu_);
    pending_refills_.clear();
  }
}

void SubscriptionManager::Notify(uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(notifier_mu_);
  if (notifier_) notifier_(sub_id);
}

void SubscriptionManager::TrackEnter(MicroblogId id, uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(member_mu_);
  member_holders_[id].push_back(sub_id);
}

void SubscriptionManager::TrackExit(MicroblogId id, uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(member_mu_);
  auto it = member_holders_.find(id);
  if (it == member_holders_.end()) return;
  auto& holders = it->second;
  auto pos = std::find(holders.begin(), holders.end(), sub_id);
  if (pos != holders.end()) holders.erase(pos);
  if (holders.empty()) member_holders_.erase(it);
}

std::vector<MicroblogId> SubscriptionManager::member_eviction_ids() const {
  std::lock_guard<std::mutex> lock(member_mu_);
  return member_evictions_log_;
}

namespace {

/// The snapshot querier: a standing result recomputed over the FULL
/// record set. force_disk defeats the memory-hit shortcut — under LRU the
/// memory postings of a term need not be a score-prefix of memory ∪ disk,
/// so a memory-only answer could be degraded exactly when a refill is
/// needed most.
template <typename Engine>
Result<QueryResult> SnapshotQueryOn(Engine* engine,
                                    const SubscriptionSpec& spec, uint32_t k) {
  if (spec.kind == SubKind::kArea) {
    return engine->SearchArea(spec.box.min_lat, spec.box.min_lon,
                              spec.box.max_lat, spec.box.max_lon, k,
                              /*max_tiles=*/kMaxSubscriptionTiles,
                              /*force_disk=*/true);
  }
  TopKQuery query;
  query.terms.push_back(spec.kind == SubKind::kKeyword
                            ? spec.term
                            : static_cast<TermId>(spec.user));
  query.type = QueryType::kSingle;
  query.k = k;
  query.force_disk = true;
  return engine->Execute(query);
}

}  // namespace

std::unique_ptr<SubscriptionManager> MakeSubscriptions(MicroblogStore* store,
                                                       QueryEngine* engine) {
  auto manager = std::make_unique<SubscriptionManager>(
      [engine](const SubscriptionSpec& spec, uint32_t k) {
        return SnapshotQueryOn(engine, spec, k);
      });
  manager->AttachStore(store);
  return manager;
}

std::unique_ptr<SubscriptionManager> MakeSubscriptions(
    ShardedMicroblogStore* store) {
  ShardedQueryEngine* engine = store->engine();
  auto manager = std::make_unique<SubscriptionManager>(
      [engine](const SubscriptionSpec& spec, uint32_t k) {
        return SnapshotQueryOn(engine, spec, k);
      });
  for (size_t i = 0; i < store->num_shards(); ++i) {
    manager->AttachStore(store->shard(i));
  }
  return manager;
}

std::unique_ptr<SubscriptionManager> MakeSubscriptions(
    ShardedMicroblogSystem* system) {
  ShardedQueryEngine* engine = system->engine();
  auto manager = std::make_unique<SubscriptionManager>(
      [engine](const SubscriptionSpec& spec, uint32_t k) {
        return SnapshotQueryOn(engine, spec, k);
      });
  for (size_t i = 0; i < system->num_shards(); ++i) {
    manager->AttachStore(system->shard_store(i));
  }
  return manager;
}

}  // namespace kflush
