#include "storage/serde.h"

#include <cstring>

namespace kflush {

namespace {

template <typename T>
void PutRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(const char*& p, const char* end, T* value) {
  if (static_cast<size_t>(end - p) < sizeof(T)) return false;
  std::memcpy(value, p, sizeof(T));
  p += sizeof(T);
  return true;
}

}  // namespace

void EncodeMicroblog(const Microblog& blog, std::string* out) {
  const size_t len_pos = out->size();
  PutRaw<uint32_t>(out, 0);  // payload_len placeholder
  const size_t payload_start = out->size();

  PutRaw<uint64_t>(out, blog.id);
  PutRaw<uint64_t>(out, blog.created_at);
  PutRaw<uint64_t>(out, blog.user_id);
  PutRaw<uint32_t>(out, blog.follower_count);
  PutRaw<uint8_t>(out, blog.has_location ? 1 : 0);
  if (blog.has_location) {
    PutRaw<double>(out, blog.location.lat);
    PutRaw<double>(out, blog.location.lon);
  }
  PutRaw<uint16_t>(out, static_cast<uint16_t>(blog.keywords.size()));
  for (KeywordId kw : blog.keywords) PutRaw<uint32_t>(out, kw);
  PutRaw<uint32_t>(out, static_cast<uint32_t>(blog.text.size()));
  out->append(blog.text);

  const uint32_t payload_len =
      static_cast<uint32_t>(out->size() - payload_start);
  std::memcpy(out->data() + len_pos, &payload_len, sizeof(payload_len));
}

Status DecodeMicroblog(const char* data, size_t len, Microblog* out,
                       size_t* consumed) {
  const char* p = data;
  const char* end = data + len;

  uint32_t payload_len = 0;
  if (!GetRaw(p, end, &payload_len)) {
    return Status::Corruption("truncated record header");
  }
  if (static_cast<size_t>(end - p) < payload_len) {
    return Status::Corruption("truncated record payload");
  }
  const char* payload_end = p + payload_len;

  Microblog blog;
  uint8_t flags = 0;
  uint16_t num_keywords = 0;
  uint32_t text_len = 0;
  if (!GetRaw(p, payload_end, &blog.id) ||
      !GetRaw(p, payload_end, &blog.created_at) ||
      !GetRaw(p, payload_end, &blog.user_id) ||
      !GetRaw(p, payload_end, &blog.follower_count) ||
      !GetRaw(p, payload_end, &flags)) {
    return Status::Corruption("truncated record fields");
  }
  blog.has_location = (flags & 1) != 0;
  if (blog.has_location) {
    if (!GetRaw(p, payload_end, &blog.location.lat) ||
        !GetRaw(p, payload_end, &blog.location.lon)) {
      return Status::Corruption("truncated location");
    }
  }
  if (!GetRaw(p, payload_end, &num_keywords)) {
    return Status::Corruption("truncated keyword count");
  }
  blog.keywords.resize(num_keywords);
  for (uint16_t i = 0; i < num_keywords; ++i) {
    if (!GetRaw(p, payload_end, &blog.keywords[i])) {
      return Status::Corruption("truncated keywords");
    }
  }
  if (!GetRaw(p, payload_end, &text_len)) {
    return Status::Corruption("truncated text length");
  }
  if (static_cast<size_t>(payload_end - p) < text_len) {
    return Status::Corruption("truncated text");
  }
  blog.text.assign(p, text_len);
  p += text_len;
  if (p != payload_end) {
    return Status::Corruption("record payload has trailing bytes");
  }

  *out = std::move(blog);
  *consumed = static_cast<size_t>(p - data);
  return Status::OK();
}

void EncodeWalEntry(const Microblog& blog, const std::vector<TermId>& routed,
                    std::string* out) {
  PutRaw<uint16_t>(out, static_cast<uint16_t>(routed.size()));
  for (TermId term : routed) PutRaw<uint64_t>(out, term);
  EncodeMicroblog(blog, out);
}

Status DecodeWalEntry(const char* data, size_t len, Microblog* out,
                      std::vector<TermId>* routed) {
  const char* p = data;
  const char* end = data + len;

  uint16_t num_routed = 0;
  if (!GetRaw(p, end, &num_routed)) {
    return Status::Corruption("truncated wal entry term count");
  }
  routed->resize(num_routed);
  for (uint16_t i = 0; i < num_routed; ++i) {
    uint64_t term = 0;
    if (!GetRaw(p, end, &term)) {
      return Status::Corruption("truncated wal entry terms");
    }
    (*routed)[i] = static_cast<TermId>(term);
  }

  size_t consumed = 0;
  KFLUSH_RETURN_IF_ERROR(
      DecodeMicroblog(p, static_cast<size_t>(end - p), out, &consumed));
  if (p + consumed != end) {
    return Status::Corruption("wal entry has trailing bytes");
  }
  return Status::OK();
}

}  // namespace kflush
