#include "storage/sim_disk_store.h"

#include <algorithm>

#include "core/trace.h"

namespace kflush {

Status SimDiskStore::AddPosting(TermId term, MicroblogId id, double score) {
  std::lock_guard<std::mutex> lock(mu_);
  // Duplicates are dropped (a record may be re-registered if it was
  // trimmed from an entry and later the whole record is flushed).
  if (!DiskPostingInsertAscending(&postings_[term], id, score)) {
    return Status::OK();
  }
  ++num_postings_;
  ++stats_.postings_added;
  return Status::OK();
}

Status SimDiskStore::WriteBatch(std::vector<Microblog> batch) {
  TraceSpan span("disk", "write_batch",
                 {TraceArg::Uint("records", batch.size())});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.write_batches;
  for (Microblog& blog : batch) {
    stats_.record_bytes_written += blog.FootprintBytes();
    ++stats_.records_written;
    records_[blog.id] = std::move(blog);
  }
  return Status::OK();
}

Status SimDiskStore::QueryTerm(TermId term, size_t limit,
                               std::vector<Posting>* out) {
  TraceSpan span("disk", "query_term", {TraceArg::Uint("term", term)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.term_queries;
  auto it = postings_.find(term);
  if (it == postings_.end()) return Status::OK();
  const size_t n = DiskPostingsTopN(it->second, limit, out);
  stats_.posting_bytes_read += n * sizeof(Posting);
  return Status::OK();
}

Status SimDiskStore::GetRecord(MicroblogId id, Microblog* out) {
  TraceSpan span("disk", "get_record", {TraceArg::Uint("id", id)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.records_read;
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("record not on disk");
  }
  *out = it->second;
  stats_.record_bytes_read += out->FootprintBytes();
  return Status::OK();
}

bool SimDiskStore::Contains(MicroblogId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.count(id) != 0;
}

bool SimDiskStore::MaxTermScore(TermId term, double* score) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = postings_.find(term);
  if (it == postings_.end() || it->second.empty()) return false;
  *score = it->second.back().score;  // ascending storage: back is max
  return true;
}

DiskStats SimDiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SimDiskStore::NumRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

size_t SimDiskStore::NumPostings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_postings_;
}

}  // namespace kflush
