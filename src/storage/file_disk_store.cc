#include "storage/file_disk_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/trace.h"
#include "storage/serde.h"

namespace kflush {

Result<std::unique_ptr<FileDiskStore>> FileDiskStore::Open(
    const std::string& path, DurabilityLevel level) {
  // "x": exclusive create. The old "w+b" truncated an existing data file,
  // silently destroying it; adopting existing data is OpenOrRecover's job.
  std::FILE* file = std::fopen(path.c_str(), "w+bx");
  if (file == nullptr) {
    if (errno == EEXIST) {
      return Status::AlreadyExists(path +
                                   " exists; use OpenOrRecover to adopt it");
    }
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileDiskStore>(
      new FileDiskStore(path, file, level));
}

Result<std::unique_ptr<FileDiskStore>> FileDiskStore::OpenOrRecover(
    const std::string& path, const AttributeExtractor* extractor,
    const std::function<double(const Microblog&)>& score_fn,
    DurabilityLevel level) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    // Nothing to recover: behave like Open().
    return Open(path, level);
  }
  auto store = std::unique_ptr<FileDiskStore>(
      new FileDiskStore(path, file, level));

  // Sequentially scan the data file, rebuilding the record catalog (and,
  // when possible, the term index) from the self-describing records.
  std::string contents;
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed on " + path);
  }
  const long size = std::ftell(file);
  if (size < 0) return Status::IOError("ftell failed on " + path);
  contents.resize(static_cast<size_t>(size));
  std::rewind(file);
  if (std::fread(contents.data(), 1, contents.size(), file) !=
      contents.size()) {
    return Status::IOError("short read recovering " + path);
  }

  size_t pos = 0;
  std::vector<TermId> terms;
  while (pos < contents.size()) {
    Microblog blog;
    size_t consumed = 0;
    Status s = DecodeMicroblog(contents.data() + pos, contents.size() - pos,
                               &blog, &consumed);
    if (!s.ok()) {
      // Torn final record: the crash caught an append mid-write. The
      // valid prefix is the data; drop the tail instead of refusing to
      // start with Corruption.
      break;
    }
    RecordLocation loc;
    loc.offset = pos;
    loc.length = static_cast<uint32_t>(consumed);
    store->locations_[blog.id] = loc;
    // Recovery rebuilds the catalog; it is not a write. records_written
    // must reflect this process's writes only, or repeated open/recover
    // cycles double-count every record into the experiment counters.
    ++store->stats_.records_recovered;
    if (extractor != nullptr && score_fn != nullptr) {
      const double score = score_fn(blog);
      extractor->ExtractTerms(blog, &terms);
      for (TermId term : terms) {
        KFLUSH_RETURN_IF_ERROR(store->AddPosting(term, blog.id, score));
      }
    }
    pos += consumed;
  }
  if (pos < contents.size()) {
    store->stats_.torn_bytes_truncated += contents.size() - pos;
    if (::ftruncate(::fileno(file), static_cast<off_t>(pos)) != 0) {
      return Status::IOError("truncate torn tail of " + path + ": " +
                             std::strerror(errno));
    }
  }
  store->file_size_ = pos;
  return store;
}

FileDiskStore::FileDiskStore(std::string path, std::FILE* file,
                             DurabilityLevel level)
    : path_(std::move(path)), file_(file), level_(level) {}

FileDiskStore::~FileDiskStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskStore::AddPosting(TermId term, MicroblogId id, double score) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!DiskPostingInsertAscending(&postings_[term], id, score)) {
    return Status::OK();
  }
  ++num_postings_;
  ++stats_.postings_added;
  return Status::OK();
}

Status FileDiskStore::WriteBatch(std::vector<Microblog> batch) {
  if (batch.empty()) return Status::OK();
  TraceSpan span("disk", "write_batch",
                 {TraceArg::Uint("records", batch.size())});
  std::string encoded;
  std::vector<std::pair<MicroblogId, RecordLocation>> locations;
  locations.reserve(batch.size());
  uint64_t offset_in_batch = 0;
  for (const Microblog& blog : batch) {
    const size_t before = encoded.size();
    EncodeMicroblog(blog, &encoded);
    RecordLocation loc;
    loc.offset = offset_in_batch;
    loc.length = static_cast<uint32_t>(encoded.size() - before);
    locations.emplace_back(blog.id, loc);
    offset_in_batch += loc.length;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + std::string(std::strerror(errno)));
  }
  const uint64_t base = file_size_;
  const size_t written =
      std::fwrite(encoded.data(), 1, encoded.size(), file_);
  Status status = Status::OK();
  if (written != encoded.size()) {
    status = Status::IOError("short write to " + path_);
  } else if (std::fflush(file_) != 0) {
    status = Status::IOError("flush failed: " +
                             std::string(std::strerror(errno)));
  } else if (level_ != DurabilityLevel::kNone) {
    status = SyncFile(file_, level_, path_);
    if (status.ok()) ++stats_.fsyncs;
  }
  if (!status.ok()) {
    // A partial append left a torn record past `base`. Cut the file back
    // to the last good state so the catalog, file_size_, and the bytes on
    // disk agree and a retried batch appends cleanly; if even the
    // truncate fails, resync file_size_ to whatever actually landed.
    std::clearerr(file_);
    if (::ftruncate(::fileno(file_), static_cast<off_t>(base)) != 0 &&
        std::fseek(file_, 0, SEEK_END) == 0) {
      const long actual = std::ftell(file_);
      if (actual >= 0) file_size_ = static_cast<uint64_t>(actual);
    }
    return status;
  }
  file_size_ += encoded.size();
  for (auto& [id, loc] : locations) {
    loc.offset += base;
    locations_[id] = loc;
    ++stats_.records_written;
  }
  stats_.record_bytes_written += encoded.size();
  ++stats_.write_batches;
  return Status::OK();
}

Status FileDiskStore::QueryTerm(TermId term, size_t limit,
                                std::vector<Posting>* out) {
  TraceSpan span("disk", "query_term", {TraceArg::Uint("term", term)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.term_queries;
  auto it = postings_.find(term);
  if (it == postings_.end()) return Status::OK();
  const size_t n = DiskPostingsTopN(it->second, limit, out);
  stats_.posting_bytes_read += n * sizeof(Posting);
  return Status::OK();
}

Status FileDiskStore::GetRecord(MicroblogId id, Microblog* out) {
  TraceSpan span("disk", "get_record", {TraceArg::Uint("id", id)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.records_read;
  auto it = locations_.find(id);
  if (it == locations_.end()) {
    return Status::NotFound("record not on disk");
  }
  const RecordLocation& loc = it->second;
  std::string buf(loc.length, '\0');
  if (std::fseek(file_, static_cast<long>(loc.offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + std::string(std::strerror(errno)));
  }
  const size_t got = std::fread(buf.data(), 1, loc.length, file_);
  if (got != loc.length) {
    return Status::IOError("short read from " + path_);
  }
  size_t consumed = 0;
  KFLUSH_RETURN_IF_ERROR(DecodeMicroblog(buf.data(), buf.size(), out,
                                         &consumed));
  if (consumed != loc.length) {
    return Status::Corruption("record length mismatch");
  }
  stats_.record_bytes_read += loc.length;
  return Status::OK();
}

bool FileDiskStore::Contains(MicroblogId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return locations_.count(id) != 0;
}

bool FileDiskStore::MaxTermScore(TermId term, double* score) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = postings_.find(term);
  if (it == postings_.end() || it->second.empty()) return false;
  *score = it->second.back().score;  // ascending storage: back is max
  return true;
}

DiskStats FileDiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t FileDiskStore::NumRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return locations_.size();
}

size_t FileDiskStore::NumPostings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_postings_;
}

}  // namespace kflush
