#include "storage/file_disk_store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/trace.h"
#include "storage/serde.h"

namespace kflush {

Result<std::unique_ptr<FileDiskStore>> FileDiskStore::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileDiskStore>(new FileDiskStore(path, file));
}

Result<std::unique_ptr<FileDiskStore>> FileDiskStore::OpenOrRecover(
    const std::string& path, const AttributeExtractor* extractor,
    const std::function<double(const Microblog&)>& score_fn) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    // Nothing to recover: behave like Open().
    return Open(path);
  }
  auto store =
      std::unique_ptr<FileDiskStore>(new FileDiskStore(path, file));

  // Sequentially scan the data file, rebuilding the record catalog (and,
  // when possible, the term index) from the self-describing records.
  std::string contents;
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed on " + path);
  }
  const long size = std::ftell(file);
  if (size < 0) return Status::IOError("ftell failed on " + path);
  contents.resize(static_cast<size_t>(size));
  std::rewind(file);
  if (std::fread(contents.data(), 1, contents.size(), file) !=
      contents.size()) {
    return Status::IOError("short read recovering " + path);
  }

  size_t pos = 0;
  std::vector<TermId> terms;
  while (pos < contents.size()) {
    Microblog blog;
    size_t consumed = 0;
    Status s = DecodeMicroblog(contents.data() + pos, contents.size() - pos,
                               &blog, &consumed);
    if (!s.ok()) {
      return Status::Corruption(path + " is corrupt at offset " +
                                std::to_string(pos) + ": " + s.ToString());
    }
    RecordLocation loc;
    loc.offset = pos;
    loc.length = static_cast<uint32_t>(consumed);
    store->locations_[blog.id] = loc;
    ++store->stats_.records_written;
    store->stats_.record_bytes_written += consumed;
    if (extractor != nullptr && score_fn != nullptr) {
      const double score = score_fn(blog);
      extractor->ExtractTerms(blog, &terms);
      for (TermId term : terms) {
        KFLUSH_RETURN_IF_ERROR(store->AddPosting(term, blog.id, score));
      }
    }
    pos += consumed;
  }
  store->file_size_ = contents.size();
  return store;
}

FileDiskStore::FileDiskStore(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

FileDiskStore::~FileDiskStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskStore::AddPosting(TermId term, MicroblogId id, double score) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!DiskPostingInsertAscending(&postings_[term], id, score)) {
    return Status::OK();
  }
  ++num_postings_;
  ++stats_.postings_added;
  return Status::OK();
}

Status FileDiskStore::WriteBatch(std::vector<Microblog> batch) {
  if (batch.empty()) return Status::OK();
  TraceSpan span("disk", "write_batch",
                 {TraceArg::Uint("records", batch.size())});
  std::string encoded;
  std::vector<std::pair<MicroblogId, RecordLocation>> locations;
  locations.reserve(batch.size());
  uint64_t offset_in_batch = 0;
  for (const Microblog& blog : batch) {
    const size_t before = encoded.size();
    EncodeMicroblog(blog, &encoded);
    RecordLocation loc;
    loc.offset = offset_in_batch;
    loc.length = static_cast<uint32_t>(encoded.size() - before);
    locations.emplace_back(blog.id, loc);
    offset_in_batch += loc.length;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + std::string(std::strerror(errno)));
  }
  const uint64_t base = file_size_;
  const size_t written =
      std::fwrite(encoded.data(), 1, encoded.size(), file_);
  if (written != encoded.size()) {
    return Status::IOError("short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed: " + std::string(std::strerror(errno)));
  }
  file_size_ += encoded.size();
  for (auto& [id, loc] : locations) {
    loc.offset += base;
    locations_[id] = loc;
    ++stats_.records_written;
  }
  stats_.record_bytes_written += encoded.size();
  ++stats_.write_batches;
  return Status::OK();
}

Status FileDiskStore::QueryTerm(TermId term, size_t limit,
                                std::vector<Posting>* out) {
  TraceSpan span("disk", "query_term", {TraceArg::Uint("term", term)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.term_queries;
  auto it = postings_.find(term);
  if (it == postings_.end()) return Status::OK();
  const size_t n = DiskPostingsTopN(it->second, limit, out);
  stats_.posting_bytes_read += n * sizeof(Posting);
  return Status::OK();
}

Status FileDiskStore::GetRecord(MicroblogId id, Microblog* out) {
  TraceSpan span("disk", "get_record", {TraceArg::Uint("id", id)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.records_read;
  auto it = locations_.find(id);
  if (it == locations_.end()) {
    return Status::NotFound("record not on disk");
  }
  const RecordLocation& loc = it->second;
  std::string buf(loc.length, '\0');
  if (std::fseek(file_, static_cast<long>(loc.offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + std::string(std::strerror(errno)));
  }
  const size_t got = std::fread(buf.data(), 1, loc.length, file_);
  if (got != loc.length) {
    return Status::IOError("short read from " + path_);
  }
  size_t consumed = 0;
  KFLUSH_RETURN_IF_ERROR(DecodeMicroblog(buf.data(), buf.size(), out,
                                         &consumed));
  if (consumed != loc.length) {
    return Status::Corruption("record length mismatch");
  }
  stats_.record_bytes_read += loc.length;
  return Status::OK();
}

DiskStats FileDiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t FileDiskStore::NumRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return locations_.size();
}

size_t FileDiskStore::NumPostings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_postings_;
}

}  // namespace kflush
