// Disk-side storage. When the flushing policy drops an id's association
// from a memory index entry, the association is registered with the disk
// store immediately (AddPosting); the record payload itself is written when
// its last in-memory reference disappears (WriteBatch, fed by the
// FlushBuffer). Memory ∪ disk therefore always covers the complete answer
// of any query — the property the paper's hit-ratio metric presumes
// ("flushed data is moved to disk, and hence the answers are always
// accurate", §VI).
//
// Two implementations ship: SimDiskStore (an accounting disk for fast
// experiments) and FileDiskStore (real append-only segment files).

#ifndef KFLUSH_STORAGE_DISK_STORE_H_
#define KFLUSH_STORAGE_DISK_STORE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "index/posting_list.h"
#include "model/microblog.h"
#include "util/status.h"

namespace kflush {

/// Shared maintenance of a disk-side posting list, kept score-ASCENDING in
/// storage and read back-to-front at query time. Flushing registers
/// postings in roughly score order (temporal ranking scores grow with
/// arrival time), so the common case is an O(1) push_back — the
/// descending layout this replaced memmoved the whole list per insert.
/// Among equal scores the earliest registration sits at the highest index,
/// so a backward read serves equal scores in registration order (the
/// contract replayable-run tests pin). Returns false on a duplicate
/// (term, id) registration, which is skipped.
inline bool DiskPostingInsertAscending(std::vector<Posting>* list,
                                       MicroblogId id, double score) {
  auto lo = std::lower_bound(
      list->begin(), list->end(), score,
      [](const Posting& p, double s) { return p.score < s; });
  // Keep equal scores ordered by ascending id, so the descending read in
  // DiskPostingsTopN yields (score desc, id desc) — the same total order
  // the query engine's Materialize and the in-memory posting lists use;
  // a top-k truncation at either tier then picks identical winners.
  while (lo != list->end() && lo->score == score) {
    if (lo->id == id) return false;
    if (lo->id > id) break;
    ++lo;
  }
  list->insert(lo, Posting{id, score});
  return true;
}

/// Appends the `limit` best-ranked postings of an ascending list to `out`
/// (descending; equal scores by descending id, matching Materialize).
inline size_t DiskPostingsTopN(const std::vector<Posting>& list, size_t limit,
                               std::vector<Posting>* out) {
  const size_t n = std::min(limit, list.size());
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(list[list.size() - 1 - i]);
  return n;
}

/// Access counters; the experiments read hit/miss economics off these.
struct DiskStats {
  uint64_t postings_added = 0;
  uint64_t records_written = 0;
  uint64_t record_bytes_written = 0;
  uint64_t write_batches = 0;
  uint64_t term_queries = 0;
  uint64_t records_read = 0;
  /// Read-side byte traffic: record payload bytes returned by GetRecord
  /// and posting bytes returned by QueryTerm (disk-fallback query cost).
  uint64_t record_bytes_read = 0;
  uint64_t posting_bytes_read = 0;
  /// Records rebuilt into the catalog by restart recovery. Deliberately
  /// separate from records_written: recovery must not inflate the
  /// write-path counters the experiments measure.
  uint64_t records_recovered = 0;
  /// Bytes of torn tail (partial frame / failed checksum) dropped by
  /// recovery instead of surfacing Corruption.
  uint64_t torn_bytes_truncated = 0;
  /// fdatasync calls issued by the write path (0 at durability "none").
  uint64_t fsyncs = 0;

  std::string ToString() const;
};

/// Abstract disk storage + disk-side term index.
class DiskStore {
 public:
  virtual ~DiskStore() = default;

  /// Registers that `id` (with ranking `score`) now lives under `term` on
  /// disk. Idempotent per (term, id).
  virtual Status AddPosting(TermId term, MicroblogId id, double score) = 0;

  /// Persists record payloads (called by the flush buffer drain).
  virtual Status WriteBatch(std::vector<Microblog> batch) = 0;

  /// Appends up to `limit` best-ranked disk postings for `term` to `out`.
  virtual Status QueryTerm(TermId term, size_t limit,
                           std::vector<Posting>* out) = 0;

  /// Fetches a record payload written earlier. NotFound if the payload has
  /// not reached disk (e.g. the record is still memory-resident).
  virtual Status GetRecord(MicroblogId id, Microblog* out) = 0;

  /// True when `id`'s payload is disk-resident (GetRecord would succeed).
  /// Default implementation probes GetRecord; implementations override
  /// with a catalog lookup.
  virtual bool Contains(MicroblogId id) {
    Microblog scratch;
    return GetRecord(id, &scratch).ok();
  }

  /// Highest disk-posting score registered under `term`, or false when the
  /// term has no disk postings. Recovery uses this to re-partition replayed
  /// records so memory postings stay a score-prefix of memory ∪ disk.
  /// Default implementation asks QueryTerm for the top posting.
  virtual bool MaxTermScore(TermId term, double* score) {
    std::vector<Posting> top;
    if (!QueryTerm(term, 1, &top).ok() || top.empty()) return false;
    *score = top.front().score;
    return true;
  }

  virtual DiskStats stats() const = 0;

  virtual size_t NumRecords() const = 0;
  virtual size_t NumPostings() const = 0;
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_DISK_STORE_H_
