#include "storage/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/trace.h"
#include "storage/serde.h"
#include "util/clock.h"

namespace kflush {

namespace {

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Reads the whole file into `*out`. Missing file -> OK with exists=false.
Status ReadAll(const std::string& path, std::string* out, bool* exists) {
  *exists = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  *exists = true;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read " + path);
  }
  return Status::OK();
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, DurabilityLevel level,
                             size_t auto_commit_bytes, std::FILE* file)
    : path_(std::move(path)),
      level_(level),
      auto_commit_bytes_(auto_commit_bytes),
      file_(file) {}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) {
    // Best effort: push pending appends at least into the page cache.
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status WriteAheadLog::Open(const std::string& path, DurabilityLevel level,
                           size_t auto_commit_bytes,
                           std::unique_ptr<WriteAheadLog>* out) {
  struct ::stat st;
  const bool existed = ::stat(path.c_str(), &st) == 0;
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("open wal " + path + ": " + std::strerror(errno));
  }
  if (!existed) {
    // Make the newly created name itself durable.
    Status dir_status = SyncDir(DirOf(path), level);
    if (!dir_status.ok()) {
      std::fclose(f);
      return dir_status;
    }
  }
  out->reset(new WriteAheadLog(path, level, auto_commit_bytes, f));
  return Status::OK();
}

Status WriteAheadLog::Append(const Microblog& blog,
                             const std::vector<TermId>& routed) {
  std::lock_guard<std::mutex> lock(mu_);
  scratch_.clear();
  EncodeWalEntry(blog, routed, &scratch_);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + scratch_.size());
  AppendFrame(scratch_.data(), scratch_.size(), &frame);

  CrashPoint("wal.append");
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("wal append " + path_ + ": " +
                           std::strerror(errno));
  }
  CrashPoint("wal.appended");
  stats_.records_appended += 1;
  stats_.bytes_appended += frame.size();
  pending_bytes_ += frame.size();

  if (level_ == DurabilityLevel::kEveryCommit ||
      (auto_commit_bytes_ > 0 && pending_bytes_ >= auto_commit_bytes_)) {
    return CommitLocked();
  }
  return Status::OK();
}

Status WriteAheadLog::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked();
}

Status WriteAheadLog::CommitLocked() {
  if (pending_bytes_ == 0) return Status::OK();
  // One span per group commit — the fsync wait an ingest request's
  // commit stage is usually made of (disabled cost: one branch).
  TraceSpan span("wal", "commit",
                 {TraceArg::Uint("pending_bytes", pending_bytes_)});
  CrashPoint("wal.commit");
  if (std::fflush(file_) != 0) {
    return Status::IOError("wal flush " + path_ + ": " +
                           std::strerror(errno));
  }
  if (level_ != DurabilityLevel::kNone) {
    const Timestamp start = MonotonicMicros();
    KFLUSH_RETURN_IF_ERROR(SyncFile(file_, level_, path_));
    stats_.fsyncs += 1;
    stats_.fsync_micros.Record(MonotonicMicros() - start);
  }
  CrashPoint("wal.committed");
  pending_bytes_ = 0;
  stats_.commits += 1;
  return Status::OK();
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<Status(Microblog&&, std::vector<TermId>&&)>& fn,
    ReplayResult* result) {
  *result = ReplayResult();
  std::string data;
  bool exists = false;
  KFLUSH_RETURN_IF_ERROR(ReadAll(path, &data, &exists));
  if (!exists) return Status::OK();

  size_t offset = 0;
  while (offset < data.size()) {
    const char* payload = nullptr;
    uint32_t payload_len = 0;
    size_t consumed = 0;
    if (ReadFrame(data.data() + offset, data.size() - offset, &payload,
                  &payload_len, &consumed) != FrameRead::kOk) {
      break;  // torn tail starts here
    }
    Microblog blog;
    std::vector<TermId> routed;
    if (!DecodeWalEntry(payload, payload_len, &blog, &routed).ok()) {
      // Checksum passed but the entry doesn't decode: treat as torn
      // rather than corrupt — the log ends at the last good entry.
      break;
    }
    offset += consumed;
    result->records_recovered += 1;
    KFLUSH_RETURN_IF_ERROR(fn(std::move(blog), std::move(routed)));
  }

  if (offset < data.size()) {
    result->torn_bytes_truncated = data.size() - offset;
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      return Status::IOError("truncate wal " + path + ": " +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

Status WriteAheadLog::Rewrite(
    const std::string& path, DurabilityLevel level,
    const std::vector<std::pair<Microblog, std::vector<TermId>>>& entries) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  std::string entry;
  std::string frame;
  Status status = Status::OK();
  for (const auto& e : entries) {
    entry.clear();
    frame.clear();
    EncodeWalEntry(e.first, e.second, &entry);
    AppendFrame(entry.data(), entry.size(), &frame);
    if (std::fwrite(frame.data(), 1, frame.size(), f) != frame.size()) {
      status = Status::IOError("write " + tmp + ": " + std::strerror(errno));
      break;
    }
  }
  if (status.ok() && std::fflush(f) != 0) {
    status = Status::IOError("flush " + tmp + ": " + std::strerror(errno));
  }
  if (status.ok()) status = SyncFile(f, level, tmp);
  std::fclose(f);
  if (!status.ok()) {
    ::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError("rename " + tmp + ": " + std::strerror(errno));
    ::remove(tmp.c_str());
    return status;
  }
  return SyncDir(DirOf(path), level);
}

}  // namespace kflush
