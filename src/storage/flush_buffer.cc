#include "storage/flush_buffer.h"

#include <algorithm>

namespace kflush {

FlushBuffer::FlushBuffer(MemoryTracker* tracker) : tracker_(tracker) {}

FlushBuffer::~FlushBuffer() {
  if (tracker_ != nullptr && bytes_ > 0) {
    tracker_->Release(MemoryComponent::kFlushBuffer, bytes_);
  }
}

void FlushBuffer::Add(Microblog blog) {
  const size_t record_bytes = blog.FootprintBytes();
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(blog));
  bytes_ += record_bytes;
  peak_bytes_ = std::max(peak_bytes_, bytes_);
  if (tracker_ != nullptr) {
    tracker_->Charge(MemoryComponent::kFlushBuffer, record_bytes);
  }
}

Status FlushBuffer::DrainTo(DiskStore* disk) {
  std::vector<Microblog> batch;
  size_t drained_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (records_.empty()) return Status::OK();
    batch.swap(records_);
    drained_bytes = bytes_;
    bytes_ = 0;
  }
  // The batch is copied, not moved: until WriteBatch acknowledges, these
  // records exist nowhere else (their memory-index postings are already
  // dropped), so a failed write must put them back rather than lose them.
  Status status = disk->WriteBatch(batch);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-queue ahead of anything added while the write was in flight so
    // the retry preserves the original flush order.
    records_.insert(records_.begin(),
                    std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
    bytes_ += drained_bytes;
    peak_bytes_ = std::max(peak_bytes_, bytes_);
    ++requeues_;
    return status;
  }
  // Only a durable batch releases its memory accounting.
  if (tracker_ != nullptr) {
    tracker_->Release(MemoryComponent::kFlushBuffer, drained_bytes);
  }
  return status;
}

size_t FlushBuffer::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

size_t FlushBuffer::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t FlushBuffer::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_bytes_;
}

size_t FlushBuffer::requeues() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requeues_;
}

}  // namespace kflush
