#include "storage/raw_store.h"

namespace kflush {

namespace {
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

RawDataStore::RawDataStore(MemoryTracker* tracker)
    : tracker_(tracker), shards_(kNumShards) {}

RawDataStore::~RawDataStore() {
  if (tracker_ != nullptr) {
    tracker_->Release(MemoryComponent::kRawStore,
                      bytes_.load(std::memory_order_relaxed));
  }
}

RawDataStore::Shard& RawDataStore::ShardFor(MicroblogId id) {
  return shards_[MixHash(id) % kNumShards];
}

const RawDataStore::Shard& RawDataStore::ShardFor(MicroblogId id) const {
  return shards_[MixHash(id) % kNumShards];
}

Status RawDataStore::Put(Microblog blog, uint32_t pcount) {
  const MicroblogId id = blog.id;
  const size_t bytes = RecordBytes(blog);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.records.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("microblog id already stored");
  }
  it->second.blog = std::move(blog);
  it->second.pcount = pcount;
  it->second.topk_count = 0;
  size_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (tracker_ != nullptr) tracker_->Charge(MemoryComponent::kRawStore, bytes);
  return Status::OK();
}

bool RawDataStore::Contains(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.records.count(id) > 0;
}

std::optional<Microblog> RawDataStore::Get(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return std::nullopt;
  return it->second.blog;
}

bool RawDataStore::With(
    MicroblogId id, const std::function<void(const Microblog&)>& fn) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return false;
  fn(it->second.blog);
  return true;
}

uint32_t RawDataStore::DecrementPcount(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return 0;
  if (it->second.pcount > 0) --it->second.pcount;
  return it->second.pcount;
}

uint32_t RawDataStore::Pcount(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  return it == shard.records.end() ? 0 : it->second.pcount;
}

void RawDataStore::IncrementTopK(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it != shard.records.end()) ++it->second.topk_count;
}

uint32_t RawDataStore::DecrementTopK(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return 0;
  if (it->second.topk_count > 0) --it->second.topk_count;
  return it->second.topk_count;
}

uint32_t RawDataStore::TopKCount(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  return it == shard.records.end() ? 0 : it->second.topk_count;
}

std::optional<Microblog> RawDataStore::Remove(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return std::nullopt;
  Microblog blog = std::move(it->second.blog);
  shard.records.erase(it);
  const size_t bytes = RecordBytes(blog);
  size_.fetch_sub(1, std::memory_order_relaxed);
  bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (tracker_ != nullptr) {
    tracker_->Release(MemoryComponent::kRawStore, bytes);
  }
  return blog;
}

void RawDataStore::ForEach(
    const std::function<void(const Microblog&, uint32_t, uint32_t)>& fn)
    const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, record] : shard.records) {
      fn(record.blog, record.pcount, record.topk_count);
    }
  }
}

size_t RawDataStore::size() const {
  return size_.load(std::memory_order_relaxed);
}

size_t RawDataStore::MemoryBytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

}  // namespace kflush
