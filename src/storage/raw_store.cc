#include "storage/raw_store.h"

#include <cstring>

namespace kflush {

namespace {

inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Blob layout: fixed header, then the keyword array (4-byte aligned by
// construction), then the raw text bytes. One allocation per record.
struct BlobHeader {
  MicroblogId id;
  Timestamp created_at;
  UserId user_id;
  double lat;
  double lon;
  uint32_t follower_count;
  uint32_t text_len;
  uint32_t kw_count;
  uint8_t has_location;
};
static_assert(sizeof(BlobHeader) % alignof(KeywordId) == 0,
              "keyword array must start aligned");

size_t EncodedBytes(const Microblog& blog) {
  return sizeof(BlobHeader) + blog.keywords.size() * sizeof(KeywordId) +
         blog.text.size();
}

void Encode(const Microblog& blog, uint8_t* dst) {
  BlobHeader h;
  h.id = blog.id;
  h.created_at = blog.created_at;
  h.user_id = blog.user_id;
  h.lat = blog.location.lat;
  h.lon = blog.location.lon;
  h.follower_count = blog.follower_count;
  h.text_len = static_cast<uint32_t>(blog.text.size());
  h.kw_count = static_cast<uint32_t>(blog.keywords.size());
  h.has_location = blog.has_location ? 1 : 0;
  std::memcpy(dst, &h, sizeof(h));
  uint8_t* p = dst + sizeof(h);
  if (!blog.keywords.empty()) {
    std::memcpy(p, blog.keywords.data(),
                blog.keywords.size() * sizeof(KeywordId));
    p += blog.keywords.size() * sizeof(KeywordId);
  }
  if (!blog.text.empty()) {
    std::memcpy(p, blog.text.data(), blog.text.size());
  }
}

void Decode(const uint8_t* blob, Microblog* out) {
  BlobHeader h;
  std::memcpy(&h, blob, sizeof(h));
  out->id = h.id;
  out->created_at = h.created_at;
  out->user_id = h.user_id;
  out->follower_count = h.follower_count;
  out->has_location = h.has_location != 0;
  out->location.lat = h.lat;
  out->location.lon = h.lon;
  const uint8_t* p = blob + sizeof(h);
  out->keywords.resize(h.kw_count);
  if (h.kw_count > 0) {
    std::memcpy(out->keywords.data(), p, h.kw_count * sizeof(KeywordId));
  }
  p += h.kw_count * sizeof(KeywordId);
  out->text.assign(reinterpret_cast<const char*>(p), h.text_len);
}

/// Scratch record for With/ForEach: its string/vector keep their capacity
/// across calls, so steady-state reads allocate nothing. Valid because the
/// callbacks must not reenter the store.
Microblog& ScratchBlog() {
  static thread_local Microblog scratch;
  return scratch;
}

}  // namespace

size_t RawDataStore::RecordBytesOf(const Record& rec) {
  // Mirrors RecordBytes()/Microblog::FootprintBytes() for an encoded
  // record: sizeof(Microblog) + text + keywords + fixed overhead.
  BlobHeader h;
  std::memcpy(&h, rec.blob, sizeof(h));
  return sizeof(Microblog) + h.text_len + h.kw_count * sizeof(KeywordId) +
         kBytesPerRecordOverhead;
}

RawDataStore::RawDataStore(MemoryTracker* tracker)
    : tracker_(tracker), shards_(kNumShards) {}

RawDataStore::~RawDataStore() {
  for (Shard& shard : shards_) {
    // No lock needed during destruction; free blobs so oversize ones (heap
    // fallback) do not leak. Pool chunks release with the pool.
    for (auto& [id, rec] : shard.records) {
      shard.pool.Free(rec.blob, rec.blob_bytes);
    }
  }
  if (tracker_ != nullptr) {
    tracker_->Release(MemoryComponent::kRawStore, MemoryBytes());
  }
}

RawDataStore::Shard& RawDataStore::ShardFor(MicroblogId id) {
  return shards_[MixHash(id) % kNumShards];
}

const RawDataStore::Shard& RawDataStore::ShardFor(MicroblogId id) const {
  return shards_[MixHash(id) % kNumShards];
}

Status RawDataStore::Put(const Microblog& blog, uint32_t pcount) {
  const MicroblogId id = blog.id;
  const size_t bytes = RecordBytes(blog);
  const size_t blob_bytes = EncodedBytes(blog);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.records.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("microblog id already stored");
  }
  Record& rec = it->second;
  rec.blob = static_cast<uint8_t*>(shard.pool.Alloc(blob_bytes));
  rec.blob_bytes = static_cast<uint32_t>(blob_bytes);
  Encode(blog, rec.blob);
  rec.pcount = pcount;
  rec.topk_count = 0;
  shard.count.Add(1);
  shard.bytes.Add(bytes);
  if (tracker_ != nullptr) tracker_->Charge(MemoryComponent::kRawStore, bytes);
  return Status::OK();
}

bool RawDataStore::Contains(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.records.count(id) > 0;
}

std::optional<Microblog> RawDataStore::Get(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return std::nullopt;
  Microblog blog;
  Decode(it->second.blob, &blog);
  return blog;
}

bool RawDataStore::With(
    MicroblogId id, const std::function<void(const Microblog&)>& fn) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return false;
  Microblog& scratch = ScratchBlog();
  Decode(it->second.blob, &scratch);
  fn(scratch);
  return true;
}

uint32_t RawDataStore::DecrementPcount(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return 0;
  if (it->second.pcount > 0) --it->second.pcount;
  return it->second.pcount;
}

uint32_t RawDataStore::Pcount(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  return it == shard.records.end() ? 0 : it->second.pcount;
}

void RawDataStore::IncrementTopK(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it != shard.records.end()) ++it->second.topk_count;
}

uint32_t RawDataStore::DecrementTopK(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return 0;
  if (it->second.topk_count > 0) --it->second.topk_count;
  return it->second.topk_count;
}

uint32_t RawDataStore::TopKCount(MicroblogId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  return it == shard.records.end() ? 0 : it->second.topk_count;
}

std::optional<Microblog> RawDataStore::Remove(MicroblogId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) return std::nullopt;
  Record& rec = it->second;
  Microblog blog;
  Decode(rec.blob, &blog);
  const size_t bytes = RecordBytesOf(rec);
  shard.pool.Free(rec.blob, rec.blob_bytes);
  shard.records.erase(it);
  shard.count.Sub(1);
  shard.bytes.Sub(bytes);
  if (tracker_ != nullptr) {
    tracker_->Release(MemoryComponent::kRawStore, bytes);
  }
  return blog;
}

void RawDataStore::ForEach(
    const std::function<void(const Microblog&, uint32_t, uint32_t)>& fn)
    const {
  Microblog& scratch = ScratchBlog();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, record] : shard.records) {
      Decode(record.blob, &scratch);
      fn(scratch, record.pcount, record.topk_count);
    }
  }
}

size_t RawDataStore::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.count.Get();
  return total;
}

size_t RawDataStore::MemoryBytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.bytes.Get();
  return total;
}

size_t RawDataStore::PoolFootprintBytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.pool.FootprintBytes();
  }
  return total;
}

}  // namespace kflush
