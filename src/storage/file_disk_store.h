// Real file-backed disk tier: record payloads append to a data file; an
// in-memory catalog maps ids to file offsets and terms to disk postings
// (a production system would persist the catalog too; for the reproduction
// the interesting I/O is the record path). Batches append in one write,
// mirroring the paper's buffered-flush design.

#ifndef KFLUSH_STORAGE_FILE_DISK_STORE_H_
#define KFLUSH_STORAGE_FILE_DISK_STORE_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/attribute.h"
#include "storage/disk_store.h"
#include "storage/durability.h"

namespace kflush {

/// Append-only single-file disk store. Thread-safe. Records carry no
/// per-record checksums — SegmentDiskStore (storage/segment.h) is the
/// durable tier; this store remains for single-file experiments and
/// keeps crash-safe open/recover semantics.
class FileDiskStore : public DiskStore {
 public:
  /// Creates the data file at `path`. Refuses (AlreadyExists) when a file
  /// is already there — opening a populated path must never truncate it;
  /// use OpenOrRecover to adopt existing data.
  static Result<std::unique_ptr<FileDiskStore>> Open(
      const std::string& path,
      DurabilityLevel level = DurabilityLevel::kNone);

  /// Opens an existing data file, rebuilding the record catalog by
  /// scanning it (crash recovery / restart). When `extractor` and
  /// `score_fn` are supplied, the term index is rebuilt too, so queries
  /// against recovered disk contents work immediately. A missing file is
  /// created empty. A torn final record (partial append at crash) is
  /// truncated away, not reported as Corruption; recovered records count
  /// into DiskStats::records_recovered, never records_written.
  static Result<std::unique_ptr<FileDiskStore>> OpenOrRecover(
      const std::string& path, const AttributeExtractor* extractor = nullptr,
      const std::function<double(const Microblog&)>& score_fn = nullptr,
      DurabilityLevel level = DurabilityLevel::kNone);

  ~FileDiskStore() override;

  FileDiskStore(const FileDiskStore&) = delete;
  FileDiskStore& operator=(const FileDiskStore&) = delete;

  Status AddPosting(TermId term, MicroblogId id, double score) override;
  Status WriteBatch(std::vector<Microblog> batch) override;
  Status QueryTerm(TermId term, size_t limit,
                   std::vector<Posting>* out) override;
  Status GetRecord(MicroblogId id, Microblog* out) override;

  bool Contains(MicroblogId id) override;
  bool MaxTermScore(TermId term, double* score) override;

  DiskStats stats() const override;
  size_t NumRecords() const override;
  size_t NumPostings() const override;

  const std::string& path() const { return path_; }

 private:
  FileDiskStore(std::string path, std::FILE* file, DurabilityLevel level);

  struct RecordLocation {
    uint64_t offset = 0;
    uint32_t length = 0;
  };

  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_;  // owned
  DurabilityLevel level_ = DurabilityLevel::kNone;
  uint64_t file_size_ = 0;
  std::unordered_map<MicroblogId, RecordLocation> locations_;
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  size_t num_postings_ = 0;
  DiskStats stats_;
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_FILE_DISK_STORE_H_
