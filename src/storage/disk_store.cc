#include "storage/disk_store.h"

#include <sstream>

namespace kflush {

std::string DiskStats::ToString() const {
  std::ostringstream os;
  os << "disk{postings=" << postings_added << " records=" << records_written
     << " bytes=" << record_bytes_written << " batches=" << write_batches
     << " term_queries=" << term_queries << " record_reads=" << records_read
     << " record_bytes_read=" << record_bytes_read
     << " posting_bytes_read=" << posting_bytes_read
     << " recovered=" << records_recovered
     << " torn_bytes=" << torn_bytes_truncated << " fsyncs=" << fsyncs
     << "}";
  return os.str();
}

}  // namespace kflush
