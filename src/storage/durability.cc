#include "storage/durability.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32c.h"

namespace kflush {

const char* DurabilityLevelName(DurabilityLevel level) {
  switch (level) {
    case DurabilityLevel::kNone:
      return "none";
    case DurabilityLevel::kBatch:
      return "batch";
    case DurabilityLevel::kEveryCommit:
      return "every-commit";
  }
  return "unknown";
}

bool ParseDurabilityLevel(const std::string& name, DurabilityLevel* out) {
  if (name == "none") {
    *out = DurabilityLevel::kNone;
  } else if (name == "batch") {
    *out = DurabilityLevel::kBatch;
  } else if (name == "commit" || name == "every-commit") {
    *out = DurabilityLevel::kEveryCommit;
  } else {
    return false;
  }
  return true;
}

void AppendFrame(const char* payload, size_t len, std::string* out) {
  const uint32_t masked = crc32c::Mask(crc32c::Value(payload, len));
  const uint32_t payload_len = static_cast<uint32_t>(len);
  out->append(reinterpret_cast<const char*>(&masked), sizeof(masked));
  out->append(reinterpret_cast<const char*>(&payload_len),
              sizeof(payload_len));
  out->append(payload, len);
}

FrameRead ReadFrame(const char* data, size_t len, const char** payload,
                    uint32_t* payload_len, size_t* consumed) {
  if (len < kFrameHeaderBytes) return FrameRead::kTorn;
  uint32_t masked = 0;
  uint32_t plen = 0;
  std::memcpy(&masked, data, sizeof(masked));
  std::memcpy(&plen, data + sizeof(masked), sizeof(plen));
  if (plen > kMaxFramePayloadBytes) return FrameRead::kTorn;
  if (len - kFrameHeaderBytes < plen) return FrameRead::kTorn;
  const char* body = data + kFrameHeaderBytes;
  if (crc32c::Unmask(masked) != crc32c::Value(body, plen)) {
    return FrameRead::kTorn;
  }
  *payload = body;
  *payload_len = plen;
  *consumed = kFrameHeaderBytes + plen;
  return FrameRead::kOk;
}

Status SyncFile(std::FILE* file, DurabilityLevel level,
                const std::string& path) {
  if (level == DurabilityLevel::kNone) return Status::OK();
  const int fd = ::fileno(file);
  if (fd < 0) {
    return Status::IOError("fileno failed for " + path);
  }
  if (::fdatasync(fd) != 0) {
    return Status::IOError("fdatasync " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir, DurabilityLevel level) {
  if (level == DurabilityLevel::kNone) return Status::OK();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir " + dir + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  // mkdir -p: create each path component in turn.
  std::string partial;
  partial.reserve(dir.size());
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) partial.push_back('/');
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir " + partial + ": " +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

namespace internal {
std::atomic<CrashHookFn> g_crash_hook{nullptr};
}  // namespace internal

void SetCrashHook(CrashHookFn hook) {
  internal::g_crash_hook.store(hook, std::memory_order_relaxed);
}

}  // namespace kflush
