// Accounting disk: keeps flushed data in ordinary memory (it *represents*
// disk contents, so it is not charged to the memory budget) and counts
// every access. Experiments use it because the evaluated metric is the
// memory hit ratio — what matters is that misses are detected and can be
// answered correctly, not that bytes physically hit a platter.

#ifndef KFLUSH_STORAGE_SIM_DISK_STORE_H_
#define KFLUSH_STORAGE_SIM_DISK_STORE_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_store.h"

namespace kflush {

/// In-memory stand-in for the disk tier. Thread-safe.
class SimDiskStore : public DiskStore {
 public:
  SimDiskStore() = default;

  Status AddPosting(TermId term, MicroblogId id, double score) override;
  Status WriteBatch(std::vector<Microblog> batch) override;
  Status QueryTerm(TermId term, size_t limit,
                   std::vector<Posting>* out) override;
  Status GetRecord(MicroblogId id, Microblog* out) override;

  bool Contains(MicroblogId id) override;
  bool MaxTermScore(TermId term, double* score) override;

  DiskStats stats() const override;
  size_t NumRecords() const override;
  size_t NumPostings() const override;

 private:
  mutable std::mutex mu_;
  /// term -> postings kept score-ascending (appended in arrival order,
  /// read back-to-front; see DiskPostingInsertAscending).
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  std::unordered_map<MicroblogId, Microblog> records_;
  size_t num_postings_ = 0;
  DiskStats stats_;
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_SIM_DISK_STORE_H_
