// Checksummed, self-describing segment files: the durable replacement for
// FileDiskStore's bare append file (docs/INTERNALS.md, "Durability").
//
// Each flush batch seals exactly one segment file `seg-NNNNNN.kseg`:
//
//   header : "KFLUSHSG" magic (8 bytes) | u64 sequence number
//   frames : checksummed frames (storage/durability.h), payload =
//              0x01 | <EncodeMicroblog record>   (record frame)
//              0x02 | u64 record_count           (footer frame, last)
//
// The footer seals the segment; a segment without one is torn (the
// process died mid-flush). Recovery salvages a torn segment frame by
// frame — every record frame that checksums is kept, the tail is
// truncated, and the segment is resealed with a fresh footer — so a
// crash costs at most the unsynced suffix of one batch, never the file.
//
// The record catalog (id -> segment/offset) and the term posting index
// live in memory and are rebuilt on OpenOrRecover by scanning segments;
// records the crash caught outside any segment are re-covered by the WAL
// (storage/wal.h).

#ifndef KFLUSH_STORAGE_SEGMENT_H_
#define KFLUSH_STORAGE_SEGMENT_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/attribute.h"
#include "storage/disk_store.h"
#include "storage/durability.h"

namespace kflush {

/// One segment file per flush batch, under one directory per store (per
/// shard in the sharded deployment). Thread-safe.
class SegmentDiskStore : public DiskStore {
 public:
  /// Opens the segment directory (created if absent), rebuilding the
  /// record catalog from every segment and salvaging a torn final
  /// segment. When `extractor` and `score_fn` are supplied the term
  /// index is rebuilt too (both are deterministic, so recovered postings
  /// rank exactly as the pre-crash ones did).
  static Result<std::unique_ptr<SegmentDiskStore>> OpenOrRecover(
      const std::string& dir, DurabilityLevel level,
      const AttributeExtractor* extractor = nullptr,
      const std::function<double(const Microblog&)>& score_fn = nullptr);

  ~SegmentDiskStore() override;

  SegmentDiskStore(const SegmentDiskStore&) = delete;
  SegmentDiskStore& operator=(const SegmentDiskStore&) = delete;

  Status AddPosting(TermId term, MicroblogId id, double score) override;
  /// Seals one new segment holding `batch`, fsynced per the durability
  /// level before the catalog is updated (so an acked write is durable).
  Status WriteBatch(std::vector<Microblog> batch) override;
  Status QueryTerm(TermId term, size_t limit,
                   std::vector<Posting>* out) override;
  Status GetRecord(MicroblogId id, Microblog* out) override;

  bool Contains(MicroblogId id) override;
  bool MaxTermScore(TermId term, double* score) override;

  DiskStats stats() const override;
  size_t NumRecords() const override;
  size_t NumPostings() const override;

  const std::string& dir() const { return dir_; }
  size_t NumSegments() const;
  /// Highest record id in any segment (0 when empty); restart id
  /// allocation resumes past max(this, WAL max).
  MicroblogId MaxRecordId() const;

 private:
  SegmentDiskStore(std::string dir, DurabilityLevel level);

  struct Segment {
    std::string path;
    std::FILE* file = nullptr;  // owned read handle
    uint64_t seq = 0;
  };
  struct RecordLocation {
    uint32_t segment = 0;  // index into segments_
    uint64_t offset = 0;   // of the encoded record within the file
    uint32_t length = 0;
  };

  /// Loads one existing segment file: salvages + reseals if torn,
  /// registers its records, opens the read handle. Caller holds no lock
  /// (recovery only).
  Status LoadSegment(const std::string& path, uint64_t seq,
                     const AttributeExtractor* extractor,
                     const std::function<double(const Microblog&)>& score_fn);

  const std::string dir_;
  const DurabilityLevel level_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;
  uint64_t next_seq_ = 1;
  MicroblogId max_record_id_ = 0;
  std::unordered_map<MicroblogId, RecordLocation> locations_;
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  size_t num_postings_ = 0;
  DiskStats stats_;
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_SEGMENT_H_
