#include "storage/segment.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstring>

#include "core/trace.h"
#include "storage/serde.h"

namespace kflush {

namespace {

constexpr char kSegmentMagic[8] = {'K', 'F', 'L', 'U', 'S', 'H', 'S', 'G'};
constexpr size_t kSegmentHeaderBytes = 16;  // magic + u64 seq

constexpr uint8_t kRecordFrame = 0x01;
constexpr uint8_t kFooterFrame = 0x02;

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06" PRIu64 ".kseg", seq);
  return dir + "/" + name;
}

void AppendSegmentHeader(uint64_t seq, std::string* out) {
  out->append(kSegmentMagic, sizeof(kSegmentMagic));
  out->append(reinterpret_cast<const char*>(&seq), sizeof(seq));
}

void AppendFooterFrame(uint64_t record_count, std::string* out) {
  char payload[1 + sizeof(uint64_t)];
  payload[0] = static_cast<char>(kFooterFrame);
  std::memcpy(payload + 1, &record_count, sizeof(record_count));
  AppendFrame(payload, sizeof(payload), out);
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read " + path);
  return Status::OK();
}

}  // namespace

SegmentDiskStore::SegmentDiskStore(std::string dir, DurabilityLevel level)
    : dir_(std::move(dir)), level_(level) {}

SegmentDiskStore::~SegmentDiskStore() {
  for (Segment& seg : segments_) {
    if (seg.file != nullptr) std::fclose(seg.file);
  }
}

Result<std::unique_ptr<SegmentDiskStore>> SegmentDiskStore::OpenOrRecover(
    const std::string& dir, DurabilityLevel level,
    const AttributeExtractor* extractor,
    const std::function<double(const Microblog&)>& score_fn) {
  KFLUSH_RETURN_IF_ERROR(EnsureDir(dir));
  auto store =
      std::unique_ptr<SegmentDiskStore>(new SegmentDiskStore(dir, level));

  // Collect seg-*.kseg names; load in sequence order so registration
  // order (and hence equal-score posting order) is replay-stable.
  std::vector<std::pair<uint64_t, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir " + dir + ": " + std::strerror(errno));
  }
  while (struct dirent* ent = ::readdir(d)) {
    uint64_t seq = 0;
    if (std::sscanf(ent->d_name, "seg-%" SCNu64 ".kseg", &seq) == 1) {
      found.emplace_back(seq, dir + "/" + ent->d_name);
    }
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());

  for (const auto& [seq, path] : found) {
    KFLUSH_RETURN_IF_ERROR(
        store->LoadSegment(path, seq, extractor, score_fn));
    store->next_seq_ = std::max(store->next_seq_, seq + 1);
  }
  return store;
}

Status SegmentDiskStore::LoadSegment(
    const std::string& path, uint64_t seq,
    const AttributeExtractor* extractor,
    const std::function<double(const Microblog&)>& score_fn) {
  TraceSpan span("disk", "recover_segment", {TraceArg::Uint("seq", seq)});
  std::string data;
  KFLUSH_RETURN_IF_ERROR(ReadWholeFile(path, &data));

  // A file too short for the header (or with a foreign magic) carries no
  // salvageable frames — the crash caught segment creation before any
  // content was flushed. Drop the whole file.
  const bool header_ok =
      data.size() >= kSegmentHeaderBytes &&
      std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0;
  if (!header_ok) {
    stats_.torn_bytes_truncated += data.size();
    if (::remove(path.c_str()) != 0) {
      return Status::IOError("remove torn segment " + path + ": " +
                             std::strerror(errno));
    }
    return SyncDir(dir_, level_);
  }

  struct PendingRecord {
    Microblog blog;
    uint64_t offset = 0;
    uint32_t length = 0;
  };
  std::vector<PendingRecord> records;
  size_t offset = kSegmentHeaderBytes;
  size_t valid_end = offset;  // end of the last valid record frame
  bool sealed = false;
  while (offset < data.size()) {
    const char* payload = nullptr;
    uint32_t payload_len = 0;
    size_t consumed = 0;
    if (ReadFrame(data.data() + offset, data.size() - offset, &payload,
                  &payload_len, &consumed) != FrameRead::kOk) {
      break;
    }
    if (payload_len >= 1 + sizeof(uint64_t) &&
        static_cast<uint8_t>(payload[0]) == kFooterFrame) {
      // Sealed. Anything after the footer is torn junk.
      sealed = offset + consumed == data.size();
      if (sealed) valid_end = data.size();
      break;
    }
    if (payload_len < 1 || static_cast<uint8_t>(payload[0]) != kRecordFrame) {
      break;  // unknown frame type: treat as torn tail
    }
    PendingRecord rec;
    size_t rec_consumed = 0;
    if (!DecodeMicroblog(payload + 1, payload_len - 1, &rec.blog,
                         &rec_consumed)
             .ok() ||
        rec_consumed != payload_len - 1) {
      break;  // checksummed but undecodable: torn tail
    }
    rec.offset = offset + kFrameHeaderBytes + 1;
    rec.length = payload_len - 1;
    records.push_back(std::move(rec));
    offset += consumed;
    valid_end = offset;
  }

  if (!sealed) {
    // Salvage: keep the valid record prefix, truncate the tail, reseal.
    stats_.torn_bytes_truncated += data.size() - valid_end;
    if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return Status::IOError("truncate torn segment " + path + ": " +
                             std::strerror(errno));
    }
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      return Status::IOError("reseal " + path + ": " + std::strerror(errno));
    }
    std::string footer;
    AppendFooterFrame(records.size(), &footer);
    Status status = Status::OK();
    if (std::fwrite(footer.data(), 1, footer.size(), f) != footer.size() ||
        std::fflush(f) != 0) {
      status = Status::IOError("reseal " + path + ": " +
                               std::strerror(errno));
    }
    if (status.ok()) status = SyncFile(f, level_, path);
    std::fclose(f);
    KFLUSH_RETURN_IF_ERROR(status);
  }

  std::FILE* read_handle = std::fopen(path.c_str(), "rb");
  if (read_handle == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  Segment seg;
  seg.path = path;
  seg.file = read_handle;
  seg.seq = seq;
  segments_.push_back(seg);
  const uint32_t seg_idx = static_cast<uint32_t>(segments_.size() - 1);

  std::vector<TermId> terms;
  for (PendingRecord& rec : records) {
    RecordLocation loc;
    loc.segment = seg_idx;
    loc.offset = rec.offset;
    loc.length = rec.length;
    locations_[rec.blog.id] = loc;
    max_record_id_ = std::max(max_record_id_, rec.blog.id);
    ++stats_.records_recovered;
    if (extractor != nullptr && score_fn != nullptr) {
      const double score = score_fn(rec.blog);
      extractor->ExtractTerms(rec.blog, &terms);
      for (TermId term : terms) {
        KFLUSH_RETURN_IF_ERROR(AddPosting(term, rec.blog.id, score));
      }
    }
  }
  return Status::OK();
}

Status SegmentDiskStore::AddPosting(TermId term, MicroblogId id,
                                    double score) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!DiskPostingInsertAscending(&postings_[term], id, score)) {
    return Status::OK();
  }
  ++num_postings_;
  ++stats_.postings_added;
  return Status::OK();
}

Status SegmentDiskStore::WriteBatch(std::vector<Microblog> batch) {
  if (batch.empty()) return Status::OK();
  TraceSpan span("disk", "write_segment",
                 {TraceArg::Uint("records", batch.size())});

  // Encode the whole segment image up front; the lock covers only the
  // sequence allocation and catalog update.
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  lock.unlock();

  std::string image;
  AppendSegmentHeader(seq, &image);
  std::vector<std::pair<MicroblogId, RecordLocation>> locations;
  locations.reserve(batch.size());
  std::string record;
  uint64_t record_bytes = 0;
  for (const Microblog& blog : batch) {
    record.clear();
    record.push_back(static_cast<char>(kRecordFrame));
    EncodeMicroblog(blog, &record);
    RecordLocation loc;
    loc.offset = image.size() + kFrameHeaderBytes + 1;
    loc.length = static_cast<uint32_t>(record.size() - 1);
    locations.emplace_back(blog.id, loc);
    record_bytes += loc.length;
    AppendFrame(record.data(), record.size(), &image);
  }
  const size_t body_end = image.size();
  AppendFooterFrame(batch.size(), &image);

  const std::string path = SegmentPath(dir_, seq);
  CrashPoint("segment.create");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("create segment " + path + ": " +
                           std::strerror(errno));
  }
  Status status = Status::OK();
  // Body and footer flushed separately so a crash between them leaves the
  // torn-but-salvageable shape recovery is built for.
  if (std::fwrite(image.data(), 1, body_end, f) != body_end ||
      std::fflush(f) != 0) {
    status = Status::IOError("write segment " + path + ": " +
                             std::strerror(errno));
  }
  CrashPoint("segment.body");
  if (status.ok() &&
      (std::fwrite(image.data() + body_end, 1, image.size() - body_end, f) !=
           image.size() - body_end ||
       std::fflush(f) != 0)) {
    status = Status::IOError("seal segment " + path + ": " +
                             std::strerror(errno));
  }
  uint64_t fsync_count = 0;
  if (status.ok() && level_ != DurabilityLevel::kNone) {
    status = SyncFile(f, level_, path);
    fsync_count = 1;
  }
  std::fclose(f);
  if (status.ok()) status = SyncDir(dir_, level_);
  if (!status.ok()) {
    // The batch is not durable: drop the partial file so recovery (and a
    // retried batch under a fresh sequence) never sees it.
    ::remove(path.c_str());
    return status;
  }
  CrashPoint("segment.durable");

  std::FILE* read_handle = std::fopen(path.c_str(), "rb");
  if (read_handle == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }

  lock.lock();
  Segment seg;
  seg.path = path;
  seg.file = read_handle;
  seg.seq = seq;
  segments_.push_back(seg);
  const uint32_t seg_idx = static_cast<uint32_t>(segments_.size() - 1);
  for (auto& [id, loc] : locations) {
    loc.segment = seg_idx;
    locations_[id] = loc;
    max_record_id_ = std::max(max_record_id_, id);
    ++stats_.records_written;
  }
  stats_.record_bytes_written += record_bytes;
  ++stats_.write_batches;
  stats_.fsyncs += fsync_count;
  return Status::OK();
}

Status SegmentDiskStore::QueryTerm(TermId term, size_t limit,
                                   std::vector<Posting>* out) {
  TraceSpan span("disk", "query_term", {TraceArg::Uint("term", term)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.term_queries;
  auto it = postings_.find(term);
  if (it == postings_.end()) return Status::OK();
  const size_t n = DiskPostingsTopN(it->second, limit, out);
  stats_.posting_bytes_read += n * sizeof(Posting);
  return Status::OK();
}

Status SegmentDiskStore::GetRecord(MicroblogId id, Microblog* out) {
  TraceSpan span("disk", "get_record", {TraceArg::Uint("id", id)});
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.records_read;
  auto it = locations_.find(id);
  if (it == locations_.end()) {
    return Status::NotFound("record not on disk");
  }
  const RecordLocation& loc = it->second;
  std::FILE* f = segments_[loc.segment].file;
  std::string buf(loc.length, '\0');
  if (std::fseek(f, static_cast<long>(loc.offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " +
                           std::string(std::strerror(errno)));
  }
  if (std::fread(buf.data(), 1, loc.length, f) != loc.length) {
    return Status::IOError("short read from " + segments_[loc.segment].path);
  }
  size_t consumed = 0;
  KFLUSH_RETURN_IF_ERROR(
      DecodeMicroblog(buf.data(), buf.size(), out, &consumed));
  if (consumed != loc.length) {
    return Status::Corruption("record length mismatch");
  }
  stats_.record_bytes_read += loc.length;
  return Status::OK();
}

bool SegmentDiskStore::Contains(MicroblogId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return locations_.count(id) != 0;
}

bool SegmentDiskStore::MaxTermScore(TermId term, double* score) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = postings_.find(term);
  if (it == postings_.end() || it->second.empty()) return false;
  *score = it->second.back().score;  // ascending storage: back is max
  return true;
}

DiskStats SegmentDiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SegmentDiskStore::NumRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return locations_.size();
}

size_t SegmentDiskStore::NumPostings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_postings_;
}

size_t SegmentDiskStore::NumSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

MicroblogId SegmentDiskStore::MaxRecordId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_record_id_;
}

}  // namespace kflush
