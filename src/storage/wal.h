// Group-commit write-ahead log for the ingest path (docs/INTERNALS.md,
// "Durability"). Every accepted record is appended as one checksummed
// frame (storage/durability.h) wrapping a WAL entry (storage/serde.h)
// before it becomes visible in memory; Commit() is the group-commit
// barrier that makes everything appended so far durable in one
// fflush + fdatasync. Recovery replays the valid frame prefix and
// truncates a torn tail in place instead of failing.
//
// One WAL per store (per shard in the sharded deployment). Appends are
// serialized by the digestion thread that owns the store, but stats are
// read from other threads, so the log is internally locked.

#ifndef KFLUSH_STORAGE_WAL_H_
#define KFLUSH_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "model/microblog.h"
#include "storage/durability.h"
#include "util/histogram.h"
#include "util/status.h"

namespace kflush {

class WriteAheadLog {
 public:
  struct Stats {
    uint64_t records_appended = 0;
    uint64_t bytes_appended = 0;
    /// Group commits (explicit Commit() calls plus auto-commits when the
    /// pending-byte valve trips).
    uint64_t commits = 0;
    /// Actual fdatasync calls (0 at DurabilityLevel::kNone).
    uint64_t fsyncs = 0;
    Histogram fsync_micros;
  };

  /// Totals for one Replay() pass.
  struct ReplayResult {
    uint64_t records_recovered = 0;
    uint64_t torn_bytes_truncated = 0;
  };

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Opens `path` for appending, creating it (and syncing its directory
  /// entry) if absent. Existing contents are preserved — run Replay()
  /// first to consume and repair them.
  static Status Open(const std::string& path, DurabilityLevel level,
                     size_t auto_commit_bytes,
                     std::unique_ptr<WriteAheadLog>* out);

  /// Appends one entry. At kEveryCommit the entry is synced before the
  /// call returns; at kBatch it is buffered until Commit() or until
  /// `auto_commit_bytes` of entries are pending (the valve keeps the
  /// unsynced window bounded on ingest paths that never commit).
  Status Append(const Microblog& blog, const std::vector<TermId>& routed);

  /// Group-commit barrier: all previously appended entries are durable
  /// (per the level) when this returns OK. Cheap no-op when nothing is
  /// pending.
  Status Commit();

  const std::string& path() const { return path_; }
  Stats stats() const;

  /// Replays every valid entry of the log at `path` in append order. A
  /// missing file is an empty log. A torn tail (partial frame, bad
  /// checksum, undecodable entry) ends the replay and is truncated in
  /// place so a later Open() appends after the last valid entry. The
  /// callback aborting with an error aborts the replay with that error.
  static Status Replay(
      const std::string& path,
      const std::function<Status(Microblog&&, std::vector<TermId>&&)>& fn,
      ReplayResult* result);

  /// Atomically replaces the log with just `entries` via temp file +
  /// rename + directory fsync (recovery compaction: entries whose
  /// payloads became segment-durable are dropped). Must not race an open
  /// log on the same path.
  static Status Rewrite(
      const std::string& path, DurabilityLevel level,
      const std::vector<std::pair<Microblog, std::vector<TermId>>>& entries);

 private:
  WriteAheadLog(std::string path, DurabilityLevel level,
                size_t auto_commit_bytes, std::FILE* file);

  /// Flush+sync pending bytes. Caller holds mu_.
  Status CommitLocked();

  const std::string path_;
  const DurabilityLevel level_;
  const size_t auto_commit_bytes_;

  mutable std::mutex mu_;
  std::FILE* file_;           // owned; append-positioned
  size_t pending_bytes_ = 0;  // appended since the last commit
  Stats stats_;
  std::string scratch_;  // encode buffer, reused across appends
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_WAL_H_
