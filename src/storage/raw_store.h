// The in-memory raw data store (paper Figure 3): the container of complete
// microblog records, keyed by id. Index entries hold ids that point here.
// Each record carries its reference count `pcount` — the number of index
// entries still referencing it (paper §III-A) — and, for the kFlushing-MK
// extension, the number of entries in which it currently ranks within
// top-k. A record leaves memory exactly when pcount reaches zero.
//
// Records live as flat blobs: the fixed fields, keyword array, and text of
// a Microblog are encoded into one contiguous allocation from the owning
// shard's SlabPool (util/arena.h), so storing a record costs a single pool
// Alloc + memcpy instead of the std::string/std::vector heap round-trips a
// Microblog copy pays, and eviction returns the blob to the pool for the
// next arrival. Readers materialize a Microblog view on demand (With/
// ForEach reuse a scratch record, so steady-state reads allocate nothing).
//
// Byte accounting is logical (RecordBytes of the content, as before) and
// per-shard: counters are plain relaxed atomics written only under the
// shard lock — single-writer, so no RMW contention — and aggregated on
// read.

#ifndef KFLUSH_STORAGE_RAW_STORE_H_
#define KFLUSH_STORAGE_RAW_STORE_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "model/microblog.h"
#include "util/arena.h"
#include "util/memory_tracker.h"
#include "util/relaxed_counter.h"
#include "util/status.h"

namespace kflush {

/// Sharded id -> record map with byte accounting. Thread-safe.
class RawDataStore {
 public:
  /// Fixed per-record bookkeeping bytes (hash node, refcounts) charged on
  /// top of Microblog::FootprintBytes().
  static constexpr size_t kBytesPerRecordOverhead = 48;

  /// `tracker` may be null; when set, record bytes are charged to
  /// MemoryComponent::kRawStore.
  explicit RawDataStore(MemoryTracker* tracker = nullptr);
  ~RawDataStore();

  RawDataStore(const RawDataStore&) = delete;
  RawDataStore& operator=(const RawDataStore&) = delete;

  /// Stores `blog` with an initial reference count. Fails with
  /// AlreadyExists if the id is present.
  Status Put(const Microblog& blog, uint32_t pcount);

  bool Contains(MicroblogId id) const;

  /// Copies the record out (safe to use without holding locks).
  std::optional<Microblog> Get(MicroblogId id) const;

  /// Runs `fn` on the record under the shard lock, avoiding heap work. The
  /// reference is to a thread-local scratch record valid only during the
  /// call. Returns false if absent. `fn` must not reenter the store.
  bool With(MicroblogId id, const std::function<void(const Microblog&)>& fn) const;

  /// Decrements the reference count; returns the remaining count.
  /// The record itself stays until Remove(). Returns 0 also when absent.
  uint32_t DecrementPcount(MicroblogId id);

  uint32_t Pcount(MicroblogId id) const;

  /// Top-k reference count maintenance (kFlushing-MK bookkeeping).
  void IncrementTopK(MicroblogId id);
  uint32_t DecrementTopK(MicroblogId id);
  uint32_t TopKCount(MicroblogId id) const;

  /// Removes and returns the record, releasing its bytes. nullopt if
  /// absent.
  std::optional<Microblog> Remove(MicroblogId id);

  /// Visits every record under its shard lock (shards visited one at a
  /// time). The reference is to a scratch record valid only during the
  /// callback. `fn` must not reenter the store.
  void ForEach(const std::function<void(const Microblog&, uint32_t /*pcount*/,
                                        uint32_t /*topk_count*/)>& fn) const;

  size_t size() const;
  size_t MemoryBytes() const;

  /// Bytes held from the OS by the record pools (slab footprint; the
  /// physical-overhead view next to the logical MemoryBytes accounting).
  size_t PoolFootprintBytes() const;

  /// Bytes a record of this shape accounts for.
  static size_t RecordBytes(const Microblog& blog) {
    return blog.FootprintBytes() + kBytesPerRecordOverhead;
  }

 private:
  struct Record {
    uint8_t* blob = nullptr;
    uint32_t blob_bytes = 0;
    uint32_t pcount = 0;
    uint32_t topk_count = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    // Declared before `records` so it is destroyed after them: blobs never
    // outlive their pool.
    SlabPool pool;
    std::unordered_map<MicroblogId, Record> records;
    // Written only under `mu` (single writer at a time), read lock-free by
    // the aggregating getters.
    ShardCounter count;
    ShardCounter bytes;
  };

  static constexpr size_t kNumShards = 64;

  Shard& ShardFor(MicroblogId id);
  const Shard& ShardFor(MicroblogId id) const;

  /// Logical accounting bytes of the record encoded in `rec`.
  static size_t RecordBytesOf(const Record& rec);

  MemoryTracker* tracker_;
  std::vector<Shard> shards_;
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_RAW_STORE_H_
