// Binary (de)serialization of microblog records: the on-disk segment record
// format used by FileDiskStore and the trace file format used by gen/trace.
//
// Record layout (little-endian):
//   u32 payload_len (bytes after this field)
//   u64 id | u64 created_at | u64 user_id | u32 follower_count
//   u8  flags (bit 0: has_location)
//   f64 lat | f64 lon          (present only when has_location)
//   u16 num_keywords | u32 keyword_id ×n
//   u32 text_len | text bytes

#ifndef KFLUSH_STORAGE_SERDE_H_
#define KFLUSH_STORAGE_SERDE_H_

#include <string>
#include <vector>

#include "model/microblog.h"
#include "util/status.h"

namespace kflush {

/// Appends the encoded record to `*out`.
void EncodeMicroblog(const Microblog& blog, std::string* out);

/// Decodes one record starting at `data`; on success sets `*consumed` to
/// the total encoded length. Returns Corruption on malformed input.
Status DecodeMicroblog(const char* data, size_t len, Microblog* out,
                       size_t* consumed);

// WAL entry payload: the record plus the term subset it was indexed
// under. An empty subset means "this store owns the full term set —
// re-extract on replay"; a non-empty subset is a sharded routed insert
// (the shard must not re-index terms other shards own).
//
//   u16 num_routed | u64 term ×n | <EncodeMicroblog record>

/// Appends the encoded WAL entry to `*out`.
void EncodeWalEntry(const Microblog& blog, const std::vector<TermId>& routed,
                    std::string* out);

/// Decodes one WAL entry occupying exactly `data[0..len)` (the WAL frame
/// layer delimits entries). Returns Corruption on malformed input.
Status DecodeWalEntry(const char* data, size_t len, Microblog* out,
                      std::vector<TermId>* routed);

}  // namespace kflush

#endif  // KFLUSH_STORAGE_SERDE_H_
