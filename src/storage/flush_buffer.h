// Temporary main-memory buffer collecting flush victims before they are
// written to disk in one batch (paper §III-A: "All flushed data are
// collected in a temporary main-memory buffer before writing them to disk.
// This is mainly to reduce the number of I/O operations."). Its transient
// footprint is charged to MemoryComponent::kFlushBuffer, which is how the
// ~2 GB temporary-buffer overhead of Figure 10(a) is measured.

#ifndef KFLUSH_STORAGE_FLUSH_BUFFER_H_
#define KFLUSH_STORAGE_FLUSH_BUFFER_H_

#include <mutex>
#include <vector>

#include "model/microblog.h"
#include "storage/disk_store.h"
#include "util/memory_tracker.h"

namespace kflush {

/// Thread-safe victim accumulator. The flushing thread Adds records as
/// their pcount reaches zero, then Drains once per flush cycle.
class FlushBuffer {
 public:
  explicit FlushBuffer(MemoryTracker* tracker = nullptr);
  ~FlushBuffer();

  FlushBuffer(const FlushBuffer&) = delete;
  FlushBuffer& operator=(const FlushBuffer&) = delete;

  /// Takes ownership of a victim record.
  void Add(Microblog blog);

  /// Writes all buffered records to `disk` as one batch and empties the
  /// buffer. No-op (OK) when empty. On a failed write the batch is
  /// re-queued (ahead of records added meanwhile) and its memory charge
  /// retained — a flush failure must never silently drop records, since
  /// their memory-index postings are already gone.
  Status DrainTo(DiskStore* disk);

  size_t count() const;
  size_t bytes() const;

  /// Peak bytes ever held (reported as flushing overhead).
  size_t peak_bytes() const;

  /// Failed drains whose batch was put back for retry.
  size_t requeues() const;

 private:
  MemoryTracker* tracker_;
  mutable std::mutex mu_;
  std::vector<Microblog> records_;
  size_t bytes_ = 0;
  size_t peak_bytes_ = 0;
  size_t requeues_ = 0;
};

}  // namespace kflush

#endif  // KFLUSH_STORAGE_FLUSH_BUFFER_H_
