// Durability contract shared by the write-ahead log and the segment store
// (docs/INTERNALS.md, "Durability"). A level says when storage-layer
// writes are forced to stable media with fdatasync:
//
//   kNone        - never; data reaches the OS page cache only. Survives a
//                  process kill (the cache outlives the process) but not a
//                  power failure. The fastest level; for experiments.
//   kBatch       - once per group commit (WAL Commit(), one segment seal
//                  per flush batch). Acknowledged = covered by the last
//                  commit; the default.
//   kEveryCommit - after every WAL append and every segment seal.
//
// Also hosts the frame format both logs share and the crash-point hook the
// crash-recovery oracle uses to kill a child process at deterministic
// points inside the write paths.

#ifndef KFLUSH_STORAGE_DURABILITY_H_
#define KFLUSH_STORAGE_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace kflush {

enum class DurabilityLevel : int {
  kNone = 0,
  kBatch,
  kEveryCommit,
};

const char* DurabilityLevelName(DurabilityLevel level);

/// Parses "none" | "batch" | "commit"/"every-commit". Returns false on an
/// unknown name.
bool ParseDurabilityLevel(const std::string& name, DurabilityLevel* out);

/// Knobs for a durable store directory (one per store / per shard).
struct DurabilityOptions {
  /// Master switch: when false the store keeps its pre-durability
  /// behavior (SimDiskStore or caller-provided disk, no WAL).
  bool enabled = false;
  /// Directory holding `wal.log` and `segments/`. Created on demand.
  std::string dir;
  DurabilityLevel level = DurabilityLevel::kBatch;
  /// At kBatch, an append auto-commits once this many bytes are pending
  /// since the last commit (a safety valve under ingest paths that never
  /// call CommitDurable explicitly).
  size_t wal_auto_commit_bytes = 256 << 10;
};

// --- shared frame format ----------------------------------------------
//
// Every WAL entry and segment record is one frame:
//
//   u32 masked_crc32c(payload) | u32 payload_len | payload bytes
//
// A frame that runs past the end of the buffer, carries an implausible
// length, or fails its checksum marks the torn tail of a log.

constexpr size_t kFrameHeaderBytes = 8;
/// Sanity cap on a single frame payload (a microblog record is ~hundreds
/// of bytes; anything near this is corruption, not data).
constexpr uint32_t kMaxFramePayloadBytes = 64u << 20;

/// Appends one frame wrapping `payload[0..len)` to `*out`.
void AppendFrame(const char* payload, size_t len, std::string* out);

/// Outcome of reading one frame at data[0..len).
enum class FrameRead : int {
  kOk = 0,    // frame valid; *payload/*payload_len/*consumed set
  kTorn,      // buffer ends inside the frame, or the checksum fails —
              // the well-formed log ends here
};

FrameRead ReadFrame(const char* data, size_t len, const char** payload,
                    uint32_t* payload_len, size_t* consumed);

// --- low-level file helpers (POSIX) -----------------------------------

/// fdatasync the stdio stream's fd (after fflush). No-op success at
/// DurabilityLevel::kNone.
Status SyncFile(std::FILE* file, DurabilityLevel level,
                const std::string& path);

/// fsyncs the directory itself so a freshly created/renamed file's
/// directory entry is durable. No-op at kNone.
Status SyncDir(const std::string& dir, DurabilityLevel level);

/// mkdir -p. OK if the directory already exists.
Status EnsureDir(const std::string& dir);

// --- crash-point hook (tests only) ------------------------------------
//
// The crash-recovery oracle forks a child, installs a countdown hook, and
// the hook calls _exit() when the seeded countdown reaches zero —
// deterministically killing the process mid-append, mid-segment-write, or
// between fsyncs. Sites fire on the storage write paths only; the
// disabled fast path is one relaxed atomic load.

using CrashHookFn = void (*)(const char* site);

void SetCrashHook(CrashHookFn hook);

namespace internal {
extern std::atomic<CrashHookFn> g_crash_hook;
}  // namespace internal

inline void CrashPoint(const char* site) {
  CrashHookFn hook =
      internal::g_crash_hook.load(std::memory_order_relaxed);
  if (hook != nullptr) hook(site);
}

}  // namespace kflush

#endif  // KFLUSH_STORAGE_DURABILITY_H_
