// Query fan-out over a term-partitioned deployment. Every term's postings
// — in memory and on disk — live wholly on the shard ShardRouter assigns
// it, so:
//
//   single : the query goes to the one owning shard, unchanged.
//   OR     : terms group by owning shard; each shard answers the OR of
//            its group; the per-shard top-k lists k-way-merge under the
//            exact (score desc, id desc) order Materialize() uses.
//   AND    : evaluated here, over each term's full memory ∪ disk list
//            pulled from its owner — never delegated. The per-shard
//            engine's AND hit path ("a record trimmed from one entry but
//            resident through another still qualifies") inspects records
//            resident on *its* shard, which depends on how terms are
//            colocated; routing through it would make answers a function
//            of the shard count. The full-list intersection is exact for
//            every N, including N=1, so sharding stays invisible.
//
// The differential oracle (tests/integration/shard_oracle_test.cc) holds
// this layer to byte-identical answers against shards=1.

#ifndef KFLUSH_CORE_SHARDED_QUERY_ENGINE_H_
#define KFLUSH_CORE_SHARDED_QUERY_ENGINE_H_

#include <vector>

#include "core/query_engine.h"
#include "core/shard_router.h"

namespace kflush {

/// One shard as seen by the fan-out layer: its store (raw records, disk
/// tier, policy index) and a per-shard engine for delegated sub-queries.
struct ShardQueryTarget {
  MicroblogStore* store = nullptr;
  QueryEngine* engine = nullptr;
};

/// Fans queries out to owning shards and merges per-shard top-k answers.
/// Thread-safe, like the per-shard engines it delegates to. Keeps its own
/// QueryMetrics over top-level queries (sub-queries additionally land in
/// each shard's registry, so aggregated snapshots still carry the
/// query.* taxonomy).
class ShardedQueryEngine {
 public:
  explicit ShardedQueryEngine(std::vector<ShardQueryTarget> shards);

  Result<QueryResult> Execute(const TopKQuery& query);

  /// Spatial / user surfaces, mirroring QueryEngine's semantics (the
  /// SearchArea over-fetch loop runs here, above the fan-out).
  Result<QueryResult> SearchLocation(double lat, double lon, uint32_t k = 0);
  Result<QueryResult> SearchArea(double min_lat, double min_lon,
                                 double max_lat, double max_lon,
                                 uint32_t k = 0, size_t max_tiles = 256,
                                 bool force_disk = false);
  Result<QueryResult> SearchUser(UserId user, uint32_t k = 0);

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }

  QueryMetricsSnapshot metrics() const { return metrics_.Snapshot(); }
  void ResetMetrics() { metrics_.Reset(); }

 private:
  struct Scored {
    double score;
    MicroblogId id;
  };

  Result<QueryResult> ExecuteOrFanout(const std::vector<TermId>& terms,
                                      uint32_t k, bool force_disk);
  Result<QueryResult> ExecuteAndExact(const std::vector<TermId>& terms,
                                      uint32_t k);

  /// Sum of the involved shards' disk term-query counters (the delta
  /// around a query is the fan-out's disk-read cost; exact when queries
  /// don't race, advisory under concurrency).
  uint64_t DiskTermQueries() const;

  std::vector<ShardQueryTarget> shards_;
  ShardRouter router_;
  QueryMetrics metrics_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_SHARDED_QUERY_ENGINE_H_
