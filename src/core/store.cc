#include "core/store.h"

#include <algorithm>

#include "core/trace.h"
#include "storage/segment.h"
#include "sub/subscription_sink.h"
#include "storage/wal.h"
#include "util/logging.h"

namespace kflush {

MicroblogStore::MicroblogStore(StoreOptions options)
    : options_(options),
      tracker_(options.memory_budget_bytes),
      raw_store_(&tracker_),
      flush_buffer_(&tracker_) {
  clock_ = options_.clock != nullptr ? options_.clock : WallClock::Default();
  extractor_ = MakeAttribute(options_.attribute);
  ranking_ = MakeRanking(options_.ranking);
  if (options_.durability.enabled && options_.disk == nullptr) {
    // Durable tier: checksummed segments under <dir>/segments. Opening
    // recovers existing segments (catalog + postings rebuilt; a torn
    // final segment is salvaged and resealed).
    auto opened = SegmentDiskStore::OpenOrRecover(
        options_.durability.dir + "/segments", options_.durability.level,
        extractor_.get(),
        [this](const Microblog& blog) { return ranking_->Score(blog); });
    if (opened.ok()) {
      owned_segment_disk_ = std::move(opened).value();
      disk_ = owned_segment_disk_.get();
    } else {
      durability_status_ = opened.status();
      KFLUSH_WARN("durable tier unavailable, running non-durable: "
                  << durability_status_.ToString());
    }
  }
  if (disk_ == nullptr) {
    if (options_.disk != nullptr) {
      disk_ = options_.disk;
    } else {
      owned_disk_ = std::make_unique<SimDiskStore>();
      disk_ = owned_disk_.get();
    }
  }

  PolicyContext ctx;
  ctx.raw_store = &raw_store_;
  ctx.disk_store = disk_;
  ctx.flush_buffer = &flush_buffer_;
  ctx.tracker = &tracker_;
  ctx.clock = clock_;
  ctx.extractor = extractor_.get();
  ctx.shard_id = options_.shard_id;

  PolicyOptions popts;
  popts.k = options_.k;
  popts.fifo_segment_bytes = FlushBudgetBytes();
  popts.enable_phase2 = options_.enable_phase2;
  popts.enable_phase3 = options_.enable_phase3;
  popts.phase3_by_query_time = options_.phase3_by_query_time;
  policy_ = MakePolicy(options_.policy, ctx, popts);

  if (options_.durability.enabled && durability_status_.ok()) {
    durability_status_ = RecoverDurable();
    if (!durability_status_.ok()) {
      KFLUSH_WARN("recovery failed, running non-durable: "
                  << durability_status_.ToString());
      wal_.reset();
    }
  }

  metrics_.AddProvider(
      [this](MetricsSnapshot* snap) { ExportComponentMetrics(snap); });
}

Status MicroblogStore::RecoverDurable() {
  const std::string wal_path = options_.durability.dir + "/wal.log";
  TraceSpan span("store", "recover",
                 {TraceArg::Int("shard", options_.shard_id)});
  KFLUSH_RETURN_IF_ERROR(EnsureDir(options_.durability.dir));

  MicroblogId max_id = owned_segment_disk_ != nullptr
                           ? owned_segment_disk_->MaxRecordId()
                           : 0;
  // Entries whose only durable copy is (still) the WAL: kept by the
  // post-replay compaction.
  std::vector<std::pair<Microblog, std::vector<TermId>>> retained;
  // Replayed records every term of which is score-dominated by existing
  // disk postings. Re-inserting those into memory would break the
  // invariant the memory-hit path depends on — each term's memory
  // postings must outrank all its disk postings — so they go to disk
  // wholesale: they are exactly the flush batch the crash destroyed
  // between the posting drops and the segment seal.
  std::vector<Microblog> to_disk;
  std::vector<TermId> extracted;
  std::vector<TermId> memory_terms;
  std::vector<TermId> disk_terms;
  WriteAheadLog::ReplayResult replay;
  Status status = WriteAheadLog::Replay(
      wal_path,
      [&](Microblog&& blog, std::vector<TermId>&& routed) -> Status {
        max_id = std::max(max_id, blog.id);
        if (disk_->Contains(blog.id)) {
          // Payload already durable in a sealed segment; the segment scan
          // rebuilt its postings. Nothing left to restore.
          return Status::OK();
        }
        const double score = ranking_->Score(blog);
        const std::vector<TermId>* terms = &routed;
        if (routed.empty()) {
          // Entry from an unsharded store: it owns the full term set.
          extractor_->ExtractTerms(blog, &extracted);
          terms = &extracted;
        }
        if (terms->empty()) return Status::OK();
        memory_terms.clear();
        disk_terms.clear();
        for (TermId term : *terms) {
          double disk_max = 0.0;
          if (disk_->MaxTermScore(term, &disk_max) && score <= disk_max) {
            disk_terms.push_back(term);
          } else {
            memory_terms.push_back(term);
          }
        }
        for (TermId term : disk_terms) {
          KFLUSH_RETURN_IF_ERROR(disk_->AddPosting(term, blog.id, score));
        }
        if (memory_terms.empty()) {
          ++recovery_stats_.records_recovered_to_disk;
          to_disk.push_back(std::move(blog));
          return Status::OK();
        }
        KFLUSH_RETURN_IF_ERROR(raw_store_.Put(
            blog, static_cast<uint32_t>(memory_terms.size())));
        policy_->Insert(blog, memory_terms, score);
        ++recovery_stats_.records_reinserted_memory;
        retained.emplace_back(std::move(blog), std::move(routed));
        return Status::OK();
      },
      &replay);
  KFLUSH_RETURN_IF_ERROR(status);
  recovery_stats_.wal_records_recovered = replay.records_recovered;
  recovery_stats_.wal_torn_bytes_truncated = replay.torn_bytes_truncated;
  if (!to_disk.empty()) {
    KFLUSH_RETURN_IF_ERROR(disk_->WriteBatch(std::move(to_disk)));
  }
  if (replay.records_recovered > 0 || replay.torn_bytes_truncated > 0) {
    // Compaction drops entries made redundant by sealed segments (and the
    // recovery segment just written); what remains is exactly the
    // memory-resident set.
    KFLUSH_RETURN_IF_ERROR(WriteAheadLog::Rewrite(
        wal_path, options_.durability.level, retained));
  }
  recovery_stats_.wal_entries_retained = retained.size();
  KFLUSH_RETURN_IF_ERROR(WriteAheadLog::Open(
      wal_path, options_.durability.level,
      options_.durability.wal_auto_commit_bytes, &wal_));

  recovered_max_id_ = max_id;
  MicroblogId next = max_id + 1;
  MicroblogId cur = next_id_.load(std::memory_order_relaxed);
  if (next > cur) next_id_.store(next, std::memory_order_relaxed);
  span.End({TraceArg::Uint("wal_records", replay.records_recovered),
            TraceArg::Uint("reinserted_memory",
                           recovery_stats_.records_reinserted_memory),
            TraceArg::Uint("recovered_to_disk",
                           recovery_stats_.records_recovered_to_disk)});
  return Status::OK();
}

Status MicroblogStore::CommitDurable() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Commit();
}

void MicroblogStore::ExportComponentMetrics(MetricsSnapshot* snap) const {
  // Memory accounting (gauges: instantaneous levels).
  snap->gauges["memory.budget_bytes"] =
      static_cast<int64_t>(tracker_.budget());
  snap->gauges["memory.raw_store_bytes"] = static_cast<int64_t>(
      tracker_.ComponentUsed(MemoryComponent::kRawStore));
  snap->gauges["memory.index_bytes"] =
      static_cast<int64_t>(tracker_.ComponentUsed(MemoryComponent::kIndex));
  snap->gauges["memory.policy_overhead_bytes"] = static_cast<int64_t>(
      tracker_.ComponentUsed(MemoryComponent::kPolicyOverhead));
  snap->gauges["memory.flush_buffer_bytes"] = static_cast<int64_t>(
      tracker_.ComponentUsed(MemoryComponent::kFlushBuffer));
  snap->gauges["memory.data_used_bytes"] =
      static_cast<int64_t>(tracker_.DataUsed());
  snap->gauges["memory.total_used_bytes"] =
      static_cast<int64_t>(tracker_.used());

  // Ingest path.
  const IngestStats ingest = ingest_stats();
  snap->counters["ingest.inserted"] = ingest.inserted;
  snap->counters["ingest.skipped_no_terms"] = ingest.skipped_no_terms;
  snap->counters["ingest.flush_triggers"] = ingest.flush_triggers;

  // Flushing policy, including the per-phase breakdown.
  const PolicyStats ps = policy_->stats();
  snap->counters["flush.cycles"] = ps.flush_cycles;
  snap->counters["flush.records_flushed"] = ps.records_flushed;
  snap->counters["flush.record_bytes_flushed"] = ps.record_bytes_flushed;
  snap->counters["flush.postings_dropped"] = ps.postings_dropped;
  snap->histograms["flush.cycle_micros"] = ps.cycle_micros;
  snap->histograms["flush.cycle_cpu_micros"] = ps.cycle_cpu_micros;
  for (int i = 0; i < 3; ++i) {
    const PhaseStats& phase = ps.phases[i];
    const std::string prefix = "flush.phase" + std::to_string(i + 1) + ".";
    snap->counters[prefix + "runs"] = phase.runs;
    snap->counters[prefix + "candidates_scanned"] = phase.candidates_scanned;
    snap->counters[prefix + "heap_selected"] = phase.heap_selected;
    snap->counters[prefix + "postings"] = phase.postings;
    snap->counters[prefix + "entries"] = phase.entries;
    snap->counters[prefix + "records"] = phase.records;
    snap->counters[prefix + "record_bytes"] = phase.record_bytes;
    snap->counters[prefix + "bytes_freed"] = phase.bytes_freed;
    snap->counters[prefix + "micros"] = phase.micros;
  }
  snap->gauges["policy.aux_memory_bytes"] =
      static_cast<int64_t>(policy_->AuxMemoryBytes());
  snap->gauges["policy.num_entries"] =
      static_cast<int64_t>(policy_->NumTerms());

  // Disk tier.
  const DiskStats ds = disk_->stats();
  snap->counters["disk.postings_added"] = ds.postings_added;
  snap->counters["disk.records_written"] = ds.records_written;
  snap->counters["disk.record_bytes_written"] = ds.record_bytes_written;
  snap->counters["disk.write_batches"] = ds.write_batches;
  snap->counters["disk.term_queries"] = ds.term_queries;
  snap->counters["disk.records_read"] = ds.records_read;
  snap->counters["disk.record_bytes_read"] = ds.record_bytes_read;
  snap->counters["disk.posting_bytes_read"] = ds.posting_bytes_read;
  snap->counters["disk.records_recovered"] = ds.records_recovered;
  snap->counters["disk.torn_bytes_truncated"] = ds.torn_bytes_truncated;
  snap->counters["disk.fsyncs"] = ds.fsyncs;

  // Durable tier (present only when a WAL is attached).
  if (wal_ != nullptr) {
    const WriteAheadLog::Stats ws = wal_->stats();
    snap->counters["wal.records_appended"] = ws.records_appended;
    snap->counters["wal.bytes_appended"] = ws.bytes_appended;
    snap->counters["wal.commits"] = ws.commits;
    snap->counters["wal.fsyncs"] = ws.fsyncs;
    snap->histograms["wal.fsync_micros"] = ws.fsync_micros;
    snap->counters["wal.records_recovered"] =
        recovery_stats_.wal_records_recovered;
    snap->counters["wal.torn_bytes_truncated"] =
        recovery_stats_.wal_torn_bytes_truncated;
  }

  snap->gauges["flush_buffer.peak_bytes"] =
      static_cast<int64_t>(flush_buffer_.peak_bytes());
  snap->counters["flush_buffer.requeues"] = flush_buffer_.requeues();
  snap->gauges["store.resident_records"] =
      static_cast<int64_t>(raw_store_.size());
}

MicroblogStore::~MicroblogStore() {
  // Final group commit: a clean shutdown leaves every accepted record
  // durable, not just page-cache-resident.
  if (wal_ != nullptr) {
    Status s = wal_->Commit();
    if (!s.ok()) {
      KFLUSH_WARN("final wal commit failed: " << s.ToString());
    }
  }
}

Status MicroblogStore::Insert(Microblog blog) {
  if (blog.id == kInvalidMicroblogId) {
    blog.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  if (blog.created_at == 0) {
    blog.created_at = clock_->NowMicros();
  }

  // Scratch vector: term extraction runs on every insert, and the terms
  // never escape this frame, so reuse one buffer per ingest thread
  // (ExtractTerms clears it).
  static thread_local std::vector<TermId> terms;
  extractor_->ExtractTerms(blog, &terms);
  if (terms.empty()) {
    skipped_no_terms_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  return InsertIndexed(std::move(blog), terms, /*routed=*/false);
}

Status MicroblogStore::InsertRouted(Microblog blog,
                                    const std::vector<TermId>& terms) {
  if (blog.id == kInvalidMicroblogId || blog.created_at == 0) {
    return Status::InvalidArgument(
        "InsertRouted requires a pre-stamped id and created_at");
  }
  if (terms.empty()) {
    return Status::InvalidArgument("InsertRouted requires owned terms");
  }
  return InsertIndexed(std::move(blog), terms, /*routed=*/true);
}

Status MicroblogStore::InsertIndexed(Microblog blog,
                                     const std::vector<TermId>& terms,
                                     bool routed) {
  if (wal_ != nullptr) {
    // Log before any memory-tier mutation: an insert the WAL refused is
    // rejected outright instead of becoming an acknowledged record that a
    // crash would silently lose. Unsharded entries log an empty term set
    // ("re-extract on replay"); routed entries must carry their subset.
    static const std::vector<TermId> kFullTermSet;
    KFLUSH_RETURN_IF_ERROR(wal_->Append(blog, routed ? terms : kFullTermSet));
  }
  const double score = ranking_->Score(blog);
  // The record enters the raw store first (pcount = its index references),
  // then the index — queries racing the insert simply don't see it yet.
  KFLUSH_RETURN_IF_ERROR(
      raw_store_.Put(blog, static_cast<uint32_t>(terms.size())));
  policy_->Insert(blog, terms, score);
  // Publish to the continuous-query layer before the auto-flush check, so
  // a standing result sees the record while it is still memory-resident.
  if (SubscriptionSink* sink = sub_sink_.load(std::memory_order_acquire)) {
    sink->OnInsert(blog, terms, score);
  }
  inserted_.fetch_add(1, std::memory_order_relaxed);

  if (options_.auto_flush && tracker_.DataFull()) {
    FlushOnce();
  }
  return Status::OK();
}

Status MicroblogStore::InsertText(std::string text, UserId user,
                                  uint32_t followers) {
  Microblog blog;
  blog.text = std::move(text);
  blog.user_id = user;
  blog.follower_count = followers;
  for (const std::string& token : tokenizer_.Tokenize(blog.text)) {
    blog.keywords.push_back(dictionary_.Intern(token));
  }
  return Insert(std::move(blog));
}

size_t MicroblogStore::FlushOnce() {
  // At most one flush cycle at a time; concurrent triggers coalesce.
  if (flush_in_flight_.exchange(true)) return 0;
  std::lock_guard<std::mutex> lock(flush_mu_);
  flush_triggers_.fetch_add(1, std::memory_order_relaxed);
  const size_t freed = policy_->Flush(FlushBudgetBytes());
  flush_in_flight_.store(false);
  KFLUSH_DEBUG("flush freed " << freed << " bytes; " << tracker_.ToString());
  return freed;
}

void MicroblogStore::SetK(uint32_t k) { policy_->SetK(k); }

void MicroblogStore::set_subscription_sink(SubscriptionSink* sink) {
  sub_sink_.store(sink, std::memory_order_release);
  policy_->set_subscription_sink(sink);
}

TermId MicroblogStore::TermForKeyword(std::string_view keyword) const {
  const KeywordId id = dictionary_.Lookup(keyword);
  return id == kInvalidKeywordId ? kInvalidTermId : static_cast<TermId>(id);
}

TermId MicroblogStore::TermForLocation(double lat, double lon) const {
  const auto* spatial = dynamic_cast<const SpatialAttribute*>(extractor_.get());
  if (spatial == nullptr) return kInvalidTermId;
  return spatial->mapper().TileFor(lat, lon);
}

IngestStats MicroblogStore::ingest_stats() const {
  IngestStats stats;
  stats.inserted = inserted_.load(std::memory_order_relaxed);
  stats.skipped_no_terms = skipped_no_terms_.load(std::memory_order_relaxed);
  stats.flush_triggers = flush_triggers_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace kflush
