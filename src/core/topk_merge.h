// Bounded k-way merge of per-shard top-k lists. Each shard answers a
// fan-out query with its local top-k, already sorted best-first under the
// global ranking order; the merge walks the lists heap-wise and stops
// after k unique results, so the work is O(k log S) regardless of how
// much each shard over-returned. Correctness requirement (proved by the
// differential oracle): the merged list is exactly what a single-shard
// store would return, which holds because the comparator below is the
// same strict order Materialize() sorts by and duplicates — the same
// record surfacing from several shards — carry identical sort keys, so
// they pop adjacently and the dedup pass removes them without lookback.

#ifndef KFLUSH_CORE_TOPK_MERGE_H_
#define KFLUSH_CORE_TOPK_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace kflush {

/// Merges `lists` — each sorted so that better elements come first under
/// `better` (a strict weak ordering) — into the best `k` unique elements.
/// `same(a, b)` identifies duplicates across lists; it must imply
/// equivalence under `better` (neither orders before the other), which
/// makes duplicates adjacent in the merged stream and a single-pass dedup
/// (first occurrence wins) exact. Empty lists are fine; fewer than k
/// unique elements yields a short result.
template <typename T, typename Better, typename Same>
std::vector<T> BoundedTopKMerge(const std::vector<std::vector<T>>& lists,
                                size_t k, Better better, Same same) {
  std::vector<T> merged;
  if (k == 0) return merged;

  // Heap of (list index, position); top = best current head.
  struct Cursor {
    size_t list;
    size_t pos;
  };
  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  // std::push_heap keeps the *greatest* element first, so the comparator
  // must order "worse" before "better".
  auto worse = [&](const Cursor& a, const Cursor& b) {
    return better(lists[b.list][b.pos], lists[a.list][a.pos]);
  };
  for (size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i].empty()) heap.push_back({i, 0});
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  while (!heap.empty() && merged.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    Cursor top = heap.back();
    heap.pop_back();
    const T& candidate = lists[top.list][top.pos];
    if (merged.empty() || !same(merged.back(), candidate)) {
      merged.push_back(candidate);
    }
    if (top.pos + 1 < lists[top.list].size()) {
      heap.push_back({top.list, top.pos + 1});
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return merged;
}

}  // namespace kflush

#endif  // KFLUSH_CORE_TOPK_MERGE_H_
