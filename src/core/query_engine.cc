#include "core/query_engine.h"

#include <algorithm>

#include "core/trace.h"
#include "index/spatial_grid.h"
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace kflush {

namespace {
constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();
/// Cap on SearchArea's over-fetch factor: a box whose matching records are
/// outnumbered this badly by same-tile outsiders stops re-querying and
/// returns what it found.
constexpr uint32_t kMaxAreaOverfetch = 32;
}  // namespace

QueryEngine::QueryEngine(MicroblogStore* store) : store_(store) {
  MetricsRegistry* registry = store_->metrics_registry();
  static constexpr const char* kTypeSlug[3] = {"single", "and", "or"};
  static constexpr const char* kOutcome[2] = {"miss", "hit"};
  for (int t = 0; t < 3; ++t) {
    for (int o = 0; o < 2; ++o) {
      latency_by_type_[t][o] = registry->histogram(
          std::string("query.latency_micros.") + kTypeSlug[t] + "." +
          kOutcome[o]);
    }
  }
  for (int o = 0; o < 2; ++o) {
    latency_spatial_[o] = registry->histogram(
        std::string("query.latency_micros.spatial.") + kOutcome[o]);
    latency_user_[o] = registry->histogram(
        std::string("query.latency_micros.user.") + kOutcome[o]);
  }
  queries_counter_ = registry->counter("query.executed");
  hits_counter_ = registry->counter("query.memory_hits");
  misses_counter_ = registry->counter("query.memory_misses");
  disk_term_reads_counter_ = registry->counter("query.disk_term_reads");
}

void QueryEngine::MemoryPostings(TermId term, size_t limit,
                                 std::vector<Scored>* out) {
  std::vector<MicroblogId> ids;
  store_->policy()->QueryTerm(term, limit, &ids, /*record_access=*/true);
  const RankingFunction* ranking = store_->ranking();
  for (MicroblogId id : ids) {
    // Recompute the arrival-time score from the record; a record flushed
    // between the index read and here is simply skipped (its posting is
    // already registered on disk).
    store_->raw_store()->With(id, [&](const Microblog& blog) {
      out->push_back({ranking->Score(blog), id});
    });
  }
}

Status QueryEngine::Materialize(std::vector<Scored> candidates, uint32_t k,
                                QueryResult* result) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id > b.id;
            });
  std::unordered_set<MicroblogId> seen;
  std::vector<MicroblogId> memory_ids;
  for (const Scored& c : candidates) {
    if (result->results.size() >= k) break;
    if (!seen.insert(c.id).second) continue;
    auto blog = store_->raw_store()->Get(c.id);
    if (blog.has_value()) {
      result->results.push_back(std::move(*blog));
      memory_ids.push_back(c.id);
      ++result->from_memory;
      continue;
    }
    Microblog from_disk;
    Status s = store_->disk()->GetRecord(c.id, &from_disk);
    if (s.ok()) {
      result->results.push_back(std::move(from_disk));
      ++result->from_disk;
    } else if (!s.IsNotFound()) {
      return s;
    }
    // NotFound: the record is in flight between memory and disk (flush
    // buffer); skip it — the next candidate takes its place.
  }
  store_->policy()->OnResultAccess(memory_ids);
  return Status::OK();
}

Result<QueryResult> QueryEngine::ExecuteSingle(TermId term, uint32_t k,
                                               bool force_disk) {
  // Disk-read accounting lives in Execute(), as the delta of the disk
  // store's own term_queries counter around the evaluation — the counter
  // the disk tier actually increments, covering every path down here.
  QueryResult result;
  std::vector<Scored> candidates;
  MemoryPostings(term, k, &candidates);
  result.memory_hit = candidates.size() >= k && !force_disk;
  if (!result.memory_hit) {
    std::vector<Posting> disk_postings;
    KFLUSH_RETURN_IF_ERROR(
        store_->disk()->QueryTerm(term, k, &disk_postings));
    for (const Posting& p : disk_postings) {
      candidates.push_back({p.score, p.id});
    }
  }
  KFLUSH_RETURN_IF_ERROR(Materialize(std::move(candidates), k, &result));
  return result;
}

Result<QueryResult> QueryEngine::ExecuteOr(const std::vector<TermId>& terms,
                                           uint32_t k, bool force_disk) {
  QueryResult result;
  std::vector<Scored> candidates;
  std::vector<TermId> short_terms;  // terms with < k in-memory postings
  for (TermId term : terms) {
    std::vector<Scored> mem;
    MemoryPostings(term, k, &mem);
    if (mem.size() < k) short_terms.push_back(term);
    candidates.insert(candidates.end(), mem.begin(), mem.end());
  }
  // OR hit rule (§IV-D): if every term holds k in memory, the union's
  // top-k is guaranteed in memory.
  result.memory_hit = short_terms.empty() && !force_disk;
  if (!result.memory_hit) {
    for (TermId term : force_disk ? terms : short_terms) {
      std::vector<Posting> disk_postings;
      KFLUSH_RETURN_IF_ERROR(
          store_->disk()->QueryTerm(term, k, &disk_postings));
      for (const Posting& p : disk_postings) {
        candidates.push_back({p.score, p.id});
      }
    }
  }
  KFLUSH_RETURN_IF_ERROR(Materialize(std::move(candidates), k, &result));
  return result;
}

Result<QueryResult> QueryEngine::ExecuteAnd(const std::vector<TermId>& terms,
                                            uint32_t k, bool force_disk) {
  QueryResult result;
  // Paper §IV-D: "we retrieve in-memory index entries of W1 and W2, scan
  // their microblog ids lists, and any microblog that is associated with
  // both W1 and W2 is added to Lm". "Associated with" is a property of
  // the record, so the memory-side candidate set is the union of the
  // lists filtered by record-term containment — a record trimmed from one
  // entry but still memory-resident through another (the Figure 6 case)
  // still qualifies.
  std::vector<std::vector<Scored>> lists(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    MemoryPostings(terms[i], kNoLimit, &lists[i]);
  }
  const AttributeExtractor* extractor = store_->extractor();
  std::unordered_set<MicroblogId> considered;
  std::vector<Scored> intersection;
  std::vector<TermId> record_terms;
  for (const auto& list : lists) {
    for (const Scored& s : list) {
      if (!considered.insert(s.id).second) continue;
      bool has_all = false;
      store_->raw_store()->With(s.id, [&](const Microblog& blog) {
        record_terms.clear();
        extractor->ExtractTerms(blog, &record_terms);
        has_all = true;
        for (TermId t : terms) {
          if (std::find(record_terms.begin(), record_terms.end(), t) ==
              record_terms.end()) {
            has_all = false;
            break;
          }
        }
      });
      if (has_all) intersection.push_back(s);
    }
  }
  // AND hit rule: the in-memory candidate list already yields k results.
  result.memory_hit = intersection.size() >= k && !force_disk;
  if (result.memory_hit) {
    KFLUSH_RETURN_IF_ERROR(
        Materialize(std::move(intersection), k, &result));
    return result;
  }
  // Miss: rebuild each term's full list as memory ∪ disk, then intersect.
  std::vector<std::unordered_map<MicroblogId, double>> full(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    for (const Scored& s : lists[i]) full[i].emplace(s.id, s.score);
    std::vector<Posting> disk_postings;
    KFLUSH_RETURN_IF_ERROR(
        store_->disk()->QueryTerm(terms[i], kNoLimit, &disk_postings));
    for (const Posting& p : disk_postings) full[i].emplace(p.id, p.score);
  }
  std::vector<Scored> candidates;
  if (!full.empty()) {
    for (const auto& [id, score] : full[0]) {
      bool in_all = true;
      for (size_t i = 1; i < full.size(); ++i) {
        if (full[i].count(id) == 0) {
          in_all = false;
          break;
        }
      }
      if (in_all) candidates.push_back({score, id});
    }
  }
  KFLUSH_RETURN_IF_ERROR(Materialize(std::move(candidates), k, &result));
  return result;
}

Result<QueryResult> QueryEngine::Execute(const TopKQuery& query) {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }
  const uint32_t k = query.k != 0 ? query.k : store_->k();
  if (k == 0) return Status::InvalidArgument("k must be positive");

  static const char* const kTypeName[] = {"single", "and", "or"};
  TraceSpan span("query", kTypeName[static_cast<int>(query.type)],
                 {TraceArg::Uint("terms", query.terms.size()),
                  TraceArg::Uint("k", k)});
  Stopwatch watch;
  const auto disk_reads_before = store_->disk()->stats().term_queries;

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (query.type) {
      case QueryType::kSingle:
        if (query.terms.size() != 1) {
          return Status::InvalidArgument("single query needs exactly 1 term");
        }
        return ExecuteSingle(query.terms[0], k, query.force_disk);
      case QueryType::kOr:
        return ExecuteOr(query.terms, k, query.force_disk);
      case QueryType::kAnd:
        return ExecuteAnd(query.terms, k, query.force_disk);
    }
    return Status::InvalidArgument("unknown query type");
  }();

  if (result.ok()) {
    const auto disk_reads =
        store_->disk()->stats().term_queries - disk_reads_before;
    const uint64_t micros = watch.ElapsedMicros();
    metrics_.Record(query.type, result->memory_hit, disk_reads, micros);
    const int t = static_cast<int>(query.type);
    latency_by_type_[t][result->memory_hit ? 1 : 0]->Record(micros);
    queries_counter_->Increment();
    (result->memory_hit ? hits_counter_ : misses_counter_)->Increment();
    disk_term_reads_counter_->Add(disk_reads);
    span.End({TraceArg::Str("outcome", result->memory_hit ? "hit" : "miss"),
              TraceArg::Uint("from_memory", result->from_memory),
              TraceArg::Uint("from_disk", result->from_disk),
              TraceArg::Uint("disk_term_reads", disk_reads)});
  } else {
    span.End({TraceArg::Str("outcome", "error")});
  }
  return result;
}

Result<QueryResult> QueryEngine::SearchKeywords(
    const std::vector<std::string>& keywords, QueryType type, uint32_t k) {
  TopKQuery query;
  query.type = keywords.size() == 1 ? QueryType::kSingle : type;
  query.k = k;
  for (const std::string& kw : keywords) {
    query.terms.push_back(store_->TermForKeyword(kw));
  }
  return Execute(query);
}

Result<QueryResult> QueryEngine::SearchLocation(double lat, double lon,
                                                uint32_t k) {
  TopKQuery query;
  query.type = QueryType::kSingle;
  query.k = k;
  query.terms.push_back(store_->TermForLocation(lat, lon));
  Stopwatch watch;
  Result<QueryResult> result = Execute(query);
  if (result.ok()) {
    latency_spatial_[result->memory_hit ? 1 : 0]->Record(
        watch.ElapsedMicros());
  }
  return result;
}

Result<QueryResult> QueryEngine::SearchArea(double min_lat, double min_lon,
                                            double max_lat, double max_lon,
                                            uint32_t k, size_t max_tiles,
                                            bool force_disk) {
  const auto* spatial =
      dynamic_cast<const SpatialAttribute*>(store_->extractor());
  if (spatial == nullptr) {
    return Status::InvalidArgument("store is not spatially indexed");
  }
  BoundingBox box{min_lat, min_lon, max_lat, max_lon};
  // Request one extra tile to detect overflow of the cap.
  std::vector<TermId> tiles =
      TilesOverlapping(spatial->mapper(), box, max_tiles + 1);
  if (tiles.empty()) {
    return Status::InvalidArgument("empty or inverted bounding box");
  }
  if (tiles.size() > max_tiles) {
    return Status::InvalidArgument("bounding box spans too many tiles");
  }
  TopKQuery query;
  query.terms = std::move(tiles);
  query.type = query.terms.size() == 1 ? QueryType::kSingle : QueryType::kOr;
  query.force_disk = force_disk;
  const uint32_t want = k != 0 ? k : store_->k();
  // Records in boundary tiles that fall outside the box are dropped after
  // top-k materialization, which can under-fill the answer even when k
  // matching records exist. Over-fetch and widen geometrically until the
  // box's top-k is filled or the tiles are exhausted (the underlying query
  // returning fewer than it was asked for means there is nothing left).
  uint32_t fetch = want;
  Stopwatch watch;
  while (true) {
    query.k = fetch;
    Result<QueryResult> result = Execute(query);
    if (!result.ok()) return result;
    const size_t fetched = result->results.size();
    auto& records = result->results;
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [&](const Microblog& blog) {
                                   return !AreaContains(box, blog);
                                 }),
                  records.end());
    const bool exhausted = fetched < fetch;
    if (records.size() >= want || exhausted ||
        static_cast<uint64_t>(fetch) >=
            static_cast<uint64_t>(want) * kMaxAreaOverfetch) {
      if (records.size() > want) records.resize(want);
      latency_spatial_[result->memory_hit ? 1 : 0]->Record(
          watch.ElapsedMicros());
      return result;
    }
    fetch *= 2;
  }
}

Result<QueryResult> QueryEngine::SearchUser(UserId user, uint32_t k) {
  TopKQuery query;
  query.type = QueryType::kSingle;
  query.k = k;
  query.terms.push_back(store_->TermForUser(user));
  Stopwatch watch;
  Result<QueryResult> result = Execute(query);
  if (result.ok()) {
    latency_user_[result->memory_hit ? 1 : 0]->Record(watch.ElapsedMicros());
  }
  return result;
}

}  // namespace kflush
