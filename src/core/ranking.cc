#include "core/ranking.h"

#include <cmath>

namespace kflush {

const char* RankingKindName(RankingKind kind) {
  switch (kind) {
    case RankingKind::kTemporal:
      return "temporal";
    case RankingKind::kPopularity:
      return "popularity";
  }
  return "unknown";
}

double TemporalRanking::Score(const Microblog& blog) const {
  return static_cast<double>(blog.created_at);
}

PopularityRanking::PopularityRanking(double boost_micros)
    : boost_micros_(boost_micros) {}

double PopularityRanking::Score(const Microblog& blog) const {
  return static_cast<double>(blog.created_at) +
         boost_micros_ * std::log2(1.0 + blog.follower_count);
}

std::unique_ptr<RankingFunction> MakeRanking(RankingKind kind) {
  switch (kind) {
    case RankingKind::kTemporal:
      return std::make_unique<TemporalRanking>();
    case RankingKind::kPopularity:
      return std::make_unique<PopularityRanking>();
  }
  return nullptr;
}

}  // namespace kflush
