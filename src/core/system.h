// MicroblogSystem: the full threaded deployment of Figure 2. Producers
// push microblog batches into a bounded queue; one digestion thread drains
// it into the store in real time; a background flusher thread wakes when
// memory fills and runs the policy's flush cycle concurrently with
// digestion (paper §III: flushing phases run "in a separate thread so that
// [they do] not noticeably interrupt the continuous digestion of incoming
// data"); query threads call Query() at any time. The digestion-rate
// experiment (Figure 10(b)) measures this assembly under stress.

#ifndef KFLUSH_CORE_SYSTEM_H_
#define KFLUSH_CORE_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/metrics_registry.h"
#include "core/query_engine.h"
#include "core/store.h"
#include "util/thread_util.h"

namespace kflush {

/// System configuration.
struct SystemOptions {
  StoreOptions store;
  /// Capacity of the ingest queue, in batches.
  size_t ingest_queue_capacity = 1024;
  /// Digestion pauses when data memory exceeds budget × this factor,
  /// resuming once the flusher catches up (bounds memory under stress).
  double ingest_stall_factor = 1.2;
};

/// Per-request observability ticket, threaded from the network front-end
/// through routed admission to the durable commit of the final owner
/// sub-batch. A ticket is shared by every sub-batch of one wire request;
/// the digestion thread that durably commits the last of them records the
/// commit-stage latency into `commit_hist`, closes the request's trace
/// flow, and emits the slow-request log when over threshold.
/// `registry_keepalive` pins the registry that owns `commit_hist`, so a
/// ticket still queued when its server is torn down cannot record into
/// freed memory.
struct IngestTicket {
  uint64_t request_id = 0;
  /// MonotonicMicros() at the moment admission succeeded.
  uint64_t admit_micros = 0;
  /// Owner sub-batches not yet durably committed.
  std::atomic<uint32_t> remaining{0};
  ConcurrentHistogram* commit_hist = nullptr;
  /// Commit-stage latencies at or above this emit one structured
  /// slow-request log line (0 disables).
  uint64_t slow_micros = 0;
  std::shared_ptr<MetricsRegistry> registry_keepalive;

  /// Records the commit-stage sample and closes the request flow. Called
  /// once per request: by the last SubBatchCommitted(), or directly by
  /// the router for an accepted request with no owner sub-batches.
  void Complete();
  /// Marks one owner sub-batch durably committed.
  void SubBatchCommitted() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) Complete();
  }
};

/// A queued unit of ingest work. `routed_terms`, when non-empty, carries
/// each record's pre-routed term subset (parallel to `blogs`) and
/// digestion uses InsertRouted instead of re-extracting — this is how a
/// shard of ShardedMicroblogSystem indexes only the terms it owns.
/// `ticket`, when set, correlates this sub-batch back to the wire request
/// that produced it.
struct IngestBatch {
  std::vector<Microblog> blogs;
  std::vector<std::vector<TermId>> routed_terms;
  std::shared_ptr<IngestTicket> ticket;
};

/// Threaded system facade. Start() launches the digestion and flusher
/// threads; Stop() drains and joins them. A system runs once: after
/// Stop() the ingest queue is closed for good (construct a new system to
/// restart), though queries remain valid against the final contents.
class MicroblogSystem {
 public:
  explicit MicroblogSystem(SystemOptions options);
  ~MicroblogSystem();

  MicroblogSystem(const MicroblogSystem&) = delete;
  MicroblogSystem& operator=(const MicroblogSystem&) = delete;

  void Start();

  /// Closes the ingest queue, drains remaining batches, and joins all
  /// threads. Idempotent and safe to call concurrently (e.g. an explicit
  /// Stop racing the destructor); exactly one caller performs the teardown.
  /// Safe to call mid-flush: a digestion thread stalled on backpressure is
  /// released rather than waited on.
  void Stop();

  /// Submits a batch of microblogs for digestion. Blocks while the queue
  /// is full; returns false once the system is stopped.
  bool Submit(std::vector<Microblog> batch);

  /// Sharded ingest: like Submit, but each record is digested under its
  /// pre-routed term subset (batch.routed_terms parallel to batch.blogs,
  /// records pre-stamped — see MicroblogStore::InsertRouted).
  bool SubmitRouted(IngestBatch batch);

  // Two-phase admission, used by ShardedMicroblogSystem for all-or-nothing
  // routed submits across shards: reserve one ingest-queue slot on every
  // owner shard first, then push every sub-batch into its reserved slot
  // (which never blocks), or cancel every reservation and admit nothing.

  /// Claims one ingest-queue slot, blocking under backpressure. False once
  /// the system stopped or reservations were aborted.
  bool ReserveIngestSlot() { return queue_.Reserve(); }
  /// Non-blocking ReserveIngestSlot: false when the queue is full.
  bool TryReserveIngestSlot() { return queue_.TryReserve(); }
  /// Returns an unused reservation.
  void CancelIngestReservation() { queue_.CancelReservation(); }
  /// Releases producers blocked in ReserveIngestSlot (permanently).
  void AbortIngestReservations() { queue_.AbortReservations(); }
  /// Enqueues into a reserved slot; false (nothing enqueued) iff stopped.
  bool SubmitReservedRouted(IngestBatch batch);

  /// Current ingest-queue depth in batches (lock-free estimate).
  size_t queue_depth() const { return queue_.approx_size(); }

  /// Evaluates a query against current contents (thread-safe, any time).
  Result<QueryResult> Query(const TopKQuery& query);

  /// Total microblogs digested so far.
  uint64_t digested() const { return digested_.load(std::memory_order_relaxed); }

  MicroblogStore* store() { return store_.get(); }
  QueryEngine* engine() { return &engine_; }

 private:
  void DigestionLoop();
  void FlusherLoop();

  SystemOptions options_;
  std::unique_ptr<MicroblogStore> store_;
  QueryEngine engine_;
  BoundedQueue<IngestBatch> queue_;

  std::thread digestion_thread_;
  std::thread flusher_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> digested_{0};

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;    // digestion -> flusher: memory full
  std::condition_variable unstall_cv_;  // flusher -> digestion: space freed
  bool flush_wanted_ = false;
  /// Set by the flusher when a cycle frees nothing while over budget, so a
  /// stalled digestion thread proceeds (overshoots) instead of deadlocking.
  bool flush_stuck_ = false;

  // Registry instruments (resolved once against the store's registry;
  // `system.*` taxonomy — see docs/INTERNALS.md). Digestion rate =
  // system.records_digested / system.digest_micros_per_batch's sum.
  Gauge* queue_depth_gauge_;
  Counter* batches_submitted_;
  Counter* batches_digested_;
  Counter* records_digested_;
  Counter* digestion_stalls_;
  Counter* flush_wakeups_;
  Counter* flush_stuck_events_;
  ConcurrentHistogram* batch_size_hist_;
  ConcurrentHistogram* digest_micros_hist_;
  ConcurrentHistogram* digest_cpu_micros_hist_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_SYSTEM_H_
