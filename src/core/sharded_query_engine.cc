#include "core/sharded_query_engine.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/topk_merge.h"
#include "core/trace.h"
#include "index/spatial_grid.h"

namespace kflush {

namespace {
constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();
/// Same cap as QueryEngine::SearchArea (the loops must behave alike for
/// the oracle's shards=1 baseline to be meaningful).
constexpr uint32_t kMaxAreaOverfetch = 32;
}  // namespace

ShardedQueryEngine::ShardedQueryEngine(std::vector<ShardQueryTarget> shards)
    : shards_(std::move(shards)), router_(shards_.size()) {}

uint64_t ShardedQueryEngine::DiskTermQueries() const {
  uint64_t total = 0;
  for (const ShardQueryTarget& shard : shards_) {
    total += shard.store->disk()->stats().term_queries;
  }
  return total;
}

Result<QueryResult> ShardedQueryEngine::Execute(const TopKQuery& query) {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }
  // Resolve k once at the fan-out layer so every sub-query of this query
  // sees the same k even if SetK churns mid-flight.
  const uint32_t k = query.k != 0 ? query.k : shards_[0].store->k();
  if (k == 0) return Status::InvalidArgument("k must be positive");

  static const char* const kTypeName[] = {"single", "and", "or"};
  TraceSpan span("query", "fanout",
                 {TraceArg::Str("type", kTypeName[static_cast<int>(query.type)]),
                  TraceArg::Uint("terms", query.terms.size()),
                  TraceArg::Uint("k", k),
                  TraceArg::Uint("shards", shards_.size())});
  Stopwatch watch;
  const uint64_t disk_reads_before = DiskTermQueries();

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (query.type) {
      case QueryType::kSingle: {
        if (query.terms.size() != 1) {
          return Status::InvalidArgument("single query needs exactly 1 term");
        }
        TopKQuery sub = query;
        sub.k = k;
        const size_t owner = router_.ShardForTerm(query.terms[0]);
        return shards_[owner].engine->Execute(sub);
      }
      case QueryType::kOr:
        return ExecuteOrFanout(query.terms, k, query.force_disk);
      case QueryType::kAnd:
        // Already exact over each term's full memory ∪ disk list;
        // force_disk has nothing further to bypass.
        return ExecuteAndExact(query.terms, k);
    }
    return Status::InvalidArgument("unknown query type");
  }();

  if (result.ok()) {
    const uint64_t disk_reads = DiskTermQueries() - disk_reads_before;
    metrics_.Record(query.type, result->memory_hit, disk_reads,
                    watch.ElapsedMicros());
    span.End({TraceArg::Str("outcome", result->memory_hit ? "hit" : "miss"),
              TraceArg::Uint("results", result->results.size())});
  } else {
    span.End({TraceArg::Str("outcome", "error")});
  }
  return result;
}

Result<QueryResult> ShardedQueryEngine::ExecuteOrFanout(
    const std::vector<TermId>& terms, uint32_t k, bool force_disk) {
  // Group terms by owning shard, preserving term order within a group and
  // first-touch order across groups.
  std::vector<std::vector<TermId>> groups(shards_.size());
  std::vector<size_t> order;
  for (TermId term : terms) {
    const size_t owner = router_.ShardForTerm(term);
    if (groups[owner].empty()) order.push_back(owner);
    groups[owner].push_back(term);
  }
  if (order.size() == 1) {
    // All terms colocated: the owning shard's OR answer IS the answer.
    TopKQuery sub;
    sub.terms = std::move(groups[order[0]]);
    sub.type = QueryType::kOr;
    sub.k = k;
    sub.force_disk = force_disk;
    return shards_[order[0]].engine->Execute(sub);
  }

  QueryResult merged;
  merged.memory_hit = true;
  std::vector<std::vector<Microblog>> lists;
  lists.reserve(order.size());
  for (size_t owner : order) {
    TopKQuery sub;
    sub.terms = std::move(groups[owner]);
    sub.type = QueryType::kOr;
    sub.k = k;
    sub.force_disk = force_disk;
    Result<QueryResult> r = shards_[owner].engine->Execute(sub);
    if (!r.ok()) return r.status();
    // The OR hit rule (every term holds >= k in memory) distributes over
    // the partition: the union's top-k is memory-guaranteed iff every
    // shard's group is.
    merged.memory_hit = merged.memory_hit && r->memory_hit;
    merged.from_memory += r->from_memory;
    merged.from_disk += r->from_disk;
    lists.push_back(std::move(r->results));
  }

  const RankingFunction* ranking = shards_[0].store->ranking();
  merged.results = BoundedTopKMerge(
      lists, k,
      [&](const Microblog& a, const Microblog& b) {
        const double sa = ranking->Score(a);
        const double sb = ranking->Score(b);
        if (sa != sb) return sa > sb;
        return a.id > b.id;
      },
      [](const Microblog& a, const Microblog& b) { return a.id == b.id; });
  return merged;
}

Result<QueryResult> ShardedQueryEngine::ExecuteAndExact(
    const std::vector<TermId>& terms, uint32_t k) {
  const RankingFunction* ranking = shards_[0].store->ranking();
  const size_t n = terms.size();
  // Each term's complete posting set, memory ∪ disk, from its owner. The
  // memory ∪ disk union is complete by the system invariant ("answers are
  // always accurate"): every posting is in the owner's index or was
  // registered on its disk when dropped.
  std::vector<std::unordered_map<MicroblogId, double>> full(n);
  std::vector<std::unordered_set<MicroblogId>> in_memory(n);
  for (size_t i = 0; i < n; ++i) {
    MicroblogStore* store = shards_[router_.ShardForTerm(terms[i])].store;
    std::vector<MicroblogId> ids;
    store->policy()->QueryTerm(terms[i], kNoLimit, &ids,
                               /*record_access=*/true);
    for (MicroblogId id : ids) {
      store->raw_store()->With(id, [&](const Microblog& blog) {
        full[i].emplace(id, ranking->Score(blog));
        in_memory[i].insert(id);
      });
    }
    std::vector<Posting> disk_postings;
    KFLUSH_RETURN_IF_ERROR(
        store->disk()->QueryTerm(terms[i], kNoLimit, &disk_postings));
    for (const Posting& p : disk_postings) full[i].emplace(p.id, p.score);
  }

  QueryResult result;
  std::vector<Scored> candidates;
  size_t memory_candidates = 0;
  for (const auto& [id, score] : full[0]) {
    bool in_all = true;
    bool mem_all = in_memory[0].count(id) != 0;
    for (size_t i = 1; i < n && in_all; ++i) {
      in_all = full[i].count(id) != 0;
      mem_all = mem_all && in_memory[i].count(id) != 0;
    }
    if (!in_all) continue;
    candidates.push_back({score, id});
    if (mem_all) ++memory_candidates;
  }
  // Hit predicate (metric only — the answer below is exact either way):
  // the intersection of the in-memory lists alone yields k results.
  result.memory_hit = memory_candidates >= k;

  std::sort(candidates.begin(), candidates.end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id > b.id;
            });

  // Materialize from the owning shards: an AND result contains every
  // query term, so its record copy lives on each term's owner — resident
  // there, or on that owner's disk once fully evicted from it.
  std::vector<size_t> owners;
  for (TermId term : terms) {
    const size_t owner = router_.ShardForTerm(term);
    if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
      owners.push_back(owner);
    }
  }
  std::vector<std::vector<MicroblogId>> touched(shards_.size());
  for (const Scored& c : candidates) {
    if (result.results.size() >= k) break;
    bool materialized = false;
    for (size_t owner : owners) {
      auto blog = shards_[owner].store->raw_store()->Get(c.id);
      if (blog.has_value()) {
        result.results.push_back(std::move(*blog));
        touched[owner].push_back(c.id);
        ++result.from_memory;
        materialized = true;
        break;
      }
    }
    if (materialized) continue;
    for (size_t owner : owners) {
      Microblog from_disk;
      Status s = shards_[owner].store->disk()->GetRecord(c.id, &from_disk);
      if (s.ok()) {
        result.results.push_back(std::move(from_disk));
        ++result.from_disk;
        materialized = true;
        break;
      }
      if (!s.IsNotFound()) return s;
    }
    // All NotFound: the record is in flight through a flush buffer; the
    // next candidate takes its place (same rule as Materialize()).
  }
  for (size_t owner = 0; owner < shards_.size(); ++owner) {
    if (!touched[owner].empty()) {
      shards_[owner].store->policy()->OnResultAccess(touched[owner]);
    }
  }
  return result;
}

Result<QueryResult> ShardedQueryEngine::SearchLocation(double lat, double lon,
                                                       uint32_t k) {
  TopKQuery query;
  query.type = QueryType::kSingle;
  query.k = k;
  query.terms.push_back(shards_[0].store->TermForLocation(lat, lon));
  return Execute(query);
}

Result<QueryResult> ShardedQueryEngine::SearchArea(double min_lat,
                                                   double min_lon,
                                                   double max_lat,
                                                   double max_lon, uint32_t k,
                                                   size_t max_tiles,
                                                   bool force_disk) {
  const auto* spatial =
      dynamic_cast<const SpatialAttribute*>(shards_[0].store->extractor());
  if (spatial == nullptr) {
    return Status::InvalidArgument("store is not spatially indexed");
  }
  BoundingBox box{min_lat, min_lon, max_lat, max_lon};
  std::vector<TermId> tiles =
      TilesOverlapping(spatial->mapper(), box, max_tiles + 1);
  if (tiles.empty()) {
    return Status::InvalidArgument("empty or inverted bounding box");
  }
  if (tiles.size() > max_tiles) {
    return Status::InvalidArgument("bounding box spans too many tiles");
  }
  TopKQuery query;
  query.terms = std::move(tiles);
  query.type = query.terms.size() == 1 ? QueryType::kSingle : QueryType::kOr;
  query.force_disk = force_disk;
  const uint32_t want = k != 0 ? k : shards_[0].store->k();
  // Same over-fetch loop as QueryEngine::SearchArea, but each inner
  // Execute fans out; boundary-tile outsiders are filtered after the
  // cross-shard merge.
  uint32_t fetch = want;
  while (true) {
    query.k = fetch;
    Result<QueryResult> result = Execute(query);
    if (!result.ok()) return result;
    const size_t fetched = result->results.size();
    auto& records = result->results;
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [&](const Microblog& blog) {
                                   return !AreaContains(box, blog);
                                 }),
                  records.end());
    const bool exhausted = fetched < fetch;
    if (records.size() >= want || exhausted ||
        static_cast<uint64_t>(fetch) >=
            static_cast<uint64_t>(want) * kMaxAreaOverfetch) {
      if (records.size() > want) records.resize(want);
      return result;
    }
    fetch *= 2;
  }
}

Result<QueryResult> ShardedQueryEngine::SearchUser(UserId user, uint32_t k) {
  TopKQuery query;
  query.type = QueryType::kSingle;
  query.k = k;
  query.terms.push_back(shards_[0].store->TermForUser(user));
  return Execute(query);
}

}  // namespace kflush
