#include "core/multi_store.h"

#include <cassert>

namespace kflush {

StoreOptions MultiAttributeStore::MakeStoreOptions(
    const MultiStoreOptions& options, AttributeKind attribute, double share) {
  assert(share > 0.0 && share <= 1.0);
  StoreOptions so;
  so.memory_budget_bytes = static_cast<size_t>(
      static_cast<double>(options.total_memory_budget_bytes) * share);
  so.flush_fraction = options.flush_fraction;
  so.k = options.k;
  so.policy = options.policy;
  so.attribute = attribute;
  so.ranking = options.ranking;
  so.clock = options.clock;
  return so;
}

MultiAttributeStore::MultiAttributeStore(MultiStoreOptions options)
    : options_(options),
      keyword_store_(std::make_unique<MicroblogStore>(MakeStoreOptions(
          options, AttributeKind::kKeyword, options.keyword_share))),
      spatial_store_(std::make_unique<MicroblogStore>(MakeStoreOptions(
          options, AttributeKind::kSpatial, options.spatial_share))),
      user_store_(std::make_unique<MicroblogStore>(MakeStoreOptions(
          options, AttributeKind::kUser, options.user_share))),
      keyword_engine_(keyword_store_.get()),
      spatial_engine_(spatial_store_.get()),
      user_engine_(user_store_.get()) {}

Status MultiAttributeStore::Insert(Microblog blog) {
  if (blog.id == kInvalidMicroblogId) {
    blog.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  if (blog.created_at == 0) {
    blog.created_at = keyword_store_->clock()->NowMicros();
  }
  // Fan out copies; each store skips the record if it has no terms under
  // that attribute.
  KFLUSH_RETURN_IF_ERROR(keyword_store_->Insert(blog));
  KFLUSH_RETURN_IF_ERROR(spatial_store_->Insert(blog));
  return user_store_->Insert(std::move(blog));
}

Status MultiAttributeStore::InsertText(std::string text, UserId user,
                                       uint32_t followers,
                                       const GeoPoint* location) {
  Microblog blog;
  blog.text = std::move(text);
  blog.user_id = user;
  blog.follower_count = followers;
  if (location != nullptr) {
    blog.has_location = true;
    blog.location = *location;
  }
  for (const std::string& token :
       Tokenizer().Tokenize(blog.text)) {
    blog.keywords.push_back(keyword_store_->dictionary()->Intern(token));
  }
  return Insert(std::move(blog));
}

Result<QueryResult> MultiAttributeStore::SearchKeywords(
    const std::vector<std::string>& keywords, QueryType type, uint32_t k) {
  return keyword_engine_.SearchKeywords(keywords, type, k);
}

Result<QueryResult> MultiAttributeStore::SearchLocation(double lat,
                                                        double lon,
                                                        uint32_t k) {
  return spatial_engine_.SearchLocation(lat, lon, k);
}

Result<QueryResult> MultiAttributeStore::SearchArea(double min_lat,
                                                    double min_lon,
                                                    double max_lat,
                                                    double max_lon,
                                                    uint32_t k) {
  return spatial_engine_.SearchArea(min_lat, min_lon, max_lat, max_lon, k);
}

Result<QueryResult> MultiAttributeStore::SearchUser(UserId user, uint32_t k) {
  return user_engine_.SearchUser(user, k);
}

size_t MultiAttributeStore::DataUsed() const {
  return keyword_store_->tracker().DataUsed() +
         spatial_store_->tracker().DataUsed() +
         user_store_->tracker().DataUsed();
}

}  // namespace kflush
