#include "core/metrics_registry.h"

#include <cstdio>
#include <sstream>
#include <thread>

namespace kflush {

namespace {

size_t StripeForThisThread() {
  // Hash of the thread id, computed once per thread: recorders from
  // different threads land on different stripes with high probability.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe;
}

void AppendJsonString(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

void AppendHistogramJson(std::ostringstream* os, const Histogram& h) {
  *os << "{\"count\":" << h.count() << ",\"min\":" << h.min()
      << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
      << ",\"sum\":" << h.sum() << ",\"p50\":" << h.Percentile(50)
      << ",\"p90\":" << h.Percentile(90) << ",\"p95\":" << h.Percentile(95)
      << ",\"p99\":" << h.Percentile(99)
      << ",\"p999\":" << h.Percentile(99.9) << "}";
}

}  // namespace

void ConcurrentHistogram::Record(uint64_t value) {
  Stripe& stripe = stripes_[StripeForThisThread() % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.histogram.Record(value);
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram merged;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    merged.Merge(stripe.histogram);
  }
  return merged;
}

void ConcurrentHistogram::Reset() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.histogram.Reset();
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(&os, name);
    os << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(&os, name);
    os << ':' << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(&os, name);
    os << ':';
    AppendHistogramJson(&os, h);
  }
  os << "}}";
  return os.str();
}

namespace {

/// "query.latency_micros.single.hit" -> "kflush_query_latency_micros_single_hit".
std::string PrometheusName(const std::string& name) {
  std::string out = "kflush_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    os << "# HELP " << pname << " kflush counter " << name << "\n";
    os << "# TYPE " << pname << " counter\n" << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    os << "# HELP " << pname << " kflush gauge " << name << "\n";
    os << "# TYPE " << pname << " gauge\n" << pname << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string pname = PrometheusName(name);
    os << "# HELP " << pname << " kflush histogram " << name << "\n";
    os << "# TYPE " << pname << " histogram\n";
    // Cumulative buckets up to the last non-empty one; le is the bucket's
    // inclusive upper value (integer samples, so LowerBound(i+1) - 1).
    // The final bucket's range is unbounded, covered by the mandatory
    // +Inf series.
    int last = -1;
    for (int i = 0; i < Histogram::num_buckets(); ++i) {
      if (h.bucket_count(i) > 0) last = i;
    }
    uint64_t cumulative = 0;
    for (int i = 0; i <= last && i + 1 < Histogram::num_buckets(); ++i) {
      cumulative += h.bucket_count(i);
      os << pname << "_bucket{le=\""
         << (Histogram::BucketLowerBound(i + 1) - 1) << "\"} " << cumulative
         << "\n";
    }
    os << pname << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    os << pname << "_sum " << h.sum() << "\n";
    os << pname << "_count " << h.count() << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << name << " = {" << h.ToString() << "}\n";
  }
  return os.str();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

ConcurrentHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<ConcurrentHistogram>();
  return slot.get();
}

void MetricsRegistry::AddProvider(
    std::function<void(MetricsSnapshot*)> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.push_back(std::move(provider));
}

MetricsSnapshot AggregateSnapshots(const std::vector<MetricsSnapshot>& parts,
                                   bool include_per_shard) {
  MetricsSnapshot total;
  for (size_t i = 0; i < parts.size(); ++i) {
    const MetricsSnapshot& part = parts[i];
    for (const auto& [name, value] : part.counters) {
      total.counters[name] += value;
    }
    for (const auto& [name, value] : part.gauges) {
      total.gauges[name] += value;
    }
    for (const auto& [name, histogram] : part.histograms) {
      total.histograms[name].Merge(histogram);
    }
    if (include_per_shard) {
      const std::string prefix = "shard" + std::to_string(i) + ".";
      for (const auto& [name, value] : part.counters) {
        total.counters[prefix + name] = value;
      }
      for (const auto& [name, value] : part.gauges) {
        total.gauges[prefix + name] = value;
      }
      for (const auto& [name, histogram] : part.histograms) {
        total.histograms[prefix + name] = histogram;
      }
    }
  }
  return total;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  for (const auto& provider : providers_) {
    provider(&snap);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace kflush
