#include "core/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/thread_util.h"

// Thread-sanitizer detection: GCC defines __SANITIZE_THREAD__, clang
// exposes __has_feature(thread_sanitizer). The snapshot reader swaps its
// fence for an acquire re-load under TSan (see Snapshot()).
#if defined(__SANITIZE_THREAD__)
#define KFLUSH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KFLUSH_TSAN 1
#endif
#endif
#ifndef KFLUSH_TSAN
#define KFLUSH_TSAN 0
#endif

namespace kflush {

namespace internal {

/// One ring slot. Every field is a relaxed atomic: a concurrent snapshot
/// may read a slot mid-overwrite, and atomics keep that read well-defined
/// (the seqlock check then discards the torn value). On x86/ARM a relaxed
/// store compiles to a plain store, so the writer pays nothing for this.
struct TraceSlot {
  std::atomic<uint64_t> seq{0};  // 0 empty; 2p+1 writing pos p; 2p+2 done
  std::atomic<uint64_t> ts{0};
  std::atomic<const char*> category{nullptr};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> flow{0};
  std::atomic<uint8_t> type{0};
  std::atomic<uint8_t> num_args{0};
  struct SlotArg {
    std::atomic<const char*> key{nullptr};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint64_t> bits{0};
  } args[kMaxTraceArgs];
};

/// A thread's ring. Owned by the Tracer registry for the process lifetime
/// (never deallocated outside ResetForTesting), so a writer's cached
/// pointer can never dangle. Only the owning thread writes; `head` is the
/// monotonic count of events ever emitted by that thread.
struct TraceThreadBuffer {
  TraceThreadBuffer(uint32_t tid_in, size_t capacity_in)
      : tid(tid_in),
        capacity(capacity_in == 0 ? 1 : capacity_in),
        slots(new TraceSlot[capacity_in == 0 ? 1 : capacity_in]) {}

  const uint32_t tid;
  const size_t capacity;
  std::atomic<uint64_t> head{0};
  std::unique_ptr<TraceSlot[]> slots;
};

namespace {

uint64_t ArgBits(const TraceArg& arg) {
  switch (arg.kind) {
    case TraceArg::Kind::kInt64:
      return static_cast<uint64_t>(arg.value.i64);
    case TraceArg::Kind::kUint64:
      return arg.value.u64;
    case TraceArg::Kind::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(arg.value.f64));
      std::memcpy(&bits, &arg.value.f64, sizeof(bits));
      return bits;
    }
    case TraceArg::Kind::kString:
      return reinterpret_cast<uintptr_t>(arg.value.str);
    case TraceArg::Kind::kNone:
      break;
  }
  return 0;
}

TraceArg ArgFromBits(const char* key, TraceArg::Kind kind, uint64_t bits) {
  TraceArg arg;
  arg.key = key;
  arg.kind = kind;
  switch (kind) {
    case TraceArg::Kind::kInt64:
      arg.value.i64 = static_cast<int64_t>(bits);
      break;
    case TraceArg::Kind::kUint64:
      arg.value.u64 = bits;
      break;
    case TraceArg::Kind::kDouble:
      std::memcpy(&arg.value.f64, &bits, sizeof(arg.value.f64));
      break;
    case TraceArg::Kind::kString:
      arg.value.str = reinterpret_cast<const char*>(
          static_cast<uintptr_t>(bits));
      break;
    case TraceArg::Kind::kNone:
      break;
  }
  return arg;
}

bool ValidEventType(uint8_t type) {
  return type >= static_cast<uint8_t>(TraceEventType::kSpanBegin) &&
         type <= static_cast<uint8_t>(TraceEventType::kFlowEnd);
}

}  // namespace

}  // namespace internal

Tracer* Tracer::Global() {
  // Leaked intentionally: worker threads may emit during static teardown.
  static Tracer* tracer = new Tracer();
  return tracer;
}

Timestamp Tracer::NowMicros() const {
  Clock* clock = clock_override_.load(std::memory_order_relaxed);
  return clock != nullptr ? clock->NowMicros() : MonotonicMicros();
}

void Tracer::SetClockForTesting(Clock* clock) {
  clock_override_.store(clock, std::memory_order_relaxed);
}

void Tracer::Start(size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  capacity_per_thread_ = capacity_per_thread == 0
                             ? kDefaultCapacityPerThread
                             : capacity_per_thread;
  for (auto& buffer : buffers_) {
    buffer->head.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < buffer->capacity; ++i) {
      buffer->slots[i].seq.store(0, std::memory_order_relaxed);
    }
  }
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buffer : buffers_) {
    buffer->head.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < buffer->capacity; ++i) {
      buffer->slots[i].seq.store(0, std::memory_order_relaxed);
    }
  }
}

void Tracer::ResetForTesting() {
  Stop();
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.clear();
  capacity_per_thread_ = kDefaultCapacityPerThread;
  clock_override_.store(nullptr, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
}

internal::TraceThreadBuffer* Tracer::BufferForThisThread() {
  struct TlsRef {
    internal::TraceThreadBuffer* buffer = nullptr;
    uint64_t epoch = 0;
  };
  static thread_local TlsRef tls;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.buffer != nullptr && tls.epoch == epoch) return tls.buffer;
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.push_back(std::make_unique<internal::TraceThreadBuffer>(
      ThisThreadId(), capacity_per_thread_));
  tls.buffer = buffers_.back().get();
  tls.epoch = epoch;
  return tls.buffer;
}

void Tracer::Emit(TraceEventType type, const char* category, const char* name,
                  std::initializer_list<TraceArg> args) {
  EmitFlow(type, category, name, /*flow_id=*/0, args);
}

void Tracer::EmitFlow(TraceEventType type, const char* category,
                      const char* name, uint64_t flow_id,
                      std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  internal::TraceThreadBuffer* buffer = BufferForThisThread();
  const Timestamp now = NowMicros();
  // Single writer per buffer: head is only advanced by the owning thread.
  const uint64_t pos = buffer->head.load(std::memory_order_relaxed);
  internal::TraceSlot& slot = buffer->slots[pos % buffer->capacity];
  slot.seq.store(2 * pos + 1, std::memory_order_release);
  slot.ts.store(now, std::memory_order_relaxed);
  slot.category.store(category, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.flow.store(flow_id, std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  uint8_t n = 0;
  for (const TraceArg& arg : args) {
    if (n == kMaxTraceArgs) break;
    internal::TraceSlot::SlotArg& out = slot.args[n];
    out.key.store(arg.key, std::memory_order_relaxed);
    out.kind.store(static_cast<uint8_t>(arg.kind), std::memory_order_relaxed);
    out.bits.store(internal::ArgBits(arg), std::memory_order_relaxed);
    ++n;
  }
  slot.num_args.store(n, std::memory_order_relaxed);
  slot.seq.store(2 * pos + 2, std::memory_order_release);
  buffer->head.store(pos + 1, std::memory_order_release);
}

uint64_t Tracer::events_emitted() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Tracer::events_dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    const uint64_t head = buffer->head.load(std::memory_order_relaxed);
    if (head > buffer->capacity) total += head - buffer->capacity;
  }
  return total;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  struct Keyed {
    TraceEvent event;
    uint64_t pos;
  };
  std::vector<Keyed> collected;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& buffer : buffers_) {
      const uint64_t head = buffer->head.load(std::memory_order_acquire);
      const uint64_t n =
          std::min<uint64_t>(head, static_cast<uint64_t>(buffer->capacity));
      for (uint64_t pos = head - n; pos < head; ++pos) {
        const internal::TraceSlot& slot =
            buffer->slots[pos % buffer->capacity];
        const uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq != 2 * pos + 2) continue;  // empty, mid-write, or recycled
        TraceEvent event;
        event.ts_micros = slot.ts.load(std::memory_order_relaxed);
        event.tid = buffer->tid;
        const uint8_t type = slot.type.load(std::memory_order_relaxed);
        event.category = slot.category.load(std::memory_order_relaxed);
        event.name = slot.name.load(std::memory_order_relaxed);
        event.flow_id = slot.flow.load(std::memory_order_relaxed);
        event.num_args = std::min<uint8_t>(
            slot.num_args.load(std::memory_order_relaxed), kMaxTraceArgs);
        for (uint8_t i = 0; i < event.num_args; ++i) {
          const internal::TraceSlot::SlotArg& arg = slot.args[i];
          event.args[i] = internal::ArgFromBits(
              arg.key.load(std::memory_order_relaxed),
              static_cast<TraceArg::Kind>(
                  arg.kind.load(std::memory_order_relaxed)),
              arg.bits.load(std::memory_order_relaxed));
        }
        // Seqlock validation: if the writer lapped us mid-copy, the
        // sequence moved and the copy is discarded.
#if KFLUSH_TSAN
        // TSan does not model thread fences (GCC even hard-errors via
        // -Wtsan). Every payload field is a relaxed atomic, so there is no
        // data race being hidden here; an acquire re-load stands in for
        // the fence in sanitizer builds.
        if (slot.seq.load(std::memory_order_acquire) != seq) continue;
#else
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
#endif
        if (!internal::ValidEventType(type) || event.name == nullptr ||
            event.category == nullptr) {
          continue;
        }
        event.type = static_cast<TraceEventType>(type);
        collected.push_back({event, pos});
      }
    }
  }
  std::sort(collected.begin(), collected.end(),
            [](const Keyed& a, const Keyed& b) {
              if (a.event.ts_micros != b.event.ts_micros) {
                return a.event.ts_micros < b.event.ts_micros;
              }
              if (a.event.tid != b.event.tid) return a.event.tid < b.event.tid;
              return a.pos < b.pos;
            });
  std::vector<TraceEvent> events;
  events.reserve(collected.size());
  for (const Keyed& k : collected) events.push_back(k.event);
  return events;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

void AppendArgValueJson(std::string* out, const TraceArg& arg) {
  switch (arg.kind) {
    case TraceArg::Kind::kInt64:
      *out += std::to_string(arg.value.i64);
      return;
    case TraceArg::Kind::kUint64:
      *out += std::to_string(arg.value.u64);
      return;
    case TraceArg::Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", arg.value.f64);
      *out += buf;
      return;
    }
    case TraceArg::Kind::kString:
      *out += '"';
      AppendJsonEscaped(out, arg.value.str != nullptr ? arg.value.str : "");
      *out += '"';
      return;
    case TraceArg::Kind::kNone:
      break;
  }
  *out += "null";
}

}  // namespace

std::string TraceExporter::EventToJson(const TraceEvent& event) {
  std::string out;
  out.reserve(128);
  out += "{\"name\":\"";
  AppendJsonEscaped(&out, event.name != nullptr ? event.name : "?");
  out += "\",\"cat\":\"";
  AppendJsonEscaped(&out, event.category != nullptr ? event.category : "?");
  out += "\",\"ph\":\"";
  switch (event.type) {
    case TraceEventType::kSpanBegin:
      out += 'B';
      break;
    case TraceEventType::kSpanEnd:
      out += 'E';
      break;
    case TraceEventType::kInstant:
      out += 'i';
      break;
    case TraceEventType::kFlowStart:
      out += 's';
      break;
    case TraceEventType::kFlowStep:
      out += 't';
      break;
    case TraceEventType::kFlowEnd:
      out += 'f';
      break;
  }
  out += "\",\"ts\":";
  out += std::to_string(event.ts_micros);
  out += ",\"pid\":0,\"tid\":";
  out += std::to_string(event.tid);
  if (event.type == TraceEventType::kInstant) {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }
  if (event.type == TraceEventType::kFlowStart ||
      event.type == TraceEventType::kFlowStep ||
      event.type == TraceEventType::kFlowEnd) {
    out += ",\"id\":";
    out += std::to_string(event.flow_id);
    if (event.type == TraceEventType::kFlowEnd) {
      // Bind the arrow head to the enclosing slice, the Perfetto-preferred
      // termination for legacy flow events.
      out += ",\"bp\":\"e\"";
    }
  }
  if (event.num_args > 0) {
    out += ",\"args\":{";
    for (uint8_t i = 0; i < event.num_args; ++i) {
      if (i > 0) out += ',';
      out += '"';
      AppendJsonEscaped(&out,
                        event.args[i].key != nullptr ? event.args[i].key : "?");
      out += "\":";
      AppendArgValueJson(&out, event.args[i]);
    }
    out += '}';
  }
  out += '}';
  return out;
}

void TraceExporter::WriteJson(const std::vector<TraceEvent>& events,
                              uint64_t emitted, uint64_t dropped,
                              std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ",\n";
    os << EventToJson(events[i]);
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"events_emitted\":"
     << emitted << ",\"events_dropped\":" << dropped << "}}\n";
}

ScopedTraceFile::ScopedTraceFile(std::string path, size_t capacity_per_thread)
    : path_(std::move(path)) {
  if (!path_.empty()) {
    Tracer::Global()->Start(capacity_per_thread);
  }
}

ScopedTraceFile::~ScopedTraceFile() {
  if (path_.empty()) return;
  Tracer::Global()->Stop();
  Status s = TraceExporter::WriteFile(path_);
  if (!s.ok()) {
    KFLUSH_ERROR("trace export failed: " << s.ToString());
  }
}

Status TraceExporter::WriteFile(const std::string& path) {
  Tracer* tracer = Tracer::Global();
  const std::vector<TraceEvent> events = tracer->Snapshot();
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  WriteJson(events, tracer->events_emitted(), tracer->events_dropped(), out);
  out.flush();
  if (!out) {
    return Status::IOError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace kflush
