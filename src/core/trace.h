// Flush-cycle tracing: a bounded-memory, per-thread ring-buffer span
// recorder plus the eviction audit trail — the "why" layer on top of the
// metrics registry's "how much". Aggregate counters (PR 3) can say Phase 2
// ran 14 times; only a trace can say *this* wakeup ran Phase 2 because
// Phase 1 freed 3 KB of a 3 MB budget, and picked *that* entry because its
// order key lost the heap comparison (kFlushing's three-phase decision
// chain, DESIGN.md §1).
//
// Design (ring-buffer logger in the style of the related elog project):
//   - Compiled in, runtime-toggled. Disabled cost is one relaxed atomic
//     load and a branch per potential event — hot paths keep their macros.
//   - Emit is wait-free for the writer: each thread owns a ring of slots;
//     a slot is published with a seqlock (odd = being written) over
//     relaxed-atomic payload fields, so a concurrent Snapshot() never
//     blocks a writer and never reads a torn event (it skips slots whose
//     sequence moved). Buffers wrap: new events overwrite the oldest, and
//     the recorder counts what was lost (`events_dropped`).
//   - Timestamps come from MonotonicMicros() — the same clock behind every
//     Stopwatch-fed histogram — so spans and metric samples line up.
//   - Thread ids are util/thread_util.h logical ids, shared with the log
//     prefix.
//
// String contract: every `name`, `category`, and arg key/string value must
// have static storage duration (string literals). Events store the
// pointer, not a copy — that is what keeps Emit allocation-free.
//
// The exporter writes Chrome trace-event JSON (the `traceEvents` array
// format), loadable in Perfetto / chrome://tracing. See docs/TRACING.md.

#ifndef KFLUSH_CORE_TRACE_H_
#define KFLUSH_CORE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "model/microblog.h"
#include "util/clock.h"
#include "util/status.h"

namespace kflush {

/// Typed key/value attached to an event. Keys and string values must be
/// string literals (static storage duration).
struct TraceArg {
  enum class Kind : uint8_t { kNone = 0, kInt64, kUint64, kDouble, kString };

  const char* key = nullptr;
  Kind kind = Kind::kNone;
  union Value {
    int64_t i64;
    uint64_t u64;
    double f64;
    const char* str;
  } value{};

  static TraceArg Int(const char* key, int64_t v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kInt64;
    a.value.i64 = v;
    return a;
  }
  static TraceArg Uint(const char* key, uint64_t v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kUint64;
    a.value.u64 = v;
    return a;
  }
  static TraceArg Double(const char* key, double v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kDouble;
    a.value.f64 = v;
    return a;
  }
  static TraceArg Str(const char* key, const char* v) {
    TraceArg a;
    a.key = key;
    a.kind = Kind::kString;
    a.value.str = v;
    return a;
  }
  static TraceArg Bool(const char* key, bool v) {
    return Str(key, v ? "true" : "false");
  }
};

enum class TraceEventType : uint8_t {
  kSpanBegin = 1,
  kSpanEnd,
  kInstant,
  // Flow events (Chrome phases "s"/"t"/"f"): points sharing a flow id are
  // rendered as one connected arc across threads — how a single ingest
  // request is followed from the network reactor through shard digestion
  // to its durable commit. Emit them from inside an enclosing span on the
  // same thread so viewers can bind the arrow to a slice.
  kFlowStart,
  kFlowStep,
  kFlowEnd,
};

/// Maximum typed args per event (an eviction audit instant uses 8).
constexpr size_t kMaxTraceArgs = 8;

/// One decoded event, as returned by Tracer::Snapshot().
struct TraceEvent {
  Timestamp ts_micros = 0;
  uint32_t tid = 0;
  TraceEventType type = TraceEventType::kInstant;
  const char* category = nullptr;
  const char* name = nullptr;
  uint64_t flow_id = 0;  // flow events only; correlates points across threads
  uint8_t num_args = 0;
  TraceArg args[kMaxTraceArgs];
};

namespace internal {
struct TraceThreadBuffer;
}  // namespace internal

/// The process-wide trace recorder. Start()/Stop() toggle recording at
/// runtime; per-thread ring buffers are created lazily on a thread's first
/// emit and live for the process lifetime (bounded: threads x capacity),
/// so a writer never races a deallocation.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacityPerThread = 4096;

  /// The singleton every instrumentation macro records into.
  static Tracer* Global();

  /// Enables recording. `capacity_per_thread` (events) applies to ring
  /// buffers created from now on; existing buffers keep their size but are
  /// cleared. Idempotent.
  void Start(size_t capacity_per_thread = kDefaultCapacityPerThread);

  /// Disables recording. Events already in the rings stay readable via
  /// Snapshot() until Clear() or the next Start().
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events and zeroes the emit/drop counters. Not
  /// linearizable against concurrent Emit (a racing writer may land one
  /// event after the wipe); quiesce writers for an exact clear.
  void Clear();

  /// Total events ever emitted / overwritten by ring wraparound since the
  /// last Start()/Clear().
  uint64_t events_emitted() const;
  uint64_t events_dropped() const;

  /// Copies every readable event out of every thread ring, sorted by
  /// (timestamp, tid). Safe against concurrent emit: slots being written
  /// while the snapshot reads them are skipped, never torn.
  std::vector<TraceEvent> Snapshot() const;

  /// Emits one event (usually via TraceSpan / KFLUSH_TRACE_INSTANT).
  /// No-op while disabled. At most kMaxTraceArgs args are kept.
  void Emit(TraceEventType type, const char* category, const char* name,
            std::initializer_list<TraceArg> args);

  /// Emits one flow event (kFlowStart/kFlowStep/kFlowEnd) carrying
  /// `flow_id`; usually via the KFLUSH_TRACE_FLOW_* macros.
  void EmitFlow(TraceEventType type, const char* category, const char* name,
                uint64_t flow_id, std::initializer_list<TraceArg> args = {});

  /// Timestamp source override for deterministic tests (golden traces).
  /// Pass nullptr to restore MonotonicMicros(). Not thread-safe against
  /// concurrent emit; test-only.
  void SetClockForTesting(Clock* clock);

  /// Test-only: Clear() plus forget every per-thread buffer, so a fresh
  /// test sees deterministic buffer registration. Unsafe while any other
  /// thread may emit.
  void ResetForTesting();

 private:
  Tracer() = default;

  internal::TraceThreadBuffer* BufferForThisThread();
  Timestamp NowMicros() const;

  friend struct internal::TraceThreadBuffer;

  std::atomic<bool> enabled_{false};
  std::atomic<Clock*> clock_override_{nullptr};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<internal::TraceThreadBuffer>> buffers_;
  size_t capacity_per_thread_ = kDefaultCapacityPerThread;
  /// Bumped by Start()/Clear()/ResetForTesting(); threads re-resolve their
  /// cached buffer pointer when stale.
  std::atomic<uint64_t> epoch_{1};
};

/// RAII span: emits kSpanBegin on construction and kSpanEnd on End() or
/// destruction. Cheap no-op while tracing is disabled (the enabled check
/// happens before any ring traffic; arg expressions are still evaluated,
/// so keep them to scalars already at hand).
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name,
            std::initializer_list<TraceArg> begin_args = {})
      : category_(category), name_(name) {
    Tracer* tracer = Tracer::Global();
    active_ = tracer->enabled();
    if (active_) {
      tracer->Emit(TraceEventType::kSpanBegin, category_, name_, begin_args);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { End(); }

  /// Ends the span early, attaching outcome args to the end event.
  void End(std::initializer_list<TraceArg> end_args = {}) {
    if (!active_) return;
    active_ = false;
    Tracer::Global()->Emit(TraceEventType::kSpanEnd, category_, name_,
                           end_args);
  }

 private:
  const char* category_;
  const char* name_;
  bool active_ = false;
};

/// Instant-event helper; the enabled check guards arg evaluation.
#define KFLUSH_TRACE_INSTANT(category, name, ...)                       \
  do {                                                                  \
    ::kflush::Tracer* _kflush_tracer = ::kflush::Tracer::Global();      \
    if (_kflush_tracer->enabled()) {                                    \
      _kflush_tracer->Emit(::kflush::TraceEventType::kInstant,          \
                           (category), (name), {__VA_ARGS__});          \
    }                                                                   \
  } while (0)

/// Flow-event helpers: begin a flow on the thread that accepted the
/// request, step it on every thread that touches it, end it where the
/// request completes. The enabled check guards arg evaluation, so the
/// disabled cost stays one relaxed load and a branch.
#define KFLUSH_TRACE_FLOW(event_type, category, name, flow_id, ...)     \
  do {                                                                  \
    ::kflush::Tracer* _kflush_tracer = ::kflush::Tracer::Global();      \
    if (_kflush_tracer->enabled()) {                                    \
      _kflush_tracer->EmitFlow((event_type), (category), (name),        \
                               (flow_id), {__VA_ARGS__});               \
    }                                                                   \
  } while (0)

#define KFLUSH_TRACE_FLOW_BEGIN(category, name, flow_id, ...)           \
  KFLUSH_TRACE_FLOW(::kflush::TraceEventType::kFlowStart, (category),   \
                    (name), (flow_id), ##__VA_ARGS__)
#define KFLUSH_TRACE_FLOW_STEP(category, name, flow_id, ...)            \
  KFLUSH_TRACE_FLOW(::kflush::TraceEventType::kFlowStep, (category),    \
                    (name), (flow_id), ##__VA_ARGS__)
#define KFLUSH_TRACE_FLOW_END(category, name, flow_id, ...)             \
  KFLUSH_TRACE_FLOW(::kflush::TraceEventType::kFlowEnd, (category),     \
                    (name), (flow_id), ##__VA_ARGS__)

// ---------------------------------------------------------------------------
// Eviction audit trail
// ---------------------------------------------------------------------------

/// One victim of one flush phase: everything needed to replay the
/// decision. Phase 1 victims are over-k entries being trimmed back to k
/// (no heap involved: rank -1, order key 0); Phase 2/3 victims come out of
/// SelectVictims with their heap rank and the order key the heap compared
/// (last arrival for Phase 2, last query — or last arrival under the
/// ablation — for Phase 3). FIFO reports one victim per flushed segment
/// and LRU one per evicted record, both under phase 1.
struct EvictionAuditRecord {
  int shard = -1;                   // owning shard; -1 = unsharded store
  int phase = 1;                    // 1..3 (PhaseStats index + 1)
  TermId term = kInvalidTermId;     // victim entry (FIFO/LRU: invalid)
  MicroblogId record_id = kInvalidMicroblogId;  // LRU's per-record victim
  int64_t heap_rank = -1;           // position in SelectVictims output
  Timestamp order_key = 0;          // eviction key the heap compared
  uint64_t postings_dropped = 0;    // postings this victim shed
  uint64_t entries_evicted = 0;     // whole entries removed (0 or 1; LRU >=0)
  uint64_t records_flushed = 0;     // records whose pcount reached zero
  uint64_t record_bytes = 0;        // bytes of those records
  uint64_t bytes_freed = 0;         // total data bytes this victim freed
};

/// Unbounded (unlike the trace rings) collector of audit records, so the
/// per-phase sums can be reconciled exactly against PhaseStats — install
/// one via FlushPolicy::set_audit_trail. Appends come from the single
/// flushing thread; reads may come from anywhere.
class EvictionAuditTrail {
 public:
  void Append(const EvictionAuditRecord& record) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(record);
  }

  std::vector<EvictionAuditRecord> Records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<EvictionAuditRecord> records_;
};

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// Writes traces in the Chrome trace-event JSON format ("traceEvents"
/// array of B/E/i phase objects, timestamps in microseconds), which
/// Perfetto and chrome://tracing load directly.
class TraceExporter {
 public:
  /// Serializes `events` (as produced by Tracer::Snapshot()) to `os`.
  /// `emitted`/`dropped` are recorded under "otherData" so a wrapped ring
  /// is visible in the artifact.
  static void WriteJson(const std::vector<TraceEvent>& events,
                        uint64_t emitted, uint64_t dropped, std::ostream& os);

  /// Snapshot of the global tracer written to `path`.
  static Status WriteFile(const std::string& path);

  /// One event as a JSON object (exposed for tests).
  static std::string EventToJson(const TraceEvent& event);
};

/// The plumbing behind every binary's --trace-out flag: starts the global
/// recorder on construction and, on destruction, stops it and writes the
/// Chrome trace JSON to `path` (write failures are logged, not thrown).
/// An empty path makes the whole object a no-op.
class ScopedTraceFile {
 public:
  explicit ScopedTraceFile(
      std::string path,
      size_t capacity_per_thread = Tracer::kDefaultCapacityPerThread);
  ~ScopedTraceFile();

  ScopedTraceFile(const ScopedTraceFile&) = delete;
  ScopedTraceFile& operator=(const ScopedTraceFile&) = delete;

  bool active() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_TRACE_H_
