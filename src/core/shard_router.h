// Term-to-shard routing for the sharded deployment. Index entries —
// keyword ids, user ids, spatial tile ids, all already folded into the
// one TermId space by the attribute extractor — are hash-partitioned
// across N shards, so a term's entire posting list (memory and disk) has
// exactly one owner and single-term queries touch one shard.
//
// STABLE API: the mix function and the modulo placement below are part of
// the on-disk / cross-run contract. Benchmarks, the differential oracle,
// and any persisted per-shard artifact assume a term routes to the same
// shard in every build; changing ShardMix64 or ShardForTerm silently
// reshuffles every sharded experiment. tests/core/shard_router_test.cc
// pins golden values so a change fails loudly instead.

#ifndef KFLUSH_CORE_SHARD_ROUTER_H_
#define KFLUSH_CORE_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>

#include "model/microblog.h"

namespace kflush {

/// The 64-bit finalizer of Steele et al.'s SplitMix64. TermIds are nearly
/// sequential (keyword ranks, user ids, row-major tile numbers), so the
/// raw modulo would stripe hot neighboring terms onto the same shard; the
/// finalizer is a full-avalanche bijection that decorrelates them.
inline uint64_t ShardMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Maps terms to shard ids in [0, num_shards). Stateless beyond the shard
/// count; copies are cheap and routing is thread-safe.
class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// The owning shard of `term`. Total: every TermId (including values
  /// that never occur) routes somewhere, so callers need no fallback.
  size_t ShardForTerm(TermId term) const {
    return static_cast<size_t>(ShardMix64(term) % num_shards_);
  }

 private:
  size_t num_shards_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_SHARD_ROUTER_H_
