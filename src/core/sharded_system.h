// ShardedMicroblogSystem: the threaded sharded deployment — N full
// MicroblogSystem instances (each with its own bounded ingest queue,
// digestion thread, and background flusher), fed by a routing Submit()
// that stamps records centrally and splits each producer batch into
// per-shard routed sub-batches. Flush cycles run concurrently on
// independent shard locks (each shard's flusher drives only its own
// store); queries fan out through a ShardedQueryEngine over the shard
// stores. This is the assembly bench_shard_scaling measures and the TSan
// shard stress test hammers.

#ifndef KFLUSH_CORE_SHARDED_SYSTEM_H_
#define KFLUSH_CORE_SHARDED_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "core/shard_router.h"
#include "core/sharded_query_engine.h"
#include "core/system.h"

namespace kflush {

/// Sharded system configuration.
struct ShardedSystemOptions {
  /// Per-shard template; store.memory_budget_bytes is the TOTAL budget
  /// (split evenly), queue capacity and stall factor apply per shard.
  SystemOptions system;
  size_t num_shards = 1;
};

class ShardedMicroblogSystem {
 public:
  explicit ShardedMicroblogSystem(ShardedSystemOptions options);
  ~ShardedMicroblogSystem();

  ShardedMicroblogSystem(const ShardedMicroblogSystem&) = delete;
  ShardedMicroblogSystem& operator=(const ShardedMicroblogSystem&) = delete;

  void Start();
  /// Stops every shard system (drains queues, joins threads). Idempotent.
  void Stop();

  /// Stamps ids/timestamps centrally, routes each record's terms, and
  /// submits one routed sub-batch per owning shard. Admission is
  /// all-or-nothing: a queue slot is reserved on every owner shard
  /// (blocking under backpressure) before any sub-batch is enqueued, so a
  /// batch is either fully admitted on all owners or not at all — false
  /// means no shard holds any part of it and a retry cannot double-insert.
  /// Returns false once stopped. Term-less records are counted and
  /// dropped here.
  bool Submit(std::vector<Microblog> batch);

  /// Non-blocking admission outcome for TrySubmit.
  enum class SubmitOutcome {
    kAccepted,    // every owner shard admitted its sub-batch
    kOverloaded,  // some owner shard's ingest queue was full; nothing
                  // was admitted anywhere (explicit-NACK material)
    kStopped,     // the system is stopping; nothing was admitted
  };

  /// Like Submit, but never blocks: if any owner shard's queue is full
  /// the whole batch is rejected with kOverloaded and no shard receives
  /// any part of it. The network front-end turns kOverloaded into a
  /// protocol-level NACK instead of stalling the event loop.
  /// `admitted_records`/`skipped_records` (optional) report how many
  /// records were admitted with terms / dropped as term-less on success.
  /// `ticket` (optional) is attached to every owner sub-batch so the
  /// digestion thread committing the last one can close the request's
  /// commit-stage clock; an accepted batch with no owner sub-batches
  /// (every record term-less) Completes the ticket here.
  SubmitOutcome TrySubmit(std::vector<Microblog> batch,
                          uint64_t* admitted_records = nullptr,
                          uint64_t* skipped_records = nullptr,
                          std::shared_ptr<IngestTicket> ticket = nullptr);

  /// Deepest per-shard ingest queue, in batches (lock-free estimate);
  /// the admission signal the network front-end gates on.
  size_t max_queue_depth() const;
  /// Sum of per-shard ingest-queue depths (lock-free estimate).
  size_t total_queue_depth() const;

  /// Fan-out query against current contents (thread-safe, any time).
  Result<QueryResult> Query(const TopKQuery& query);

  /// Changes k on every shard.
  void SetK(uint32_t k);

  /// First non-OK shard durability status (OK with durability disabled).
  Status DurabilityStatus() const;

  size_t num_shards() const { return systems_.size(); }
  MicroblogSystem* shard_system(size_t i) { return systems_[i].get(); }
  MicroblogStore* shard_store(size_t i) { return systems_[i]->store(); }
  ShardedQueryEngine* engine() { return engine_.get(); }
  const ShardRouter& router() const { return router_; }

  /// Records in admitted batches (including term-less records that were
  /// dropped by the router); rejected batches contribute nothing.
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Per-shard record copies routed (a record on s shards counts s).
  uint64_t routed_copies() const {
    return routed_copies_.load(std::memory_order_relaxed);
  }
  /// Term-less records dropped by the router.
  uint64_t skipped_no_terms() const {
    return skipped_no_terms_.load(std::memory_order_relaxed);
  }
  /// Sum of copies digested across shards.
  uint64_t digested() const;

 private:
  /// A producer batch routed into per-shard sub-batches plus its tallies;
  /// tallies are applied to the counters only if admission succeeds, so a
  /// rejected batch leaves no accounting trace (a retry re-counts).
  struct RoutedBatch {
    std::vector<IngestBatch> per_shard;
    std::vector<size_t> owners;  // shards with a non-empty sub-batch
    uint64_t records = 0;        // records admitted with >=1 term
    uint64_t skipped = 0;        // term-less records dropped
    uint64_t copies = 0;         // per-shard record copies
  };

  RoutedBatch RouteBatch(std::vector<Microblog> batch);
  /// Registers an in-flight submit; false once stopping (nothing to undo).
  bool BeginSubmit();
  void EndSubmit();
  /// Pushes every owner sub-batch into its reserved slot and applies the
  /// tallies. Requires a reservation held on every owner shard.
  bool CommitReserved(RoutedBatch* routed);

  ShardedSystemOptions options_;
  Clock* clock_;
  std::unique_ptr<AttributeExtractor> extractor_;
  ShardRouter router_;
  std::vector<std::unique_ptr<MicroblogSystem>> systems_;
  std::unique_ptr<ShardedQueryEngine> engine_;

  // Stop() handshake: new submits are refused once stopping_ is set, and
  // shard teardown waits for in-flight submits to unwind (their blocked
  // reservations are aborted) so a half-reserved batch can never race a
  // closing queue into a partial admit.
  std::mutex submit_mu_;
  std::condition_variable submit_cv_;
  bool stopping_ = false;
  size_t in_flight_submits_ = 0;

  std::atomic<MicroblogId> next_id_{1};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> routed_copies_{0};
  std::atomic<uint64_t> skipped_no_terms_{0};
};

}  // namespace kflush

#endif  // KFLUSH_CORE_SHARDED_SYSTEM_H_
