// ShardedMicroblogSystem: the threaded sharded deployment — N full
// MicroblogSystem instances (each with its own bounded ingest queue,
// digestion thread, and background flusher), fed by a routing Submit()
// that stamps records centrally and splits each producer batch into
// per-shard routed sub-batches. Flush cycles run concurrently on
// independent shard locks (each shard's flusher drives only its own
// store); queries fan out through a ShardedQueryEngine over the shard
// stores. This is the assembly bench_shard_scaling measures and the TSan
// shard stress test hammers.

#ifndef KFLUSH_CORE_SHARDED_SYSTEM_H_
#define KFLUSH_CORE_SHARDED_SYSTEM_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/shard_router.h"
#include "core/sharded_query_engine.h"
#include "core/system.h"

namespace kflush {

/// Sharded system configuration.
struct ShardedSystemOptions {
  /// Per-shard template; store.memory_budget_bytes is the TOTAL budget
  /// (split evenly), queue capacity and stall factor apply per shard.
  SystemOptions system;
  size_t num_shards = 1;
};

class ShardedMicroblogSystem {
 public:
  explicit ShardedMicroblogSystem(ShardedSystemOptions options);
  ~ShardedMicroblogSystem();

  ShardedMicroblogSystem(const ShardedMicroblogSystem&) = delete;
  ShardedMicroblogSystem& operator=(const ShardedMicroblogSystem&) = delete;

  void Start();
  /// Stops every shard system (drains queues, joins threads). Idempotent.
  void Stop();

  /// Stamps ids/timestamps centrally, routes each record's terms, and
  /// submits one routed sub-batch per owning shard (blocking on any full
  /// shard queue — per-shard backpressure throttles the producer).
  /// Returns false once stopped. Term-less records are counted and
  /// dropped here.
  bool Submit(std::vector<Microblog> batch);

  /// Fan-out query against current contents (thread-safe, any time).
  Result<QueryResult> Query(const TopKQuery& query);

  /// Changes k on every shard.
  void SetK(uint32_t k);

  /// First non-OK shard durability status (OK with durability disabled).
  Status DurabilityStatus() const;

  size_t num_shards() const { return systems_.size(); }
  MicroblogSystem* shard_system(size_t i) { return systems_[i].get(); }
  MicroblogStore* shard_store(size_t i) { return systems_[i]->store(); }
  ShardedQueryEngine* engine() { return engine_.get(); }
  const ShardRouter& router() const { return router_; }

  /// Records accepted by Submit (central count, before routing).
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Per-shard record copies routed (a record on s shards counts s).
  uint64_t routed_copies() const {
    return routed_copies_.load(std::memory_order_relaxed);
  }
  /// Term-less records dropped by the router.
  uint64_t skipped_no_terms() const {
    return skipped_no_terms_.load(std::memory_order_relaxed);
  }
  /// Sum of copies digested across shards.
  uint64_t digested() const;

 private:
  ShardedSystemOptions options_;
  Clock* clock_;
  std::unique_ptr<AttributeExtractor> extractor_;
  ShardRouter router_;
  std::vector<std::unique_ptr<MicroblogSystem>> systems_;
  std::unique_ptr<ShardedQueryEngine> engine_;

  std::atomic<MicroblogId> next_id_{1};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> routed_copies_{0};
  std::atomic<uint64_t> skipped_no_terms_{0};
};

}  // namespace kflush

#endif  // KFLUSH_CORE_SHARDED_SYSTEM_H_
