// Central metrics subsystem: named counters, gauges, and histogram-backed
// timers registered once and sampled through a consistent Snapshot(). The
// paper's whole evaluation is quantitative — hit ratio, flushed bytes per
// phase, index-scan overhead (§IV, Figs. 5-12) — so every layer reports
// into one registry instead of growing ad-hoc counter structs.
//
// Thread-safety contract:
//   - counter()/gauge()/histogram() are get-or-create and may be called
//     from any thread; returned pointers stay valid for the registry's
//     lifetime (instruments are never deregistered).
//   - Counter/Gauge updates are lock-free atomics; ConcurrentHistogram
//     stripes recorders across several mutex-guarded histograms so query
//     threads don't serialize on one lock.
//   - Snapshot() is safe against concurrent recorders: each instrument is
//     read atomically (counters) or under its stripe locks (histograms).
//     The snapshot is per-instrument consistent, not globally atomic —
//     cross-instrument invariants (e.g. hits + misses == queries) hold
//     exactly only on a quiesced registry.
//   - Components that already maintain internal stats structs (PolicyStats,
//     DiskStats, IngestStats, MemoryTracker) are exported at snapshot time
//     through registered providers, so Snapshot() is the one-stop view.

#ifndef KFLUSH_CORE_METRICS_REGISTRY_H_
#define KFLUSH_CORE_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace kflush {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, resident bytes). Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe histogram recorder. Histogram itself is documented
/// not-thread-safe; this wrapper stripes recorders across several
/// mutex-guarded instances (keyed by thread id) and merges on read, so
/// many recording threads rarely contend and a snapshot reader never
/// observes a torn bucket array.
class ConcurrentHistogram {
 public:
  ConcurrentHistogram() = default;
  ConcurrentHistogram(const ConcurrentHistogram&) = delete;
  ConcurrentHistogram& operator=(const ConcurrentHistogram&) = delete;

  void Record(uint64_t value);

  /// Merged copy of all stripes. Safe against concurrent Record().
  Histogram Snapshot() const;

  /// Zeroes all stripes. Not linearizable against concurrent Record();
  /// quiesce recorders first (as experiment drivers do between phases).
  void Reset();

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    Histogram histogram;
  };
  std::array<Stripe, kStripes> stripes_;
};

/// Point-in-time view of every registered instrument plus provider output.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  uint64_t counter_or(const std::string& name, uint64_t fallback = 0) const {
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }

  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,min,max,mean,sum,p50,p90,p95,p99}}}. Stable key order (maps).
  std::string ToJson() const;

  /// Prometheus text exposition format (one block per instrument with
  /// `# HELP` and `# TYPE` lines, names sanitized to [a-zA-Z0-9_] and
  /// prefixed "kflush_"): counters become `counter`, gauges `gauge`, and
  /// histograms `histogram` with cumulative `_bucket{le="..."}` series
  /// (ending in le="+Inf") plus `_sum` and `_count`.
  std::string ToPrometheus() const;

  /// Compact human-readable dump, one instrument per line.
  std::string ToString() const;
};

/// Folds per-shard registry snapshots into one aggregate view: counters
/// and gauges sum, histograms merge. With `include_per_shard`, every
/// source series is additionally kept under a "shard<i>." prefix (i = the
/// snapshot's index in `parts`) so per-shard breakdowns survive in the
/// same artifact the benchmarks serialize. This is the documented way to
/// combine multi-store deployments — snapshots aggregate, registries
/// don't. Note the summed gauges: levels like memory.data_used_bytes are
/// meaningful totals across shards, but a handful (e.g.
/// memory.budget_bytes) sum to the deployment total by construction.
MetricsSnapshot AggregateSnapshots(const std::vector<MetricsSnapshot>& parts,
                                   bool include_per_shard = false);

/// The registry. One instance per MicroblogStore (benchmarks and multi-
/// store deployments aggregate snapshots, not registries).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the pointer stays valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  ConcurrentHistogram* histogram(const std::string& name);

  /// Registers a callback that contributes component-owned stats (policy,
  /// disk, ingest, memory) to every Snapshot(). Providers run under the
  /// registry mutex and must not call back into the registry.
  void AddProvider(std::function<void(MetricsSnapshot*)> provider);

  /// Samples every instrument and runs every provider.
  MetricsSnapshot Snapshot() const;

  /// Zeroes counters and histograms (gauges and providers keep their
  /// sources). Same caveat as ConcurrentHistogram::Reset: quiesce first.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ConcurrentHistogram>> histograms_;
  std::vector<std::function<void(MetricsSnapshot*)>> providers_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_METRICS_REGISTRY_H_
