#include "core/metrics.h"

#include <sstream>

namespace kflush {

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kSingle:
      return "single";
    case QueryType::kAnd:
      return "AND";
    case QueryType::kOr:
      return "OR";
  }
  return "unknown";
}

void QueryMetrics::Record(QueryType type, bool memory_hit,
                          uint64_t disk_term_reads, uint64_t latency_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.queries;
  const int i = static_cast<int>(type);
  ++data_.queries_by_type[i];
  if (memory_hit) {
    ++data_.memory_hits;
    ++data_.hits_by_type[i];
  } else {
    ++data_.memory_misses;
  }
  data_.disk_term_reads += disk_term_reads;
  data_.latency_micros.Record(latency_micros);
}

void QueryMetrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = QueryMetricsSnapshot();
}

QueryMetricsSnapshot QueryMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

std::string QueryMetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " hit_ratio=" << HitRatio() * 100.0 << "%"
     << " (single=" << HitRatioFor(QueryType::kSingle) * 100.0
     << "% and=" << HitRatioFor(QueryType::kAnd) * 100.0
     << "% or=" << HitRatioFor(QueryType::kOr) * 100.0
     << "%) disk_term_reads=" << disk_term_reads;
  return os.str();
}

}  // namespace kflush
