#include "core/metrics.h"

#include <sstream>

namespace kflush {

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kSingle:
      return "single";
    case QueryType::kAnd:
      return "AND";
    case QueryType::kOr:
      return "OR";
  }
  return "unknown";
}

void QueryMetrics::Record(QueryType type, bool memory_hit,
                          uint64_t disk_term_reads, uint64_t latency_micros) {
  const int i = static_cast<int>(type);
  // Totals first, hit/miss last with release order — see the contract in
  // the header. The release pairs with Snapshot's acquire loads so every
  // observed hit/miss carries its query increment with it.
  queries_.fetch_add(1, std::memory_order_relaxed);
  queries_by_type_[i].fetch_add(1, std::memory_order_relaxed);
  disk_term_reads_.fetch_add(disk_term_reads, std::memory_order_relaxed);
  latency_micros_.Record(latency_micros);
  if (memory_hit) {
    hits_by_type_[i].fetch_add(1, std::memory_order_release);
    memory_hits_.fetch_add(1, std::memory_order_release);
  } else {
    memory_misses_.fetch_add(1, std::memory_order_release);
  }
}

void QueryMetrics::Reset() {
  // Callers must have quiesced recorders and snapshotters (documented in
  // the header): Reset makes no ordering promises of its own.
  memory_hits_.store(0, std::memory_order_relaxed);
  memory_misses_.store(0, std::memory_order_relaxed);
  for (auto& h : hits_by_type_) h.store(0, std::memory_order_relaxed);
  latency_micros_.Reset();
  queries_.store(0, std::memory_order_relaxed);
  disk_term_reads_.store(0, std::memory_order_relaxed);
  for (auto& q : queries_by_type_) q.store(0, std::memory_order_relaxed);
}

QueryMetricsSnapshot QueryMetrics::Snapshot() const {
  QueryMetricsSnapshot snap;
  // Hit/miss counters first (acquire), totals after — the reader half of
  // the anti-tearing contract.
  snap.memory_hits = memory_hits_.load(std::memory_order_acquire);
  snap.memory_misses = memory_misses_.load(std::memory_order_acquire);
  for (int i = 0; i < 3; ++i) {
    snap.hits_by_type[i] = hits_by_type_[i].load(std::memory_order_acquire);
  }
  snap.latency_micros = latency_micros_.Snapshot();
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.disk_term_reads = disk_term_reads_.load(std::memory_order_relaxed);
  for (int i = 0; i < 3; ++i) {
    snap.queries_by_type[i] =
        queries_by_type_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

std::string QueryMetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " hit_ratio=" << HitRatio() * 100.0 << "%"
     << " (single=" << HitRatioFor(QueryType::kSingle) * 100.0
     << "% and=" << HitRatioFor(QueryType::kAnd) * 100.0
     << "% or=" << HitRatioFor(QueryType::kOr) * 100.0
     << "%) disk_term_reads=" << disk_term_reads;
  return os.str();
}

}  // namespace kflush
