#include "core/sharded_store.h"

#include <algorithm>

#include "core/trace.h"
#include "util/logging.h"

namespace kflush {

ShardedMicroblogStore::ShardedMicroblogStore(ShardedStoreOptions options)
    : options_(options),
      router_(options.num_shards == 0 ? 1 : options.num_shards) {
  clock_ = options_.store.clock != nullptr ? options_.store.clock
                                           : WallClock::Default();
  extractor_ = MakeAttribute(options_.store.attribute);
  const size_t n = router_.num_shards();
  shards_.reserve(n);
  engines_.reserve(n);
  std::vector<ShardQueryTarget> targets;
  targets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StoreOptions so = options_.store;
    so.memory_budget_bytes = options_.store.memory_budget_bytes / n;
    so.shard_id = static_cast<int>(i);
    if (so.durability.enabled) {
      // One WAL + segment directory per shard.
      so.durability.dir =
          options_.store.durability.dir + "/shard-" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<MicroblogStore>(so));
    engines_.push_back(std::make_unique<QueryEngine>(shards_.back().get()));
    targets.push_back({shards_.back().get(), engines_.back().get()});
  }
  engine_ = std::make_unique<ShardedQueryEngine>(std::move(targets));
  // Central id stamping resumes past every recovered id on any shard.
  MicroblogId max_recovered = 0;
  for (auto& shard : shards_) {
    max_recovered = std::max(max_recovered, shard->recovered_max_id());
  }
  if (max_recovered > 0) {
    next_id_.store(max_recovered + 1, std::memory_order_relaxed);
  }
}

Status ShardedMicroblogStore::DurabilityStatus() const {
  for (const auto& shard : shards_) {
    const Status& s = shard->durability_status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedMicroblogStore::CommitDurableAll() {
  for (auto& shard : shards_) {
    KFLUSH_RETURN_IF_ERROR(shard->CommitDurable());
  }
  return Status::OK();
}

ShardedMicroblogStore::~ShardedMicroblogStore() = default;

Status ShardedMicroblogStore::Insert(Microblog blog) {
  // Central stamping, before routing: the copies a multi-term record
  // leaves on several shards must be byte-identical.
  if (blog.id == kInvalidMicroblogId) {
    blog.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  if (blog.created_at == 0) {
    blog.created_at = clock_->NowMicros();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Per-thread scratch: the routing buffers never escape this frame, and
  // resizing `owned` only on shard-count growth keeps the per-insert cost
  // at clearing the few sublists actually touched last time.
  static thread_local std::vector<TermId> terms;
  static thread_local std::vector<std::vector<TermId>> owned;
  static thread_local std::vector<size_t> owners;
  extractor_->ExtractTerms(blog, &terms);
  if (terms.empty()) {
    skipped_no_terms_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  if (owned.size() < shards_.size()) owned.resize(shards_.size());
  for (size_t owner : owners) owned[owner].clear();
  owners.clear();
  for (TermId term : terms) {
    const size_t owner = router_.ShardForTerm(term);
    if (owned[owner].empty()) owners.push_back(owner);
    owned[owner].push_back(term);
  }
  routed_copies_.fetch_add(owners.size(), std::memory_order_relaxed);
  for (size_t i = 0; i + 1 < owners.size(); ++i) {
    KFLUSH_RETURN_IF_ERROR(
        shards_[owners[i]]->InsertRouted(blog, owned[owners[i]]));
  }
  const size_t last = owners.back();
  return shards_[last]->InsertRouted(std::move(blog), owned[last]);
}

size_t ShardedMicroblogStore::FlushAllOnce() {
  size_t freed = 0;
  for (auto& shard : shards_) {
    if (shard->MemoryFull()) freed += shard->FlushOnce();
  }
  return freed;
}

void ShardedMicroblogStore::SetK(uint32_t k) {
  for (auto& shard : shards_) shard->SetK(k);
}

ShardedIngestStats ShardedMicroblogStore::sharded_ingest_stats() const {
  ShardedIngestStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.routed_copies = routed_copies_.load(std::memory_order_relaxed);
  stats.skipped_no_terms = skipped_no_terms_.load(std::memory_order_relaxed);
  return stats;
}

IngestStats ShardedMicroblogStore::AggregatedIngestStats() const {
  IngestStats total;
  for (const auto& shard : shards_) {
    const IngestStats s = shard->ingest_stats();
    total.inserted += s.inserted;
    total.skipped_no_terms += s.skipped_no_terms;
    total.flush_triggers += s.flush_triggers;
  }
  // Term-less arrivals are dropped by the router, not the shards.
  total.skipped_no_terms += skipped_no_terms_.load(std::memory_order_relaxed);
  return total;
}

PolicyStats ShardedMicroblogStore::AggregatedPolicyStats() const {
  PolicyStats total;
  for (const auto& shard : shards_) {
    MergePolicyStats(shard->policy()->stats(), &total);
  }
  return total;
}

DiskStats ShardedMicroblogStore::AggregatedDiskStats() const {
  DiskStats total;
  for (const auto& shard : shards_) {
    const DiskStats s = shard->disk()->stats();
    total.postings_added += s.postings_added;
    total.records_written += s.records_written;
    total.record_bytes_written += s.record_bytes_written;
    total.write_batches += s.write_batches;
    total.term_queries += s.term_queries;
    total.records_read += s.records_read;
    total.record_bytes_read += s.record_bytes_read;
    total.posting_bytes_read += s.posting_bytes_read;
    total.records_recovered += s.records_recovered;
    total.torn_bytes_truncated += s.torn_bytes_truncated;
    total.fsyncs += s.fsyncs;
  }
  return total;
}

MetricsSnapshot ShardedMicroblogStore::AggregatedMetrics(
    bool include_per_shard) const {
  std::vector<MetricsSnapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    parts.push_back(shard->metrics_registry()->Snapshot());
  }
  return AggregateSnapshots(parts, include_per_shard);
}

size_t ShardedMicroblogStore::DataUsed() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->tracker().DataUsed();
  return total;
}

size_t ShardedMicroblogStore::NumTerms() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->policy()->NumTerms();
  return total;
}

size_t ShardedMicroblogStore::NumKFilledTerms() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->policy()->NumKFilledTerms();
  }
  return total;
}

size_t ShardedMicroblogStore::AuxMemoryBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->policy()->AuxMemoryBytes();
  return total;
}

size_t ShardedMicroblogStore::PeakFlushBufferBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->flush_buffer().peak_bytes();
  }
  return total;
}

void ShardedMicroblogStore::CollectEntrySizes(std::vector<size_t>* out) const {
  for (const auto& shard : shards_) shard->policy()->CollectEntrySizes(out);
}

}  // namespace kflush
