// MicroblogStore: the assembled in-memory microblogs store (paper Figure
// 2/3). It wires together the raw data store, the policy-owned index
// structure, the memory tracker, the flush buffer, and the disk tier, and
// enforces the memory budget: once data contents fill the budget, a flush
// of B% of the budget is triggered (inline, or by the background flusher
// when embedded in a MicroblogSystem).

#ifndef KFLUSH_CORE_STORE_H_
#define KFLUSH_CORE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "core/metrics_registry.h"
#include "core/ranking.h"
#include "model/attribute.h"
#include "model/keyword_dictionary.h"
#include "model/tokenizer.h"
#include "policy/policy_factory.h"
#include "storage/durability.h"
#include "storage/sim_disk_store.h"
#include "util/status.h"

namespace kflush {

class SegmentDiskStore;
class SubscriptionSink;
class WriteAheadLog;

/// Store configuration. Defaults mirror the paper's defaults scaled to
/// laptop experiments (see DESIGN.md): k=20, B=10% of the budget.
struct StoreOptions {
  /// Main-memory budget for data contents (raw records + index).
  size_t memory_budget_bytes = 64ull << 20;
  /// B: the fraction of the budget each flush must free (paper default 10%).
  double flush_fraction = 0.10;
  uint32_t k = 20;
  PolicyKind policy = PolicyKind::kKFlushing;
  AttributeKind attribute = AttributeKind::kKeyword;
  RankingKind ranking = RankingKind::kTemporal;
  /// kFlushing phase toggles (ablation experiments).
  bool enable_phase2 = true;
  bool enable_phase3 = true;
  /// kFlushing Phase 3 ordering: least-recently-queried (the paper's
  /// choice) when true, least-recently-arrived when false (ablation).
  bool phase3_by_query_time = true;
  /// Trigger a flush inline from Insert when memory fills. Disable when a
  /// background flusher thread owns flushing (MicroblogSystem does).
  bool auto_flush = true;
  /// Timestamp source; null = the process wall clock. Experiments inject a
  /// SimClock for reproducibility.
  Clock* clock = nullptr;
  /// Disk tier; null = an internally owned SimDiskStore, or — when
  /// `durability.enabled` — an internally owned SegmentDiskStore under
  /// `durability.dir`.
  DiskStore* disk = nullptr;
  /// Durable tier configuration (WAL + checksummed segments + restart
  /// recovery). Disabled by default; see docs/INTERNALS.md "Durability".
  DurabilityOptions durability;
  /// Shard this store serves in a sharded deployment (labels flush trace
  /// spans and eviction audit records); -1 = standalone, unlabeled.
  int shard_id = -1;
};

/// What restart recovery did (all zero for a fresh directory).
struct StoreRecoveryStats {
  /// Valid WAL entries replayed.
  uint64_t wal_records_recovered = 0;
  uint64_t wal_torn_bytes_truncated = 0;
  /// WAL entries kept by the post-replay compaction (records still
  /// memory-resident, whose only durable copy is the WAL).
  uint64_t wal_entries_retained = 0;
  /// Replayed records re-inserted into the memory tier.
  uint64_t records_reinserted_memory = 0;
  /// Replayed records written to a recovery segment instead (every term
  /// score-dominated by existing disk postings, so re-entering memory
  /// would break the memory-prefix invariant the hit path relies on).
  uint64_t records_recovered_to_disk = 0;
};

/// Counters maintained by the store's ingest path.
struct IngestStats {
  uint64_t inserted = 0;
  /// Arrivals carrying no term under the configured attribute (e.g. no
  /// location under the spatial attribute); they are not indexed.
  uint64_t skipped_no_terms = 0;
  uint64_t flush_triggers = 0;
};

/// The assembled store. Insert and the query surface are thread-safe;
/// FlushOnce serializes internally so at most one flush cycle runs.
class MicroblogStore {
 public:
  explicit MicroblogStore(StoreOptions options);
  ~MicroblogStore();

  MicroblogStore(const MicroblogStore&) = delete;
  MicroblogStore& operator=(const MicroblogStore&) = delete;

  /// Ingests one microblog. Assigns an id (monotonic in arrival order) if
  /// unset and stamps created_at with the clock if zero. Returns OK also
  /// for arrivals that carry no indexable term (they are counted and
  /// dropped, not stored).
  Status Insert(Microblog blog);

  /// Sharded ingest: indexes `blog` under exactly `terms` — the subset of
  /// its terms this shard owns, as computed by the routing layer — instead
  /// of re-extracting. The caller must have assigned id and created_at
  /// (ShardedMicroblogStore stamps centrally so the copies a multi-term
  /// record leaves on several shards are byte-identical) and `terms` must
  /// be non-empty.
  Status InsertRouted(Microblog blog, const std::vector<TermId>& terms);

  /// Convenience ingest from raw text: tokenizes, interns keywords, and
  /// inserts. Only meaningful under the keyword attribute.
  Status InsertText(std::string text, UserId user = 0,
                    uint32_t followers = 0);

  /// True once data contents (records + index) fill the budget.
  bool MemoryFull() const { return tracker_.DataFull(); }

  /// Runs one flush cycle freeing B% of the budget (no-op if another
  /// cycle is in flight; returns 0 then). Returns bytes freed.
  size_t FlushOnce();

  /// Group-commit barrier: every previously accepted insert is WAL-durable
  /// when this returns OK. No-op without durability. MicroblogSystem calls
  /// it once per digested batch — that batch boundary IS the group commit.
  Status CommitDurable();

  /// OK when the durable tier opened and recovered cleanly (always OK with
  /// durability disabled). A failed recovery leaves the store running
  /// non-durably; callers that require durability must check this.
  const Status& durability_status() const { return durability_status_; }

  StoreRecoveryStats recovery_stats() const { return recovery_stats_; }

  /// Highest record id found by restart recovery (0 on a fresh start).
  /// The sharded facade resumes central id stamping past the max across
  /// shards; the standalone store already resumes its own next_id_.
  MicroblogId recovered_max_id() const { return recovered_max_id_; }

  WriteAheadLog* wal() { return wal_.get(); }

  /// Changes k; policies apply it at the next flush cycle (paper §IV-C).
  void SetK(uint32_t k);
  uint32_t k() const { return policy_->k(); }

  /// Term helpers for building queries.
  TermId TermForKeyword(std::string_view keyword) const;
  TermId TermForLocation(double lat, double lon) const;
  TermId TermForUser(UserId user) const { return static_cast<TermId>(user); }

  // --- component access ---
  FlushPolicy* policy() { return policy_.get(); }
  const FlushPolicy* policy() const { return policy_.get(); }
  RawDataStore* raw_store() { return &raw_store_; }
  const FlushBuffer& flush_buffer() const { return flush_buffer_; }
  DiskStore* disk() { return disk_; }
  const MemoryTracker& tracker() const { return tracker_; }
  const AttributeExtractor* extractor() const { return extractor_.get(); }
  const RankingFunction* ranking() const { return ranking_.get(); }
  KeywordDictionary* dictionary() { return &dictionary_; }
  const KeywordDictionary* dictionary() const { return &dictionary_; }
  Clock* clock() const { return clock_; }
  const StoreOptions& options() const { return options_; }

  IngestStats ingest_stats() const;

  /// The store's metrics registry. QueryEngine and MicroblogSystem record
  /// into it directly; component-owned stats (tracker, ingest, policy,
  /// disk, flush buffer) are exported at Snapshot() time by a provider
  /// registered in the constructor — see docs/INTERNALS.md for the metric
  /// taxonomy.
  MetricsRegistry* metrics_registry() { return &metrics_; }
  const MetricsRegistry* metrics_registry() const { return &metrics_; }

  /// Installs (or, with nullptr, removes) the continuous-query publish
  /// sink: OnInsert fires at the tail of every indexed insert, and the
  /// eviction hook is forwarded to the policy. Atomic, so a front-end can
  /// install it while ingest threads run; the no-sink cost on the ingest
  /// hot path is one relaxed load and a branch.
  void set_subscription_sink(SubscriptionSink* sink);

  /// Bytes each flush cycle must free: flush_fraction * budget.
  size_t FlushBudgetBytes() const {
    return static_cast<size_t>(static_cast<double>(
        options_.memory_budget_bytes) * options_.flush_fraction);
  }

 private:
  /// Shared tail of Insert/InsertRouted: WAL append, raw-store put, index
  /// insert, ingest accounting, inline auto-flush. `routed` marks a
  /// sharded insert whose WAL entry must carry the owned term subset.
  Status InsertIndexed(Microblog blog, const std::vector<TermId>& terms,
                       bool routed);

  /// Restart recovery: replays the WAL over the recovered segments,
  /// re-partitioning each record between the memory and disk tiers so the
  /// memory postings of every term stay a score-prefix of memory ∪ disk,
  /// then compacts the WAL and opens it for appending.
  Status RecoverDurable();

  /// Contributes component-owned stats to a registry snapshot.
  void ExportComponentMetrics(MetricsSnapshot* snap) const;

  StoreOptions options_;
  MemoryTracker tracker_;
  RawDataStore raw_store_;
  FlushBuffer flush_buffer_;
  std::unique_ptr<SimDiskStore> owned_disk_;
  std::unique_ptr<SegmentDiskStore> owned_segment_disk_;
  std::unique_ptr<WriteAheadLog> wal_;
  Status durability_status_ = Status::OK();
  StoreRecoveryStats recovery_stats_;
  MicroblogId recovered_max_id_ = 0;
  DiskStore* disk_ = nullptr;
  Clock* clock_;
  std::unique_ptr<AttributeExtractor> extractor_;
  std::unique_ptr<RankingFunction> ranking_;
  std::unique_ptr<FlushPolicy> policy_;
  KeywordDictionary dictionary_;
  Tokenizer tokenizer_;

  std::atomic<SubscriptionSink*> sub_sink_{nullptr};

  std::atomic<MicroblogId> next_id_{1};
  std::mutex flush_mu_;
  std::atomic<bool> flush_in_flight_{false};

  // Relaxed counters: every insert bumps one of these, so the hot path
  // must not funnel through a mutex; ingest_stats() assembles a snapshot.
  std::atomic<uint64_t> inserted_{0};
  std::atomic<uint64_t> skipped_no_terms_{0};
  std::atomic<uint64_t> flush_triggers_{0};

  /// Declared last so it is destroyed first: the provider registered in
  /// the constructor captures `this` and reads the components above.
  MetricsRegistry metrics_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_STORE_H_
