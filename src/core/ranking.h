// Ranking functions (paper §IV-B). kFlushing supports any ranking whose
// score is computable on microblog arrival: the score is fixed at ingest,
// posting lists stay score-ordered, and top-k membership is known before
// any query arrives. We ship the paper's default temporal ranking ("most
// recent") and a popularity-weighted ranking in the spirit of Twitter's
// "Top" mode (recency boosted by author follower count).

#ifndef KFLUSH_CORE_RANKING_H_
#define KFLUSH_CORE_RANKING_H_

#include <memory>

#include "model/microblog.h"

namespace kflush {

enum class RankingKind : int {
  kTemporal = 0,   // score = arrival time ("All" mode; the paper's default)
  kPopularity,     // recency + follower-count boost ("Top" mode)
};

const char* RankingKindName(RankingKind kind);

/// Stateless scoring function; higher scores rank first.
class RankingFunction {
 public:
  virtual ~RankingFunction() = default;
  virtual RankingKind kind() const = 0;
  /// Computable from the record alone, on arrival (§IV-B requirement).
  virtual double Score(const Microblog& blog) const = 0;
};

/// Most-recent-first.
class TemporalRanking : public RankingFunction {
 public:
  RankingKind kind() const override { return RankingKind::kTemporal; }
  double Score(const Microblog& blog) const override;
};

/// Recency plus a follower-count boost: each doubling of the author's
/// followers is worth `boost_micros` of recency (default: 10 minutes).
class PopularityRanking : public RankingFunction {
 public:
  explicit PopularityRanking(double boost_micros = 600e6);

  RankingKind kind() const override { return RankingKind::kPopularity; }
  double Score(const Microblog& blog) const override;

 private:
  double boost_micros_;
};

std::unique_ptr<RankingFunction> MakeRanking(RankingKind kind);

}  // namespace kflush

#endif  // KFLUSH_CORE_RANKING_H_
