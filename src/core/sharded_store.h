// ShardedMicroblogStore: N MicroblogStore shards behind one ingest/query
// facade, partitioned by term (ShardRouter). Each shard owns a slice of
// the memory budget, its own policy-owned index, raw-store segment view,
// flush buffer, and disk tier, so flush cycles on different shards share
// no locks and run independently. The facade stamps ids and timestamps
// centrally BEFORE routing — a record carrying terms owned by several
// shards is copied to each, and the copies must be byte-identical for the
// differential oracle's "same answers at any shard count" contract to be
// checkable bytewise. Synchronous (per-shard inline auto-flush) and, like
// MicroblogStore, deterministic under a SimClock: this is the deployment
// the oracle and the sharded experiment path drive. The threaded
// deployment with per-shard digestion/flusher threads is
// ShardedMicroblogSystem.

#ifndef KFLUSH_CORE_SHARDED_STORE_H_
#define KFLUSH_CORE_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/shard_router.h"
#include "core/sharded_query_engine.h"
#include "core/store.h"

namespace kflush {

/// Sharded deployment configuration.
struct ShardedStoreOptions {
  /// Per-shard template. memory_budget_bytes is the TOTAL deployment
  /// budget; each shard receives budget / num_shards (remainder bytes are
  /// dropped — the oracle pins budgets divisible by the shard counts it
  /// compares). clock is shared across shards; shard_id is assigned here.
  /// Leave disk null: each shard owns its disk tier, keeping a term's
  /// disk postings wholly on its owner.
  StoreOptions store;
  size_t num_shards = 1;
};

/// Aggregated ingest counters maintained by the routing layer.
struct ShardedIngestStats {
  /// Records submitted to the facade (before routing).
  uint64_t submitted = 0;
  /// Per-shard record copies written (>= submitted - skipped; a record
  /// with terms on s shards contributes s copies).
  uint64_t routed_copies = 0;
  /// Records carrying no term under the attribute (counted centrally; the
  /// shards never see them).
  uint64_t skipped_no_terms = 0;
};

class ShardedMicroblogStore {
 public:
  explicit ShardedMicroblogStore(ShardedStoreOptions options);
  ~ShardedMicroblogStore();

  ShardedMicroblogStore(const ShardedMicroblogStore&) = delete;
  ShardedMicroblogStore& operator=(const ShardedMicroblogStore&) = delete;

  /// Ingests one microblog: stamps id/created_at if unset, extracts terms,
  /// and routes one copy (with its owned term subset) to each owning
  /// shard. Thread-safe.
  Status Insert(Microblog blog);

  /// One flush cycle on every over-budget shard; returns bytes freed.
  size_t FlushAllOnce();

  /// First non-OK shard durability status (OK with durability disabled).
  Status DurabilityStatus() const;

  /// Group-commit barrier on every shard WAL.
  Status CommitDurableAll();

  void SetK(uint32_t k);
  uint32_t k() const { return shards_[0]->k(); }

  size_t num_shards() const { return shards_.size(); }
  MicroblogStore* shard(size_t i) { return shards_[i].get(); }
  const MicroblogStore* shard(size_t i) const { return shards_[i].get(); }
  QueryEngine* shard_engine(size_t i) { return engines_[i].get(); }
  const ShardRouter& router() const { return router_; }
  ShardedQueryEngine* engine() { return engine_.get(); }
  const ShardedStoreOptions& options() const { return options_; }

  ShardedIngestStats sharded_ingest_stats() const;

  // --- cross-shard aggregation (experiment/bench collection) ---
  IngestStats AggregatedIngestStats() const;
  PolicyStats AggregatedPolicyStats() const;
  DiskStats AggregatedDiskStats() const;
  /// Aggregate of every shard's registry snapshot; with per-shard series
  /// under "shard<i>." prefixes when `include_per_shard`.
  MetricsSnapshot AggregatedMetrics(bool include_per_shard = false) const;
  size_t DataUsed() const;
  size_t NumTerms() const;
  size_t NumKFilledTerms() const;
  size_t AuxMemoryBytes() const;
  size_t PeakFlushBufferBytes() const;
  void CollectEntrySizes(std::vector<size_t>* out) const;

 private:
  ShardedStoreOptions options_;
  Clock* clock_;
  std::unique_ptr<AttributeExtractor> extractor_;
  ShardRouter router_;
  std::vector<std::unique_ptr<MicroblogStore>> shards_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::unique_ptr<ShardedQueryEngine> engine_;

  std::atomic<MicroblogId> next_id_{1};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> routed_copies_{0};
  std::atomic<uint64_t> skipped_no_terms_{0};
};

}  // namespace kflush

#endif  // KFLUSH_CORE_SHARDED_STORE_H_
