// MultiAttributeStore: one arrival stream served by keyword, spatial, and
// user-timeline search simultaneously — the "generic microblogs data
// management system" the paper positions kFlushing for (§IV-A: the policy
// applies to any attribute index; Magdy & Mokbel's MDM'15 system vision).
//
// Deployment model: one store per attribute, each with its own memory
// budget slice and its own flushing-policy instance (this mirrors
// sharding-by-attribute in production, where the keyword, spatial, and
// user services scale independently). Each attribute store holds its own
// copy of the record; a shared raw store with coordinated cross-index
// flushing is possible but couples the policies' eviction decisions —
// see DESIGN.md.

#ifndef KFLUSH_CORE_MULTI_STORE_H_
#define KFLUSH_CORE_MULTI_STORE_H_

#include <memory>

#include "core/query_engine.h"
#include "core/store.h"

namespace kflush {

/// Configuration for the composite store.
struct MultiStoreOptions {
  /// Total memory budget, split across the attribute stores.
  size_t total_memory_budget_bytes = 96ull << 20;
  /// Budget shares (keyword-heavy by default, matching query traffic);
  /// must be positive and sum to at most 1.
  double keyword_share = 0.50;
  double spatial_share = 0.25;
  double user_share = 0.25;

  uint32_t k = 20;
  double flush_fraction = 0.10;
  PolicyKind policy = PolicyKind::kKFlushing;
  RankingKind ranking = RankingKind::kTemporal;
  Clock* clock = nullptr;
};

/// Three single-attribute stores behind one ingest + query facade.
/// Thread-safety matches MicroblogStore (concurrent Insert/queries).
class MultiAttributeStore {
 public:
  explicit MultiAttributeStore(MultiStoreOptions options);

  MultiAttributeStore(const MultiAttributeStore&) = delete;
  MultiAttributeStore& operator=(const MultiAttributeStore&) = delete;

  /// Ingests one microblog into every attribute index it has terms under
  /// (a record without location skips the spatial store, etc.). Assigns a
  /// single id shared across the attribute stores.
  Status Insert(Microblog blog);

  /// Text convenience (keywords tokenized via the keyword store).
  Status InsertText(std::string text, UserId user, uint32_t followers = 0,
                    const GeoPoint* location = nullptr);

  // --- query facade ---
  Result<QueryResult> SearchKeywords(const std::vector<std::string>& keywords,
                                     QueryType type, uint32_t k = 0);
  Result<QueryResult> SearchLocation(double lat, double lon, uint32_t k = 0);
  Result<QueryResult> SearchArea(double min_lat, double min_lon,
                                 double max_lat, double max_lon,
                                 uint32_t k = 0);
  Result<QueryResult> SearchUser(UserId user, uint32_t k = 0);

  // --- per-attribute access ---
  MicroblogStore* keyword_store() { return keyword_store_.get(); }
  MicroblogStore* spatial_store() { return spatial_store_.get(); }
  MicroblogStore* user_store() { return user_store_.get(); }
  QueryEngine* keyword_engine() { return &keyword_engine_; }
  QueryEngine* spatial_engine() { return &spatial_engine_; }
  QueryEngine* user_engine() { return &user_engine_; }

  /// Total data bytes across the three stores.
  size_t DataUsed() const;

  const MultiStoreOptions& options() const { return options_; }

 private:
  static StoreOptions MakeStoreOptions(const MultiStoreOptions& options,
                                       AttributeKind attribute,
                                       double share);

  MultiStoreOptions options_;
  std::unique_ptr<MicroblogStore> keyword_store_;
  std::unique_ptr<MicroblogStore> spatial_store_;
  std::unique_ptr<MicroblogStore> user_store_;
  QueryEngine keyword_engine_;
  QueryEngine spatial_engine_;
  QueryEngine user_engine_;
  std::atomic<MicroblogId> next_id_{1};
};

}  // namespace kflush

#endif  // KFLUSH_CORE_MULTI_STORE_H_
