// The top-k query engine (paper §II-B, §IV-D). Evaluates basic search
// queries — single-term, multi-term AND, multi-term OR — against in-memory
// contents first; when fewer than k results can be guaranteed from memory
// the query is a MISS and the disk tier is consulted to complete the
// answer. Hit predicates follow the paper:
//
//   single : the term holds >= k in-memory postings.
//   OR     : every queried term holds >= k in-memory postings (then the
//            union's top-k is provably in memory, §IV-D).
//   AND    : the in-memory lists' intersection yields >= k results (the
//            paper's operational rule; kFlushing-MK exists to make this
//            succeed more often).

#ifndef KFLUSH_CORE_QUERY_ENGINE_H_
#define KFLUSH_CORE_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/store.h"

namespace kflush {

/// A basic top-k search query over the store's attribute.
struct TopKQuery {
  std::vector<TermId> terms;
  QueryType type = QueryType::kSingle;
  /// 0 = use the store's current k.
  uint32_t k = 0;
  /// Treat every term as a MISS: consult the disk tier even when the
  /// memory-hit predicate holds, making the answer the exact top-k over
  /// the full posting set under every policy. The continuous-query layer
  /// sets this on snapshot/refill queries — under LRU (whole-record
  /// eviction by access recency) a term's memory postings need not be a
  /// score-prefix of memory ∪ disk, so only the merged answer is
  /// guaranteed exact. Counted as a miss in the hit-ratio metrics.
  bool force_disk = false;
};

/// Query outcome.
struct QueryResult {
  /// Final answer, best-ranked first, at most k records.
  std::vector<Microblog> results;
  /// True iff the answer was served entirely from memory.
  bool memory_hit = false;
  size_t from_memory = 0;
  size_t from_disk = 0;
};

/// Evaluates queries against one MicroblogStore. Thread-safe; many engine
/// instances may share a store (each keeps its own metrics), or one engine
/// may serve many threads.
class QueryEngine {
 public:
  explicit QueryEngine(MicroblogStore* store);

  /// Evaluates `query`, materializing result records.
  Result<QueryResult> Execute(const TopKQuery& query);

  /// Convenience: keyword search from strings (keyword attribute only).
  /// Unknown keywords become absent terms (guaranteed miss path).
  Result<QueryResult> SearchKeywords(const std::vector<std::string>& keywords,
                                     QueryType type, uint32_t k = 0);

  /// Convenience: "find top-k posted at this location" (spatial attribute).
  Result<QueryResult> SearchLocation(double lat, double lon, uint32_t k = 0);

  /// Convenience: "find top-k posted inside this bounding box" (spatial
  /// attribute): evaluated as an OR over the grid tiles overlapping the
  /// box, then filtered to the box. `max_tiles` caps the fan-out
  /// (InvalidArgument if the box needs more).
  Result<QueryResult> SearchArea(double min_lat, double min_lon,
                                 double max_lat, double max_lon,
                                 uint32_t k = 0, size_t max_tiles = 256,
                                 bool force_disk = false);

  /// Convenience: user-timeline search (user attribute).
  Result<QueryResult> SearchUser(UserId user, uint32_t k = 0);

  QueryMetricsSnapshot metrics() const { return metrics_.Snapshot(); }
  void ResetMetrics() { metrics_.Reset(); }

 private:
  struct Scored {
    double score;
    MicroblogId id;
  };

  Result<QueryResult> ExecuteSingle(TermId term, uint32_t k, bool force_disk);
  Result<QueryResult> ExecuteOr(const std::vector<TermId>& terms, uint32_t k,
                                bool force_disk);
  Result<QueryResult> ExecuteAnd(const std::vector<TermId>& terms, uint32_t k,
                                 bool force_disk);

  /// Fetches term postings from memory as (score, id); scores recomputed
  /// through the ranking function.
  void MemoryPostings(TermId term, size_t limit, std::vector<Scored>* out);

  /// Merges memory + disk candidates (sorted desc, deduped) into the final
  /// top-k and materializes records from the raw store or disk.
  Status Materialize(std::vector<Scored> candidates, uint32_t k,
                     QueryResult* result);

  MicroblogStore* store_;
  QueryMetrics metrics_;

  // Registry instruments, resolved once in the constructor (get-or-create;
  // pointers stay valid for the store's lifetime). Latency histograms are
  // split by query type and memory-hit outcome; the spatial/user surface
  // histograms time the whole convenience call (SearchArea's over-fetch
  // loop runs Execute several times, each contributing to the per-type
  // histograms, while the surface histogram sees one end-to-end sample).
  ConcurrentHistogram* latency_by_type_[3][2];
  ConcurrentHistogram* latency_spatial_[2];
  ConcurrentHistogram* latency_user_[2];
  Counter* queries_counter_;
  Counter* hits_counter_;
  Counter* misses_counter_;
  Counter* disk_term_reads_counter_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_QUERY_ENGINE_H_
