#include "core/sharded_system.h"

#include <algorithm>

#include "core/trace.h"

namespace kflush {

ShardedMicroblogSystem::ShardedMicroblogSystem(ShardedSystemOptions options)
    : options_(options),
      router_(options.num_shards == 0 ? 1 : options.num_shards) {
  clock_ = options_.system.store.clock != nullptr
               ? options_.system.store.clock
               : WallClock::Default();
  extractor_ = MakeAttribute(options_.system.store.attribute);
  const size_t n = router_.num_shards();
  systems_.reserve(n);
  std::vector<ShardQueryTarget> targets;
  targets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SystemOptions so = options_.system;
    so.store.memory_budget_bytes =
        options_.system.store.memory_budget_bytes / n;
    so.store.shard_id = static_cast<int>(i);
    if (so.store.durability.enabled) {
      // One WAL + segment directory per shard: flushes and group commits
      // on different shards share no files (or fsync queues).
      so.store.durability.dir = options_.system.store.durability.dir +
                                "/shard-" + std::to_string(i);
    }
    systems_.push_back(std::make_unique<MicroblogSystem>(so));
    targets.push_back({systems_.back()->store(), systems_.back()->engine()});
  }
  engine_ = std::make_unique<ShardedQueryEngine>(std::move(targets));
  // Central id stamping must resume past every id recovery brought back
  // on any shard, or restarted ingest would reuse live ids.
  MicroblogId max_recovered = 0;
  for (auto& system : systems_) {
    max_recovered =
        std::max(max_recovered, system->store()->recovered_max_id());
  }
  if (max_recovered > 0) {
    next_id_.store(max_recovered + 1, std::memory_order_relaxed);
  }
}

Status ShardedMicroblogSystem::DurabilityStatus() const {
  for (const auto& system : systems_) {
    const Status& s = system->store()->durability_status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

ShardedMicroblogSystem::~ShardedMicroblogSystem() { Stop(); }

void ShardedMicroblogSystem::Start() {
  for (auto& system : systems_) system->Start();
}

void ShardedMicroblogSystem::Stop() {
  for (auto& system : systems_) system->Stop();
}

bool ShardedMicroblogSystem::Submit(std::vector<Microblog> batch) {
  TraceSpan span("shard", "route_batch",
                 {TraceArg::Uint("records", batch.size()),
                  TraceArg::Uint("shards", systems_.size())});
  std::vector<IngestBatch> per_shard(systems_.size());
  // Per-record scratch, hoisted out of the loop: the routing hot path
  // must not allocate O(num_shards) vectors per record.
  std::vector<TermId> terms;
  std::vector<std::vector<TermId>> owned(systems_.size());
  std::vector<size_t> owners;
  uint64_t copies = 0;
  for (Microblog& blog : batch) {
    if (blog.id == kInvalidMicroblogId) {
      blog.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    }
    if (blog.created_at == 0) {
      blog.created_at = clock_->NowMicros();
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    terms.clear();
    extractor_->ExtractTerms(blog, &terms);
    if (terms.empty()) {
      skipped_no_terms_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Owned term subsets per shard, for this record.
    owners.clear();
    for (TermId term : terms) {
      const size_t owner = router_.ShardForTerm(term);
      if (owned[owner].empty()) owners.push_back(owner);
      owned[owner].push_back(term);
    }
    copies += owners.size();
    for (size_t i = 0; i + 1 < owners.size(); ++i) {
      IngestBatch& dest = per_shard[owners[i]];
      dest.blogs.push_back(blog);
      dest.routed_terms.push_back(std::move(owned[owners[i]]));
      owned[owners[i]].clear();  // moved-from; reset for the next record
    }
    const size_t last = owners.back();
    per_shard[last].blogs.push_back(std::move(blog));
    per_shard[last].routed_terms.push_back(std::move(owned[last]));
    owned[last].clear();
  }
  routed_copies_.fetch_add(copies, std::memory_order_relaxed);
  bool accepted = true;
  for (size_t i = 0; i < systems_.size(); ++i) {
    if (per_shard[i].blogs.empty()) continue;
    accepted = systems_[i]->SubmitRouted(std::move(per_shard[i])) && accepted;
  }
  span.End({TraceArg::Uint("copies", copies)});
  return accepted;
}

Result<QueryResult> ShardedMicroblogSystem::Query(const TopKQuery& query) {
  return engine_->Execute(query);
}

void ShardedMicroblogSystem::SetK(uint32_t k) {
  for (auto& system : systems_) system->store()->SetK(k);
}

uint64_t ShardedMicroblogSystem::digested() const {
  uint64_t total = 0;
  for (const auto& system : systems_) total += system->digested();
  return total;
}

}  // namespace kflush
