#include "core/sharded_system.h"

#include <algorithm>

#include "core/trace.h"
#include "util/logging.h"

namespace kflush {

ShardedMicroblogSystem::ShardedMicroblogSystem(ShardedSystemOptions options)
    : options_(options),
      router_(options.num_shards == 0 ? 1 : options.num_shards) {
  clock_ = options_.system.store.clock != nullptr
               ? options_.system.store.clock
               : WallClock::Default();
  extractor_ = MakeAttribute(options_.system.store.attribute);
  const size_t n = router_.num_shards();
  systems_.reserve(n);
  std::vector<ShardQueryTarget> targets;
  targets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SystemOptions so = options_.system;
    so.store.memory_budget_bytes =
        options_.system.store.memory_budget_bytes / n;
    so.store.shard_id = static_cast<int>(i);
    if (so.store.durability.enabled) {
      // One WAL + segment directory per shard: flushes and group commits
      // on different shards share no files (or fsync queues).
      so.store.durability.dir = options_.system.store.durability.dir +
                                "/shard-" + std::to_string(i);
    }
    systems_.push_back(std::make_unique<MicroblogSystem>(so));
    targets.push_back({systems_.back()->store(), systems_.back()->engine()});
  }
  engine_ = std::make_unique<ShardedQueryEngine>(std::move(targets));
  // Central id stamping must resume past every id recovery brought back
  // on any shard, or restarted ingest would reuse live ids.
  MicroblogId max_recovered = 0;
  for (auto& system : systems_) {
    max_recovered =
        std::max(max_recovered, system->store()->recovered_max_id());
  }
  if (max_recovered > 0) {
    next_id_.store(max_recovered + 1, std::memory_order_relaxed);
  }
}

Status ShardedMicroblogSystem::DurabilityStatus() const {
  for (const auto& system : systems_) {
    const Status& s = system->store()->durability_status();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

ShardedMicroblogSystem::~ShardedMicroblogSystem() { Stop(); }

void ShardedMicroblogSystem::Start() {
  for (auto& system : systems_) system->Start();
}

void ShardedMicroblogSystem::Stop() {
  {
    std::unique_lock<std::mutex> lock(submit_mu_);
    stopping_ = true;
    // Release producers blocked mid-reservation (their Submit unwinds
    // with false and nothing enqueued), then wait for every in-flight
    // submit to finish before any shard queue closes: a submit that
    // already holds all its reservations is guaranteed to commit on
    // every owner shard, never on a subset.
    for (auto& system : systems_) system->AbortIngestReservations();
    submit_cv_.wait(lock, [this] { return in_flight_submits_ == 0; });
  }
  for (auto& system : systems_) system->Stop();
}

bool ShardedMicroblogSystem::BeginSubmit() {
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (stopping_) return false;
  ++in_flight_submits_;
  return true;
}

void ShardedMicroblogSystem::EndSubmit() {
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    --in_flight_submits_;
  }
  submit_cv_.notify_all();
}

ShardedMicroblogSystem::RoutedBatch ShardedMicroblogSystem::RouteBatch(
    std::vector<Microblog> batch) {
  RoutedBatch routed;
  routed.per_shard.resize(systems_.size());
  // Per-record scratch, hoisted out of the loop: the routing hot path
  // must not allocate O(num_shards) vectors per record.
  std::vector<TermId> terms;
  std::vector<std::vector<TermId>> owned(systems_.size());
  std::vector<size_t> owners;
  for (Microblog& blog : batch) {
    if (blog.id == kInvalidMicroblogId) {
      blog.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    }
    if (blog.created_at == 0) {
      blog.created_at = clock_->NowMicros();
    }
    terms.clear();
    extractor_->ExtractTerms(blog, &terms);
    if (terms.empty()) {
      ++routed.skipped;
      continue;
    }
    ++routed.records;
    // Owned term subsets per shard, for this record.
    owners.clear();
    for (TermId term : terms) {
      const size_t owner = router_.ShardForTerm(term);
      if (owned[owner].empty()) owners.push_back(owner);
      owned[owner].push_back(term);
    }
    routed.copies += owners.size();
    for (size_t i = 0; i + 1 < owners.size(); ++i) {
      IngestBatch& dest = routed.per_shard[owners[i]];
      dest.blogs.push_back(blog);
      dest.routed_terms.push_back(std::move(owned[owners[i]]));
      owned[owners[i]].clear();  // moved-from; reset for the next record
    }
    const size_t last = owners.back();
    routed.per_shard[last].blogs.push_back(std::move(blog));
    routed.per_shard[last].routed_terms.push_back(std::move(owned[last]));
    owned[last].clear();
  }
  for (size_t i = 0; i < routed.per_shard.size(); ++i) {
    if (!routed.per_shard[i].blogs.empty()) routed.owners.push_back(i);
  }
  return routed;
}

bool ShardedMicroblogSystem::CommitReserved(RoutedBatch* routed) {
  for (size_t i = 0; i < routed->owners.size(); ++i) {
    const size_t owner = routed->owners[i];
    // Every owner holds a reservation, so this never blocks; it can fail
    // only if a shard was stopped out-of-band, which Stop()'s in-flight
    // handshake excludes in the supported lifecycle. If that invariant
    // is ever violated, fail loudly and stop committing: the remaining
    // owners' reservations are returned un-enqueued rather than pushed
    // into an untallied partial admit.
    if (!systems_[owner]->SubmitReservedRouted(
            std::move(routed->per_shard[owner]))) {
      KFLUSH_WARN("CommitReserved: shard "
                  << owner
                  << " rejected a reserved sub-batch (stopped outside the "
                     "Stop() handshake); aborting commit");
      for (size_t j = i + 1; j < routed->owners.size(); ++j) {
        systems_[routed->owners[j]]->CancelIngestReservation();
      }
      return false;
    }
  }
  accepted_.fetch_add(routed->records + routed->skipped,
                      std::memory_order_relaxed);
  skipped_no_terms_.fetch_add(routed->skipped, std::memory_order_relaxed);
  routed_copies_.fetch_add(routed->copies, std::memory_order_relaxed);
  return true;
}

bool ShardedMicroblogSystem::Submit(std::vector<Microblog> batch) {
  TraceSpan span("shard", "route_batch",
                 {TraceArg::Uint("records", batch.size()),
                  TraceArg::Uint("shards", systems_.size())});
  if (!BeginSubmit()) {
    span.End({TraceArg::Uint("copies", 0)});
    return false;
  }
  RoutedBatch routed = RouteBatch(std::move(batch));
  // Phase 1 — reserve a queue slot on every owner shard (blocking under
  // per-shard backpressure) before enqueueing anything. If any
  // reservation fails the already-held ones are returned and no shard
  // saw any part of the batch: all-or-nothing, so false can never mean
  // "partially inserted" and a caller retry cannot double-insert.
  size_t held = 0;
  bool ok = true;
  for (; held < routed.owners.size(); ++held) {
    if (!systems_[routed.owners[held]]->ReserveIngestSlot()) {
      ok = false;
      break;
    }
  }
  if (!ok) {
    for (size_t i = 0; i < held; ++i) {
      systems_[routed.owners[i]]->CancelIngestReservation();
    }
    EndSubmit();
    span.End({TraceArg::Uint("copies", 0)});
    return false;
  }
  // Phase 2 — commit into the reserved slots (never blocks).
  const bool accepted = CommitReserved(&routed);
  EndSubmit();
  span.End({TraceArg::Uint("copies", accepted ? routed.copies : 0)});
  return accepted;
}

ShardedMicroblogSystem::SubmitOutcome ShardedMicroblogSystem::TrySubmit(
    std::vector<Microblog> batch, uint64_t* admitted_records,
    uint64_t* skipped_records, std::shared_ptr<IngestTicket> ticket) {
  TraceSpan span("shard", "try_route_batch",
                 {TraceArg::Uint("records", batch.size()),
                  TraceArg::Uint("shards", systems_.size())});
  if (admitted_records != nullptr) *admitted_records = 0;
  if (skipped_records != nullptr) *skipped_records = 0;
  if (!BeginSubmit()) {
    span.End({TraceArg::Uint("copies", 0)});
    return SubmitOutcome::kStopped;
  }
  RoutedBatch routed = RouteBatch(std::move(batch));
  size_t held = 0;
  bool ok = true;
  for (; held < routed.owners.size(); ++held) {
    if (!systems_[routed.owners[held]]->TryReserveIngestSlot()) {
      ok = false;
      break;
    }
  }
  if (!ok) {
    for (size_t i = 0; i < held; ++i) {
      systems_[routed.owners[i]]->CancelIngestReservation();
    }
    EndSubmit();
    span.End({TraceArg::Uint("copies", 0)});
    return SubmitOutcome::kOverloaded;
  }
  if (ticket != nullptr && !routed.owners.empty()) {
    // Attach before any sub-batch is enqueued: a digestion thread may
    // start committing the moment CommitReserved pushes, and the final
    // commit must observe the full remaining count.
    ticket->remaining.store(static_cast<uint32_t>(routed.owners.size()),
                            std::memory_order_relaxed);
    for (size_t owner : routed.owners) {
      routed.per_shard[owner].ticket = ticket;
    }
  }
  const bool accepted = CommitReserved(&routed);
  EndSubmit();
  span.End({TraceArg::Uint("copies", accepted ? routed.copies : 0)});
  if (!accepted) return SubmitOutcome::kStopped;
  if (ticket != nullptr && routed.owners.empty()) {
    // Accepted with nothing to digest (every record term-less): the
    // commit stage completes at admission.
    ticket->Complete();
  }
  if (admitted_records != nullptr) *admitted_records = routed.records;
  if (skipped_records != nullptr) *skipped_records = routed.skipped;
  return SubmitOutcome::kAccepted;
}

size_t ShardedMicroblogSystem::max_queue_depth() const {
  size_t depth = 0;
  for (const auto& system : systems_) {
    depth = std::max(depth, system->queue_depth());
  }
  return depth;
}

size_t ShardedMicroblogSystem::total_queue_depth() const {
  size_t depth = 0;
  for (const auto& system : systems_) depth += system->queue_depth();
  return depth;
}

Result<QueryResult> ShardedMicroblogSystem::Query(const TopKQuery& query) {
  return engine_->Execute(query);
}

void ShardedMicroblogSystem::SetK(uint32_t k) {
  for (auto& system : systems_) system->store()->SetK(k);
}

uint64_t ShardedMicroblogSystem::digested() const {
  uint64_t total = 0;
  for (const auto& system : systems_) total += system->digested();
  return total;
}

}  // namespace kflush
