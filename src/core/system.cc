#include "core/system.h"

#include "core/trace.h"
#include "util/logging.h"

namespace kflush {

void IngestTicket::Complete() {
  const uint64_t now = MonotonicMicros();
  const uint64_t micros = now > admit_micros ? now - admit_micros : 0;
  if (commit_hist != nullptr) commit_hist->Record(micros);
  KFLUSH_TRACE_FLOW_END("net", "request", request_id,
                        TraceArg::Uint("commit_micros", micros));
  if (slow_micros > 0 && micros >= slow_micros) {
    KFLUSH_WARN("slow-request request_id=" << request_id
                                           << " commit_micros=" << micros
                                           << " threshold_micros="
                                           << slow_micros);
  }
}

MicroblogSystem::MicroblogSystem(SystemOptions options)
    : options_(std::move(options)),
      store_([this] {
        // The system owns flushing; the store must not flush inline.
        StoreOptions so = options_.store;
        so.auto_flush = false;
        return std::make_unique<MicroblogStore>(so);
      }()),
      engine_(store_.get()),
      queue_(options_.ingest_queue_capacity) {
  MetricsRegistry* registry = store_->metrics_registry();
  queue_depth_gauge_ = registry->gauge("system.queue_depth");
  batches_submitted_ = registry->counter("system.batches_submitted");
  batches_digested_ = registry->counter("system.batches_digested");
  records_digested_ = registry->counter("system.records_digested");
  digestion_stalls_ = registry->counter("system.digestion_stalls");
  flush_wakeups_ = registry->counter("system.flush_wakeups");
  flush_stuck_events_ = registry->counter("system.flush_stuck_events");
  batch_size_hist_ = registry->histogram("system.batch_size");
  digest_micros_hist_ = registry->histogram("system.digest_micros_per_batch");
  digest_cpu_micros_hist_ =
      registry->histogram("system.digest_cpu_micros_per_batch");
}

MicroblogSystem::~MicroblogSystem() { Stop(); }

void MicroblogSystem::Start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  digestion_thread_ = std::thread([this] { DigestionLoop(); });
  flusher_thread_ = std::thread([this] { FlusherLoop(); });
}

void MicroblogSystem::Stop() {
  // exchange, not load+store: an explicit Stop() racing the destructor's
  // Stop() must not both reach the joins (joining a thread twice is UB).
  // Exactly one caller wins and tears down; the loser returns immediately.
  if (!running_.exchange(false)) return;
  // Close the queue and join digestion while the flusher is still alive:
  // the drain then runs under normal backpressure, so the memory ceiling
  // (budget x stall factor) holds through shutdown. A digestion thread
  // stalled on unstall_cv_ cannot deadlock the join — the live flusher
  // either frees space or reports it cannot (flush_stuck_), and both
  // release the stall.
  queue_.Close();
  if (digestion_thread_.joinable()) digestion_thread_.join();
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    stop_requested_.store(true);
    flush_wanted_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_thread_.joinable()) flusher_thread_.join();
}

bool MicroblogSystem::Submit(std::vector<Microblog> batch) {
  IngestBatch routed;
  routed.blogs = std::move(batch);
  return SubmitRouted(std::move(routed));
}

bool MicroblogSystem::SubmitRouted(IngestBatch batch) {
  const bool accepted = queue_.Push(std::move(batch));
  if (accepted) {
    batches_submitted_->Increment();
    // Delta, not Set(size()): producer and consumer publish concurrently,
    // and last-writer-wins Set() from outside the queue lock pins the
    // gauge to whichever stale depth was read last. Increments/decrements
    // commute, so the gauge converges to the true depth under any
    // interleaving.
    queue_depth_gauge_->Add(1);
  }
  return accepted;
}

bool MicroblogSystem::SubmitReservedRouted(IngestBatch batch) {
  const bool accepted = queue_.PushReserved(std::move(batch));
  if (accepted) {
    batches_submitted_->Increment();
    queue_depth_gauge_->Add(1);
  }
  return accepted;
}

Result<QueryResult> MicroblogSystem::Query(const TopKQuery& query) {
  return engine_.Execute(query);
}

void MicroblogSystem::DigestionLoop() {
  const size_t budget = options_.store.memory_budget_bytes;
  const size_t stall_threshold = static_cast<size_t>(
      static_cast<double>(budget) * options_.ingest_stall_factor);
  while (true) {
    auto batch = queue_.Pop();
    if (!batch.has_value()) break;  // queue closed and drained
    queue_depth_gauge_->Add(-1);
    // One span per batch, not per record: the per-insert path stays
    // untouched so disabled-tracing ingest overhead is one branch per
    // batch (the 2% bench_micro criterion). approx_size() is the queue's
    // own lock-free depth — no second lock acquisition for the span arg.
    TraceSpan span("system", "digest_batch",
                   {TraceArg::Uint("records", batch->blogs.size()),
                    TraceArg::Uint("queue_depth", queue_.approx_size()),
                    TraceArg::Int("shard", options_.store.shard_id)});
    if (batch->ticket != nullptr) {
      // Continue the request flow on this digestion thread, inside the
      // digest span so the arc binds to a slice.
      KFLUSH_TRACE_FLOW_STEP("net", "request", batch->ticket->request_id,
                             TraceArg::Int("shard",
                                           options_.store.shard_id));
    }
    Stopwatch watch;
    CpuStopwatch cpu_watch;
    const bool routed = !batch->routed_terms.empty();
    for (size_t i = 0; i < batch->blogs.size(); ++i) {
      Microblog& blog = batch->blogs[i];
      Status s = routed ? store_->InsertRouted(std::move(blog),
                                               batch->routed_terms[i])
                        : store_->Insert(std::move(blog));
      if (!s.ok()) {
        KFLUSH_WARN("insert failed: " << s.ToString());
      }
      digested_.fetch_add(1, std::memory_order_relaxed);
    }
    // The digested batch is the group-commit unit: every record in it is
    // WAL-durable before the batch counts as digested. No-op without a
    // durable tier.
    Status commit = store_->CommitDurable();
    if (!commit.ok()) {
      KFLUSH_WARN("group commit failed: " << commit.ToString());
    }
    // This sub-batch (including its WAL group commit) is durable; the
    // last owner sub-batch closes the request's commit-stage clock.
    if (batch->ticket != nullptr) batch->ticket->SubBatchCommitted();
    batches_digested_->Increment();
    records_digested_->Add(batch->blogs.size());
    batch_size_hist_->Record(batch->blogs.size());
    digest_micros_hist_->Record(watch.ElapsedMicros());
    digest_cpu_micros_hist_->Record(cpu_watch.ElapsedMicros());
    span.End({TraceArg::Uint("data_used", store_->tracker().DataUsed())});
    if (store_->tracker().DataFull()) {
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        flush_wanted_ = true;
      }
      flush_cv_.notify_one();
      // Backpressure: if the flusher can't keep up, stall digestion until
      // it frees space rather than overshooting the budget unboundedly.
      if (store_->tracker().DataUsed() > stall_threshold) {
        digestion_stalls_->Increment();
        KFLUSH_TRACE_INSTANT(
            "system", "digestion_stall",
            TraceArg::Uint("data_used", store_->tracker().DataUsed()),
            TraceArg::Uint("stall_threshold", stall_threshold));
        std::unique_lock<std::mutex> lock(flush_mu_);
        unstall_cv_.wait(lock, [&] {
          return stop_requested_.load() || flush_stuck_ ||
                 store_->tracker().DataUsed() <= stall_threshold;
        });
      }
    }
  }
}

void MicroblogSystem::FlusherLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(flush_mu_);
      flush_cv_.wait(lock,
                     [&] { return flush_wanted_ || stop_requested_.load(); });
      if (stop_requested_.load() && !store_->tracker().DataFull()) return;
      flush_wanted_ = false;
    }
    flush_wakeups_->Increment();
    KFLUSH_TRACE_INSTANT(
        "system", "flush_wakeup",
        TraceArg::Uint("data_used", store_->tracker().DataUsed()));
    // Keep flushing until data contents are back under budget: a batchy
    // producer can overshoot by more than one flush budget, and digestion
    // stalls until the flusher catches up.
    bool stuck = false;
    while (store_->tracker().DataFull()) {
      const size_t freed = store_->FlushOnce();
      unstall_cv_.notify_all();
      if (freed == 0) {
        // Nothing flushable: a stalled digestion thread must not wait on
        // progress that will never come. Overshooting beats deadlock; the
        // flag resets on the next round, so flushing is retried once more
        // data arrives.
        stuck = true;
        flush_stuck_events_->Increment();
        KFLUSH_TRACE_INSTANT(
            "system", "flush_stuck",
            TraceArg::Uint("data_used", store_->tracker().DataUsed()));
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flush_stuck_ = stuck;
    }
    unstall_cv_.notify_all();
    if (stop_requested_.load()) return;
  }
}

}  // namespace kflush
