// Query-side metrics: the memory hit ratio (the paper's headline measure)
// broken down by query type, plus query latency.

#ifndef KFLUSH_CORE_METRICS_H_
#define KFLUSH_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/metrics_registry.h"
#include "util/histogram.h"

namespace kflush {

/// Query kinds (single-term, multi-term AND, multi-term OR).
enum class QueryType : int { kSingle = 0, kAnd, kOr };

const char* QueryTypeName(QueryType type);

/// Point-in-time snapshot of the engine's counters.
struct QueryMetricsSnapshot {
  uint64_t queries = 0;
  uint64_t memory_hits = 0;
  uint64_t memory_misses = 0;
  uint64_t disk_term_reads = 0;
  uint64_t queries_by_type[3] = {0, 0, 0};
  uint64_t hits_by_type[3] = {0, 0, 0};
  Histogram latency_micros;

  /// memory_hits / queries, in [0, 1]; 0 when no queries ran.
  double HitRatio() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(memory_hits) / static_cast<double>(queries);
  }

  double HitRatioFor(QueryType type) const {
    const int i = static_cast<int>(type);
    return queries_by_type[i] == 0
               ? 0.0
               : static_cast<double>(hits_by_type[i]) /
                     static_cast<double>(queries_by_type[i]);
  }

  std::string ToString() const;
};

/// Thread-safe counters updated by the query engine. Lock-free on the
/// record path: per-field atomics plus a lock-striped latency histogram
/// (registry instruments), so concurrent queries never serialize on one
/// metrics mutex.
class QueryMetrics {
 public:
  void Record(QueryType type, bool memory_hit, uint64_t disk_term_reads,
              uint64_t latency_micros);
  /// Not linearizable against concurrent Record() or Snapshot(); quiesce
  /// both first.
  void Reset();
  QueryMetricsSnapshot Snapshot() const;

 private:
  // Anti-tearing contract between Record and Snapshot: Record bumps the
  // query totals first (relaxed) and the hit/miss counters last (release);
  // Snapshot loads hit/miss first (acquire) and the totals afterwards.
  // Observing a hit increment therefore implies its query increment is
  // visible, so a concurrent snapshot always satisfies
  //   memory_hits + memory_misses <= queries   and
  //   hits_by_type[i]            <= queries_by_type[i],
  // never the torn opposite (a "hit ratio" above 100%).
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> disk_term_reads_{0};
  std::atomic<uint64_t> queries_by_type_[3] = {};
  std::atomic<uint64_t> memory_hits_{0};
  std::atomic<uint64_t> memory_misses_{0};
  std::atomic<uint64_t> hits_by_type_[3] = {};
  ConcurrentHistogram latency_micros_;
};

}  // namespace kflush

#endif  // KFLUSH_CORE_METRICS_H_
