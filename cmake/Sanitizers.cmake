# Sanitizer wiring. Usage:
#
#   cmake -B build-tsan -S . -DKFLUSH_SANITIZE=thread
#   cmake -B build-asan -S . -DKFLUSH_SANITIZE=address,undefined
#
# or via the presets in CMakePresets.json (`cmake --preset tsan`). Accepted
# values: empty (off), "thread", "address", "undefined", or a comma-
# separated combination of address/undefined. thread cannot combine with
# address (the runtimes are mutually exclusive).
#
# Every sanitized build compiles with frame pointers and full debug info so
# reports carry usable stacks, and kflush_sanitizer_env() hands tests the
# *SAN_OPTIONS pointing at the suppression files under sanitizers/.

set(KFLUSH_SANITIZE "" CACHE STRING
    "Sanitizer(s) to build with: thread|address|undefined|address,undefined")
set_property(CACHE KFLUSH_SANITIZE PROPERTY STRINGS
             "" thread address undefined "address,undefined")

set(KFLUSH_SANITIZER_FLAGS "")
set(KFLUSH_SANITIZER_KINDS "")

if(KFLUSH_SANITIZE)
  string(REPLACE "," ";" _kflush_san_list "${KFLUSH_SANITIZE}")
  foreach(_san IN LISTS _kflush_san_list)
    if(NOT _san MATCHES "^(thread|address|undefined|leak)$")
      message(FATAL_ERROR "KFLUSH_SANITIZE: unknown sanitizer '${_san}' "
                          "(expected thread, address, undefined, or leak)")
    endif()
    list(APPEND KFLUSH_SANITIZER_KINDS "${_san}")
  endforeach()
  if("thread" IN_LIST KFLUSH_SANITIZER_KINDS AND
     ("address" IN_LIST KFLUSH_SANITIZER_KINDS OR
      "leak" IN_LIST KFLUSH_SANITIZER_KINDS))
    message(FATAL_ERROR "KFLUSH_SANITIZE: thread cannot combine with "
                        "address/leak — their runtimes are exclusive")
  endif()

  string(REPLACE ";" "," _kflush_san_arg "${KFLUSH_SANITIZER_KINDS}")
  set(KFLUSH_SANITIZER_FLAGS
      -fsanitize=${_kflush_san_arg} -fno-omit-frame-pointer -g)
  if("undefined" IN_LIST KFLUSH_SANITIZER_KINDS)
    # Make UB fail the test instead of logging and carrying on.
    list(APPEND KFLUSH_SANITIZER_FLAGS -fno-sanitize-recover=undefined)
  endif()

  add_compile_options(${KFLUSH_SANITIZER_FLAGS})
  add_link_options(${KFLUSH_SANITIZER_FLAGS})
  message(STATUS "kflush: building with -fsanitize=${_kflush_san_arg}")
endif()

# Default runtime options (suppression file paths, halt-on-error) are baked
# into every sanitized binary via the __*_default_options hooks in
# src/util/sanitizer_options.cc, so plain `ctest`, direct binary runs, and
# CI all pick them up; *SAN_OPTIONS env vars still override at run time.
