file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_user.dir/bench_fig12_user.cc.o"
  "CMakeFiles/bench_fig12_user.dir/bench_fig12_user.cc.o.d"
  "bench_fig12_user"
  "bench_fig12_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
