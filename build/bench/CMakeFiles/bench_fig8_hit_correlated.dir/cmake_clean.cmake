file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hit_correlated.dir/bench_fig8_hit_correlated.cc.o"
  "CMakeFiles/bench_fig8_hit_correlated.dir/bench_fig8_hit_correlated.cc.o.d"
  "bench_fig8_hit_correlated"
  "bench_fig8_hit_correlated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hit_correlated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
