# Empty dependencies file for bench_fig8_hit_correlated.
# This may be replaced when dependencies are built.
