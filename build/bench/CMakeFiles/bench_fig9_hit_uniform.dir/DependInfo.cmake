
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_hit_uniform.cc" "bench/CMakeFiles/bench_fig9_hit_uniform.dir/bench_fig9_hit_uniform.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_hit_uniform.dir/bench_fig9_hit_uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
