file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hit_uniform.dir/bench_fig9_hit_uniform.cc.o"
  "CMakeFiles/bench_fig9_hit_uniform.dir/bench_fig9_hit_uniform.cc.o.d"
  "bench_fig9_hit_uniform"
  "bench_fig9_hit_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hit_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
