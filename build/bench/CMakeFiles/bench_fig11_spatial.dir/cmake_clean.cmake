file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_spatial.dir/bench_fig11_spatial.cc.o"
  "CMakeFiles/bench_fig11_spatial.dir/bench_fig11_spatial.cc.o.d"
  "bench_fig11_spatial"
  "bench_fig11_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
