# Empty compiler generated dependencies file for bench_fig7_kfilled.
# This may be replaced when dependencies are built.
