file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_kfilled.dir/bench_fig7_kfilled.cc.o"
  "CMakeFiles/bench_fig7_kfilled.dir/bench_fig7_kfilled.cc.o.d"
  "bench_fig7_kfilled"
  "bench_fig7_kfilled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_kfilled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
