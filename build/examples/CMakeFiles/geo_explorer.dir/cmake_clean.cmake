file(REMOVE_RECURSE
  "CMakeFiles/geo_explorer.dir/geo_explorer.cpp.o"
  "CMakeFiles/geo_explorer.dir/geo_explorer.cpp.o.d"
  "geo_explorer"
  "geo_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
