# Empty compiler generated dependencies file for geo_explorer.
# This may be replaced when dependencies are built.
