# Empty compiler generated dependencies file for user_timeline.
# This may be replaced when dependencies are built.
