file(REMOVE_RECURSE
  "CMakeFiles/user_timeline.dir/user_timeline.cpp.o"
  "CMakeFiles/user_timeline.dir/user_timeline.cpp.o.d"
  "user_timeline"
  "user_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
