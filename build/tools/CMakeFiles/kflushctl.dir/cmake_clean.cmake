file(REMOVE_RECURSE
  "CMakeFiles/kflushctl.dir/kflushctl.cc.o"
  "CMakeFiles/kflushctl.dir/kflushctl.cc.o.d"
  "kflushctl"
  "kflushctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflushctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
