# Empty compiler generated dependencies file for kflushctl.
# This may be replaced when dependencies are built.
