file(REMOVE_RECURSE
  "libkflush_gen.a"
)
