file(REMOVE_RECURSE
  "CMakeFiles/kflush_gen.dir/gen/query_generator.cc.o"
  "CMakeFiles/kflush_gen.dir/gen/query_generator.cc.o.d"
  "CMakeFiles/kflush_gen.dir/gen/trace.cc.o"
  "CMakeFiles/kflush_gen.dir/gen/trace.cc.o.d"
  "CMakeFiles/kflush_gen.dir/gen/tweet_generator.cc.o"
  "CMakeFiles/kflush_gen.dir/gen/tweet_generator.cc.o.d"
  "libkflush_gen.a"
  "libkflush_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
