# Empty dependencies file for kflush_gen.
# This may be replaced when dependencies are built.
