
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/fifo_policy.cc" "src/CMakeFiles/kflush_policy.dir/policy/fifo_policy.cc.o" "gcc" "src/CMakeFiles/kflush_policy.dir/policy/fifo_policy.cc.o.d"
  "/root/repo/src/policy/flush_policy.cc" "src/CMakeFiles/kflush_policy.dir/policy/flush_policy.cc.o" "gcc" "src/CMakeFiles/kflush_policy.dir/policy/flush_policy.cc.o.d"
  "/root/repo/src/policy/kflushing_policy.cc" "src/CMakeFiles/kflush_policy.dir/policy/kflushing_policy.cc.o" "gcc" "src/CMakeFiles/kflush_policy.dir/policy/kflushing_policy.cc.o.d"
  "/root/repo/src/policy/lru_policy.cc" "src/CMakeFiles/kflush_policy.dir/policy/lru_policy.cc.o" "gcc" "src/CMakeFiles/kflush_policy.dir/policy/lru_policy.cc.o.d"
  "/root/repo/src/policy/policy_factory.cc" "src/CMakeFiles/kflush_policy.dir/policy/policy_factory.cc.o" "gcc" "src/CMakeFiles/kflush_policy.dir/policy/policy_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
