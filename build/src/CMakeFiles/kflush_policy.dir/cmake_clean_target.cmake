file(REMOVE_RECURSE
  "libkflush_policy.a"
)
