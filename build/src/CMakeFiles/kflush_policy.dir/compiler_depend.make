# Empty compiler generated dependencies file for kflush_policy.
# This may be replaced when dependencies are built.
