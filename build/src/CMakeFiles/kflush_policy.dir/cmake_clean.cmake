file(REMOVE_RECURSE
  "CMakeFiles/kflush_policy.dir/policy/fifo_policy.cc.o"
  "CMakeFiles/kflush_policy.dir/policy/fifo_policy.cc.o.d"
  "CMakeFiles/kflush_policy.dir/policy/flush_policy.cc.o"
  "CMakeFiles/kflush_policy.dir/policy/flush_policy.cc.o.d"
  "CMakeFiles/kflush_policy.dir/policy/kflushing_policy.cc.o"
  "CMakeFiles/kflush_policy.dir/policy/kflushing_policy.cc.o.d"
  "CMakeFiles/kflush_policy.dir/policy/lru_policy.cc.o"
  "CMakeFiles/kflush_policy.dir/policy/lru_policy.cc.o.d"
  "CMakeFiles/kflush_policy.dir/policy/policy_factory.cc.o"
  "CMakeFiles/kflush_policy.dir/policy/policy_factory.cc.o.d"
  "libkflush_policy.a"
  "libkflush_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
