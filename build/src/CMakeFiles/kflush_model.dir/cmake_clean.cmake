file(REMOVE_RECURSE
  "CMakeFiles/kflush_model.dir/model/attribute.cc.o"
  "CMakeFiles/kflush_model.dir/model/attribute.cc.o.d"
  "CMakeFiles/kflush_model.dir/model/keyword_dictionary.cc.o"
  "CMakeFiles/kflush_model.dir/model/keyword_dictionary.cc.o.d"
  "CMakeFiles/kflush_model.dir/model/microblog.cc.o"
  "CMakeFiles/kflush_model.dir/model/microblog.cc.o.d"
  "CMakeFiles/kflush_model.dir/model/tokenizer.cc.o"
  "CMakeFiles/kflush_model.dir/model/tokenizer.cc.o.d"
  "libkflush_model.a"
  "libkflush_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
