# Empty dependencies file for kflush_model.
# This may be replaced when dependencies are built.
