
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/attribute.cc" "src/CMakeFiles/kflush_model.dir/model/attribute.cc.o" "gcc" "src/CMakeFiles/kflush_model.dir/model/attribute.cc.o.d"
  "/root/repo/src/model/keyword_dictionary.cc" "src/CMakeFiles/kflush_model.dir/model/keyword_dictionary.cc.o" "gcc" "src/CMakeFiles/kflush_model.dir/model/keyword_dictionary.cc.o.d"
  "/root/repo/src/model/microblog.cc" "src/CMakeFiles/kflush_model.dir/model/microblog.cc.o" "gcc" "src/CMakeFiles/kflush_model.dir/model/microblog.cc.o.d"
  "/root/repo/src/model/tokenizer.cc" "src/CMakeFiles/kflush_model.dir/model/tokenizer.cc.o" "gcc" "src/CMakeFiles/kflush_model.dir/model/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
