file(REMOVE_RECURSE
  "libkflush_model.a"
)
