# Empty dependencies file for kflush_util.
# This may be replaced when dependencies are built.
