file(REMOVE_RECURSE
  "CMakeFiles/kflush_util.dir/util/clock.cc.o"
  "CMakeFiles/kflush_util.dir/util/clock.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/histogram.cc.o"
  "CMakeFiles/kflush_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/logging.cc.o"
  "CMakeFiles/kflush_util.dir/util/logging.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/memory_tracker.cc.o"
  "CMakeFiles/kflush_util.dir/util/memory_tracker.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/random.cc.o"
  "CMakeFiles/kflush_util.dir/util/random.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/status.cc.o"
  "CMakeFiles/kflush_util.dir/util/status.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/thread_util.cc.o"
  "CMakeFiles/kflush_util.dir/util/thread_util.cc.o.d"
  "CMakeFiles/kflush_util.dir/util/zipf.cc.o"
  "CMakeFiles/kflush_util.dir/util/zipf.cc.o.d"
  "libkflush_util.a"
  "libkflush_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
