file(REMOVE_RECURSE
  "libkflush_util.a"
)
