
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/kflush_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/kflush_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/multi_store.cc" "src/CMakeFiles/kflush_core.dir/core/multi_store.cc.o" "gcc" "src/CMakeFiles/kflush_core.dir/core/multi_store.cc.o.d"
  "/root/repo/src/core/query_engine.cc" "src/CMakeFiles/kflush_core.dir/core/query_engine.cc.o" "gcc" "src/CMakeFiles/kflush_core.dir/core/query_engine.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/CMakeFiles/kflush_core.dir/core/ranking.cc.o" "gcc" "src/CMakeFiles/kflush_core.dir/core/ranking.cc.o.d"
  "/root/repo/src/core/store.cc" "src/CMakeFiles/kflush_core.dir/core/store.cc.o" "gcc" "src/CMakeFiles/kflush_core.dir/core/store.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/kflush_core.dir/core/system.cc.o" "gcc" "src/CMakeFiles/kflush_core.dir/core/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
