# Empty compiler generated dependencies file for kflush_core.
# This may be replaced when dependencies are built.
