file(REMOVE_RECURSE
  "libkflush_core.a"
)
