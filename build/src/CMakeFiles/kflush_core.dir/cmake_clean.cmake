file(REMOVE_RECURSE
  "CMakeFiles/kflush_core.dir/core/metrics.cc.o"
  "CMakeFiles/kflush_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/kflush_core.dir/core/multi_store.cc.o"
  "CMakeFiles/kflush_core.dir/core/multi_store.cc.o.d"
  "CMakeFiles/kflush_core.dir/core/query_engine.cc.o"
  "CMakeFiles/kflush_core.dir/core/query_engine.cc.o.d"
  "CMakeFiles/kflush_core.dir/core/ranking.cc.o"
  "CMakeFiles/kflush_core.dir/core/ranking.cc.o.d"
  "CMakeFiles/kflush_core.dir/core/store.cc.o"
  "CMakeFiles/kflush_core.dir/core/store.cc.o.d"
  "CMakeFiles/kflush_core.dir/core/system.cc.o"
  "CMakeFiles/kflush_core.dir/core/system.cc.o.d"
  "libkflush_core.a"
  "libkflush_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
