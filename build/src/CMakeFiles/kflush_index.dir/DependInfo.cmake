
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_stats.cc" "src/CMakeFiles/kflush_index.dir/index/index_stats.cc.o" "gcc" "src/CMakeFiles/kflush_index.dir/index/index_stats.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/kflush_index.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/kflush_index.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/posting_list.cc" "src/CMakeFiles/kflush_index.dir/index/posting_list.cc.o" "gcc" "src/CMakeFiles/kflush_index.dir/index/posting_list.cc.o.d"
  "/root/repo/src/index/segmented_index.cc" "src/CMakeFiles/kflush_index.dir/index/segmented_index.cc.o" "gcc" "src/CMakeFiles/kflush_index.dir/index/segmented_index.cc.o.d"
  "/root/repo/src/index/spatial_grid.cc" "src/CMakeFiles/kflush_index.dir/index/spatial_grid.cc.o" "gcc" "src/CMakeFiles/kflush_index.dir/index/spatial_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
