file(REMOVE_RECURSE
  "libkflush_index.a"
)
