file(REMOVE_RECURSE
  "CMakeFiles/kflush_index.dir/index/index_stats.cc.o"
  "CMakeFiles/kflush_index.dir/index/index_stats.cc.o.d"
  "CMakeFiles/kflush_index.dir/index/inverted_index.cc.o"
  "CMakeFiles/kflush_index.dir/index/inverted_index.cc.o.d"
  "CMakeFiles/kflush_index.dir/index/posting_list.cc.o"
  "CMakeFiles/kflush_index.dir/index/posting_list.cc.o.d"
  "CMakeFiles/kflush_index.dir/index/segmented_index.cc.o"
  "CMakeFiles/kflush_index.dir/index/segmented_index.cc.o.d"
  "CMakeFiles/kflush_index.dir/index/spatial_grid.cc.o"
  "CMakeFiles/kflush_index.dir/index/spatial_grid.cc.o.d"
  "libkflush_index.a"
  "libkflush_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
