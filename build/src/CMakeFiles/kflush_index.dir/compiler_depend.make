# Empty compiler generated dependencies file for kflush_index.
# This may be replaced when dependencies are built.
