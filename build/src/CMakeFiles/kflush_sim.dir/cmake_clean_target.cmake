file(REMOVE_RECURSE
  "libkflush_sim.a"
)
