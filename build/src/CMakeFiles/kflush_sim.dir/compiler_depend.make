# Empty compiler generated dependencies file for kflush_sim.
# This may be replaced when dependencies are built.
