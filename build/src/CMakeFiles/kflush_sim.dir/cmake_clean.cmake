file(REMOVE_RECURSE
  "CMakeFiles/kflush_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/kflush_sim.dir/sim/experiment.cc.o.d"
  "libkflush_sim.a"
  "libkflush_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
