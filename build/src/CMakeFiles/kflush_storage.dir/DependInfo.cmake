
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_store.cc" "src/CMakeFiles/kflush_storage.dir/storage/disk_store.cc.o" "gcc" "src/CMakeFiles/kflush_storage.dir/storage/disk_store.cc.o.d"
  "/root/repo/src/storage/file_disk_store.cc" "src/CMakeFiles/kflush_storage.dir/storage/file_disk_store.cc.o" "gcc" "src/CMakeFiles/kflush_storage.dir/storage/file_disk_store.cc.o.d"
  "/root/repo/src/storage/flush_buffer.cc" "src/CMakeFiles/kflush_storage.dir/storage/flush_buffer.cc.o" "gcc" "src/CMakeFiles/kflush_storage.dir/storage/flush_buffer.cc.o.d"
  "/root/repo/src/storage/raw_store.cc" "src/CMakeFiles/kflush_storage.dir/storage/raw_store.cc.o" "gcc" "src/CMakeFiles/kflush_storage.dir/storage/raw_store.cc.o.d"
  "/root/repo/src/storage/serde.cc" "src/CMakeFiles/kflush_storage.dir/storage/serde.cc.o" "gcc" "src/CMakeFiles/kflush_storage.dir/storage/serde.cc.o.d"
  "/root/repo/src/storage/sim_disk_store.cc" "src/CMakeFiles/kflush_storage.dir/storage/sim_disk_store.cc.o" "gcc" "src/CMakeFiles/kflush_storage.dir/storage/sim_disk_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
