file(REMOVE_RECURSE
  "CMakeFiles/kflush_storage.dir/storage/disk_store.cc.o"
  "CMakeFiles/kflush_storage.dir/storage/disk_store.cc.o.d"
  "CMakeFiles/kflush_storage.dir/storage/file_disk_store.cc.o"
  "CMakeFiles/kflush_storage.dir/storage/file_disk_store.cc.o.d"
  "CMakeFiles/kflush_storage.dir/storage/flush_buffer.cc.o"
  "CMakeFiles/kflush_storage.dir/storage/flush_buffer.cc.o.d"
  "CMakeFiles/kflush_storage.dir/storage/raw_store.cc.o"
  "CMakeFiles/kflush_storage.dir/storage/raw_store.cc.o.d"
  "CMakeFiles/kflush_storage.dir/storage/serde.cc.o"
  "CMakeFiles/kflush_storage.dir/storage/serde.cc.o.d"
  "CMakeFiles/kflush_storage.dir/storage/sim_disk_store.cc.o"
  "CMakeFiles/kflush_storage.dir/storage/sim_disk_store.cc.o.d"
  "libkflush_storage.a"
  "libkflush_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflush_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
