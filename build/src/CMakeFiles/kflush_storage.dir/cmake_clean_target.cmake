file(REMOVE_RECURSE
  "libkflush_storage.a"
)
