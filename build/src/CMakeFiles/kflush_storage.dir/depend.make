# Empty dependencies file for kflush_storage.
# This may be replaced when dependencies are built.
