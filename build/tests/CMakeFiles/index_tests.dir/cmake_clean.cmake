file(REMOVE_RECURSE
  "CMakeFiles/index_tests.dir/index/index_stats_test.cc.o"
  "CMakeFiles/index_tests.dir/index/index_stats_test.cc.o.d"
  "CMakeFiles/index_tests.dir/index/inverted_index_concurrency_test.cc.o"
  "CMakeFiles/index_tests.dir/index/inverted_index_concurrency_test.cc.o.d"
  "CMakeFiles/index_tests.dir/index/inverted_index_test.cc.o"
  "CMakeFiles/index_tests.dir/index/inverted_index_test.cc.o.d"
  "CMakeFiles/index_tests.dir/index/posting_list_model_test.cc.o"
  "CMakeFiles/index_tests.dir/index/posting_list_model_test.cc.o.d"
  "CMakeFiles/index_tests.dir/index/posting_list_test.cc.o"
  "CMakeFiles/index_tests.dir/index/posting_list_test.cc.o.d"
  "CMakeFiles/index_tests.dir/index/segmented_index_test.cc.o"
  "CMakeFiles/index_tests.dir/index/segmented_index_test.cc.o.d"
  "CMakeFiles/index_tests.dir/index/spatial_grid_test.cc.o"
  "CMakeFiles/index_tests.dir/index/spatial_grid_test.cc.o.d"
  "index_tests"
  "index_tests.pdb"
  "index_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
