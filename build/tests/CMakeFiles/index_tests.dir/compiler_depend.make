# Empty compiler generated dependencies file for index_tests.
# This may be replaced when dependencies are built.
