
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/clock_test.cc" "tests/CMakeFiles/util_tests.dir/util/clock_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/clock_test.cc.o.d"
  "/root/repo/tests/util/histogram_test.cc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/histogram_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/util_tests.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/memory_tracker_test.cc" "tests/CMakeFiles/util_tests.dir/util/memory_tracker_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/memory_tracker_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/util_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/util_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/thread_util_test.cc" "tests/CMakeFiles/util_tests.dir/util/thread_util_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_util_test.cc.o.d"
  "/root/repo/tests/util/zipf_test.cc" "tests/CMakeFiles/util_tests.dir/util/zipf_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/zipf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
