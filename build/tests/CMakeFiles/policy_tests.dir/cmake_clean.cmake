file(REMOVE_RECURSE
  "CMakeFiles/policy_tests.dir/policy/fifo_policy_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/fifo_policy_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/kflushing_mk_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/kflushing_mk_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/kflushing_policy_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/kflushing_policy_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/lru_policy_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/lru_policy_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/phase3_ordering_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/phase3_ordering_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/policy_invariants_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/policy_invariants_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/ranking_flush_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/ranking_flush_test.cc.o.d"
  "CMakeFiles/policy_tests.dir/policy/select_victims_test.cc.o"
  "CMakeFiles/policy_tests.dir/policy/select_victims_test.cc.o.d"
  "policy_tests"
  "policy_tests.pdb"
  "policy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
