file(REMOVE_RECURSE
  "CMakeFiles/gen_tests.dir/gen/hot_set_workload_test.cc.o"
  "CMakeFiles/gen_tests.dir/gen/hot_set_workload_test.cc.o.d"
  "CMakeFiles/gen_tests.dir/gen/query_generator_test.cc.o"
  "CMakeFiles/gen_tests.dir/gen/query_generator_test.cc.o.d"
  "CMakeFiles/gen_tests.dir/gen/trace_test.cc.o"
  "CMakeFiles/gen_tests.dir/gen/trace_test.cc.o.d"
  "CMakeFiles/gen_tests.dir/gen/tweet_generator_test.cc.o"
  "CMakeFiles/gen_tests.dir/gen/tweet_generator_test.cc.o.d"
  "gen_tests"
  "gen_tests.pdb"
  "gen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
