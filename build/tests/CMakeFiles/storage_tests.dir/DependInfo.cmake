
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/disk_store_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/disk_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/disk_store_test.cc.o.d"
  "/root/repo/tests/storage/failure_injection_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/failure_injection_test.cc.o.d"
  "/root/repo/tests/storage/file_disk_store_recovery_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/file_disk_store_recovery_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/file_disk_store_recovery_test.cc.o.d"
  "/root/repo/tests/storage/flush_buffer_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/flush_buffer_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/flush_buffer_test.cc.o.d"
  "/root/repo/tests/storage/raw_store_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/raw_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/raw_store_test.cc.o.d"
  "/root/repo/tests/storage/serde_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/serde_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/serde_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
