file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/storage/disk_store_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/disk_store_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/failure_injection_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/failure_injection_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/file_disk_store_recovery_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/file_disk_store_recovery_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/flush_buffer_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/flush_buffer_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/raw_store_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/raw_store_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/serde_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/serde_test.cc.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
