
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/metrics_test.cc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cc.o.d"
  "/root/repo/tests/core/multi_store_test.cc" "tests/CMakeFiles/core_tests.dir/core/multi_store_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multi_store_test.cc.o.d"
  "/root/repo/tests/core/query_engine_extended_test.cc" "tests/CMakeFiles/core_tests.dir/core/query_engine_extended_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/query_engine_extended_test.cc.o.d"
  "/root/repo/tests/core/query_engine_test.cc" "tests/CMakeFiles/core_tests.dir/core/query_engine_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/query_engine_test.cc.o.d"
  "/root/repo/tests/core/ranking_test.cc" "tests/CMakeFiles/core_tests.dir/core/ranking_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ranking_test.cc.o.d"
  "/root/repo/tests/core/store_test.cc" "tests/CMakeFiles/core_tests.dir/core/store_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/store_test.cc.o.d"
  "/root/repo/tests/core/system_test.cc" "tests/CMakeFiles/core_tests.dir/core/system_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kflush_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kflush_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
