file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/metrics_test.cc.o"
  "CMakeFiles/core_tests.dir/core/metrics_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/multi_store_test.cc.o"
  "CMakeFiles/core_tests.dir/core/multi_store_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/query_engine_extended_test.cc.o"
  "CMakeFiles/core_tests.dir/core/query_engine_extended_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/query_engine_test.cc.o"
  "CMakeFiles/core_tests.dir/core/query_engine_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/ranking_test.cc.o"
  "CMakeFiles/core_tests.dir/core/ranking_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/store_test.cc.o"
  "CMakeFiles/core_tests.dir/core/store_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/system_test.cc.o"
  "CMakeFiles/core_tests.dir/core/system_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
