# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/model_tests[1]_include.cmake")
include("/root/repo/build/tests/index_tests[1]_include.cmake")
include("/root/repo/build/tests/storage_tests[1]_include.cmake")
include("/root/repo/build/tests/policy_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/gen_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
add_test(kflushctl_usage "/root/repo/build/tools/kflushctl")
set_tests_properties(kflushctl_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;89;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kflushctl_experiment "/root/repo/build/tools/kflushctl" "experiment" "--queries" "200" "--memory-mb" "2" "--vocab" "2000" "--users" "500")
set_tests_properties(kflushctl_experiment PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kflushctl_compare "/root/repo/build/tools/kflushctl" "compare" "--queries" "200" "--memory-mb" "2" "--vocab" "2000" "--users" "500")
set_tests_properties(kflushctl_compare PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;94;add_test;/root/repo/tests/CMakeLists.txt;0;")
