// metrics_dump — runs a small seeded workload through one store and dumps
// the metrics registry snapshot, as JSON or as a human-readable listing.
//
//   metrics_dump [--policy P] [--k K] [--memory-mb M] [--inserts N]
//                [--queries N] [--seed S] [--format json|text|prometheus]
//
// This is the observability smoke tool: one command that exercises ingest,
// flushing (all phases), and the query surface, then prints every metric
// the registry knows about — the quickest way to eyeball the taxonomy
// documented in docs/INTERNALS.md or to pipe a snapshot into jq.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/query_engine.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"

using namespace kflush;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    std::string key = arg + 2;
    std::string value = "true";
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    flags.values[key] = value;
  }
  return flags;
}

PolicyKind ParsePolicy(const std::string& name) {
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "lru") return PolicyKind::kLru;
  if (name == "kflushing") return PolicyKind::kKFlushing;
  if (name == "kflushing-mk" || name == "mk") return PolicyKind::kKFlushingMK;
  std::fprintf(stderr,
               "unknown policy '%s' (fifo|lru|kflushing|kflushing-mk)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  SimClock clock(1'000'000);
  StoreOptions options;
  options.policy = ParsePolicy(flags.Get("policy", "kflushing"));
  options.k = static_cast<uint32_t>(flags.GetInt("k", 20));
  options.memory_budget_bytes =
      static_cast<size_t>(flags.GetInt("memory-mb", 4)) << 20;
  options.clock = &clock;
  MicroblogStore store(options);
  QueryEngine engine(&store);

  TweetGeneratorOptions stream;
  stream.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160516));
  TweetGenerator tweets(stream);
  const long inserts = flags.GetInt("inserts", 50'000);
  for (long i = 0; i < inserts; ++i) {
    Microblog blog = tweets.Next();
    clock.Set(blog.created_at);
    Status s = store.Insert(std::move(blog));
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  QueryWorkloadOptions workload;
  workload.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160516)) + 1;
  QueryGenerator queries(workload, stream);
  const long num_queries = flags.GetInt("queries", 2'000);
  for (long i = 0; i < num_queries; ++i) {
    clock.Advance(1);
    auto outcome = engine.Execute(queries.Next());
    if (!outcome.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   outcome.status().ToString().c_str());
    }
  }

  const MetricsSnapshot snap = store.metrics_registry()->Snapshot();
  const std::string format = flags.Get("format", "text");
  if (format == "json") {
    std::printf("%s\n", snap.ToJson().c_str());
  } else if (format == "prometheus") {
    std::printf("%s", snap.ToPrometheus().c_str());
  } else if (format == "text") {
    std::printf("%s", snap.ToString().c_str());
  } else {
    std::fprintf(stderr, "unknown format '%s' (json|text|prometheus)\n",
                 format.c_str());
    return 2;
  }
  return 0;
}
