// kflushctl — command-line driver for the kflush library.
//
//   kflushctl gen-trace   --out FILE --count N [stream flags]
//   kflushctl replay      --trace FILE [--policy P] [--k K] [--memory-mb M]
//   kflushctl recover     --durable-dir DIR [--policy P] [--k K]
//   kflushctl experiment  [--policy P] [--workload W] [--attribute A]
//                         [--k K] [--memory-mb M] [--flush-pct B]
//                         [--queries N] [--seed S]
//   kflushctl compare     [same flags as experiment; runs all policies]
//   kflushctl trace       --out FILE [experiment flags]
//   kflushctl serve       [--host H] [--port P] [--shards N] [...]
//   kflushctl top         [--host H] [--port P] [--interval-ms I] [--once]
//   kflushctl watch       [--host H] [--port P] --kind keyword|area|user
//                         [--k K] [--term T] [--user U] [--min-lat ..]
//                         [--count N]
//   kflushctl scrape      [--host H] [--port P]
//   kflushctl health      [--host H] [--port P]
//   kflushctl shutdown    [--host H] [--port P]
//
// `experiment` runs the same deterministic steady-state harness as the
// figure benchmarks and prints the full result; `compare` tabulates all
// four policies side by side; `replay` streams a saved trace through a
// store and reports ingest + memory statistics.
//
// `recover` opens a durable store directory (WAL + segments), runs
// restart recovery, and reports what it found — the smoke test for "will
// this directory come back after a crash". Every run command accepts
// --durable-dir DIR [--durability none|batch|commit] to run with the
// durable tier on (the ingest-throughput-vs-durability table in
// docs/EXPERIMENTS.md is measured with `replay` this way).
//
// `trace` runs one experiment with the flush-cycle trace recorder on
// (start -> run -> stop -> dump) and writes Perfetto-loadable Chrome trace
// JSON plus an eviction-audit summary. Every run command (`replay`,
// `experiment`, `compare`) also accepts --trace-out FILE to capture a
// trace of a normal run. (Note: `gen-trace`/`replay` deal in *tweet*
// traces — recorded input streams — an older naming that predates the
// execution tracer.)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_system.h"
#include "core/trace.h"
#include "gen/trace.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/experiment.h"
#include "storage/wal.h"

using namespace kflush;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    std::string key = arg + 2;
    std::string value = "true";
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    flags.values[key] = value;
  }
  return flags;
}

PolicyKind ParsePolicy(const std::string& name) {
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "lru") return PolicyKind::kLru;
  if (name == "kflushing") return PolicyKind::kKFlushing;
  if (name == "kflushing-mk" || name == "mk") return PolicyKind::kKFlushingMK;
  std::fprintf(stderr, "unknown policy '%s' (fifo|lru|kflushing|kflushing-mk)\n",
               name.c_str());
  std::exit(2);
}

AttributeKind ParseAttribute(const std::string& name) {
  if (name == "keyword") return AttributeKind::kKeyword;
  if (name == "spatial") return AttributeKind::kSpatial;
  if (name == "user") return AttributeKind::kUser;
  std::fprintf(stderr, "unknown attribute '%s' (keyword|spatial|user)\n",
               name.c_str());
  std::exit(2);
}

ExperimentConfig ConfigFromFlags(const Flags& flags) {
  ExperimentConfig config;
  config.store.policy = ParsePolicy(flags.Get("policy", "kflushing"));
  config.store.attribute = ParseAttribute(flags.Get("attribute", "keyword"));
  config.workload.attribute = config.store.attribute;
  config.store.k = static_cast<uint32_t>(flags.GetInt("k", 20));
  config.store.memory_budget_bytes =
      static_cast<size_t>(flags.GetInt("memory-mb", 32)) << 20;
  config.store.flush_fraction = flags.GetDouble("flush-pct", 10.0) / 100.0;
  config.workload.kind = flags.Get("workload", "correlated") == "uniform"
                             ? WorkloadKind::kUniform
                             : WorkloadKind::kCorrelated;
  config.num_queries =
      static_cast<uint64_t>(flags.GetInt("queries", 20'000));
  config.stream.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.stream.vocabulary_size =
      static_cast<uint64_t>(flags.GetInt("vocab", 200'000));
  config.stream.num_users =
      static_cast<uint64_t>(flags.GetInt("users", 100'000));
  config.stream.keyword_zipf_s = flags.GetDouble("zipf", 1.2);
  config.workload.seed = config.stream.seed ^ 0xABCD;
  // Query temporal locality (drifting hot set) and the Phase 3 ordering
  // ablation switch.
  config.workload.hot_set_p = flags.GetDouble("hot-p", 0.0);
  config.workload.hot_set_size =
      static_cast<uint64_t>(flags.GetInt("hot-size", 0));
  config.store.phase3_by_query_time =
      flags.Get("phase3-order", "queried") != "arrived";
  const long shards = flags.GetInt("shards", 1);
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    std::exit(2);
  }
  config.shards = static_cast<size_t>(shards);
  const std::string durable_dir = flags.Get("durable-dir", "");
  if (!durable_dir.empty()) {
    config.store.durability.enabled = true;
    config.store.durability.dir = durable_dir;
    const std::string level = flags.Get("durability", "batch");
    if (!ParseDurabilityLevel(level, &config.store.durability.level)) {
      std::fprintf(stderr, "unknown durability '%s' (none|batch|commit)\n",
                   level.c_str());
      std::exit(2);
    }
  }
  return config;
}

int CmdRecover(const Flags& flags) {
  const std::string dir = flags.Get("durable-dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "recover requires --durable-dir DIR\n");
    return 2;
  }
  ExperimentConfig config = ConfigFromFlags(flags);
  Stopwatch watch;
  MicroblogStore store(config.store);
  const double secs = watch.ElapsedSeconds();
  const Status& status = store.durability_status();
  if (!status.ok()) {
    std::fprintf(stderr, "recovery FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  const StoreRecoveryStats rec = store.recovery_stats();
  const DiskStats disk = store.disk()->stats();
  std::printf("recovered %s in %.3fs (level=%s)\n", dir.c_str(), secs,
              DurabilityLevelName(config.store.durability.level));
  std::printf(
      "  segments: %llu records, %llu torn bytes truncated\n",
      static_cast<unsigned long long>(disk.records_recovered),
      static_cast<unsigned long long>(disk.torn_bytes_truncated));
  std::printf(
      "  wal: %llu entries replayed, %llu torn bytes truncated, "
      "%llu retained after compaction\n",
      static_cast<unsigned long long>(rec.wal_records_recovered),
      static_cast<unsigned long long>(rec.wal_torn_bytes_truncated),
      static_cast<unsigned long long>(rec.wal_entries_retained));
  std::printf(
      "  placement: %llu re-inserted in memory, %llu to a recovery "
      "segment\n",
      static_cast<unsigned long long>(rec.records_reinserted_memory),
      static_cast<unsigned long long>(rec.records_recovered_to_disk));
  std::printf("  max record id: %llu | disk records now: %zu\n",
              static_cast<unsigned long long>(store.recovered_max_id()),
              store.disk()->NumRecords());
  std::printf("%s\n", store.tracker().ToString().c_str());
  return 0;
}

int CmdGenTrace(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen-trace requires --out FILE\n");
    return 2;
  }
  const long count = flags.GetInt("count", 100'000);
  TweetGeneratorOptions opts = ConfigFromFlags(flags).stream;
  TweetGenerator gen(opts);
  auto writer = TraceWriter::Open(out);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  for (long i = 0; i < count; ++i) {
    Microblog blog = gen.Next();
    blog.id = static_cast<MicroblogId>(i + 1);
    Status s = (*writer)->Append(blog);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  Status s = (*writer)->Flush();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %ld microblogs to %s\n", count, out.c_str());
  return 0;
}

int CmdReplay(const Flags& flags) {
  const std::string path = flags.Get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "replay requires --trace FILE\n");
    return 2;
  }
  auto reader = TraceReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  ExperimentConfig config = ConfigFromFlags(flags);
  MicroblogStore store(config.store);
  Stopwatch watch;
  Microblog blog;
  uint64_t count = 0;
  while (true) {
    Status s = (*reader)->Next(&blog);
    if (s.IsNotFound()) break;
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    blog.id = kInvalidMicroblogId;  // store assigns fresh ids
    s = store.Insert(std::move(blog));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    ++count;
  }
  const double secs = watch.ElapsedSeconds();
  std::printf("replayed %llu microblogs in %.2fs (%.0f/s) under %s\n",
              static_cast<unsigned long long>(count), secs,
              secs > 0 ? static_cast<double>(count) / secs : 0.0,
              store.policy()->name());
  std::printf("%s\n", store.tracker().ToString().c_str());
  std::printf("flushes: %llu | policy: %s\n",
              static_cast<unsigned long long>(
                  store.ingest_stats().flush_triggers),
              store.policy()->stats().ToString().c_str());
  std::printf("terms=%zu k_filled=%zu\n", store.policy()->NumTerms(),
              store.policy()->NumKFilledTerms());
  if (store.wal() != nullptr) {
    const WriteAheadLog::Stats wal = store.wal()->stats();
    std::printf(
        "wal: %llu appends, %llu bytes, %llu commits, %llu fsyncs "
        "(p50 %lluus p99 %lluus)\n",
        static_cast<unsigned long long>(wal.records_appended),
        static_cast<unsigned long long>(wal.bytes_appended),
        static_cast<unsigned long long>(wal.commits),
        static_cast<unsigned long long>(wal.fsyncs),
        static_cast<unsigned long long>(wal.fsync_micros.Percentile(50.0)),
        static_cast<unsigned long long>(wal.fsync_micros.Percentile(99.0)));
  }
  return 0;
}

void PrintExperiment(const ExperimentConfig& config,
                     const ExperimentResult& result) {
  std::printf(
      "policy=%s attribute=%s workload=%s k=%u memory=%zuMB B=%.0f%% "
      "shards=%zu\n",
      PolicyKindName(config.store.policy),
      AttributeKindName(config.store.attribute),
      WorkloadKindName(config.workload.kind), config.store.k,
      config.store.memory_budget_bytes >> 20,
      config.store.flush_fraction * 100.0, config.shards);
  std::printf("  %s\n", result.ToString().c_str());
}

int CmdExperiment(const Flags& flags) {
  ExperimentConfig config = ConfigFromFlags(flags);
  ExperimentResult result = RunExperiment(config);
  PrintExperiment(config, result);
  return 0;
}

int CmdTrace(const Flags& flags) {
  const std::string out = flags.Get("out", flags.Get("trace-out", ""));
  if (out.empty()) {
    std::fprintf(stderr, "trace requires --out FILE\n");
    return 2;
  }
  ExperimentConfig config = ConfigFromFlags(flags);
  config.audit_evictions = true;
  ExperimentResult result;
  {
    ScopedTraceFile trace(out);
    result = RunExperiment(config);
  }
  PrintExperiment(config, result);
  Tracer* tracer = Tracer::Global();
  std::printf(
      "trace: %s (%llu events, %llu dropped by ring wraparound)\n",
      out.c_str(),
      static_cast<unsigned long long>(tracer->events_emitted()),
      static_cast<unsigned long long>(tracer->events_dropped()));
  std::printf("eviction audit: %zu victims, reconciliation vs PhaseStats: %s\n",
              result.eviction_audit.size(),
              result.audit_reconciliation.ToString().c_str());
  return result.audit_reconciliation.ok() ? 0 : 1;
}

int CmdCompare(const Flags& flags) {
  ExperimentConfig base = ConfigFromFlags(flags);
  std::printf("%-14s %10s %10s %8s %8s %8s %8s %12s\n", "policy", "k_filled",
              "useless%", "hit%", "single%", "and%", "or%", "aux_KB");
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    ExperimentConfig config = base;
    config.store.policy = policy;
    ExperimentResult r = RunExperiment(config);
    const auto& m = r.query_metrics;
    std::printf("%-14s %10zu %9.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %12zu\n",
                PolicyKindName(policy), r.k_filled_terms,
                r.frequency.useless_fraction * 100.0, m.HitRatio() * 100.0,
                m.HitRatioFor(QueryType::kSingle) * 100.0,
                m.HitRatioFor(QueryType::kAnd) * 100.0,
                m.HitRatioFor(QueryType::kOr) * 100.0,
                r.aux_memory_bytes / 1024);
  }
  return 0;
}

// SIGINT/SIGTERM handler target for `serve`: RequestStop is
// async-signal-safe (atomic store + eventfd write), the actual teardown
// runs on the main thread after AwaitStop.
net::NetServer* g_serve_server = nullptr;

void ServeSignalHandler(int) {
  if (g_serve_server != nullptr) g_serve_server->RequestStop();
}

int CmdServe(const Flags& flags) {
  ExperimentConfig config = ConfigFromFlags(flags);
  ShardedSystemOptions options;
  options.system.store = config.store;
  options.num_shards = config.shards;
  const long queue_cap = flags.GetInt("queue-capacity", 1024);
  if (queue_cap > 0) {
    options.system.ingest_queue_capacity = static_cast<size_t>(queue_cap);
  }
  ShardedMicroblogSystem system(options);
  const Status durability = system.DurabilityStatus();
  if (!durability.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 durability.ToString().c_str());
    return 1;
  }
  system.Start();

  net::ServerOptions server_options;
  server_options.host = flags.Get("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 7411));
  server_options.admission_queue_soft_limit = static_cast<size_t>(
      flags.GetInt("soft-limit", 0));
  server_options.slow_request_micros = static_cast<uint64_t>(
      flags.GetInt("slow-request-micros", 0));
  net::NetServer server(&system, server_options);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "serve: %s\n", s.ToString().c_str());
    system.Stop();
    return 1;
  }
  g_serve_server = &server;
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  std::printf("kflushctl serve: listening on %s:%u (%zu shards, %s, "
              "queue capacity %zu/shard)\n",
              server_options.host.c_str(), server.port(),
              system.num_shards(), PolicyKindName(config.store.policy),
              options.system.ingest_queue_capacity);
  std::fflush(stdout);
  server.AwaitStop();
  std::printf("serve: draining (health=%s)\n",
              net::ServingStateName(server.health()));
  server.Stop();
  g_serve_server = nullptr;
  system.Stop();
  std::printf("%s\n", server.StatsJson().c_str());
  const net::NetServer::Stats stats = server.stats();
  const uint64_t accounted =
      stats.records_acked + stats.records_skipped + stats.records_nacked;
  if (accounted != stats.records_offered) {
    std::fprintf(stderr,
                 "serve: accounting hole: offered %llu != acked+skipped+"
                 "nacked %llu\n",
                 static_cast<unsigned long long>(stats.records_offered),
                 static_cast<unsigned long long>(accounted));
    return 1;
  }
  std::printf("serve: clean shutdown (every offered record acked, skipped, "
              "or nacked)\n");
  return 0;
}

// --- ops commands: the client side of kStatsProm / kHealth --------------

Result<std::unique_ptr<net::NetClient>> ConnectFromFlags(const Flags& flags) {
  return net::NetClient::Connect(
      flags.Get("host", "127.0.0.1"),
      static_cast<uint16_t>(flags.GetInt("port", 7411)));
}

/// One histogram family reassembled from exposition text: cumulative
/// (le, count) pairs plus _sum/_count.
struct PromHistogram {
  std::vector<std::pair<double, double>> buckets;  // ascending le
  double sum = 0;
  double count = 0;

  /// Percentile estimate from the cumulative buckets: the upper bound of
  /// the first bucket covering the target rank (the same upper-bound
  /// convention Histogram::Percentile uses server-side).
  double Percentile(double pct) const {
    if (count <= 0) return 0;
    const double rank = pct / 100.0 * count;
    double prev_le = 0;
    for (const auto& [le, cum] : buckets) {
      if (cum >= rank) {
        if (std::isinf(le)) break;  // fall through to the tail estimate
        return le;
      }
      if (!std::isinf(le)) prev_le = le;
    }
    // Rank lands in the +Inf bucket: the mean is the only bound we have.
    return std::max(prev_le, count > 0 ? sum / count : 0);
  }
};

/// A parsed kStatsProm scrape: scalar samples (counters and gauges) by
/// sanitized name, histogram families reassembled via their # TYPE lines.
struct PromScrape {
  std::map<std::string, double> scalars;
  std::map<std::string, PromHistogram> histograms;

  double Get(const std::string& name, double fallback = 0) const {
    auto it = scalars.find(name);
    return it == scalars.end() ? fallback : it->second;
  }
  const PromHistogram* Hist(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
};

PromScrape ParsePrometheus(const std::string& text) {
  PromScrape scrape;
  std::set<std::string> hist_names;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> histogram" announces a family whose _bucket/_sum/
      // _count samples below belong together.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp != std::string::npos && rest.substr(sp + 1) == "histogram") {
          hist_names.insert(rest.substr(0, sp));
        }
      }
      continue;
    }
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const double value = std::atof(line.c_str() + sp + 1);
    std::string name = line.substr(0, sp);
    std::string le;
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      const size_t le_pos = name.find("le=\"", brace);
      if (le_pos != std::string::npos) {
        const size_t end = name.find('"', le_pos + 4);
        if (end != std::string::npos) le = name.substr(le_pos + 4,
                                                       end - le_pos - 4);
      }
      name = name.substr(0, brace);
    }
    auto family_of = [&hist_names](const std::string& sample,
                                   const char* suffix) -> std::string {
      const size_t len = std::strlen(suffix);
      if (sample.size() <= len ||
          sample.compare(sample.size() - len, len, suffix) != 0) {
        return "";
      }
      std::string base = sample.substr(0, sample.size() - len);
      return hist_names.count(base) > 0 ? base : "";
    };
    std::string base = family_of(name, "_bucket");
    if (!base.empty() && !le.empty()) {
      scrape.histograms[base].buckets.emplace_back(
          le == "+Inf" ? INFINITY : std::atof(le.c_str()), value);
      continue;
    }
    base = family_of(name, "_sum");
    if (!base.empty()) {
      scrape.histograms[base].sum = value;
      continue;
    }
    base = family_of(name, "_count");
    if (!base.empty()) {
      scrape.histograms[base].count = value;
      continue;
    }
    scrape.scalars[name] = value;
  }
  for (auto& [name, hist] : scrape.histograms) {
    std::sort(hist.buckets.begin(), hist.buckets.end());
  }
  return scrape;
}

int CmdScrape(const Flags& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  Result<std::string> text = (*client)->StatsProm();
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

int CmdHealth(const Flags& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  Result<net::NetClient::HealthInfo> info = (*client)->Health();
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("health %s uptime_micros %llu\n",
              net::ServingStateName(info->state),
              static_cast<unsigned long long>(info->uptime_micros));
  return info->state == net::ServingState::kServing ? 0 : 1;
}

int CmdShutdownRemote(const Flags& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  Status s = (*client)->Shutdown();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shutdown acked\n");
  return 0;
}

/// Counter delta per second between two scrapes.
double Rate(const PromScrape& cur, const PromScrape& prev,
            const std::string& name, double dt) {
  if (dt <= 0) return 0;
  return (cur.Get(name) - prev.Get(name)) / dt;
}

void PrintStageRow(const PromScrape& s, const char* label,
                   const std::string& family) {
  const PromHistogram* h = s.Hist(family);
  if (h == nullptr) {
    std::printf("  %-10s (no samples)\n", label);
    return;
  }
  std::printf("  %-10s count %10.0f   p50 %8.0fus   p99 %8.0fus\n", label,
              h->count, h->Percentile(50.0), h->Percentile(99.0));
}

void RenderTop(const PromScrape& cur, const PromScrape& prev, double dt,
               bool live) {
  if (live) std::printf("\x1b[H\x1b[2J");
  std::printf("kflush top — %.1fs window\n\n", dt);
  std::printf("ingest    %8.0f req/s   %8.0f ack/s   %8.0f rec acked/s\n",
              Rate(cur, prev, "kflush_net_ingest_requests", dt),
              Rate(cur, prev, "kflush_net_ingest_acks", dt),
              Rate(cur, prev, "kflush_net_records_acked", dt));
  std::printf("queries   %8.0f /s      reads  %8.0f B/s  writes %8.0f B/s\n",
              Rate(cur, prev, "kflush_net_queries", dt),
              Rate(cur, prev, "kflush_net_bytes_received", dt),
              Rate(cur, prev, "kflush_net_bytes_sent", dt));
  std::printf("nacks/s   overloaded %.1f  stopped %.1f  malformed %.1f  "
              "too_large %.1f  internal %.1f\n\n",
              Rate(cur, prev, "kflush_net_nacks_overloaded", dt),
              Rate(cur, prev, "kflush_net_nacks_stopped", dt),
              Rate(cur, prev, "kflush_net_nacks_malformed", dt),
              Rate(cur, prev, "kflush_net_nacks_too_large", dt),
              Rate(cur, prev, "kflush_net_nacks_internal", dt));
  std::printf("ack latency by stage (cumulative):\n");
  PrintStageRow(cur, "decode", "kflush_net_ingest_ack_micros_decode");
  PrintStageRow(cur, "admission", "kflush_net_ingest_ack_micros_admission");
  PrintStageRow(cur, "commit", "kflush_net_ingest_ack_micros_commit");
  PrintStageRow(cur, "respond", "kflush_net_ingest_ack_micros_respond");
  PrintStageRow(cur, "query", "kflush_net_query_micros");
  std::printf("\n");
  // Queue depth: per-shard gauges when sharded, the bare system gauge
  // otherwise.
  std::printf("queues    ");
  bool any_shard = false;
  for (int i = 0; i < 256; ++i) {
    const std::string name =
        "kflush_shard" + std::to_string(i) + "_system_queue_depth";
    auto it = cur.scalars.find(name);
    if (it == cur.scalars.end()) break;
    std::printf("s%d:%.0f ", i, it->second);
    any_shard = true;
  }
  if (!any_shard) {
    std::printf("depth %.0f", cur.Get("kflush_system_queue_depth"));
  }
  std::printf("\nwal       %8.0f fsync/s   %8.0f commit/s\n",
              Rate(cur, prev, "kflush_wal_fsyncs", dt),
              Rate(cur, prev, "kflush_wal_commits", dt));
  const double used = cur.Get("kflush_memory_data_used_bytes");
  const double budget = cur.Get("kflush_memory_budget_bytes");
  std::printf("memory    %8.1f / %.1f MB (%.0f%%)\n", used / 1048576.0,
              budget / 1048576.0, budget > 0 ? 100.0 * used / budget : 0.0);
  std::printf("flush     %8.0f cycles   %8.0f rec/s flushed\n",
              cur.Get("kflush_flush_cycles"),
              Rate(cur, prev, "kflush_flush_records_flushed", dt));
  std::printf("conns     live %.0f   pending write %.0f B   read pauses %.0f\n",
              cur.Get("kflush_net_connections_live"),
              cur.Get("kflush_net_pending_write_bytes"),
              cur.Get("kflush_net_read_pauses"));
  if (live) std::printf("\n(ctrl-c to exit)\n");
  std::fflush(stdout);
}

/// Machine-readable one-shot: `key value` lines, consumed by ops-smoke.
void PrintTopOnce(const PromScrape& s) {
  auto put = [&s](const char* key, const char* name) {
    std::printf("%s %.0f\n", key, s.Get(name));
  };
  put("ingest_requests", "kflush_net_ingest_requests");
  put("ingest_acks", "kflush_net_ingest_acks");
  put("records_offered", "kflush_net_records_offered");
  put("records_acked", "kflush_net_records_acked");
  put("records_skipped", "kflush_net_records_skipped");
  put("records_nacked", "kflush_net_records_nacked");
  put("queries", "kflush_net_queries");
  put("connections_live", "kflush_net_connections_live");
  put("pending_write_bytes", "kflush_net_pending_write_bytes");
  put("wal_fsyncs", "kflush_wal_fsyncs");
  put("memory_data_used_bytes", "kflush_memory_data_used_bytes");
  put("memory_budget_bytes", "kflush_memory_budget_bytes");
  put("flush_cycles", "kflush_flush_cycles");
  const char* stages[] = {"decode", "admission", "commit", "respond"};
  for (const char* stage : stages) {
    const PromHistogram* h =
        s.Hist(std::string("kflush_net_ingest_ack_micros_") + stage);
    std::printf("stage_%s_count %.0f\n", stage, h != nullptr ? h->count : 0);
    std::printf("stage_%s_p50_micros %.0f\n", stage,
                h != nullptr ? h->Percentile(50.0) : 0);
    std::printf("stage_%s_p99_micros %.0f\n", stage,
                h != nullptr ? h->Percentile(99.0) : 0);
  }
  const PromHistogram* q = s.Hist("kflush_net_query_micros");
  std::printf("query_count %.0f\n", q != nullptr ? q->count : 0);
  std::printf("query_p99_micros %.0f\n",
              q != nullptr ? q->Percentile(99.0) : 0);
}

int CmdTop(const Flags& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  const bool once = flags.Has("once");
  const long interval_ms = flags.GetInt("interval-ms", 1000);
  PromScrape prev;
  auto prev_at = std::chrono::steady_clock::now();
  bool have_prev = false;
  for (;;) {
    Result<std::string> text = (*client)->StatsProm();
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    const PromScrape cur = ParsePrometheus(*text);
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - prev_at).count();
    if (once) {
      PrintTopOnce(cur);
      return 0;
    }
    RenderTop(cur, have_prev ? prev : cur, have_prev ? dt : 0.0,
              /*live=*/true);
    prev = cur;
    prev_at = now;
    have_prev = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

int CmdWatch(const Flags& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  SubscriptionSpec spec;
  const std::string kind = flags.Get("kind", "keyword");
  if (kind == "keyword") {
    spec.kind = SubKind::kKeyword;
    spec.term = static_cast<TermId>(flags.GetInt("term", 0));
  } else if (kind == "user") {
    spec.kind = SubKind::kUser;
    spec.user = static_cast<UserId>(flags.GetInt("user", 0));
  } else if (kind == "area") {
    spec.kind = SubKind::kArea;
    spec.box.min_lat = flags.GetDouble("min-lat", 0.0);
    spec.box.min_lon = flags.GetDouble("min-lon", 0.0);
    spec.box.max_lat = flags.GetDouble("max-lat", 0.0);
    spec.box.max_lon = flags.GetDouble("max-lon", 0.0);
  } else {
    std::fprintf(stderr, "unknown --kind '%s' (keyword|area|user)\n",
                 kind.c_str());
    return 2;
  }
  spec.k = static_cast<uint32_t>(flags.GetInt("k", 10));
  Result<uint64_t> sub = (*client)->Subscribe(spec);
  if (!sub.ok()) {
    std::fprintf(stderr, "subscribe: %s\n", sub.status().ToString().c_str());
    return 1;
  }
  std::printf("watching sub_id=%llu kind=%s k=%u (ctrl-c to stop)\n",
              static_cast<unsigned long long>(*sub), kind.c_str(), spec.k);
  std::fflush(stdout);
  // --count N: exit cleanly (with an unsubscribe) after N push frames —
  // the smoke tests drive the command this way.
  const long max_pushes = flags.GetInt("count", 0);
  long pushes = 0;
  while (max_pushes <= 0 || pushes < max_pushes) {
    Result<net::Message> push = (*client)->RecvPush();
    if (!push.ok()) {
      std::fprintf(stderr, "%s\n", push.status().ToString().c_str());
      return 1;
    }
    ++pushes;
    if (push->push_terminal) {
      std::printf("sub %llu TERMINATED by server (slow consumer / drain)\n",
                  static_cast<unsigned long long>(push->sub_id));
      return 1;
    }
    for (const SubDelta& d : push->deltas) {
      if (d.kind == SubDeltaKind::kEnter) {
        std::printf("  #%llu ENTER id=%llu score=%.4f \"%s\"\n",
                    static_cast<unsigned long long>(d.seq),
                    static_cast<unsigned long long>(d.id), d.score,
                    d.record.text.c_str());
      } else {
        std::printf("  #%llu EXIT  id=%llu score=%.4f\n",
                    static_cast<unsigned long long>(d.seq),
                    static_cast<unsigned long long>(d.id), d.score);
      }
    }
    std::fflush(stdout);
  }
  Status s = (*client)->Unsubscribe(*sub);
  if (!s.ok()) {
    std::fprintf(stderr, "unsubscribe: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("unsubscribed after %ld push(es)\n", pushes);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: kflushctl <command> [flags]\n"
      "commands:\n"
      "  gen-trace  --out FILE --count N [--seed S] [--vocab V] [--zipf Z]\n"
      "  replay     --trace FILE [--policy P] [--k K] [--memory-mb M]\n"
      "  recover    --durable-dir DIR [--policy P] [--k K]\n"
      "  experiment [--policy P] [--workload correlated|uniform]\n"
      "             [--attribute keyword|spatial|user] [--k K]\n"
      "             [--memory-mb M] [--flush-pct B] [--queries N] [--seed S]\n"
      "             [--shards N]\n"
      "  compare    [same flags as experiment]\n"
      "  trace      --out FILE [same flags as experiment]\n"
      "  serve      [--host H] [--port P] [--shards N] [--policy P]\n"
      "             [--memory-mb M] [--queue-capacity Q] [--soft-limit D]\n"
      "             [--slow-request-micros T] [--durable-dir DIR]\n"
      "             (TCP front-end; stop with a protocol shutdown request\n"
      "             or SIGINT/SIGTERM)\n"
      "  top        [--host H] [--port P] [--interval-ms I] [--once]\n"
      "             (live terminal dashboard over kStatsProm; --once\n"
      "             prints machine-readable `key value` lines and exits)\n"
      "  watch      [--host H] [--port P] --kind keyword|area|user [--k K]\n"
      "             [--term T | --user U | --min-lat A --min-lon B\n"
      "             --max-lat C --max-lon D] [--count N]\n"
      "             (standing top-k: subscribe and stream enter/exit\n"
      "             deltas; --count N unsubscribes after N pushes)\n"
      "  scrape     [--host H] [--port P]  (dump Prometheus exposition)\n"
      "  health     [--host H] [--port P]  (exit 0 iff serving)\n"
      "  shutdown   [--host H] [--port P]  (protocol shutdown + ack)\n"
      "flags:\n"
      "  --trace-out FILE  capture a Chrome/Perfetto trace of any run\n"
      "                    command (replay, experiment, compare)\n"
      "  --durable-dir DIR [--durability none|batch|commit]\n"
      "                    run with the durable tier (WAL + segments)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  // --trace-out: record the whole command and dump on exit.
  ScopedTraceFile trace_out(command == "trace" ? ""
                                               : flags.Get("trace-out", ""));
  if (command == "gen-trace") return CmdGenTrace(flags);
  if (command == "replay") return CmdReplay(flags);
  if (command == "recover") return CmdRecover(flags);
  if (command == "experiment") return CmdExperiment(flags);
  if (command == "compare") return CmdCompare(flags);
  if (command == "trace") return CmdTrace(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "top") return CmdTop(flags);
  if (command == "watch") return CmdWatch(flags);
  if (command == "scrape") return CmdScrape(flags);
  if (command == "health") return CmdHealth(flags);
  if (command == "shutdown") return CmdShutdownRemote(flags);
  Usage();
  return 2;
}
