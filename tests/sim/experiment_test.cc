#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace kflush {
namespace {

ExperimentConfig TinyConfig(PolicyKind policy) {
  ExperimentConfig config;
  config.store.policy = policy;
  config.store.memory_budget_bytes = 1 << 20;
  config.store.k = 5;
  config.stream.seed = 7;
  config.stream.vocabulary_size = 5'000;
  config.stream.num_users = 1'000;
  config.workload.seed = 11;
  config.steady_state_flushes = 2;
  config.num_queries = 500;
  return config;
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto a = RunExperiment(TinyConfig(PolicyKind::kKFlushing));
  auto b = RunExperiment(TinyConfig(PolicyKind::kKFlushing));
  EXPECT_EQ(a.tweets_streamed, b.tweets_streamed);
  EXPECT_EQ(a.k_filled_terms, b.k_filled_terms);
  EXPECT_EQ(a.num_terms, b.num_terms);
  EXPECT_EQ(a.query_metrics.memory_hits, b.query_metrics.memory_hits);
  EXPECT_EQ(a.query_metrics.queries, b.query_metrics.queries);
  EXPECT_EQ(a.frequency.total_postings, b.frequency.total_postings);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  auto a = RunExperiment(TinyConfig(PolicyKind::kKFlushing));
  ExperimentConfig other = TinyConfig(PolicyKind::kKFlushing);
  other.stream.seed = 8;
  auto b = RunExperiment(other);
  // Same machinery, different stream: some statistic must move.
  EXPECT_TRUE(a.k_filled_terms != b.k_filled_terms ||
              a.query_metrics.memory_hits != b.query_metrics.memory_hits);
}

TEST(ExperimentTest, ReachesSteadyStateAndCountsQueries) {
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing}) {
    auto result = RunExperiment(TinyConfig(policy));
    EXPECT_TRUE(result.reached_steady_state) << PolicyKindName(policy);
    EXPECT_EQ(result.query_metrics.queries, 500u);
    EXPECT_GE(result.ingest_stats.flush_triggers, 2u);
    EXPECT_GT(result.tweets_streamed, 0u);
  }
}

TEST(ExperimentTest, SteadyStateCapRespected) {
  ExperimentConfig config = TinyConfig(PolicyKind::kKFlushing);
  config.max_stream_tweets = 100;  // cannot possibly fill 1 MB
  config.num_queries = 10;
  auto result = RunExperiment(config);
  EXPECT_FALSE(result.reached_steady_state);
  EXPECT_LE(result.tweets_streamed, 200u);  // cap + measured-phase ingest
}

TEST(ExperimentTest, MemoryTimelineStaysBounded) {
  ExperimentConfig config = TinyConfig(PolicyKind::kKFlushing);
  auto samples = MemoryTimeline(config, 2'000, 30);
  ASSERT_EQ(samples.size(), 30u);
  for (double s : samples) {
    EXPECT_GE(s, 0.0);
    // auto_flush keeps utilization near budget; allow flush-lag slack.
    EXPECT_LT(s, 1.5);
  }
  // It must actually fill up at some point.
  double max_util = 0;
  for (double s : samples) max_util = std::max(max_util, s);
  EXPECT_GT(max_util, 0.8);
}

TEST(ExperimentTest, ZeroQueryRateStreamsNoExtraTweets) {
  ExperimentConfig config = TinyConfig(PolicyKind::kFifo);
  config.queries_per_second = 0.0;
  auto result = RunExperiment(config);
  EXPECT_EQ(result.query_metrics.queries, 500u);
}

TEST(ExperimentTest, ResultToStringMentionsKeyStats) {
  auto result = RunExperiment(TinyConfig(PolicyKind::kKFlushing));
  const std::string s = result.ToString();
  EXPECT_NE(s.find("k_filled="), std::string::npos);
  EXPECT_NE(s.find("hit_ratio="), std::string::npos);
}

TEST(ExperimentTest, SpatialAttributeRuns) {
  ExperimentConfig config = TinyConfig(PolicyKind::kKFlushing);
  config.store.attribute = AttributeKind::kSpatial;
  config.workload.attribute = AttributeKind::kSpatial;
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.reached_steady_state);
  EXPECT_GT(result.num_terms, 0u);
}

TEST(ExperimentTest, UserAttributeRuns) {
  ExperimentConfig config = TinyConfig(PolicyKind::kKFlushing);
  config.store.attribute = AttributeKind::kUser;
  config.workload.attribute = AttributeKind::kUser;
  auto result = RunExperiment(config);
  EXPECT_TRUE(result.reached_steady_state);
  EXPECT_GT(result.k_filled_terms, 0u);
}

}  // namespace
}  // namespace kflush
