// Golden tests pinning the shard-routing hash (core/shard_router.h).
//
// ShardMix64 / ShardForTerm are a STABLE API: benchmarks, the
// differential oracle, and any persisted per-shard artifact assume a term
// routes to the same shard in every build. The expectations below were
// computed once from the SplitMix64 reference (Steele et al.; the seed-0
// first output 0xE220A8397B1DCDAF matches the published vector) and must
// never be regenerated to make a failing build pass — a failure here means
// the routing contract changed and every sharded artifact is invalidated.

#include "core/shard_router.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace kflush {
namespace {

TEST(ShardMix64Golden, ReferenceVectors) {
  // SplitMix64 finalizer outputs; first row is the published seed-0 vector.
  EXPECT_EQ(ShardMix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(ShardMix64(1), 0x910a2dec89025cc1ull);
  EXPECT_EQ(ShardMix64(2), 0x975835de1c9756ceull);
  EXPECT_EQ(ShardMix64(3), 0x1d0b14e4db018fedull);
  EXPECT_EQ(ShardMix64(4), 0x6e73e372e2338acaull);
  EXPECT_EQ(ShardMix64(5), 0x63033b0ca389c35aull);
  EXPECT_EQ(ShardMix64(42), 0xbdd732262feb6e95ull);
  EXPECT_EQ(ShardMix64(1000), 0x3c1eba8b4dccc148ull);
  EXPECT_EQ(ShardMix64(123456789), 0x223c74d93deb7679ull);
  EXPECT_EQ(ShardMix64(0xffffffffffffffffull), 0xe4d971771b652c20ull);
}

TEST(ShardRouterGolden, PlacementAtCommonShardCounts) {
  const ShardRouter two(2);
  const ShardRouter four(4);
  const ShardRouter eight(8);

  struct Row {
    TermId term;
    size_t mod2, mod4, mod8;
  };
  const std::vector<Row> rows = {
      {0, 1, 3, 7}, {1, 1, 1, 1},      {2, 0, 2, 6},
      {3, 1, 1, 5}, {4, 0, 2, 2},      {5, 0, 2, 2},
      {42, 1, 1, 5}, {1000, 0, 0, 0},  {123456789, 1, 1, 1},
  };
  for (const Row& row : rows) {
    EXPECT_EQ(two.ShardForTerm(row.term), row.mod2) << "term " << row.term;
    EXPECT_EQ(four.ShardForTerm(row.term), row.mod4) << "term " << row.term;
    EXPECT_EQ(eight.ShardForTerm(row.term), row.mod8) << "term " << row.term;
  }
}

TEST(ShardRouter, SingleShardRoutesEverythingToZero) {
  const ShardRouter one(1);
  for (TermId t = 0; t < 1000; ++t) {
    EXPECT_EQ(one.ShardForTerm(t), 0u);
  }
}

TEST(ShardRouter, ZeroShardsClampsToOne) {
  const ShardRouter router(0);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.ShardForTerm(12345), 0u);
}

TEST(ShardRouter, PlacementIsInRangeAndRoughlyBalanced) {
  // The finalizer is full-avalanche, so nearly-sequential TermIds (the
  // realistic id shape) should spread close to uniformly. Loose bounds:
  // each of 4 shards gets 25% +/- 5% of 10k sequential terms.
  const ShardRouter router(4);
  std::vector<size_t> counts(4, 0);
  for (TermId t = 0; t < 10000; ++t) {
    const size_t shard = router.ShardForTerm(t);
    ASSERT_LT(shard, 4u);
    counts[shard]++;
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(counts[shard], 2000u) << "shard " << shard;
    EXPECT_LT(counts[shard], 3000u) << "shard " << shard;
  }
}

TEST(ShardRouter, DeterministicAcrossInstances) {
  const ShardRouter a(4);
  const ShardRouter b(4);
  for (TermId t = 0; t < 1000; ++t) {
    EXPECT_EQ(a.ShardForTerm(t), b.ShardForTerm(t));
  }
}

}  // namespace
}  // namespace kflush
