// Durable store round trips: restart recovery through the WAL + segment
// tier, the memory-prefix invariant after recovery, id resumption,
// recovery stats, WAL compaction, and the durability metric series.
// The adversarial (kill-at-random-points) coverage is
// tests/integration/crash_recovery_oracle_test.cc; these are the
// deterministic clean-shutdown and post-flush recovery paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "../testing/test_util.h"
#include "core/query_engine.h"
#include "core/sharded_store.h"
#include "core/system.h"
#include "storage/wal.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::RemoveTree;
using testing_util::SmallStoreOptions;

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/kflush_durable_store_test";
    RemoveTree(dir_);
  }
  void TearDown() override { RemoveTree(dir_); }

  StoreOptions DurableOptions(PolicyKind policy = PolicyKind::kKFlushing,
                              size_t budget = 256 * 1024) {
    StoreOptions opts = SmallStoreOptions(policy, budget);
    opts.durability.enabled = true;
    opts.durability.dir = dir_;
    return opts;
  }

  /// Top-k ids for a single-term query, best first.
  std::vector<MicroblogId> QueryIds(MicroblogStore* store, TermId term,
                                    uint32_t k) {
    QueryEngine engine(store);
    TopKQuery q;
    q.terms = {term};
    q.type = QueryType::kSingle;
    q.k = k;
    auto result = engine.Execute(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<MicroblogId> ids;
    if (result.ok()) {
      for (const auto& blog : result->results) ids.push_back(blog.id);
    }
    return ids;
  }

  std::string dir_;
};

TEST_F(DurableStoreTest, DisabledByDefault) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  EXPECT_TRUE(store.durability_status().ok());
  EXPECT_EQ(store.wal(), nullptr);
  EXPECT_TRUE(store.CommitDurable().ok());  // no-op, not an error
}

TEST_F(DurableStoreTest, RestartRecoversMemoryResidentRecords) {
  std::vector<MicroblogId> before;
  {
    MicroblogStore store(DurableOptions());
    ASSERT_TRUE(store.durability_status().ok())
        << store.durability_status().ToString();
    ASSERT_NE(store.wal(), nullptr);
    for (int i = 1; i <= 10; ++i) {
      // Ids assigned by the store, so id resumption is observable below.
      ASSERT_TRUE(store
                      .Insert(MakeBlog(kInvalidMicroblogId, 1000 + i, {7}, i,
                                       "durable " + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(store.CommitDurable().ok());
    before = QueryIds(&store, 7, 10);
    ASSERT_EQ(before.size(), 10u);
  }  // clean shutdown: the destructor's final commit seals the WAL

  MicroblogStore recovered(DurableOptions());
  ASSERT_TRUE(recovered.durability_status().ok())
      << recovered.durability_status().ToString();
  const StoreRecoveryStats stats = recovered.recovery_stats();
  EXPECT_EQ(stats.wal_records_recovered, 10u);
  EXPECT_EQ(stats.records_reinserted_memory, 10u);
  EXPECT_EQ(stats.records_recovered_to_disk, 0u);
  EXPECT_EQ(recovered.recovered_max_id(), 10u);
  EXPECT_EQ(QueryIds(&recovered, 7, 10), before);

  // A post-restart insert picks up after the recovered ids, and the
  // recovered record body is intact.
  ASSERT_TRUE(
      recovered.Insert(MakeBlog(kInvalidMicroblogId, 2000, {7})).ok());
  const std::vector<MicroblogId> after = QueryIds(&recovered, 7, 11);
  ASSERT_EQ(after.size(), 11u);
  EXPECT_EQ(after[0], 11u);  // newest record got the next id
  std::optional<Microblog> blog = recovered.raw_store()->Get(3);
  ASSERT_TRUE(blog.has_value());
  EXPECT_EQ(blog->text, "durable 3");
}

TEST_F(DurableStoreTest, RestartAfterFlushServesIdenticalAnswers) {
  for (PolicyKind policy : testing_util::AllPolicies()) {
    RemoveTree(dir_);
    std::vector<MicroblogId> before;
    {
      MicroblogStore store(DurableOptions(policy, 64 * 1024));
      ASSERT_TRUE(store.durability_status().ok()) << PolicyKindName(policy);
      for (int i = 1; i <= 300; ++i) {
        Microblog blog;
        blog.created_at = 1000 + i;
        blog.user_id = 1 + (i % 7);
        blog.keywords = {static_cast<KeywordId>(i % 5)};
        blog.text = "flush-then-recover filler text for realistic size";
        ASSERT_TRUE(store.Insert(std::move(blog)).ok());
      }
      ASSERT_GT(store.FlushOnce(), 0u);  // pushes a tail onto segments
      ASSERT_TRUE(store.CommitDurable().ok());
      EXPECT_GT(store.disk()->NumRecords(), 0u) << PolicyKindName(policy);
      before = QueryIds(&store, 2, 40);
      ASSERT_FALSE(before.empty());
    }

    MicroblogStore recovered(DurableOptions(policy, 64 * 1024));
    ASSERT_TRUE(recovered.durability_status().ok())
        << PolicyKindName(policy) << ": "
        << recovered.durability_status().ToString();
    // The answers — spanning memory and disk — are byte-identical to the
    // pre-restart store's.
    EXPECT_EQ(QueryIds(&recovered, 2, 40), before) << PolicyKindName(policy);
    const StoreRecoveryStats stats = recovered.recovery_stats();
    EXPECT_GT(stats.wal_records_recovered, 0u) << PolicyKindName(policy);
    // Flushed records were already segment-durable: compaction kept only
    // the memory-resident tail.
    EXPECT_LT(stats.wal_entries_retained, stats.wal_records_recovered)
        << PolicyKindName(policy);
  }
}

TEST_F(DurableStoreTest, WalCompactionShrinksReplayOnNextRestart) {
  {
    MicroblogStore store(DurableOptions(PolicyKind::kFifo, 64 * 1024));
    testing_util::FillRoundRobin(&store, 300, 5);
    ASSERT_GT(store.FlushOnce(), 0u);
    ASSERT_TRUE(store.CommitDurable().ok());
  }
  uint64_t retained = 0;
  {
    MicroblogStore once(DurableOptions(PolicyKind::kFifo, 64 * 1024));
    ASSERT_TRUE(once.durability_status().ok());
    retained = once.recovery_stats().wal_entries_retained;
    EXPECT_LT(retained, once.recovery_stats().wal_records_recovered);
  }
  // The compacted WAL replays exactly the retained entries (plus nothing:
  // the second restart ingested nothing new).
  MicroblogStore twice(DurableOptions(PolicyKind::kFifo, 64 * 1024));
  ASSERT_TRUE(twice.durability_status().ok());
  EXPECT_EQ(twice.recovery_stats().wal_records_recovered, retained);
}

TEST_F(DurableStoreTest, MetricsExportIncludesDurabilitySeries) {
  MicroblogStore store(DurableOptions());
  ASSERT_TRUE(store.durability_status().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        store.Insert(MakeBlog(kInvalidMicroblogId, 1000 + i, {1})).ok());
  }
  ASSERT_TRUE(store.CommitDurable().ok());
  const MetricsSnapshot snap = store.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.counter_or("wal.records_appended"), 20u);
  EXPECT_GT(snap.counter_or("wal.bytes_appended"), 0u);
  EXPECT_GE(snap.counter_or("wal.commits"), 1u);
  EXPECT_GE(snap.counter_or("wal.fsyncs"), 1u);
  EXPECT_EQ(snap.counter_or("wal.records_recovered"), 0u);  // fresh dir
  ASSERT_NE(snap.histograms.find("wal.fsync_micros"), snap.histograms.end());
  EXPECT_GE(snap.histograms.at("wal.fsync_micros").count(), 1u);
  EXPECT_EQ(snap.counter_or("flush_buffer.requeues"), 0u);
}

TEST_F(DurableStoreTest, EveryCommitLevelSyncsOnTheInsertPath) {
  StoreOptions opts = DurableOptions();
  opts.durability.level = DurabilityLevel::kEveryCommit;
  MicroblogStore store(opts);
  ASSERT_TRUE(store.durability_status().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        store.Insert(MakeBlog(kInvalidMicroblogId, 1000 + i, {1})).ok());
  }
  EXPECT_GE(store.wal()->stats().fsyncs, 5u);
}

TEST_F(DurableStoreTest, ShardedStoreResumesCentralIdsAfterRestart) {
  const size_t shards = 2;
  {
    ShardedStoreOptions opts;
    opts.store = SmallStoreOptions(PolicyKind::kKFlushing, 512 * 1024);
    opts.store.durability.enabled = true;
    opts.store.durability.dir = dir_;
    opts.num_shards = shards;
    ShardedMicroblogStore store(opts);
    ASSERT_TRUE(store.DurabilityStatus().ok())
        << store.DurabilityStatus().ToString();
    for (int i = 1; i <= 12; ++i) {
      ASSERT_TRUE(store
                      .Insert(MakeBlog(kInvalidMicroblogId, 1000 + i,
                                       {static_cast<KeywordId>(i % 6)}))
                      .ok());
    }
    ASSERT_TRUE(store.CommitDurableAll().ok());
  }

  ShardedStoreOptions opts;
  opts.store = SmallStoreOptions(PolicyKind::kKFlushing, 512 * 1024);
  opts.store.durability.enabled = true;
  opts.store.durability.dir = dir_;
  opts.num_shards = shards;
  ShardedMicroblogStore recovered(opts);
  ASSERT_TRUE(recovered.DurabilityStatus().ok());
  uint64_t recovered_records = 0;
  MicroblogId max_recovered = 0;
  for (size_t i = 0; i < shards; ++i) {
    recovered_records +=
        recovered.shard(i)->recovery_stats().records_reinserted_memory;
    max_recovered =
        std::max(max_recovered, recovered.shard(i)->recovered_max_id());
  }
  EXPECT_GE(recovered_records, 12u);  // multi-term records copy per shard
  EXPECT_EQ(max_recovered, 12u);

  // Central stamping resumed past every recovered id.
  Microblog probe = MakeBlog(kInvalidMicroblogId, 5000, {1});
  ASSERT_TRUE(recovered.Insert(probe).ok());
  TopKQuery q;
  q.terms = {1};
  q.type = QueryType::kSingle;
  q.k = 20;
  auto result = recovered.engine()->Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->results.empty());
  EXPECT_EQ(result->results[0].id, 13u);
}

TEST_F(DurableStoreTest, SystemShutdownThenRestartLosesNothing) {
  // The threaded deployment: Submit → digestion thread → WAL (group
  // commit per digested batch) → Stop drains. A restart must see every
  // digested record even though none were flushed.
  {
    SystemOptions opts;
    opts.store = SmallStoreOptions(PolicyKind::kKFlushing, 512 * 1024);
    opts.store.durability.enabled = true;
    opts.store.durability.dir = dir_;
    MicroblogSystem system(opts);
    ASSERT_TRUE(system.store()->durability_status().ok());
    system.Start();
    std::vector<Microblog> batch;
    for (int i = 1; i <= 50; ++i) {
      batch.push_back(MakeBlog(kInvalidMicroblogId, 1000 + i, {3}));
      if (batch.size() == 10) {
        ASSERT_TRUE(system.Submit(std::move(batch)));
        batch.clear();
      }
    }
    system.Stop();
    EXPECT_EQ(system.digested(), 50u);
  }

  SystemOptions opts;
  opts.store = SmallStoreOptions(PolicyKind::kKFlushing, 512 * 1024);
  opts.store.durability.enabled = true;
  opts.store.durability.dir = dir_;
  MicroblogSystem recovered(opts);
  ASSERT_TRUE(recovered.store()->durability_status().ok());
  EXPECT_EQ(recovered.store()->recovery_stats().wal_records_recovered, 50u);
  TopKQuery q;
  q.terms = {3};
  q.type = QueryType::kSingle;
  q.k = 50;
  auto result = recovered.engine()->Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->results.size(), 50u);
}

}  // namespace
}  // namespace kflush
