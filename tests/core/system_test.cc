#include "core/system.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"
#include "gen/tweet_generator.h"

namespace kflush {
namespace {

SystemOptions SmallSystem(PolicyKind policy) {
  SystemOptions opts;
  opts.store = testing_util::SmallStoreOptions(policy, 128 * 1024, 5);
  opts.ingest_queue_capacity = 16;
  return opts;
}

TEST(MicroblogSystemTest, DigestsSubmittedBatches) {
  MicroblogSystem system(SmallSystem(PolicyKind::kKFlushing));
  system.Start();
  TweetGeneratorOptions gopts;
  gopts.vocabulary_size = 100;
  TweetGenerator gen(gopts);
  for (int b = 0; b < 10; ++b) {
    std::vector<Microblog> batch;
    gen.FillBatch(100, &batch);
    ASSERT_TRUE(system.Submit(std::move(batch)));
  }
  system.Stop();
  EXPECT_EQ(system.digested(), 1000u);
  EXPECT_GT(system.store()->raw_store()->size(), 0u);
}

TEST(MicroblogSystemTest, BackgroundFlusherBoundsMemory) {
  SystemOptions opts = SmallSystem(PolicyKind::kKFlushing);
  MicroblogSystem system(opts);
  system.Start();
  TweetGeneratorOptions gopts;
  gopts.vocabulary_size = 500;
  TweetGenerator gen(gopts);
  // Push several budgets' worth of data.
  for (int b = 0; b < 30; ++b) {
    std::vector<Microblog> batch;
    gen.FillBatch(200, &batch);
    ASSERT_TRUE(system.Submit(std::move(batch)));
  }
  system.Stop();
  EXPECT_EQ(system.digested(), 6000u);
  // Memory stayed within the stall ceiling.
  EXPECT_LE(system.store()->tracker().DataUsed(),
            static_cast<size_t>(opts.store.memory_budget_bytes *
                                opts.ingest_stall_factor * 1.1));
  // Flushes actually ran and data reached disk.
  EXPECT_GT(system.store()->ingest_stats().flush_triggers, 0u);
  EXPECT_GT(system.store()->disk()->NumRecords(), 0u);
}

TEST(MicroblogSystemTest, QueriesRunConcurrentlyWithIngest) {
  MicroblogSystem system(SmallSystem(PolicyKind::kKFlushing));
  system.Start();
  TweetGeneratorOptions gopts;
  gopts.vocabulary_size = 50;
  TweetGenerator gen(gopts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::thread query_thread([&] {
    while (!stop.load()) {
      TopKQuery q;
      q.terms = {static_cast<TermId>(queries_ok.load() % 50)};
      q.type = QueryType::kSingle;
      auto result = system.Query(q);
      if (result.ok()) queries_ok.fetch_add(1);
    }
  });

  for (int b = 0; b < 20; ++b) {
    std::vector<Microblog> batch;
    gen.FillBatch(200, &batch);
    ASSERT_TRUE(system.Submit(std::move(batch)));
  }
  system.Stop();
  stop.store(true);
  query_thread.join();
  EXPECT_GT(queries_ok.load(), 0u);
  EXPECT_EQ(system.digested(), 4000u);
}

TEST(MicroblogSystemTest, StartAndStopAreIdempotent) {
  MicroblogSystem system(SmallSystem(PolicyKind::kFifo));
  system.Start();
  system.Start();  // no-op
  std::vector<Microblog> batch;
  TweetGeneratorOptions gopts;
  TweetGenerator gen(gopts);
  gen.FillBatch(10, &batch);
  ASSERT_TRUE(system.Submit(std::move(batch)));
  system.Stop();
  system.Stop();  // no-op
  EXPECT_EQ(system.digested(), 10u);
  EXPECT_FALSE(system.Submit({}));  // closed
}

TEST(MicroblogSystemTest, AllPoliciesSurviveStress) {
  for (PolicyKind policy : testing_util::AllPolicies()) {
    MicroblogSystem system(SmallSystem(policy));
    system.Start();
    TweetGeneratorOptions gopts;
    gopts.seed = 7;
    gopts.vocabulary_size = 300;
    TweetGenerator gen(gopts);
    for (int b = 0; b < 15; ++b) {
      std::vector<Microblog> batch;
      gen.FillBatch(200, &batch);
      ASSERT_TRUE(system.Submit(std::move(batch)));
    }
    system.Stop();
    EXPECT_EQ(system.digested(), 3000u) << PolicyKindName(policy);
  }
}

}  // namespace
}  // namespace kflush
