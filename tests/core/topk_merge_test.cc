// Property-based tests for BoundedTopKMerge (core/topk_merge.h): across
// ~1000 random seeds, the bounded heap merge of sorted per-shard lists
// must equal a brute-force "concatenate, sort, dedup, truncate" oracle.
// Inputs mirror the fan-out contract: every list is sorted best-first
// under the shared comparator, and duplicates of an element are
// consistent (same id => same score) so `same` implies comparator
// equivalence. On failure the assertion message carries the seed so the
// exact case replays with a one-line change.

#include "core/topk_merge.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace kflush {
namespace {

struct Scored {
  double score;
  uint64_t id;

  bool operator==(const Scored& o) const {
    return score == o.score && id == o.id;
  }
};

// The fan-out ordering: score desc, then id desc (newest-first tiebreak).
bool Better(const Scored& a, const Scored& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id > b.id;
}

bool SameId(const Scored& a, const Scored& b) { return a.id == b.id; }

// Local avalanche (not the routing hash; just decorrelates score from id).
uint64_t Avalanche(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

// Deterministic score for an id, so the same record drawn into several
// lists carries an identical sort key (the duplicate-consistency
// precondition). Coarse quantization forces plenty of score ties, which
// exercises the id tiebreak.
double ScoreFor(uint64_t id, uint64_t quantum) {
  return static_cast<double>(Avalanche(id) % quantum);
}

// Brute-force oracle: concatenate, sort best-first, drop duplicate ids
// (first occurrence wins), truncate to k.
std::vector<Scored> BruteForce(const std::vector<std::vector<Scored>>& lists,
                               size_t k) {
  std::vector<Scored> all;
  for (const auto& list : lists) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::stable_sort(all.begin(), all.end(), Better);
  std::vector<Scored> out;
  if (k == 0) return out;
  for (const Scored& s : all) {
    if (!out.empty() && out.back().id == s.id) continue;
    bool seen = false;
    for (const Scored& o : out) {
      if (o.id == s.id) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    out.push_back(s);
    if (out.size() == k) break;
  }
  return out;
}

// One random case: random list count/lengths/ids, ids drawn from a small
// universe so cross-list duplicates are common.
void RunCase(uint64_t seed) {
  Rng rng(seed);
  const size_t num_lists = 1 + rng.Uniform(8);
  const size_t k = rng.Uniform(20);  // includes k == 0
  const uint64_t universe = 1 + rng.Uniform(60);
  const uint64_t quantum = 1 + rng.Uniform(8);

  std::vector<std::vector<Scored>> lists(num_lists);
  for (auto& list : lists) {
    const size_t len = rng.Uniform(25);  // includes empty lists
    for (size_t i = 0; i < len; ++i) {
      const uint64_t id = rng.Uniform(universe);
      list.push_back({ScoreFor(id, quantum), id});
    }
    // Within one shard's answer ids are unique and sorted best-first.
    std::stable_sort(list.begin(), list.end(), Better);
    list.erase(std::unique(list.begin(), list.end(), SameId), list.end());
  }

  const std::vector<Scored> merged =
      BoundedTopKMerge(lists, k, Better, SameId);
  const std::vector<Scored> expected = BruteForce(lists, k);

  ASSERT_EQ(merged.size(), expected.size()) << "seed=" << seed;
  for (size_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged[i].id, expected[i].id)
        << "seed=" << seed << " position=" << i;
    ASSERT_EQ(merged[i].score, expected[i].score)
        << "seed=" << seed << " position=" << i;
  }
}

TEST(BoundedTopKMergeProperty, MatchesBruteForceAcrossSeeds) {
  // ~1000 random cases. To replay a failure, substitute the printed seed:
  //   RunCase(kFailingSeed);
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    RunCase(seed);
    if (HasFatalFailure()) return;
  }
}

TEST(BoundedTopKMerge, EmptyInputs) {
  const std::vector<std::vector<Scored>> none;
  EXPECT_TRUE(BoundedTopKMerge(none, 5, Better, SameId).empty());

  const std::vector<std::vector<Scored>> empties(3);
  EXPECT_TRUE(BoundedTopKMerge(empties, 5, Better, SameId).empty());

  const std::vector<std::vector<Scored>> one = {{{2.0, 7}, {1.0, 3}}};
  EXPECT_TRUE(BoundedTopKMerge(one, 0, Better, SameId).empty());
}

TEST(BoundedTopKMerge, SingleListTruncates) {
  const std::vector<std::vector<Scored>> lists = {
      {{5.0, 50}, {4.0, 40}, {3.0, 30}}};
  const auto merged = BoundedTopKMerge(lists, 2, Better, SameId);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, 50u);
  EXPECT_EQ(merged[1].id, 40u);
}

TEST(BoundedTopKMerge, DuplicatesAcrossListsCollapse) {
  // Record 40 surfaces from two shards with the identical sort key; it
  // must appear once and not displace a unique result.
  const std::vector<std::vector<Scored>> lists = {
      {{5.0, 50}, {4.0, 40}},
      {{4.0, 40}, {2.0, 20}},
  };
  const auto merged = BoundedTopKMerge(lists, 3, Better, SameId);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 50u);
  EXPECT_EQ(merged[1].id, 40u);
  EXPECT_EQ(merged[2].id, 20u);
}

TEST(BoundedTopKMerge, ScoreTiesBreakByIdDesc) {
  const std::vector<std::vector<Scored>> lists = {
      {{3.0, 10}},
      {{3.0, 99}},
      {{3.0, 55}},
  };
  const auto merged = BoundedTopKMerge(lists, 3, Better, SameId);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 99u);
  EXPECT_EQ(merged[1].id, 55u);
  EXPECT_EQ(merged[2].id, 10u);
}

TEST(BoundedTopKMerge, FewerThanKUniqueYieldsShortResult) {
  const std::vector<std::vector<Scored>> lists = {
      {{2.0, 7}},
      {{2.0, 7}},
  };
  const auto merged = BoundedTopKMerge(lists, 10, Better, SameId);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].id, 7u);
}

}  // namespace
}  // namespace kflush
