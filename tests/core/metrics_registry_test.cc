// Unit tests for the central metrics registry: get-or-create instrument
// identity, snapshot contents, provider contributions, Reset semantics,
// and the JSON emission the bench artifacts depend on.

#include "core/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace kflush {
namespace {

TEST(MetricsRegistryTest, CounterGetOrCreateReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* a = registry.counter("ingest.inserted");
  Counter* b = registry.counter("ingest.inserted");
  EXPECT_EQ(a, b);
  a->Increment();
  a->Add(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_NE(registry.counter("other"), a);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("system.queue_depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  EXPECT_EQ(registry.gauge("system.queue_depth"), g);
}

TEST(MetricsRegistryTest, HistogramGetOrCreateAndRecord) {
  MetricsRegistry registry;
  ConcurrentHistogram* h = registry.histogram("query.latency_micros");
  EXPECT_EQ(registry.histogram("query.latency_micros"), h);
  h->Record(10);
  h->Record(30);
  const Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_EQ(snap.min(), 10u);
  EXPECT_EQ(snap.max(), 30u);
  EXPECT_EQ(snap.sum(), 40u);
}

TEST(MetricsRegistryTest, SnapshotCapturesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("c.one")->Add(3);
  registry.gauge("g.level")->Set(-12);
  registry.histogram("h.lat")->Record(100);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter_or("c.one"), 3u);
  EXPECT_EQ(snap.counter_or("missing", 99), 99u);
  ASSERT_EQ(snap.gauges.count("g.level"), 1u);
  EXPECT_EQ(snap.gauges.at("g.level"), -12);
  ASSERT_EQ(snap.histograms.count("h.lat"), 1u);
  EXPECT_EQ(snap.histograms.at("h.lat").count(), 1u);
}

TEST(MetricsRegistryTest, ProvidersContributeToEverySnapshot) {
  MetricsRegistry registry;
  int calls = 0;
  registry.AddProvider([&calls](MetricsSnapshot* snap) {
    ++calls;
    snap->counters["component.exported"] = 42;
    snap->gauges["component.level"] = 7;
  });
  const MetricsSnapshot first = registry.Snapshot();
  const MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(first.counter_or("component.exported"), 42u);
  EXPECT_EQ(second.gauges.at("component.level"), 7);
}

TEST(MetricsRegistryTest, ResetZeroesCountersAndHistogramsOnly) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Gauge* g = registry.gauge("g");
  ConcurrentHistogram* h = registry.histogram("h");
  c->Add(5);
  g->Set(9);
  h->Record(123);

  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 9) << "gauges track live levels; Reset keeps them";
  EXPECT_EQ(h->Snapshot().count(), 0u);
}

TEST(MetricsRegistryTest, ConcurrentHistogramMergesAcrossThreads) {
  ConcurrentHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min(), 1u);
  EXPECT_EQ(snap.max(), static_cast<uint64_t>(kPerThread));
}

TEST(MetricsRegistryTest, ToJsonEmitsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("flush.cycles")->Add(2);
  registry.gauge("memory.budget_bytes")->Set(1024);
  registry.histogram("flush.cycle_micros")->Record(500);

  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"flush.cycles\":2"), std::string::npos);
  EXPECT_NE(json.find("\"memory.budget_bytes\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"flush.cycle_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces: a cheap structural sanity check (CI validates the
  // full schema with a real JSON parser in scripts/validate_bench_json.py).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistryTest, ToPrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("flush.cycles")->Add(2);
  registry.gauge("memory.budget_bytes")->Set(1024);
  ConcurrentHistogram* h = registry.histogram("query.latency_micros.and.hit");
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<uint64_t>(i));

  const std::string text = registry.Snapshot().ToPrometheus();
  // Dotted registry names sanitize to [a-zA-Z0-9_] with a kflush_ prefix,
  // and every family gets # HELP and # TYPE lines.
  EXPECT_NE(text.find("# HELP kflush_flush_cycles "), std::string::npos);
  EXPECT_NE(text.find("# TYPE kflush_flush_cycles counter\n"
                      "kflush_flush_cycles 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE kflush_memory_budget_bytes gauge\n"
                      "kflush_memory_budget_bytes 1024\n"),
            std::string::npos);
  // Histograms export as real Prometheus histograms: cumulative
  // _bucket{le=...} series ending in the mandatory +Inf, plus
  // _sum/_count.
  const std::string hist = "kflush_query_latency_micros_and_hit";
  EXPECT_NE(text.find("# TYPE " + hist + " histogram\n"), std::string::npos);
  EXPECT_NE(text.find(hist + "_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find(hist + "_bucket{le=\"+Inf\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find(hist + "_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find(hist + "_count 100\n"), std::string::npos);
  // Bucket counts are cumulative: the series of values in le order never
  // decreases and ends at _count.
  uint64_t prev = 0;
  size_t pos = 0;
  const std::string needle = hist + "_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const size_t sp = text.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const uint64_t cum = std::strtoull(text.c_str() + sp + 2, nullptr, 10);
    EXPECT_GE(cum, prev);
    prev = cum;
    pos = sp;
  }
  EXPECT_EQ(prev, 100u);
  // No raw dotted name may leak into the exposition outside # HELP lines
  // (HELP carries the dotted origin on purpose).
  EXPECT_EQ(text.find("kflush_flush.cycles"), std::string::npos);
  EXPECT_EQ(text.find("\nflush.cycles"), std::string::npos);
}

TEST(MetricsRegistryTest, ToStringListsInstruments) {
  MetricsRegistry registry;
  registry.counter("a.count")->Increment();
  registry.gauge("b.level")->Set(3);
  const std::string s = registry.Snapshot().ToString();
  EXPECT_NE(s.find("a.count"), std::string::npos);
  EXPECT_NE(s.find("b.level"), std::string::npos);
}

}  // namespace
}  // namespace kflush
