#include "core/ranking.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

TEST(TemporalRankingTest, ScoreIsArrivalTime) {
  TemporalRanking ranking;
  EXPECT_DOUBLE_EQ(ranking.Score(MakeBlog(1, 1234, {})), 1234.0);
  EXPECT_EQ(ranking.kind(), RankingKind::kTemporal);
}

TEST(TemporalRankingTest, NewerAlwaysWins) {
  TemporalRanking ranking;
  Microblog old_blog = MakeBlog(1, 100, {});
  Microblog new_blog = MakeBlog(2, 200, {});
  EXPECT_GT(ranking.Score(new_blog), ranking.Score(old_blog));
}

TEST(PopularityRankingTest, FollowersBoostScore) {
  PopularityRanking ranking;
  Microblog nobody = MakeBlog(1, 1000, {});
  nobody.follower_count = 0;
  Microblog celebrity = MakeBlog(2, 1000, {});
  celebrity.follower_count = 1'000'000;
  EXPECT_GT(ranking.Score(celebrity), ranking.Score(nobody));
}

TEST(PopularityRankingTest, BoostIsBounded) {
  // A celebrity post from long ago still loses to a fresh post if the
  // recency gap exceeds the follower boost.
  PopularityRanking ranking(/*boost_micros=*/600e6);  // 10 min per doubling
  Microblog celebrity = MakeBlog(1, 0, {});
  celebrity.follower_count = 1'000'000;  // ~20 doublings -> ~200 min boost
  Microblog fresh = MakeBlog(2, 86'400'000'000ULL, {});  // one day later
  fresh.follower_count = 0;
  EXPECT_GT(ranking.Score(fresh), ranking.Score(celebrity));
}

TEST(PopularityRankingTest, ScoreComputableOnArrival) {
  // Same record, same score, always (the §IV-B requirement).
  PopularityRanking ranking;
  Microblog blog = MakeBlog(1, 1000, {});
  blog.follower_count = 42;
  const double s1 = ranking.Score(blog);
  const double s2 = ranking.Score(blog);
  EXPECT_DOUBLE_EQ(s1, s2);
}

TEST(MakeRankingTest, FactoryBuildsEveryKind) {
  for (RankingKind kind : {RankingKind::kTemporal, RankingKind::kPopularity}) {
    auto ranking = MakeRanking(kind);
    ASSERT_NE(ranking, nullptr);
    EXPECT_EQ(ranking->kind(), kind);
  }
  EXPECT_STREQ(RankingKindName(RankingKind::kTemporal), "temporal");
  EXPECT_STREQ(RankingKindName(RankingKind::kPopularity), "popularity");
}

}  // namespace
}  // namespace kflush
