// Extended query-engine coverage: bounding-box area search, three-plus
// keyword AND/OR queries, popularity-ranked queries, and running the
// whole store on the file-backed disk tier.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "../testing/test_util.h"
#include "core/query_engine.h"
#include "model/attribute.h"
#include "storage/file_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::MakeGeoBlog;
using testing_util::SmallStoreOptions;

constexpr uint32_t kK = 5;

TEST(SearchAreaTest, FindsRecordsInsideBox) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, kK);
  opts.attribute = AttributeKind::kSpatial;
  MicroblogStore store(opts);
  QueryEngine engine(&store);
  // Cluster of posts near (40.0, -90.0), plus far-away noise.
  for (MicroblogId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(store
                    .Insert(MakeGeoBlog(id, id * 10, 40.0 + 0.001 * id,
                                        -90.0 + 0.001 * id))
                    .ok());
  }
  for (MicroblogId id = 100; id <= 110; ++id) {
    ASSERT_TRUE(store.Insert(MakeGeoBlog(id, id, 10.0, 10.0)).ok());
  }
  auto result = engine.SearchArea(39.9, -90.1, 40.2, -89.8, /*k=*/10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->results.empty());
  for (const Microblog& blog : result->results) {
    EXPECT_GE(blog.location.lat, 39.9);
    EXPECT_LE(blog.location.lat, 40.2);
    EXPECT_NE(blog.id, 100u);
  }
  // Most recent first.
  EXPECT_EQ(result->results[0].id, 20u);
}

TEST(SearchAreaTest, FillsToKWhenBoundaryTileIsDominatedByOutsiders) {
  // Regression: the partial-tile post-filter drops records after top-k
  // materialization. If the newest records in a boundary tile sit outside
  // the box, a naive fetch of k returns only outsiders and under-fills the
  // answer even though k matching records are in memory. The over-fetch
  // loop must widen until the box's top-k is filled.
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, kK);
  opts.attribute = AttributeKind::kSpatial;
  MicroblogStore store(opts);
  QueryEngine engine(&store);

  const double in_lat = 40.010, in_lon = -90.005;    // inside the box
  const double out_lat = 40.030, out_lon = -89.990;  // same tile, outside
  SpatialGridMapper mapper;
  ASSERT_EQ(mapper.TileFor(in_lat, in_lon), mapper.TileFor(out_lat, out_lon))
      << "test geometry broke: both points must share one grid tile";

  // 10 older in-box records, then 20 newer same-tile outsiders that
  // dominate every recency-ranked prefix of the tile's posting list.
  for (MicroblogId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(store.Insert(MakeGeoBlog(id, id * 10, in_lat, in_lon)).ok());
  }
  for (MicroblogId id = 101; id <= 120; ++id) {
    ASSERT_TRUE(
        store.Insert(MakeGeoBlog(id, 1000 + id, out_lat, out_lon)).ok());
  }

  auto result = engine.SearchArea(40.008, -90.010, 40.013, -90.000, kK);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->results.size(), kK);
  for (const Microblog& blog : result->results) {
    EXPECT_LE(blog.id, 10u);
  }
  EXPECT_EQ(result->results[0].id, 10u);  // most recent in-box first
}

TEST(SearchAreaTest, RejectsNonSpatialStore) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  QueryEngine engine(&store);
  auto result = engine.SearchArea(1, 1, 2, 2);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SearchAreaTest, RejectsOversizedBox) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing);
  opts.attribute = AttributeKind::kSpatial;
  MicroblogStore store(opts);
  QueryEngine engine(&store);
  auto result =
      engine.SearchArea(-80, -170, 80, 170, /*k=*/5, /*max_tiles=*/16);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SearchAreaTest, RejectsInvertedBox) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing);
  opts.attribute = AttributeKind::kSpatial;
  MicroblogStore store(opts);
  QueryEngine engine(&store);
  auto result = engine.SearchArea(42.0, -90.0, 40.0, -89.0);
  EXPECT_FALSE(result.ok());
}

TEST(MultiKeywordTest, ThreeWayAnd) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, 2));
  QueryEngine engine(&store);
  // Records with all three keywords; some with only two.
  for (MicroblogId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(store.Insert(MakeBlog(id, id * 10, {1, 2, 3})).ok());
  }
  ASSERT_TRUE(store.Insert(MakeBlog(10, 500, {1, 2})).ok());
  TopKQuery q;
  q.terms = {1, 2, 3};
  q.type = QueryType::kAnd;
  auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->memory_hit);
  ASSERT_EQ(result->results.size(), 2u);
  for (const Microblog& blog : result->results) {
    EXPECT_EQ(blog.keywords.size(), 3u);
  }
}

TEST(MultiKeywordTest, ThreeWayOrUnionsAll) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, 2));
  QueryEngine engine(&store);
  ASSERT_TRUE(store.Insert(MakeBlog(1, 10, {1})).ok());
  ASSERT_TRUE(store.Insert(MakeBlog(2, 20, {2})).ok());
  ASSERT_TRUE(store.Insert(MakeBlog(3, 30, {3})).ok());
  ASSERT_TRUE(store.Insert(MakeBlog(4, 40, {1})).ok());
  ASSERT_TRUE(store.Insert(MakeBlog(5, 50, {2})).ok());
  ASSERT_TRUE(store.Insert(MakeBlog(6, 60, {3})).ok());
  TopKQuery q;
  q.terms = {1, 2, 3};
  q.type = QueryType::kOr;
  auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->memory_hit);  // all three terms have >= k=2
  ASSERT_EQ(result->results.size(), 2u);
  EXPECT_EQ(result->results[0].id, 6u);
  EXPECT_EQ(result->results[1].id, 5u);
}

TEST(PopularityRankedQueriesTest, CelebrityOutranksRecency) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, 3);
  opts.ranking = RankingKind::kPopularity;
  MicroblogStore store(opts);
  QueryEngine engine(&store);
  Microblog celebrity = MakeBlog(1, 1000, {7});
  celebrity.follower_count = 1'000'000;
  Microblog recent1 = MakeBlog(2, 2000, {7});
  Microblog recent2 = MakeBlog(3, 3000, {7});
  ASSERT_TRUE(store.Insert(celebrity).ok());
  ASSERT_TRUE(store.Insert(recent1).ok());
  ASSERT_TRUE(store.Insert(recent2).ok());
  TopKQuery q;
  q.terms = {7};
  q.type = QueryType::kSingle;
  auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 3u);
  EXPECT_EQ(result->results[0].id, 1u);  // boosted to the top
}

TEST(FileDiskBackedStoreTest, MissPathReadsFromRealFiles) {
  const std::string path = ::testing::TempDir() + "/kflush_engine_disk.dat";
  std::remove(path.c_str());
  auto disk = FileDiskStore::Open(path);
  ASSERT_TRUE(disk.ok());

  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, kK);
  opts.disk = disk->get();
  MicroblogStore store(opts);
  QueryEngine engine(&store);

  for (MicroblogId id = 1; id <= 30; ++id) {
    ASSERT_TRUE(store.Insert(MakeBlog(id, id * 10, {1})).ok());
  }
  store.FlushOnce();  // pushes the tail of keyword 1 onto the real file

  TopKQuery q;
  q.terms = {1};
  q.type = QueryType::kSingle;
  q.k = 25;
  auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->memory_hit);
  ASSERT_EQ(result->results.size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(result->results[i].id, 30 - i);
  }
  EXPECT_GT(result->from_disk, 0u);
  EXPECT_GT(disk->get()->stats().records_read, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kflush
