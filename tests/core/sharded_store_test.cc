// Unit tests for the sharded deployment facade (core/sharded_store.h) and
// the threaded sharded system (core/sharded_system.h): routing and record
// duplication, central id/timestamp stamping, budget splitting, SetK
// propagation, cross-shard aggregation, and the query fan-out surfaces.
// The heavyweight "same answers at any shard count" property lives in
// tests/integration/shard_oracle_test.cc; these tests pin the mechanics.

#include "core/sharded_store.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/sharded_system.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"
#include "util/clock.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::RecordsEqual;
using testing_util::SmallStoreOptions;

ShardedStoreOptions SmallShardedOptions(size_t num_shards,
                                        PolicyKind policy = PolicyKind::kFifo,
                                        size_t total_budget = 512 * 1024) {
  ShardedStoreOptions opts;
  opts.store = SmallStoreOptions(policy, total_budget);
  opts.num_shards = num_shards;
  return opts;
}

TEST(ShardedStore, SplitsBudgetAndLabelsShards) {
  ShardedMicroblogStore store(SmallShardedOptions(4, PolicyKind::kFifo,
                                                  512 * 1024));
  ASSERT_EQ(store.num_shards(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(store.shard(i)->options().memory_budget_bytes, 128u * 1024u);
    EXPECT_EQ(store.shard(i)->options().shard_id, static_cast<int>(i));
  }
}

TEST(ShardedStore, RoutesSingleTermRecordToOwnerOnly) {
  ShardedMicroblogStore store(SmallShardedOptions(4));
  const KeywordId kw = 7;
  const size_t owner = store.router().ShardForTerm(kw);
  ASSERT_TRUE(store.Insert(MakeBlog(kInvalidMicroblogId, 0, {kw})).ok());

  const ShardedIngestStats stats = store.sharded_ingest_stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.routed_copies, 1u);
  EXPECT_EQ(stats.skipped_no_terms, 0u);
  for (size_t i = 0; i < store.num_shards(); ++i) {
    EXPECT_EQ(store.shard(i)->ingest_stats().inserted, i == owner ? 1u : 0u)
        << "shard " << i;
  }
}

TEST(ShardedStore, DuplicatesMultiTermRecordAcrossOwners) {
  // Keywords 0 and 1 route to different shards at N=4 (golden: 3 and 1).
  ShardedMicroblogStore store(SmallShardedOptions(4));
  const size_t owner0 = store.router().ShardForTerm(0);
  const size_t owner1 = store.router().ShardForTerm(1);
  ASSERT_NE(owner0, owner1);

  ASSERT_TRUE(store.Insert(MakeBlog(kInvalidMicroblogId, 0, {0, 1})).ok());
  EXPECT_EQ(store.sharded_ingest_stats().routed_copies, 2u);
  EXPECT_EQ(store.shard(owner0)->ingest_stats().inserted, 1u);
  EXPECT_EQ(store.shard(owner1)->ingest_stats().inserted, 1u);

  // Each shard indexes only its owned term: the record is findable under
  // keyword 0 only through shard owner0, under keyword 1 only through
  // owner1.
  auto r0 = store.shard_engine(owner0)->Execute({{0}, QueryType::kSingle, 5});
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.value().results.size(), 1u);
  auto r0_miss =
      store.shard_engine(owner1)->Execute({{0}, QueryType::kSingle, 5});
  ASSERT_TRUE(r0_miss.ok());
  EXPECT_TRUE(r0_miss.value().results.empty());

  // The two copies are byte-identical (central stamping).
  auto r1 = store.shard_engine(owner1)->Execute({{1}, QueryType::kSingle, 5});
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.value().results.size(), 1u);
  EXPECT_TRUE(RecordsEqual(r0.value().results[0], r1.value().results[0]));
}

TEST(ShardedStore, StampsIdsCentrallyAndMonotonically) {
  ShardedMicroblogStore store(SmallShardedOptions(4));
  std::vector<MicroblogId> ids;
  for (KeywordId kw = 0; kw < 10; ++kw) {
    ASSERT_TRUE(store.Insert(MakeBlog(kInvalidMicroblogId, 0, {kw})).ok());
  }
  // Collect every record back through per-shard single-term queries.
  for (KeywordId kw = 0; kw < 10; ++kw) {
    const size_t owner = store.router().ShardForTerm(kw);
    auto r = store.shard_engine(owner)->Execute({{kw}, QueryType::kSingle, 5});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().results.size(), 1u);
    ids.push_back(r.value().results[0].id);
    EXPECT_GT(r.value().results[0].created_at, 0u);
  }
  std::sort(ids.begin(), ids.end());
  // Ids are 1..10: assigned centrally in arrival order, no per-shard gaps.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<MicroblogId>(i + 1));
  }
}

TEST(ShardedStore, CountsTermlessRecordsCentrally) {
  ShardedMicroblogStore store(SmallShardedOptions(2));
  ASSERT_TRUE(store.Insert(MakeBlog(kInvalidMicroblogId, 0, {})).ok());
  const ShardedIngestStats stats = store.sharded_ingest_stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.routed_copies, 0u);
  EXPECT_EQ(stats.skipped_no_terms, 1u);
  EXPECT_EQ(store.AggregatedIngestStats().skipped_no_terms, 1u);
  for (size_t i = 0; i < store.num_shards(); ++i) {
    EXPECT_EQ(store.shard(i)->ingest_stats().inserted, 0u);
  }
}

TEST(ShardedStore, SetKPropagatesToEveryShard) {
  ShardedMicroblogStore store(SmallShardedOptions(4));
  EXPECT_EQ(store.k(), 5u);
  store.SetK(17);
  EXPECT_EQ(store.k(), 17u);
  for (size_t i = 0; i < store.num_shards(); ++i) {
    EXPECT_EQ(store.shard(i)->k(), 17u);
  }
}

TEST(ShardedStore, AggregatesAcrossShards) {
  ShardedMicroblogStore store(SmallShardedOptions(4));
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.Insert(
                 MakeBlog(kInvalidMicroblogId, 0,
                          {static_cast<KeywordId>(i % 23)}))
            .ok());
  }
  const IngestStats agg = store.AggregatedIngestStats();
  EXPECT_EQ(agg.inserted, store.sharded_ingest_stats().routed_copies);

  // Every distinct keyword appears on exactly one shard; the aggregate
  // term count is the number of distinct keywords.
  EXPECT_EQ(store.NumTerms(), 23u);
  size_t per_shard_sum = 0;
  for (size_t i = 0; i < store.num_shards(); ++i) {
    per_shard_sum += store.shard(i)->policy()->NumTerms();
  }
  EXPECT_EQ(per_shard_sum, 23u);

  EXPECT_GT(store.DataUsed(), 0u);
  std::vector<size_t> sizes;
  store.CollectEntrySizes(&sizes);
  EXPECT_EQ(sizes.size(), 23u);
}

TEST(ShardedStore, AggregatedMetricsCarriesPerShardSeries) {
  ShardedMicroblogStore store(SmallShardedOptions(2));
  ASSERT_TRUE(store.Insert(MakeBlog(kInvalidMicroblogId, 0, {1})).ok());

  const MetricsSnapshot flat = store.AggregatedMetrics();
  const MetricsSnapshot with_shards =
      store.AggregatedMetrics(/*include_per_shard=*/true);
  // The aggregate-only snapshot has no shard-prefixed series; the
  // per-shard one adds "shard<i>."-prefixed copies on top.
  bool flat_has_prefixed = false;
  for (const auto& [name, value] : flat.counters) {
    if (name.rfind("shard", 0) == 0) flat_has_prefixed = true;
  }
  EXPECT_FALSE(flat_has_prefixed);
  bool shard0_seen = false, shard1_seen = false;
  for (const auto& [name, value] : with_shards.counters) {
    if (name.rfind("shard0.", 0) == 0) shard0_seen = true;
    if (name.rfind("shard1.", 0) == 0) shard1_seen = true;
  }
  EXPECT_TRUE(shard0_seen);
  EXPECT_TRUE(shard1_seen);
  EXPECT_GT(with_shards.counters.size(), flat.counters.size());
}

TEST(ShardedStore, FlushAllOnceFreesOverBudgetShards) {
  // Tiny budget so a modest stream overruns it; auto_flush stays off (the
  // SmallStoreOptions default) and FlushAllOnce drives the cycles.
  ShardedMicroblogStore store(
      SmallShardedOptions(2, PolicyKind::kFifo, 32 * 1024));
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        store.Insert(
                 MakeBlog(kInvalidMicroblogId, 0,
                          {static_cast<KeywordId>(i % 11)}))
            .ok());
  }
  bool any_full = false;
  for (size_t i = 0; i < store.num_shards(); ++i) {
    any_full = any_full || store.shard(i)->MemoryFull();
  }
  ASSERT_TRUE(any_full);
  EXPECT_GT(store.FlushAllOnce(), 0u);
  EXPECT_GT(store.AggregatedPolicyStats().flush_cycles, 0u);
}

TEST(ShardedStore, FanoutQueriesMatchSingleShardReference) {
  // A miniature differential check (the full oracle streams generators):
  // identical explicit records into N=1 and N=3, compare single / OR /
  // AND answers field-wise.
  ShardedMicroblogStore one(SmallShardedOptions(1));
  ShardedMicroblogStore three(SmallShardedOptions(3));
  for (size_t i = 0; i < 60; ++i) {
    const KeywordId a = static_cast<KeywordId>(i % 7);
    const KeywordId b = static_cast<KeywordId>(7 + (i % 5));
    Microblog blog = MakeBlog(kInvalidMicroblogId, 1000 + i, {a, b},
                              /*user=*/1 + (i % 3));
    ASSERT_TRUE(one.Insert(blog).ok());
    ASSERT_TRUE(three.Insert(std::move(blog)).ok());
  }
  const std::vector<TopKQuery> queries = {
      {{3}, QueryType::kSingle, 5},
      {{0, 9}, QueryType::kOr, 5},
      {{2, 8}, QueryType::kAnd, 5},
      {{1, 4, 10}, QueryType::kOr, 8},
  };
  for (const TopKQuery& query : queries) {
    auto r1 = one.engine()->Execute(query);
    auto rn = three.engine()->Execute(query);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(rn.ok());
    ASSERT_EQ(r1.value().results.size(), rn.value().results.size());
    for (size_t i = 0; i < r1.value().results.size(); ++i) {
      EXPECT_TRUE(
          RecordsEqual(r1.value().results[i], rn.value().results[i]))
          << "query term0=" << query.terms[0] << " position " << i;
    }
  }
}

TEST(ShardedSystem, SubmitsRoutesAndDigests) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kFifo, 512 * 1024);
  options.num_shards = 4;
  ShardedMicroblogSystem system(options);
  system.Start();

  std::vector<Microblog> batch;
  for (size_t i = 0; i < 100; ++i) {
    batch.push_back(MakeBlog(kInvalidMicroblogId, 0,
                             {static_cast<KeywordId>(i % 13),
                              static_cast<KeywordId>(13 + i % 3)}));
  }
  ASSERT_TRUE(system.Submit(std::move(batch)));
  system.Stop();  // drains queues and joins threads

  EXPECT_EQ(system.accepted(), 100u);
  EXPECT_GE(system.routed_copies(), 100u);
  EXPECT_EQ(system.digested(), system.routed_copies());
  EXPECT_EQ(system.skipped_no_terms(), 0u);

  // Post-stop queries serve from the shard stores.
  auto r = system.Query({{5}, QueryType::kSingle, 10});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().results.empty());

  // Stop is idempotent; Submit after stop is rejected.
  system.Stop();
  EXPECT_FALSE(system.Submit({MakeBlog(kInvalidMicroblogId, 0, {1})}));
}

TEST(ShardedSystem, SetKAppliesToEveryShard) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kKFlushing);
  options.num_shards = 2;
  ShardedMicroblogSystem system(options);
  system.SetK(9);
  for (size_t i = 0; i < system.num_shards(); ++i) {
    EXPECT_EQ(system.shard_store(i)->k(), 9u);
  }
}

}  // namespace
}  // namespace kflush
