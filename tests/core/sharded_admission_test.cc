// Regression tests for all-or-nothing routed admission
// (core/sharded_system.cc). The original Submit enqueued per-shard
// sub-batches sequentially and AND-ed the results: when a later owner
// shard's queue was full, earlier owners already held their share of the
// batch while the caller was told `false` — a retry double-inserted the
// records that had slipped in. Admission now reserves a queue slot on
// every owner shard before enqueueing anything, so a rejected batch
// leaves no trace on any shard. These tests pin that invariant directly
// by inspecting queue depths around a rejection (they fail on the old
// sequential-enqueue code).

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/shard_router.h"
#include "core/sharded_system.h"
#include "gtest/gtest.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

constexpr size_t kShards = 4;

ShardedSystemOptions TinyQueueOptions(size_t queue_capacity = 1) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kFifo, 1 << 20);
  options.system.ingest_queue_capacity = queue_capacity;
  options.num_shards = kShards;
  return options;
}

/// First keyword owned by shard `owner` (router hashing is a pure
/// function of (term, num_shards), so probing mirrors the system).
KeywordId KeywordOwnedBy(size_t owner) {
  ShardRouter router(kShards);
  for (KeywordId kw = 1;; ++kw) {
    if (router.ShardForTerm(kw) == owner) return kw;
  }
}

// A multi-shard batch offered while one owner shard's queue is full must
// be rejected without any other owner shard receiving its sub-batch. The
// system is never Start()ed, so queue contents are frozen: capacity 1,
// one filler batch parked on the full shard, depths observable.
TEST(ShardedAdmission, TrySubmitRejectedBatchTouchesNoShard) {
  ShardedMicroblogSystem system(TinyQueueOptions());
  const KeywordId full_kw = KeywordOwnedBy(0);
  const KeywordId other_kw = KeywordOwnedBy(1);

  // Park a batch on shard 0; its 1-slot queue is now full.
  ASSERT_TRUE(system.Submit({MakeBlog(kInvalidMicroblogId, 0, {full_kw})}));
  ASSERT_EQ(system.total_queue_depth(), 1u);
  ASSERT_EQ(system.max_queue_depth(), 1u);

  // Records for shard 1 sort before the full shard's in the batch — the
  // old code enqueued shard 1's sub-batch, then failed on shard 0.
  uint64_t admitted = 0;
  uint64_t skipped = 0;
  std::vector<Microblog> batch;
  batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {other_kw}));
  batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {full_kw}));
  const auto outcome =
      system.TrySubmit(std::move(batch), &admitted, &skipped);

  EXPECT_EQ(outcome, ShardedMicroblogSystem::SubmitOutcome::kOverloaded);
  EXPECT_EQ(admitted, 0u);
  EXPECT_EQ(skipped, 0u);
  // The regression: sequential enqueue left shard 1's sub-batch behind,
  // total depth 2. All-or-nothing admission leaves only the filler.
  EXPECT_EQ(system.total_queue_depth(), 1u);
  EXPECT_EQ(system.accepted(), 1u);
  EXPECT_EQ(system.routed_copies(), 1u);
}

// The blocking Submit path unwinds its reservations when the system
// stops: a submitter stuck behind a full shard returns false with no
// partial admission, instead of deadlocking Stop or leaking records.
TEST(ShardedAdmission, BlockedSubmitUnwindsCleanlyOnStop) {
  ShardedMicroblogSystem system(TinyQueueOptions());
  const KeywordId full_kw = KeywordOwnedBy(0);
  const KeywordId other_kw = KeywordOwnedBy(1);
  ASSERT_TRUE(system.Submit({MakeBlog(kInvalidMicroblogId, 0, {full_kw})}));

  std::atomic<bool> submit_returned{false};
  std::atomic<bool> submit_result{true};
  std::thread submitter([&] {
    std::vector<Microblog> batch;
    batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {other_kw}));
    batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {full_kw}));
    submit_result.store(system.Submit(std::move(batch)));
    submit_returned.store(true);
  });

  // Let the submitter reach the blocking reservation on the full shard.
  for (int i = 0; i < 100 && !submit_returned.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(submit_returned.load());

  system.Stop();
  submitter.join();
  EXPECT_FALSE(submit_result.load());
  // Only the filler was ever admitted; the rejected batch left nothing.
  EXPECT_EQ(system.accepted(), 1u);
  EXPECT_EQ(system.routed_copies(), 1u);
}

TEST(ShardedAdmission, SubmitAfterStopIsRejected) {
  ShardedMicroblogSystem system(TinyQueueOptions(8));
  system.Start();
  system.Stop();
  EXPECT_FALSE(system.Submit({MakeBlog(kInvalidMicroblogId, 0, {1})}));
  const auto outcome =
      system.TrySubmit({MakeBlog(kInvalidMicroblogId, 0, {1})});
  EXPECT_EQ(outcome, ShardedMicroblogSystem::SubmitOutcome::kStopped);
  EXPECT_EQ(system.accepted(), 0u);
}

// Accepted batches report admitted/skipped splits and count exactly once
// even when records fan out to several shards.
TEST(ShardedAdmission, TrySubmitAcceptedReportsAdmittedAndSkipped) {
  ShardedMicroblogSystem system(TinyQueueOptions(64));
  system.Start();
  std::vector<Microblog> batch;
  batch.push_back(MakeBlog(kInvalidMicroblogId, 0,
                           {KeywordOwnedBy(0), KeywordOwnedBy(1)}));
  batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {KeywordOwnedBy(2)}));
  batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {}));  // term-less
  uint64_t admitted = 0;
  uint64_t skipped = 0;
  const auto outcome = system.TrySubmit(std::move(batch), &admitted, &skipped);
  ASSERT_EQ(outcome, ShardedMicroblogSystem::SubmitOutcome::kAccepted);
  EXPECT_EQ(admitted, 2u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(system.accepted(), 3u);
  EXPECT_EQ(system.skipped_no_terms(), 1u);
  // Record 1 owns terms on two shards: three routed copies in flight.
  EXPECT_EQ(system.routed_copies(), 3u);
  system.Stop();
  EXPECT_EQ(system.digested(), 3u);
}

// The system.queue_depth gauge is maintained with +/-1 deltas from both
// producer and consumer; after a full drain every shard's gauge must read
// exactly zero (the old Set(size())-outside-the-lock scheme could park a
// stale depth forever).
TEST(ShardedAdmission, QueueDepthGaugeConvergesToZeroAfterDrain) {
  ShardedSystemOptions options = TinyQueueOptions(64);
  ShardedMicroblogSystem system(options);
  system.Start();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(system.Submit(
        {MakeBlog(kInvalidMicroblogId, 0, {static_cast<KeywordId>(i)})}));
  }
  system.Stop();
  EXPECT_EQ(system.digested(), system.routed_copies());
  EXPECT_EQ(system.total_queue_depth(), 0u);
  for (size_t i = 0; i < system.num_shards(); ++i) {
    const MetricsSnapshot snap =
        system.shard_store(i)->metrics_registry()->Snapshot();
    auto it = snap.gauges.find("system.queue_depth");
    ASSERT_NE(it, snap.gauges.end()) << "shard " << i;
    EXPECT_EQ(it->second, 0) << "shard " << i;
  }
}

}  // namespace
}  // namespace kflush
